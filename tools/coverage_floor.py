"""Line-coverage floor for the instrumented fast paths, without pytest-cov.

The CI image does not ship ``coverage``/``pytest-cov`` (they are an
optional ``cov`` extra in pyproject), so this tool measures line
coverage for ``repro.simt`` and ``repro.core`` with a stdlib
``sys.settrace`` collector and enforces the same ``fail_under`` floor
configured under ``[tool.coverage.report]``.

Usage::

    python tools/coverage_floor.py              # tier-1 suite, floor from pyproject
    python tools/coverage_floor.py --floor 80 tests/simt
    python tools/coverage_floor.py --list       # per-file table only, no gate

When the real ``coverage`` package is installed (``pip install -e
.[cov]``), prefer ``pytest --cov``; the numbers agree to within the
stdlib tracer's granularity (it cannot see lines executed before
tracing starts, i.e. nothing in this repo's layout).
"""

from __future__ import annotations

import argparse
import re
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: packages the floor applies to — keep in sync with [tool.coverage.run]
TARGET_PACKAGES = ("repro/simt", "repro/core")

#: test-tree globs the gate refuses to run without: the lifecycle layer
#: (grow/rehash), the compiled kernel backend, the streaming pipeline
#: (depth equivalence + staging backpressure), the serving layer
#: (soak replay identity, fault injection, cache coherence), and the
#: compact slot layout (cross-layout bit-identity, store/view planes)
#: are exercised only through these modules, so a renamed or emptied
#: file would silently drop the floor's most load-bearing coverage
#: instead of failing the gate
REQUIRED_TEST_GLOBS = (
    "tests/core/test_growth*.py",
    "tests/multigpu/test_distributed_growth*.py",
    "tests/core/test_compiled_kernels*.py",
    "tests/core/test_compiled_fallback*.py",
    "tests/exec/test_compiled_equivalence*.py",
    "tests/pipeline/test_pipeline_depth*.py",
    "tests/multigpu/test_hierarchical*.py",
    "tests/pipeline/test_staging*.py",
    "tests/serve/test_soak*.py",
    "tests/serve/test_faults*.py",
    "tests/serve/test_cache_properties*.py",
    "tests/serve/test_protocol*.py",
    "tests/core/test_compact_layout*.py",
    "tests/core/test_store*.py",
    "tests/multigpu/test_compact_distribution*.py",
)


def missing_required_tests() -> list[str]:
    """Globs with no non-empty match under the repo root."""
    missing = []
    for pattern in REQUIRED_TEST_GLOBS:
        matches = [p for p in REPO_ROOT.glob(pattern) if p.stat().st_size > 0]
        if not matches:
            missing.append(pattern)
    return missing

_PRAGMA = re.compile(r"#\s*pragma:\s*no\s+cover")


def target_files() -> list[Path]:
    files: list[Path] = []
    for pkg in TARGET_PACKAGES:
        files.extend(sorted((SRC / pkg).rglob("*.py")))
    return files


def executable_lines(path: Path) -> set[int]:
    """Line numbers the interpreter can actually visit, per the line
    table of the compiled module (docstrings/blank lines excluded),
    minus ``pragma: no cover`` suppressions."""
    source = path.read_text()
    code = compile(source, str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _, _, lineno in obj.co_lines():
            if lineno is not None:
                lines.add(lineno)
        stack.extend(c for c in obj.co_consts if hasattr(c, "co_lines"))
    source_lines = source.splitlines()
    suppressed = {
        i for i, text in enumerate(source_lines, start=1) if _PRAGMA.search(text)
    }
    # drop the module's zeroth pseudo-line and anything pragma-marked
    return {n for n in lines - suppressed if 1 <= n <= len(source_lines)}


class LineCollector:
    """Records (filename, lineno) pairs for frames inside the targets."""

    def __init__(self, prefixes: tuple[str, ...]):
        self.prefixes = prefixes
        self.hits: dict[str, set[int]] = {}

    def _local(self, frame, event, arg):
        if event == "line":
            self.hits[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local

    def _global(self, frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(self.prefixes):
            return None
        self.hits.setdefault(filename, set())
        return self._local

    def __enter__(self):
        sys.settrace(self._global)
        threading.settrace(self._global)
        return self

    def __exit__(self, *exc):
        sys.settrace(None)
        threading.settrace(None)
        return False


def configured_floor() -> float:
    """The fail_under value from pyproject's [tool.coverage.report]."""
    text = (REPO_ROOT / "pyproject.toml").read_text()
    match = re.search(r"fail_under\s*=\s*([0-9.]+)", text)
    return float(match.group(1)) if match else 85.0


def run_suite(pytest_args: list[str], collector: LineCollector) -> int:
    import pytest

    with collector:
        return pytest.main(["-q", *pytest_args])


def report(hits: dict[str, set[int]], *, show_files: bool) -> float:
    total_exec = total_hit = 0
    rows = []
    for path in target_files():
        lines = executable_lines(path)
        covered = hits.get(str(path), set()) & lines
        total_exec += len(lines)
        total_hit += len(covered)
        pct = 100.0 * len(covered) / len(lines) if lines else 100.0
        rows.append((path.relative_to(SRC), len(covered), len(lines), pct))
    if show_files:
        for rel, hit, n, pct in rows:
            print(f"{str(rel):<48} {hit:>4}/{n:<4} {pct:6.1f}%")
    overall = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(
        f"coverage[{', '.join(TARGET_PACKAGES)}]: "
        f"{total_hit}/{total_exec} lines = {overall:.1f}%"
    )
    return overall


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("pytest_args", nargs="*", default=[],
                        help="extra args for pytest (default: configured testpaths)")
    parser.add_argument("--floor", type=float, default=None,
                        help="minimum percent (default: pyproject fail_under)")
    parser.add_argument("--list", action="store_true",
                        help="print the per-file table")
    parser.add_argument("--no-gate", action="store_true",
                        help="report only; always exit 0")
    args = parser.parse_args(argv)

    missing = missing_required_tests()
    if missing:
        for pattern in missing:
            print(f"coverage_floor: required test tree missing: {pattern}")
        return 1

    sys.path.insert(0, str(SRC))
    # subprocess-driven tests (examples, process backend) also need src
    import os

    existing = os.environ.get("PYTHONPATH", "")
    os.environ["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{existing}" if existing else str(SRC)
    )
    collector = LineCollector((str(SRC / "repro"),))
    status = run_suite(args.pytest_args, collector)
    if status != 0:
        print(f"coverage_floor: test run failed (pytest exit {status})")
        return int(status)

    overall = report(collector.hits, show_files=args.list)
    floor = args.floor if args.floor is not None else configured_floor()
    if args.no_gate:
        return 0
    if overall < floor:
        print(f"coverage_floor: {overall:.1f}% is below the floor of {floor:.1f}%")
        return 1
    print(f"coverage_floor: ok (floor {floor:.1f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
