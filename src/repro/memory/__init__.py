"""Simulated memory system: layouts, buffers, transfers."""

from .buffer import DeviceBuffer, HostBuffer
from .layout import (
    AoSLayout,
    SoALayout,
    pack_pairs,
    pack_scalar,
    unpack_pairs,
    unpack_scalar,
)
from .transfer import MemcpyKind, TransferLog, TransferRecord, memcpy

__all__ = [
    "HostBuffer",
    "DeviceBuffer",
    "AoSLayout",
    "SoALayout",
    "pack_pairs",
    "unpack_pairs",
    "pack_scalar",
    "unpack_scalar",
    "MemcpyKind",
    "TransferLog",
    "TransferRecord",
    "memcpy",
]
