"""Key-value memory layouts (paper §II, Fig. 1).

*AoS* packs each (key, value) pair into one 64-bit word — "cache-friendly
and fully atomic access onto key-value pairs up to 64 bits".  *SoA* keeps
separate key and value arrays, allowing longer keys "at the cost of
inferior caching and potential priority inversion during updates".

WarpDrive's table uses AoS; the SoA class exists for the layout ablation
(bench A4) and to model the priority-inversion hazard in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import EMPTY_SLOT, KEY_BITS, MAX_KEY, PAIR_BYTES, TOMBSTONE_SLOT
from ..errors import ConfigurationError
from ..utils.validation import check_keys, check_same_length, check_values

__all__ = ["pack_pairs", "unpack_pairs", "pack_scalar", "unpack_scalar", "AoSLayout", "SoALayout"]

_U64 = np.uint64
_U32 = np.uint32


def pack_pairs(keys: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Pack 32-bit keys and values into 64-bit AoS words (key in high bits).

    Placing the key in the high half means the reserved top key values map
    to the largest packed words, so no legal pair collides with the
    ``EMPTY_SLOT`` / ``TOMBSTONE_SLOT`` sentinels.
    """
    k = check_keys(keys)
    v = check_values(values)
    check_same_length("keys", k, "values", v)
    return (k.astype(_U64) << _U64(KEY_BITS)) | v.astype(_U64)


def unpack_pairs(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split packed AoS words back into (keys, values)."""
    arr = np.asarray(packed, dtype=_U64)
    keys = (arr >> _U64(KEY_BITS)).astype(_U32)
    values = (arr & _U64(0xFFFFFFFF)).astype(_U32)
    return keys, values


def pack_scalar(key: int, value: int) -> np.uint64:
    """Pack one pair; scalar convenience for the reference kernels."""
    if not 0 <= key <= MAX_KEY:
        raise ConfigurationError(f"key must be in [0, {MAX_KEY}], got {key}")
    if not 0 <= value <= 0xFFFFFFFF:
        raise ConfigurationError(f"value must be a 32-bit unsigned int, got {value}")
    return _U64((key << KEY_BITS) | value)


def unpack_scalar(packed: np.uint64) -> tuple[int, int]:
    """Unpack one 64-bit word into (key, value)."""
    p = int(packed)
    return p >> KEY_BITS, p & 0xFFFFFFFF


@dataclass
class AoSLayout:
    """Array-of-structs slot storage: one uint64 per slot.

    A probe of a window of ``|g|`` consecutive slots reads ``|g| * 8``
    contiguous bytes — a single coalesced transaction group.
    """

    slots: np.ndarray

    @classmethod
    def empty(cls, capacity: int) -> "AoSLayout":
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity}")
        return cls(np.full(capacity, EMPTY_SLOT, dtype=_U64))

    @property
    def capacity(self) -> int:
        return int(self.slots.shape[0])

    @property
    def nbytes(self) -> int:
        return self.capacity * PAIR_BYTES

    def is_vacant(self) -> np.ndarray:
        """Boolean mask of empty-or-tombstone slots (insertable)."""
        return (self.slots == EMPTY_SLOT) | (self.slots == TOMBSTONE_SLOT)

    def is_empty(self) -> np.ndarray:
        return self.slots == EMPTY_SLOT

    def occupancy(self) -> float:
        """Fraction of slots holding live pairs (the true load factor α)."""
        return float(np.mean(~self.is_vacant()))

    def stored_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All live (key, value) pairs, in slot order."""
        live = self.slots[~self.is_vacant()]
        return unpack_pairs(live)

    def clear(self) -> None:
        self.slots.fill(EMPTY_SLOT)


@dataclass
class SoALayout:
    """Struct-of-arrays storage: separate key and value arrays.

    Value writes are *relaxed* (not covered by the key CAS), which is the
    priority-inversion hazard the paper describes: two concurrent updates
    of the same key may commit key and value from different writers.
    Provided for the layout ablation; WarpDrive proper uses AoS.
    """

    keys: np.ndarray
    values: np.ndarray

    #: reserved key marking an empty SoA slot
    EMPTY_KEY = _U32(0xFFFFFFFF)
    #: reserved key marking a deleted SoA slot
    TOMBSTONE_KEY = _U32(0xFFFFFFFE)

    @classmethod
    def empty(cls, capacity: int) -> "SoALayout":
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity}")
        return cls(
            keys=np.full(capacity, cls.EMPTY_KEY, dtype=_U32),
            values=np.zeros(capacity, dtype=_U32),
        )

    @property
    def capacity(self) -> int:
        return int(self.keys.shape[0])

    @property
    def nbytes(self) -> int:
        return self.capacity * PAIR_BYTES  # same total footprint as AoS

    def is_vacant(self) -> np.ndarray:
        return (self.keys == self.EMPTY_KEY) | (self.keys == self.TOMBSTONE_KEY)

    def occupancy(self) -> float:
        return float(np.mean(~self.is_vacant()))

    def query_transactions(self, num_queries: int, group_size: int) -> int:
        """Sector loads for ``num_queries`` probes under SoA vs AoS.

        SoA needs *two* transactions per window (key array + value array)
        where AoS needs one — the Fig. 1 caching argument, quantified for
        bench A4.
        """
        from ..simt.counters import sectors_for_access

        window_bytes = group_size * 4  # 4-byte keys
        per_window = sectors_for_access(0, window_bytes) + sectors_for_access(
            0, window_bytes
        )
        return num_queries * per_window
