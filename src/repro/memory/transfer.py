"""Host↔device and device↔device copies with byte accounting.

Every copy is recorded in a :class:`TransferLog` with its kind and
endpoints; :mod:`repro.perfmodel` later prices the log against the node's
link bandwidths (PCIe for H2D/D2H, NVLink for P2P).  The copies
themselves move real data so functional results stay exact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..obs.protocol import reportable_dict
from .buffer import DeviceBuffer, HostBuffer

__all__ = ["MemcpyKind", "TransferRecord", "TransferLog", "memcpy"]


class MemcpyKind(enum.Enum):
    """Direction of a copy, CUDA-style."""

    H2D = "host_to_device"
    D2H = "device_to_host"
    D2D = "device_to_device"  # same GPU
    P2P = "peer_to_peer"      # across GPUs (NVLink)


@dataclass(frozen=True)
class TransferRecord:
    """One completed copy."""

    kind: MemcpyKind
    nbytes: int
    src_device: int | None  # None = host
    dst_device: int | None  # None = host
    tag: str = ""

    schema_version = 1

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys)."""
        return reportable_dict(
            self,
            {
                "kind": self.kind.name.lower(),
                "nbytes": self.nbytes,
                "src_device": self.src_device,
                "dst_device": self.dst_device,
                "tag": self.tag,
            },
        )


@dataclass
class TransferLog:
    """Append-only record of copies for a node or experiment phase."""

    records: list[TransferRecord] = field(default_factory=list)

    def add(self, record: TransferRecord) -> None:
        self.records.append(record)

    def bytes_by_kind(self) -> dict[MemcpyKind, int]:
        out: dict[MemcpyKind, int] = {}
        for rec in self.records:
            out[rec.kind] = out.get(rec.kind, 0) + rec.nbytes
        return out

    def total_bytes(self, kind: MemcpyKind | None = None) -> int:
        if kind is None:
            return sum(rec.nbytes for rec in self.records)
        return sum(rec.nbytes for rec in self.records if rec.kind == kind)

    def p2p_matrix(self, num_devices: int) -> np.ndarray:
        """Bytes sent between each (src, dst) GPU pair — the all-to-all load."""
        mat = np.zeros((num_devices, num_devices), dtype=np.int64)
        for rec in self.records:
            if rec.kind is MemcpyKind.P2P:
                mat[rec.src_device, rec.dst_device] += rec.nbytes
        return mat

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


def _endpoint_device(buf: HostBuffer | DeviceBuffer) -> int | None:
    return buf.device.device_id if isinstance(buf, DeviceBuffer) else None


def memcpy(
    dst: HostBuffer | DeviceBuffer,
    src: HostBuffer | DeviceBuffer,
    *,
    log: TransferLog | None = None,
    tag: str = "",
    count: int | None = None,
    dst_offset: int = 0,
    src_offset: int = 0,
) -> TransferRecord:
    """Copy ``count`` elements from ``src`` to ``dst`` and log the bytes.

    Mirrors ``cudaMemcpy``: the kind is inferred from the endpoint types
    and device ids.  Raises on dtype mismatch or out-of-range windows.
    """
    if isinstance(src, DeviceBuffer):
        src.require_live()
    if isinstance(dst, DeviceBuffer):
        dst.require_live()
    if dst.array.dtype != src.array.dtype:
        raise ConfigurationError(
            f"memcpy dtype mismatch: {dst.array.dtype} != {src.array.dtype}"
        )
    n = len(src) - src_offset if count is None else count
    if n < 0 or src_offset + n > len(src) or dst_offset + n > len(dst):
        raise ConfigurationError(
            f"memcpy window out of range: count={n}, src_offset={src_offset} "
            f"(len {len(src)}), dst_offset={dst_offset} (len {len(dst)})"
        )

    src_dev = _endpoint_device(src)
    dst_dev = _endpoint_device(dst)
    if src_dev is None and dst_dev is None:
        raise ConfigurationError("host-to-host copies are not modelled; use NumPy")
    if src_dev is None:
        kind = MemcpyKind.H2D
    elif dst_dev is None:
        kind = MemcpyKind.D2H
    elif src_dev == dst_dev:
        kind = MemcpyKind.D2D
    else:
        kind = MemcpyKind.P2P

    dst.array[dst_offset : dst_offset + n] = src.array[src_offset : src_offset + n]
    record = TransferRecord(
        kind=kind,
        nbytes=int(n * src.array.dtype.itemsize),
        src_device=src_dev,
        dst_device=dst_dev,
        tag=tag,
    )
    if log is not None:
        log.add(record)
    return record
