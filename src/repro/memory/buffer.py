"""Host and device buffers with VRAM accounting.

A :class:`DeviceBuffer` registers its footprint with its owning
:class:`~repro.simt.device.Device` on construction and releases it on
:meth:`free` (or garbage collection), so experiments that overflow a
16 GB P100 fail the same way the real system would.  Buffers expose the
underlying NumPy array directly — kernels charge transaction counters
themselves, at the granularity they know (windows, batches).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, DeviceError
from ..simt.device import Device

__all__ = ["HostBuffer", "DeviceBuffer"]


class HostBuffer:
    """Pinned host memory: a thin, typed wrapper over a NumPy array."""

    def __init__(self, array: np.ndarray):
        self.array = np.ascontiguousarray(array)

    @classmethod
    def empty(cls, size: int, dtype=np.uint64) -> "HostBuffer":
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        return cls(np.empty(size, dtype=dtype))

    @classmethod
    def zeros(cls, size: int, dtype=np.uint64) -> "HostBuffer":
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        return cls(np.zeros(size, dtype=dtype))

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def __len__(self) -> int:
        return int(self.array.shape[0])


class DeviceBuffer:
    """Global-memory allocation on a simulated GPU."""

    def __init__(self, device: Device, array: np.ndarray, *, nbytes: int | None = None):
        self.device = device
        self.array = np.ascontiguousarray(array)
        # a compact slot plane models fewer bytes than its host ndarray
        # physically occupies; ``nbytes`` overrides the registered
        # footprint with the modelled one (never more than physical)
        charged = int(self.array.nbytes) if nbytes is None else int(nbytes)
        if charged < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {charged}")
        # register only after a successful reservation, so a failed
        # allocation never releases VRAM it does not own at GC time
        self._registered = 0
        device.allocate(charged)
        self._registered = charged

    @classmethod
    def empty(cls, device: Device, size: int, dtype=np.uint64) -> "DeviceBuffer":
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        return cls(device, np.empty(size, dtype=dtype))

    @classmethod
    def zeros(cls, device: Device, size: int, dtype=np.uint64) -> "DeviceBuffer":
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        return cls(device, np.zeros(size, dtype=dtype))

    @classmethod
    def full(
        cls, device: Device, size: int, fill, dtype=np.uint64, *,
        nbytes: int | None = None,
    ) -> "DeviceBuffer":
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        return cls(device, np.full(size, fill, dtype=dtype), nbytes=nbytes)

    @classmethod
    def from_array(
        cls, device: Device, array: np.ndarray, *, nbytes: int | None = None
    ) -> "DeviceBuffer":
        """Take ownership of an existing array's footprint on ``device``."""
        return cls(device, array, nbytes=nbytes)

    @property
    def nbytes(self) -> int:
        """Modelled (registered) footprint of this buffer."""
        return self._registered if self._registered else int(self.array.nbytes)

    @property
    def freed(self) -> bool:
        return self._registered == 0

    def free(self) -> None:
        """Release the VRAM reservation; the buffer becomes unusable."""
        if self._registered:
            self.device.free(self._registered)
            self._registered = 0
            self.array = np.empty(0, dtype=self.array.dtype)

    def require_live(self) -> None:
        if self.freed:
            raise DeviceError("operation on a freed DeviceBuffer")

    def __len__(self) -> int:
        return int(self.array.shape[0])

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.free()
        except Exception:
            pass
