"""Timing of distributed cascades (multi-GPU insert/query).

Converts a :class:`~repro.multigpu.distributed_table.CascadeReport` into
per-phase seconds on a given topology.  Phases inside one cascade are
sequential (the paper: "the whole traversal of the insertion cascade
relies on global barriers"); batch-level overlap is the
:mod:`repro.pipeline` package's job and builds on these phase times.
"""

from __future__ import annotations

from dataclasses import dataclass


from typing import TYPE_CHECKING

from . import calibration as cal
from .memmodel import kernel_seconds, multisplit_seconds

if TYPE_CHECKING:  # imported lazily to avoid a package-level cycle
    from ..multigpu.distributed_table import CascadeReport, DistributedHashTable
    from ..multigpu.topology import Topology

__all__ = ["CascadeTiming", "time_cascade"]


def _exchange_seconds(total: float, intra: float, inter: float) -> float:
    """Deflate an exchange's modelled seconds by per-level efficiency.

    Flat cascades (``inter == 0``) keep the historical single-level
    formula exactly; hierarchical cascades deflate each level by its own
    protocol efficiency and finish with the slower one, mirroring how the
    levels overlap in :meth:`ClusterTopology.alltoall_time`.
    """
    if inter <= 0.0:
        return total / cal.NVLINK_EFFICIENCY
    return max(
        intra / cal.NVLINK_EFFICIENCY,
        inter / cal.NIC_EFFICIENCY,
    )


@dataclass(frozen=True)
class CascadeTiming:
    """Seconds per phase of one distributed cascade."""

    h2d: float
    multisplit: float
    alltoall: float
    kernel: float  # insert or query, max over GPUs (they run in parallel)
    reverse: float  # reverse transposition (query cascades only)
    d2h: float

    @property
    def total(self) -> float:
        """Sequential (non-overlapped) cascade wall time."""
        return (
            self.h2d + self.multisplit + self.alltoall + self.kernel
            + self.reverse + self.d2h
        )

    @property
    def device_only(self) -> float:
        """Wall time excluding PCIe phases (device-sided cascades)."""
        return self.multisplit + self.alltoall + self.kernel + self.reverse

    def scaled(self, factor: float) -> "CascadeTiming":
        """Linear projection of every phase to ``factor×`` the batch size.

        Phase times are byte/count-proportional; per-launch constants are
        a sub-percent correction at projected scales and are scaled along.
        """
        return CascadeTiming(
            h2d=self.h2d * factor,
            multisplit=self.multisplit * factor,
            alltoall=self.alltoall * factor,
            kernel=self.kernel * factor,
            reverse=self.reverse * factor,
            d2h=self.d2h * factor,
        )

    def fractions(self) -> dict[str, float]:
        """Phase shares of the total (for Fig. 11-style decompositions)."""
        total = self.total
        if total == 0:
            return {k: 0.0 for k in ("h2d", "multisplit", "alltoall", "kernel", "reverse", "d2h")}
        return {
            "h2d": self.h2d / total,
            "multisplit": self.multisplit / total,
            "alltoall": self.alltoall / total,
            "kernel": self.kernel / total,
            "reverse": self.reverse / total,
            "d2h": self.d2h / total,
        }


def time_cascade(
    report: CascadeReport,
    table: DistributedHashTable | None,
    topology: Topology,
    *,
    shard_table_bytes: int | None = None,
    scale: float = 1.0,
) -> CascadeTiming:
    """Price one cascade's phases.

    ``table`` supplies per-shard footprints for the CAS degradation; pass
    None to price a cascade against an unknown table (no degradation).
    ``shard_table_bytes`` overrides the footprint — used when a scaled-
    down simulation stands in for a paper-scale table, so the >2 GB
    degradation applies as it would at full size.  ``scale`` projects the
    cascade to ``scale×`` the simulated batch size: count-proportional
    phase components scale linearly while per-launch constants do not
    (the distinction matters when a 2^14-pair simulation stands in for a
    2^24-pair paper batch).
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    launch = cal.KERNEL_LAUNCH_SECONDS

    h2d = (
        topology.host_transfer_time(report.h2d_per_gpu / cal.PCIE_EFFICIENCY) * scale
        if report.h2d_bytes
        else 0.0
    )
    d2h = (
        topology.host_transfer_time(report.d2h_per_gpu / cal.PCIE_EFFICIENCY) * scale
        if report.d2h_bytes
        else 0.0
    )

    ms = 0.0
    for gpu, rep in enumerate(report.multisplit_reports):
        base = multisplit_seconds(rep, topology.devices[gpu].spec)
        if base > 0:
            base = (base - launch) * scale + launch
        ms = max(ms, base)

    alltoall = _exchange_seconds(
        report.alltoall_seconds,
        report.alltoall_intra_seconds,
        report.alltoall_inter_seconds,
    ) * scale
    reverse = _exchange_seconds(
        report.reverse_seconds,
        report.reverse_intra_seconds,
        report.reverse_inter_seconds,
    ) * scale

    kern = 0.0
    for gpu, rep in enumerate(report.kernel_reports):
        if shard_table_bytes is not None:
            tbytes: int | None = shard_table_bytes
        elif table is not None:
            tbytes = table.shards[gpu].table_bytes
        else:
            tbytes = None
        base = kernel_seconds(rep, topology.devices[gpu].spec, table_bytes=tbytes)
        if rep.num_ops > 0:
            base = (base - launch) * scale + launch
        kern = max(kern, base)

    return CascadeTiming(
        h2d=h2d, multisplit=ms, alltoall=alltoall, kernel=kern, reverse=reverse, d2h=d2h
    )
