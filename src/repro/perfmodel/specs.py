"""Named hardware configurations.

The paper's testbed (§V-A) is a Mogon II node: dual Xeon E5-2680 v4,
256 GB DDR4, four Tesla P100s (16 GB HBM2 @ 720 GB/s) on an augmented
fully connected NVLink mesh behind two PCIe switches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simt.device import GPUSpec
from . import calibration as cal

__all__ = ["P100", "V100", "GTX470", "CpuSpec", "XEON_E5_2680V4_NODE"]

_GIB = 1 << 30
_GB = 1e9

#: NVIDIA Tesla P100 (SXM2): 16 GB HBM2, 720 GB/s, 56 SMs @ 1.48 GHz,
#: 8 memory interfaces (the CAS-degradation suspect of §V-C).
P100 = GPUSpec(
    name="Tesla P100",
    vram_bytes=16 * _GIB,
    mem_bandwidth=720.0 * _GB,
    random_access_efficiency=cal.RANDOM_ACCESS_EFFICIENCY,
    atomic_cas_rate=cal.ATOMIC_CAS_RATE,
    num_mem_interfaces=8,
    sm_count=56,
    clock_hz=1.48e9,
)

#: NVIDIA Tesla V100 (SXM2) — the Volta successor, for the beyond-the-
#: paper DGX-1V extension bench: 16 GB HBM2 @ 900 GB/s, 80 SMs,
#: six NVLink2 ports.
V100 = GPUSpec(
    name="Tesla V100",
    vram_bytes=16 * _GIB,
    mem_bandwidth=900.0 * _GB,
    random_access_efficiency=cal.RANDOM_ACCESS_EFFICIENCY,
    atomic_cas_rate=cal.ATOMIC_CAS_RATE * 1.25,
    num_mem_interfaces=8,
    sm_count=80,
    clock_hz=1.53e9,
)

#: GTX 470 — the Fermi card of Alcantara's original cuckoo experiments
#: (≈ 250 M inserts/s era); used by historical-context benches.
GTX470 = GPUSpec(
    name="GeForce GTX 470",
    vram_bytes=1280 * (1 << 20),
    mem_bandwidth=133.9 * _GB,
    random_access_efficiency=0.35,
    atomic_cas_rate=0.6e9,
    num_mem_interfaces=5,
    sm_count=14,
    clock_hz=1.215e9,
)


@dataclass(frozen=True)
class CpuSpec:
    """Host CPU description for the Folklore baseline."""

    name: str
    mem_bandwidth: float
    random_access_efficiency: float
    atomic_cas_rate: float
    cores: int
    threads: int

    @property
    def effective_random_bandwidth(self) -> float:
        return self.mem_bandwidth * self.random_access_efficiency


#: Dual-socket Xeon E5-2680 v4 (2 × 14 cores, 48 threads w/ HT as used
#: in Maier et al.'s Folklore numbers).
XEON_E5_2680V4_NODE = CpuSpec(
    name="2x Xeon E5-2680 v4",
    mem_bandwidth=cal.CPU_MEM_BANDWIDTH,
    random_access_efficiency=cal.CPU_RANDOM_ACCESS_EFFICIENCY,
    atomic_cas_rate=cal.CPU_ATOMIC_CAS_RATE,
    cores=28,
    threads=56,
)
