"""Timing model for the Folklore CPU baseline.

The CPU map's reports carry *cache-line* counts in the sector fields
(see :mod:`repro.baselines.cpu_map`); this module prices them against
DDR4 bandwidth and the node's aggregate CAS rate.
"""

from __future__ import annotations

from ..baselines.cpu_map import CACHE_LINE_BYTES
from ..core.report import KernelReport
from . import calibration as cal
from .specs import CpuSpec, XEON_E5_2680V4_NODE

__all__ = ["cpu_kernel_seconds"]


def cpu_kernel_seconds(
    report: KernelReport, spec: CpuSpec = XEON_E5_2680V4_NODE
) -> float:
    """Model time of a bulk CPU hash-map operation."""
    if report.num_ops == 0:
        return 0.0
    lines = report.load_sectors + report.store_sectors
    bw_time = lines * CACHE_LINE_BYTES / spec.effective_random_bandwidth
    atomic_time = report.cas_attempts / spec.atomic_cas_rate
    # per-op bookkeeping: hashing + branchy probe loop on a CPU core
    overhead = report.num_ops * 2.0 * cal.PER_OP_OVERHEAD_SECONDS
    return max(bw_time, atomic_time) + overhead
