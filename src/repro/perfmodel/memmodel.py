"""Counts → seconds: the single-GPU kernel timing model.

Three simultaneous bounds govern a hashing kernel on a real GPU; the
model takes their maximum (roofline style) and adds the serial atomic and
fixed-overhead components:

* **bandwidth bound** — 32-byte sectors over the random-access-effective
  HBM2 bandwidth;
* **issue/divergence bound** — a warp executes until its *slowest*
  coalesced group finishes, so effective transaction slots are
  ``Σ_warps max(windows among its 32/|g| groups) × (32/|g|)``.  This is
  measured from the actual per-item probe counts, and is precisely why
  one-thread-per-key baselines (|g| = 1 ⇒ 32 groups/warp, heavy max)
  lose at high load;
* **atomic bound** — CAS attempts over the sustainable CAS rate, with
  the >2 GB multi-memory-interface degradation of §V-C.
"""

from __future__ import annotations

import numpy as np

from ..constants import SECTOR_BYTES, WARP_SIZE
from ..core.report import KernelReport
from ..errors import ConfigurationError
from ..simt.device import GPUSpec
from . import calibration as cal

__all__ = [
    "cas_degradation",
    "divergence_adjusted_transactions",
    "kernel_seconds",
    "multisplit_seconds",
    "throughput",
]


def cas_degradation(table_bytes: int | None) -> float:
    """CAS throughput factor for a table of the given footprint.

    1.0 up to the 2 GB knee, then a log-linear ramp down to the observed
    factor-of-two floor over three octaves (2 → 16 GB), mirroring the
    Fig. 10 insertion drop and, through it, the super-linear strong
    scaling point of Fig. 9.
    """
    if table_bytes is None or table_bytes <= cal.CAS_DEGRADE_KNEE_BYTES:
        return 1.0
    octaves = np.log2(table_bytes / cal.CAS_DEGRADE_KNEE_BYTES)
    ramp = min(1.0, octaves / cal.CAS_DEGRADE_OCTAVES)
    return 1.0 - (1.0 - cal.CAS_DEGRADE_FLOOR) * ramp


def divergence_adjusted_transactions(
    probe_windows: np.ndarray, group_size: int
) -> float:
    """Effective transaction slots after SIMT divergence.

    Work items are packed into warps in submission order; each warp runs
    for ``max`` windows among its groups, occupying one slot per group
    per iteration.  Equals ``Σ probe_windows`` exactly when |g| = 32
    (one group per warp ⇒ no divergence).
    """
    if group_size not in (1, 2, 4, 8, 16, 32):
        raise ConfigurationError(f"invalid group size {group_size}")
    windows = np.asarray(probe_windows, dtype=np.float64)
    if windows.size == 0:
        return 0.0
    groups_per_warp = WARP_SIZE // group_size
    pad = (-windows.size) % groups_per_warp
    if pad:
        windows = np.concatenate([windows, np.zeros(pad)])
    per_warp_max = windows.reshape(-1, groups_per_warp).max(axis=1)
    return float(per_warp_max.sum() * groups_per_warp)


def kernel_seconds(
    report: KernelReport,
    spec: GPUSpec,
    *,
    table_bytes: int | None = None,
    pcie_bandwidth: float | None = None,
) -> float:
    """Model time of one bulk hash kernel on one GPU.

    ``table_bytes`` activates the CAS capacity degradation;
    ``pcie_bandwidth`` prices any out-of-core (host-resident) sectors the
    report carries.
    """
    if report.num_ops == 0:
        return 0.0

    bw_time = (
        report.total_sectors
        * SECTOR_BYTES
        / (spec.mem_bandwidth * spec.random_access_efficiency)
    )

    if report.probe_windows.size:
        eff_transactions = divergence_adjusted_transactions(
            report.probe_windows, max(report.group_size, 1)
        )
    else:
        eff_transactions = float(report.total_sectors)
    issue_time = eff_transactions / cal.TRANSACTION_ISSUE_RATE

    atomic_time = report.cas_attempts / (
        spec.atomic_cas_rate * cas_degradation(table_bytes)
    )

    host_time = 0.0
    host_sectors = report.host_load_sectors + report.host_store_sectors
    if host_sectors:
        bw = pcie_bandwidth if pcie_bandwidth is not None else 11.0e9
        host_time = host_sectors * SECTOR_BYTES / (bw * cal.PCIE_EFFICIENCY)

    overhead = (
        report.num_ops * cal.PER_OP_OVERHEAD_SECONDS + cal.KERNEL_LAUNCH_SECONDS
    )
    return max(bw_time, issue_time) + atomic_time + host_time + overhead


def multisplit_seconds(report: KernelReport, spec: GPUSpec) -> float:
    """Model time of one single-GPU multisplit pass.

    Uses the calibrated effective pair-processing rate (§V-C: multisplit
    contributes 2-4% of cascade time at ≈ 210 GB/s accumulated).
    """
    if report.num_ops == 0:
        return 0.0
    pair_bytes = report.num_ops * 16  # read + write every 8-byte pair
    return pair_bytes / cal.MULTISPLIT_PAIR_BYTES_PER_SECOND + cal.KERNEL_LAUNCH_SECONDS


def throughput(num_ops: int, seconds: float) -> float:
    """Operations per second (0 when no time elapsed)."""
    return num_ops / seconds if seconds > 0 else 0.0


def projected_seconds(
    report: KernelReport,
    spec: GPUSpec,
    *,
    table_bytes: int | None = None,
    scale: float = 1.0,
    pcie_bandwidth: float | None = None,
) -> float:
    """Kernel time projected to ``scale×`` the simulated problem size.

    Per-operation work at a fixed load factor is size-invariant (probe
    counts depend on α and |g| only), so all count-proportional terms
    scale linearly; the kernel-launch constant does not.  ``table_bytes``
    should be the *paper-scale* footprint so the >2 GB CAS degradation
    applies as it would on real hardware.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    base = kernel_seconds(
        report, spec, table_bytes=table_bytes, pcie_bandwidth=pcie_bandwidth
    )
    if report.num_ops == 0:
        return base * scale
    return (base - cal.KERNEL_LAUNCH_SECONDS) * scale + cal.KERNEL_LAUNCH_SECONDS
