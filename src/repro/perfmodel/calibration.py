"""Calibration constants for the counts→seconds projection.

The functional simulator measures *work* (sectors, CAS ops, probe
windows, warp iterations, bytes per link); this module holds the handful
of rate constants that convert work into seconds.  Every constant states
its provenance.  The reproduction's claims are about *shapes* (who wins,
crossover loads, scaling knees); absolute rates are anchored to the
paper's own reported numbers for a single configuration and never
re-tuned per experiment.

Anchors used (paper §V-B/V-C):

* WarpDrive single-GPU insert ≈ 1.4 G ops/s at α = 0.95, unique keys;
* device-sided retrieval ≈ (3.5–5.5) G ops/s;
* multisplit ≈ 210 GB/s accumulated over 4 GPUs;
* all-to-all transposition ≈ 192 GB/s accumulated over NVLink;
* PCIe: 2 × 12 GB/s theoretical, ≈ 22 GB/s measured node-aggregate.
"""

from __future__ import annotations

_GB = 1e9

#: Fraction of HBM2 peak bandwidth sustainable under hash-random 32-byte
#: sector traffic.  Microbenchmark folklore for Pascal puts random-sector
#: efficiency at 40-50% of peak; 0.45 * 720 GB/s = 324 GB/s.
RANDOM_ACCESS_EFFICIENCY: float = 0.45

#: Fraction of peak for long streaming sweeps (multisplit scans, result
#: compaction).  HBM2 streams at 75-85% of peak in practice.
STREAMING_EFFICIENCY: float = 0.80

#: Coalesced-transaction issue throughput per GPU (transactions/second).
#: This is the latency/occupancy bound: a warp iteration issues one
#: transaction per group slot (idle divergent groups waste slots).
#: Anchored so the bound only bites for heavily divergent kernels
#: (|g| = 1 probing with geometric tails) while coalesced retrieval at
#: α = 0.95, |g| = 4 stays bandwidth-dominated near the paper's
#: ~4 G ops/s.
TRANSACTION_ISSUE_RATE: float = 4.0e10

#: Sustainable 64-bit atomic CAS throughput per GPU below the capacity
#: degradation knee.  Anchored (together with the issue rate) to the
#: 1.4 G inserts/s @ α = 0.95 headline and the 2.84× insert speedup over
#: CUDPP (whose eviction chains average ~3.5 CAS per pair at that load).
ATOMIC_CAS_RATE: float = 3.3e9

#: Capacity at which CAS throughput starts degrading.  §V-C: "insertion
#: performance drops by up to a factor of two for n > 2^30 elements
#: (> 2 GB on each of the 4 GPUs) ... we suspect that atomic CAS might
#: degrade if lock-free instructions are issued across several memory
#: interfaces."
CAS_DEGRADE_KNEE_BYTES: int = 2 << 30  # 2 GiB

#: Floor of the degradation ramp.  Set so the *end-to-end* insertion
#: rate (CAS is one of several terms) halves at the largest Fig. 10
#: configuration (9 GB per shard), matching "drops by up to a factor of
#: two".
CAS_DEGRADE_FLOOR: float = 0.3

#: Octaves of capacity over the knee across which the ramp reaches the
#: floor (2 GB -> ~11 GB covers the Fig. 10 shard range on a P100).
CAS_DEGRADE_OCTAVES: float = 2.5

#: Fixed per-operation overhead (hashing, index arithmetic, packing),
#: seconds.  Bounds best-case throughput at 20 G ops/s per GPU.
PER_OP_OVERHEAD_SECONDS: float = 0.05e-9

#: Kernel launch + synchronization overhead per bulk call, seconds.
KERNEL_LAUNCH_SECONDS: float = 5e-6

#: Effective per-GPU multisplit processing rate, bytes of (input + output)
#: pairs per second.  Anchored to the paper's "multisplit performs at
#: ≈ 210 GB/s accumulated bandwidth" over four GPUs: 210/4 GB/s of table
#: sweeps ≈ 52.5 GB/s of useful pair traffic per GPU.
MULTISPLIT_PAIR_BYTES_PER_SECOND: float = 52.5 * _GB

#: NVLink protocol efficiency.  A 20 GB/s link sustains ~16 GB/s of
#: payload; with this factor the uniform 4-GPU all-to-all reproduces the
#: paper's ≈ 192 GB/s accumulated transposition bandwidth.
NVLINK_EFFICIENCY: float = 0.80

#: PCIe protocol efficiency on top of the per-switch link rate.
PCIE_EFFICIENCY: float = 0.92

#: NIC protocol efficiency for inter-node (cluster) traffic.  RDMA
#: verbs over 100 Gb/s EDR sustain ~90% of line rate for the large,
#: pre-pinned messages the all-to-all exchanges; used by
#: :func:`repro.perfmodel.time_cascade` when a cascade reports a
#: non-zero inter-node charge.
NIC_EFFICIENCY: float = 0.90

#: CPU (Folklore baseline) DDR4 node bandwidth and atomic rate — dual
#: E5-2680 v4, 4-channel DDR4-2400 per socket ≈ 76.8 GB/s × 2 sockets.
CPU_MEM_BANDWIDTH: float = 153.6 * _GB
CPU_RANDOM_ACCESS_EFFICIENCY: float = 0.35
#: Aggregate CAS rate of 28 cores / 56 threads; anchored so the Folklore
#: baseline peaks near Maier et al.'s ~300 M inserts/s.
CPU_ATOMIC_CAS_RATE: float = 0.45e9
