"""Strong and weak scaling metrics (paper Eq. 4).

``E_s(n, m) = τ(n, 1) / (m · τ(n, m))`` and
``E_w(n, m) = τ(n, 1) / τ(m·n, m)`` where τ is the modelled cascade wall
time.  The runners build actual distributed tables, execute the real
cascades, and price them with :mod:`repro.perfmodel.cascade`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass


from ..errors import ConfigurationError

__all__ = [
    "strong_efficiency",
    "weak_efficiency",
    "speedup",
    "ScalingPoint",
    "scaling_series",
]


def strong_efficiency(tau_1: float, tau_m: float, m: int) -> float:
    """E_s = τ(n,1) / (m · τ(n,m))."""
    if m < 1 or tau_m <= 0 or tau_1 <= 0:
        raise ConfigurationError("scaling efficiency needs positive times, m >= 1")
    return tau_1 / (m * tau_m)


def weak_efficiency(tau_1: float, tau_mn: float) -> float:
    """E_w = τ(n,1) / τ(m·n, m)."""
    if tau_mn <= 0 or tau_1 <= 0:
        raise ConfigurationError("scaling efficiency needs positive times")
    return tau_1 / tau_mn


def speedup(tau_1: float, tau_m: float) -> float:
    """Plain speedup τ(n,1)/τ(n,m)."""
    if tau_m <= 0 or tau_1 <= 0:
        raise ConfigurationError("speedup needs positive times")
    return tau_1 / tau_m


@dataclass(frozen=True)
class ScalingPoint:
    """One (m, time) sample of a scaling sweep."""

    num_gpus: int
    seconds: float
    num_ops: int

    @property
    def ops_per_second(self) -> float:
        return self.num_ops / self.seconds if self.seconds > 0 else 0.0


def scaling_series(
    run: Callable[[int, int], float],
    n: int,
    gpu_counts: tuple[int, ...] = (1, 2, 3, 4),
    *,
    mode: str = "strong",
) -> tuple[list[ScalingPoint], list[float]]:
    """Sweep GPU counts and compute efficiencies.

    ``run(n_items, m)`` must return the modelled cascade seconds for
    processing ``n_items`` on ``m`` GPUs.  Strong mode keeps the total
    item count fixed; weak mode scales it with m.
    """
    if mode not in ("strong", "weak"):
        raise ConfigurationError(f"mode must be 'strong' or 'weak', got {mode!r}")
    points: list[ScalingPoint] = []
    for m in gpu_counts:
        total = n if mode == "strong" else n * m
        seconds = run(total, m)
        points.append(ScalingPoint(num_gpus=m, seconds=seconds, num_ops=total))
    tau_1 = points[0].seconds if points and points[0].num_gpus == 1 else None
    if tau_1 is None:
        raise ConfigurationError("gpu_counts must start at 1 for efficiencies")
    effs = []
    for p in points:
        if mode == "strong":
            effs.append(strong_efficiency(tau_1, p.seconds, p.num_gpus))
        else:
            effs.append(weak_efficiency(tau_1, p.seconds))
    return points, effs
