"""Performance model: converts measured simulator work into seconds.

Calibration constants and their provenance live in
:mod:`repro.perfmodel.calibration`; hardware descriptions in
:mod:`repro.perfmodel.specs`.
"""

from . import calibration
from .cascade import CascadeTiming, time_cascade
from .cpu import cpu_kernel_seconds
from .hashperf import best_group_size, predicted_op_seconds, predicted_rate
from .memmodel import (
    cas_degradation,
    divergence_adjusted_transactions,
    kernel_seconds,
    multisplit_seconds,
    projected_seconds,
    throughput,
)
from .scaling import (
    ScalingPoint,
    scaling_series,
    speedup,
    strong_efficiency,
    weak_efficiency,
)
from .specs import GTX470, P100, V100, CpuSpec, XEON_E5_2680V4_NODE

__all__ = [
    "calibration",
    "P100",
    "GTX470",
    "V100",
    "CpuSpec",
    "XEON_E5_2680V4_NODE",
    "kernel_seconds",
    "multisplit_seconds",
    "projected_seconds",
    "cas_degradation",
    "divergence_adjusted_transactions",
    "throughput",
    "CascadeTiming",
    "time_cascade",
    "cpu_kernel_seconds",
    "predicted_op_seconds",
    "predicted_rate",
    "best_group_size",
    "strong_efficiency",
    "weak_efficiency",
    "speedup",
    "ScalingPoint",
    "scaling_series",
]
