"""Closed-form throughput model and the group-size heuristic (ablation A1).

§VI suggests as future work "a heuristic which dynamically scales the
group size |g| with the current load factor".  With the geometric
window-probing expectation and the same three bounds as
:mod:`repro.perfmodel.memmodel`, the optimum is computable in closed
form; :func:`best_group_size` is that heuristic, and the A1 bench checks
it against measured sweeps.
"""

from __future__ import annotations

import numpy as np

from ..constants import SECTOR_BYTES, VALID_GROUP_SIZES, WARP_SIZE
from ..core.stats import expected_insert_windows, expected_query_windows
from ..errors import ConfigurationError
from ..simt.device import GPUSpec
from ..simt.counters import sectors_for_access
from . import calibration as cal
from .memmodel import cas_degradation

__all__ = ["predicted_op_seconds", "predicted_rate", "best_group_size"]


def _expected_max_geometric(mean_windows: float, samples: int) -> float:
    """E[max of `samples` draws] for a geometric-ish window distribution.

    For a geometric with mean μ = 1/p, E[max of k] ≈ μ · H_k where H_k is
    the harmonic number — the standard order-statistics approximation the
    divergence bound needs without access to a measured distribution.
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    harmonic = float(np.sum(1.0 / np.arange(1, samples + 1)))
    # interpolate: a point mass (μ = 1) has no divergence penalty
    return 1.0 + (mean_windows - 1.0) * harmonic if mean_windows > 1 else mean_windows


def predicted_op_seconds(
    load_factor: float,
    group_size: int,
    spec: GPUSpec,
    *,
    op: str = "insert",
    table_bytes: int | None = None,
    record_bytes: int = 8,
) -> float:
    """Analytic per-op seconds for WarpDrive at a given load and |g|.

    ``record_bytes`` is the modelled slot width — ``PAIR_BYTES`` for the
    packed layouts, :func:`repro.core.store.slot_record_bytes` for
    ``compact`` tables, whose narrower records can cover a probe window
    with fewer 32-byte sectors.
    """
    if group_size not in VALID_GROUP_SIZES:
        raise ConfigurationError(f"invalid group size {group_size}")
    if op not in ("insert", "query"):
        raise ConfigurationError(f"op must be 'insert' or 'query', got {op!r}")
    if not 1 <= record_bytes <= 8:
        raise ConfigurationError(
            f"record_bytes must be in [1, 8], got {record_bytes}"
        )

    if op == "insert":
        windows = expected_insert_windows(load_factor, group_size)
    else:
        windows = expected_query_windows(load_factor, group_size)

    sectors_per_window = sectors_for_access(0, group_size * record_bytes)
    bw_time = (
        windows
        * sectors_per_window
        * SECTOR_BYTES
        / (spec.mem_bandwidth * spec.random_access_efficiency)
    )

    groups_per_warp = WARP_SIZE // group_size
    warp_iters = _expected_max_geometric(windows, groups_per_warp)
    issue_time = warp_iters / cal.TRANSACTION_ISSUE_RATE

    atomic_time = 0.0
    if op == "insert":
        # ~1 successful CAS per op plus a small contention retry margin
        atomic_time = 1.05 / (spec.atomic_cas_rate * cas_degradation(table_bytes))

    return max(bw_time, issue_time) + atomic_time + cal.PER_OP_OVERHEAD_SECONDS


def predicted_rate(
    load_factor: float,
    group_size: int,
    spec: GPUSpec,
    *,
    op: str = "insert",
    table_bytes: int | None = None,
    record_bytes: int = 8,
) -> float:
    """Analytic ops/second (reciprocal of :func:`predicted_op_seconds`)."""
    return 1.0 / predicted_op_seconds(
        load_factor,
        group_size,
        spec,
        op=op,
        table_bytes=table_bytes,
        record_bytes=record_bytes,
    )


def best_group_size(
    load_factor: float,
    spec: GPUSpec,
    *,
    op: str = "insert",
    table_bytes: int | None = None,
    record_bytes: int = 8,
) -> int:
    """The §VI heuristic: argmax of the analytic rate over legal |g|."""
    rates = {
        g: predicted_rate(
            load_factor,
            g,
            spec,
            op=op,
            table_bytes=table_bytes,
            record_bytes=record_bytes,
        )
        for g in VALID_GROUP_SIZES
    }
    return max(rates, key=rates.get)
