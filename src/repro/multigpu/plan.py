"""Cascade plan compiler — preplanned per-batch buffers for the cascades.

The distributed cascades (§IV-B) run the same split → transpose →
kernel → reverse pass for every batch, and for a streamed workload the
batch geometry repeats wave after wave: same ``n``, same ``m``, same
chunk bounds, same per-chunk buffer sizes.  The gossip/warpdrive.cuh
exemplars handle this with *transfer plans* compiled once and executed
many times; this module is the host-side analogue.  A
:class:`CascadePlan` captures everything about one batch shape that does
not depend on the key values:

* the ``m`` contiguous chunk slices of the unstructured distribution,
* the zero ``uint32`` value planes key-only cascades (query/erase) pack
  against,
* the ``int64`` inverse-permutation scratch of the fused reverse path
  (``perm``) and the per-source ``reverse_gather`` fill targets that
  :func:`~repro.multigpu.alltoall.transpose_exchange_fast` writes in
  place via its ``gather_out=`` hook.

:class:`PlanCache` memoizes plans per ``(op, n)`` with a small LRU, so
:class:`~repro.multigpu.distributed_table.DistributedHashTable` (and
therefore :class:`~repro.pipeline.AsyncCascadeDriver`, which streams
batches through it) allocates a batch's routing buffers once and reuses
them across waves instead of re-deriving them every phase.  Plans hold
no key-dependent state — reuse is safe as long as cascades on one table
do not interleave, which the table's sequential API already guarantees.
The buffers alias the live cascade's routing, so a plan's arrays are
only valid until the next cascade of the same shape.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = ["CascadePlan", "PlanCache", "chunk_slices"]


def chunk_slices(n: int, num_gpus: int) -> list[slice]:
    """The unstructured distribution: ``m`` equal contiguous chunks."""
    bounds = np.linspace(0, n, num_gpus + 1).astype(np.int64)
    return [
        slice(int(bounds[i]), int(bounds[i + 1])) for i in range(num_gpus)
    ]


@dataclass
class CascadePlan:
    """One batch shape's preplanned pass (key-independent state only).

    ``zeros``/``perm``/``gather_out`` are ``None`` for insert plans —
    insertion packs real values and has no reverse leg.  The ``zeros``
    planes are read-only by contract (``pack_pairs`` never mutates its
    inputs); ``perm`` and ``gather_out`` are scratch the reverse path
    overwrites completely on every use.
    """

    op: str
    n: int
    num_gpus: int
    #: node count of the owning topology — part of the plan's shape so a
    #: cached plan never survives a switch between flat and clustered
    #: tables of equal GPU count
    num_nodes: int = 1
    #: the m contiguous input chunks
    chunks: list[slice] = field(default_factory=list)
    #: per-chunk zero value planes (uint32) for key-only packing
    zeros: list[np.ndarray] | None = None
    #: inverse-permutation scratch of the fused reverse path (int64, n)
    perm: np.ndarray | None = None
    #: per-source reverse_gather fill targets (int64, chunk-sized)
    gather_out: list[np.ndarray] | None = None

    @property
    def reversible(self) -> bool:
        return self.perm is not None

    @classmethod
    def compile(
        cls, op: str, n: int, num_gpus: int, num_nodes: int = 1
    ) -> "CascadePlan":
        """Build the plan for one ``(op, n)`` batch shape."""
        if op not in ("insert", "query", "erase"):
            raise ConfigurationError(f"unknown cascade op {op!r}")
        if n < 0:
            raise ConfigurationError(f"batch size must be >= 0, got {n}")
        if num_gpus < 1:
            raise ConfigurationError(
                f"num_gpus must be >= 1, got {num_gpus}"
            )
        if num_nodes < 1:
            raise ConfigurationError(
                f"num_nodes must be >= 1, got {num_nodes}"
            )
        chunks = chunk_slices(n, num_gpus)
        plan = cls(
            op=op, n=n, num_gpus=num_gpus, num_nodes=num_nodes, chunks=chunks
        )
        if op != "insert":
            plan.zeros = [
                np.zeros(sl.stop - sl.start, dtype=np.uint32)
                for sl in chunks
            ]
            plan.perm = np.empty(n, dtype=np.int64)
            plan.gather_out = [
                np.empty(sl.stop - sl.start, dtype=np.int64)
                for sl in chunks
            ]
        return plan


class PlanCache:
    """A small LRU of :class:`CascadePlan`, keyed ``(op, n)``.

    Streamed workloads repeat a handful of batch shapes; eight plans
    cover every realistic stream while bounding the held scratch to a
    few batches' worth of ``int64``.
    """

    def __init__(self, maxsize: int = 8):
        if maxsize < 1:
            raise ConfigurationError(
                f"maxsize must be >= 1, got {maxsize}"
            )
        self.maxsize = int(maxsize)
        self._plans: OrderedDict[tuple[str, int], CascadePlan] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(
        self, op: str, n: int, num_gpus: int, num_nodes: int = 1
    ) -> CascadePlan:
        """The cached plan for ``(op, n)``, compiling on first use."""
        key = (op, int(n))
        plan = self._plans.get(key)
        if (
            plan is not None
            and plan.num_gpus == num_gpus
            and plan.num_nodes == num_nodes
        ):
            self.hits += 1
            self._plans.move_to_end(key)
            return plan
        self.misses += 1
        plan = CascadePlan.compile(op, int(n), num_gpus, num_nodes)
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)
        return plan

    def clear(self) -> None:
        self._plans.clear()
