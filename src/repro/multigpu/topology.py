"""Interconnect topology: single nodes (paper Fig. 6) and clusters.

The paper's testbed: four Tesla P100s joined by an "augmented fully
connected graph consisting of 4×4 bidirectional links with 20 GB/s
bandwidth each" — every GPU pair gets at least one NVLink edge, and two
parallel edges of the 2D-hypercube subnetwork carry a second link.  Each
*pair* of GPUs shares a PCIe switch to the host (2 switches × ~12 GB/s).

The topology is a :mod:`networkx` multigraph so communication plans can
reason about per-link bandwidth; helpers price a traffic matrix the way
the all-to-all transposition loads the network.

Beyond the paper, :class:`ClusterTopology` composes several
:class:`NodeTopology` instances over a NIC: intra-node traffic is priced
on the node's NVLink/PCIe graph, inter-node traffic on each node's
full-duplex NIC (egress bandwidth + one-time latency).  Both classes
satisfy the :class:`Topology` protocol, and the :func:`topology` factory
builds either from a spec string (``"p100"``, ``"dgx1v"``, ``"pcie:8"``,
``"cluster:2x4"``) or a :class:`TopologySpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Protocol, runtime_checkable

import networkx as nx
import numpy as np

from ..errors import ConfigurationError, TopologyError
from ..simt.device import Device, GPUSpec

__all__ = [
    "Topology",
    "NodeTopology",
    "ClusterTopology",
    "TopologySpec",
    "TrafficBreakdown",
    "topology",
    "p100_nvlink_node",
    "dgx1v_node",
    "pcie_only_node",
    "DEFAULT_NIC_BANDWIDTH",
    "DEFAULT_NIC_LATENCY",
]

_GB = 1e9

#: 100 Gbit/s EDR InfiniBand, the interconnect of the paper's Mogon II host.
DEFAULT_NIC_BANDWIDTH = 12.5 * _GB
#: One-way MPI-visible latency of an EDR fabric hop.
DEFAULT_NIC_LATENCY = 1.5e-6


@dataclass(frozen=True)
class TrafficBreakdown:
    """Per-level cost of one all-to-all exchange.

    ``intra_*`` charges stay on the node interconnect (NVLink/PCIe),
    ``inter_*`` cross the NIC.  The two levels proceed concurrently, so
    the exchange completes with the slower one (:attr:`seconds`).  On a
    flat :class:`NodeTopology` the inter level is identically zero.
    """

    intra_bytes: int
    inter_bytes: int
    intra_seconds: float
    inter_seconds: float

    @property
    def total_bytes(self) -> int:
        return self.intra_bytes + self.inter_bytes

    @property
    def seconds(self) -> float:
        return max(self.intra_seconds, self.inter_seconds)


@runtime_checkable
class Topology(Protocol):
    """What the cascade layers need from an interconnect model.

    Implemented by :class:`NodeTopology` (one level: GPUs over
    NVLink/PCIe) and :class:`ClusterTopology` (two levels: nodes over a
    NIC).  ``device_id``s are globally unique and dense, so a traffic
    matrix is always ``num_devices × num_devices`` regardless of depth.
    """

    @property
    def devices(self) -> list[Device]: ...

    @property
    def num_devices(self) -> int: ...

    @property
    def num_nodes(self) -> int: ...

    def link_bandwidth(self, a: int, b: int) -> float: ...

    def route(self, a: int, b: int) -> list[int]: ...

    def traffic_cost(self, traffic: np.ndarray) -> float: ...

    def alltoall_time(self, traffic: np.ndarray) -> float: ...

    def traffic_breakdown(self, traffic: np.ndarray) -> TrafficBreakdown: ...

    def host_transfer_time(self, bytes_per_gpu: np.ndarray) -> float: ...

    def reset_counters(self) -> None: ...


@dataclass
class NodeTopology:
    """Devices plus their NVLink graph and PCIe switch assignment.

    Attributes
    ----------
    devices:
        The simulated GPUs, ids ``0..m-1``.
    nvlink:
        Undirected multigraph; each edge carries ``bandwidth`` bytes/s
        (per direction — NVLink edges are bidirectional).
    pcie_switch_of:
        GPU id → switch id; host traffic of GPUs on the same switch
        shares that switch's bandwidth.
    pcie_switch_bandwidth:
        Bytes/s per switch and direction.
    """

    devices: list[Device]
    nvlink: nx.MultiGraph
    pcie_switch_of: dict[int, int]
    pcie_switch_bandwidth: float

    def __post_init__(self):
        ids = [d.device_id for d in self.devices]
        if ids != list(range(len(ids))):
            raise ConfigurationError("device ids must be 0..m-1 in order")
        for gpu in ids:
            if gpu not in self.pcie_switch_of:
                raise ConfigurationError(f"GPU {gpu} has no PCIe switch assignment")

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_nodes(self) -> int:
        return 1

    @property
    def num_switches(self) -> int:
        return len(set(self.pcie_switch_of.values()))

    def node_of(self, gpu: int) -> int:
        if not 0 <= gpu < self.num_devices:
            raise TopologyError(f"GPU {gpu} out of range [0, {self.num_devices})")
        return 0

    def node_spans(self) -> list[tuple[int, int]]:
        """Half-open global-id range of each node's GPUs."""
        return [(0, self.num_devices)]

    def link_bandwidth(self, a: int, b: int) -> float:
        """Aggregate NVLink bytes/s between GPUs ``a`` and ``b``.

        Parallel edges aggregate — the augmented pairs of Fig. 6 get
        2 × 20 GB/s.
        """
        if a == b:
            raise TopologyError("no link from a GPU to itself")
        if not self.nvlink.has_edge(a, b):
            raise TopologyError(f"no NVLink edge between GPU {a} and GPU {b}")
        return sum(
            attrs["bandwidth"] for attrs in self.nvlink.get_edge_data(a, b).values()
        )

    def bisection_bandwidth(self) -> float:
        """Minimum aggregate bandwidth over all balanced bipartitions."""
        m = self.num_devices
        if m < 2:
            return 0.0
        best = float("inf")
        nodes = list(range(m))
        # enumerate balanced splits (m <= 8 in practice, so this is cheap)
        from itertools import combinations

        for left in combinations(nodes, m // 2):
            left_set = set(left)
            cut = 0.0
            for a, b, attrs in self.nvlink.edges(data=True):
                if (a in left_set) != (b in left_set):
                    cut += attrs["bandwidth"]
            best = min(best, cut)
        return best

    def total_nvlink_bandwidth(self) -> float:
        """Sum of all NVLink edge bandwidths (one direction)."""
        return sum(attrs["bandwidth"] for _, _, attrs in self.nvlink.edges(data=True))

    def route(self, a: int, b: int) -> list[int]:
        """GPU sequence a → b: the direct edge when present, otherwise a
        fewest-hops path preferring fat links (DGX-style hybrid meshes
        are not fully connected)."""
        if a == b:
            raise TopologyError("no route from a GPU to itself")
        if self.nvlink.has_edge(a, b):
            return [a, b]
        # fewest hops; among those, maximize the bottleneck bandwidth
        try:
            paths = list(nx.all_shortest_paths(self.nvlink, a, b))
        except nx.NetworkXNoPath:
            raise TopologyError(f"no NVLink route between GPU {a} and GPU {b}")
        return max(
            paths,
            key=lambda p: min(
                self.link_bandwidth(x, y) for x, y in zip(p, p[1:])
            ),
        )

    def alltoall_time(self, traffic: np.ndarray) -> float:
        """Seconds to deliver a bytes matrix ``traffic[src, dst]`` P2P.

        Each message follows :meth:`route` (one hop on the paper's fully
        connected 4-GPU mesh; up to two on a DGX-style hybrid cube) and
        all transfers proceed concurrently; links are full duplex, so a
        link direction's finishing time is its accumulated bytes over its
        bandwidth.  The all-to-all completes when the busiest link does —
        exactly how the paper's transposition step is bound by "the
        overall bandwidth of the utilized interconnection network".
        """
        m = self.num_devices
        traffic = np.asarray(traffic, dtype=np.float64)
        if traffic.shape != (m, m):
            raise TopologyError(
                f"traffic matrix must be {m}x{m}, got {traffic.shape}"
            )
        # accumulate directed bytes per edge along each message's route
        load: dict[tuple[int, int], float] = {}
        for a in range(m):
            for b in range(m):
                if a == b or traffic[a, b] == 0:
                    continue
                path = self.route(a, b)
                for x, y in zip(path, path[1:]):
                    load[(x, y)] = load.get((x, y), 0.0) + traffic[a, b]
        worst = 0.0
        for (x, y), nbytes in load.items():
            worst = max(worst, nbytes / self.link_bandwidth(x, y))
        return worst

    def traffic_cost(self, traffic: np.ndarray) -> float:
        """Protocol alias for :meth:`alltoall_time`."""
        return self.alltoall_time(traffic)

    def traffic_breakdown(self, traffic: np.ndarray) -> TrafficBreakdown:
        """Single-level breakdown: everything is intra-node, NIC is idle."""
        t = np.asarray(traffic, dtype=np.float64)
        intra = float(t.sum() - np.trace(t))
        return TrafficBreakdown(
            intra_bytes=int(intra),
            inter_bytes=0,
            intra_seconds=self.alltoall_time(traffic),
            inter_seconds=0.0,
        )

    def host_transfer_time(self, bytes_per_gpu: np.ndarray) -> float:
        """Seconds to move per-GPU byte amounts over the PCIe switches.

        GPUs sharing a switch contend; switches work concurrently, so the
        node-level transfer finishes with the busiest switch.
        """
        loads: dict[int, float] = {}
        for gpu, nbytes in enumerate(np.asarray(bytes_per_gpu, dtype=np.float64)):
            sw = self.pcie_switch_of[gpu]
            loads[sw] = loads.get(sw, 0.0) + float(nbytes)
        if not loads:
            return 0.0
        return max(load / self.pcie_switch_bandwidth for load in loads.values())

    def reset_counters(self) -> None:
        for dev in self.devices:
            dev.reset_counters()


@dataclass
class ClusterTopology:
    """Two-level hierarchy: :class:`NodeTopology` instances over a NIC.

    Member nodes keep their own NVLink/PCIe graphs; this class renumbers
    their :class:`Device` ids to a dense global range (node-major, node 0
    first) so the flat cascade machinery — traffic matrices, shard
    assignment, counters — works unchanged.  Node 0's ids are untouched,
    which is what makes a one-node cluster bit-identical to the bare
    :class:`NodeTopology`.

    Inter-node traffic is charged to each node's full-duplex NIC: the
    level finishes when the busiest endpoint (max of any node's egress
    or ingress bytes over :attr:`nic_bandwidth`) does, plus one
    :attr:`nic_latency` if any bytes crossed at all.  Intra- and
    inter-node levels overlap, so :meth:`alltoall_time` is their max.
    """

    nodes: list[NodeTopology]
    nic_bandwidth: float = DEFAULT_NIC_BANDWIDTH
    nic_latency: float = DEFAULT_NIC_LATENCY
    _bases: list[int] = field(init=False, repr=False, compare=False)
    _node_of: list[int] = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if not self.nodes:
            raise ConfigurationError("a cluster needs at least one node")
        if len({id(n) for n in self.nodes}) != len(self.nodes):
            raise ConfigurationError(
                "cluster nodes must be distinct NodeTopology instances"
            )
        if self.nic_bandwidth <= 0:
            raise ConfigurationError("nic_bandwidth must be positive")
        if self.nic_latency < 0:
            raise ConfigurationError("nic_latency must be non-negative")
        seen_devices: set[int] = set()
        bases: list[int] = []
        node_of: list[int] = []
        base = 0
        for index, node in enumerate(self.nodes):
            bases.append(base)
            for local, dev in enumerate(node.devices):
                if id(dev) in seen_devices:
                    raise ConfigurationError(
                        "cluster nodes must not share Device objects"
                    )
                seen_devices.add(id(dev))
                dev.device_id = base + local
                node_of.append(index)
            base += node.num_devices
        self._bases = bases
        self._node_of = node_of

    @property
    def devices(self) -> list[Device]:
        return [dev for node in self.nodes for dev in node.devices]

    @property
    def num_devices(self) -> int:
        return sum(node.num_devices for node in self.nodes)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_switches(self) -> int:
        return sum(node.num_switches for node in self.nodes)

    def node_of(self, gpu: int) -> int:
        if not 0 <= gpu < self.num_devices:
            raise TopologyError(f"GPU {gpu} out of range [0, {self.num_devices})")
        return self._node_of[gpu]

    def local_id(self, gpu: int) -> int:
        return gpu - self._bases[self.node_of(gpu)]

    def node_spans(self) -> list[tuple[int, int]]:
        """Half-open global-id range of each node's GPUs (node-major)."""
        return [
            (base, base + node.num_devices)
            for base, node in zip(self._bases, self.nodes)
        ]

    def link_bandwidth(self, a: int, b: int) -> float:
        """Node-local pairs see their NVLink; cross-node pairs the NIC."""
        if a == b:
            raise TopologyError("no link from a GPU to itself")
        na, nb = self.node_of(a), self.node_of(b)
        if na == nb:
            return self.nodes[na].link_bandwidth(self.local_id(a), self.local_id(b))
        return self.nic_bandwidth

    def route(self, a: int, b: int) -> list[int]:
        """Node-local routes delegate to the node; cross-node is one NIC hop."""
        if a == b:
            raise TopologyError("no route from a GPU to itself")
        na, nb = self.node_of(a), self.node_of(b)
        if na == nb:
            base = self._bases[na]
            return [
                base + hop
                for hop in self.nodes[na].route(self.local_id(a), self.local_id(b))
            ]
        return [a, b]

    def _check_traffic(self, traffic: np.ndarray) -> np.ndarray:
        m = self.num_devices
        t = np.asarray(traffic, dtype=np.float64)
        if t.shape != (m, m):
            raise TopologyError(f"traffic matrix must be {m}x{m}, got {t.shape}")
        return t

    def traffic_breakdown(self, traffic: np.ndarray) -> TrafficBreakdown:
        """Charge each entry of ``traffic[src, dst]`` to its level.

        Intra-node blocks are priced by each member node's own
        :meth:`NodeTopology.alltoall_time` (nodes work concurrently, so
        the level finishes with the slowest node); everything off the
        block diagonal rides the NICs.
        """
        t = self._check_traffic(traffic)
        intra_bytes = 0.0
        intra_seconds = 0.0
        egress = np.zeros(self.num_nodes)
        ingress = np.zeros(self.num_nodes)
        for k, (node, (lo, hi)) in enumerate(zip(self.nodes, self.node_spans())):
            block = t[lo:hi, lo:hi]
            intra_bytes += float(block.sum() - np.trace(block))
            intra_seconds = max(intra_seconds, node.alltoall_time(block))
            egress[k] = float(t[lo:hi, :].sum() - block.sum())
            ingress[k] = float(t[:, lo:hi].sum() - block.sum())
        inter_bytes = float(egress.sum())
        if inter_bytes > 0:
            inter_seconds = self.nic_latency + max(
                float(egress.max()), float(ingress.max())
            ) / self.nic_bandwidth
        else:
            inter_seconds = 0.0
        return TrafficBreakdown(
            intra_bytes=int(round(intra_bytes)),
            inter_bytes=int(round(inter_bytes)),
            intra_seconds=intra_seconds,
            inter_seconds=inter_seconds,
        )

    def node_traffic_matrix(self, traffic: np.ndarray) -> np.ndarray:
        """Collapse a GPU traffic matrix to node granularity (bytes).

        The diagonal is zero — node-local bytes are charged on the node's
        own interconnect, not the NIC.
        """
        t = self._check_traffic(traffic)
        spans = self.node_spans()
        out = np.zeros((self.num_nodes, self.num_nodes))
        for j, (jlo, jhi) in enumerate(spans):
            for k, (klo, khi) in enumerate(spans):
                if j != k:
                    out[j, k] = float(t[jlo:jhi, klo:khi].sum())
        return out

    def alltoall_time(self, traffic: np.ndarray) -> float:
        """Seconds to deliver ``traffic`` with both levels overlapped."""
        return self.traffic_breakdown(traffic).seconds

    def traffic_cost(self, traffic: np.ndarray) -> float:
        """Protocol alias for :meth:`alltoall_time`."""
        return self.alltoall_time(traffic)

    def host_transfer_time(self, bytes_per_gpu: np.ndarray) -> float:
        """Each node's PCIe switches drain its own GPUs, concurrently."""
        per_gpu = np.asarray(bytes_per_gpu, dtype=np.float64)
        if per_gpu.shape != (self.num_devices,):
            raise TopologyError(
                f"expected {self.num_devices} per-GPU byte counts, got {per_gpu.shape}"
            )
        return max(
            node.host_transfer_time(per_gpu[lo:hi])
            for node, (lo, hi) in zip(self.nodes, self.node_spans())
        )

    def reset_counters(self) -> None:
        for node in self.nodes:
            node.reset_counters()


def p100_nvlink_node(
    num_gpus: int = 4,
    *,
    nvlink_bandwidth: float = 20.0 * _GB,
    pcie_switch_bandwidth: float = 11.0 * _GB,
    spec: GPUSpec | None = None,
) -> NodeTopology:
    """The paper's Mogon II node: 4×P100, augmented all-to-all NVLink.

    The two augmented (double-link) pairs are (0, 1) and (2, 3) — the
    parallel edges of the 2D hypercube, which are also the PCIe-switch
    pairs.  With the defaults the accumulated host bandwidth is ~22 GB/s,
    matching the "≈ 22 GB/s in experiments" note of §V-A.
    """
    if not 1 <= num_gpus <= 8:
        raise ConfigurationError(f"num_gpus must be in [1, 8], got {num_gpus}")
    if spec is None:
        from ..perfmodel.specs import P100

        spec = P100
    devices = [Device(i, spec) for i in range(num_gpus)]
    graph = nx.MultiGraph()
    graph.add_nodes_from(range(num_gpus))
    for a in range(num_gpus):
        for b in range(a + 1, num_gpus):
            graph.add_edge(a, b, bandwidth=nvlink_bandwidth)
    # augmented parallel edges of the hypercube subnetwork
    for a, b in ((0, 1), (2, 3)):
        if b < num_gpus:
            graph.add_edge(a, b, bandwidth=nvlink_bandwidth)
    switch_of = {gpu: gpu // 2 for gpu in range(num_gpus)}
    return NodeTopology(
        devices=devices,
        nvlink=graph,
        pcie_switch_of=switch_of,
        pcie_switch_bandwidth=pcie_switch_bandwidth,
    )


def dgx1v_node(
    *,
    nvlink_bandwidth: float = 25.0 * _GB,
    pcie_switch_bandwidth: float = 12.0 * _GB,
    spec: GPUSpec | None = None,
) -> NodeTopology:
    """An NVIDIA DGX-1V: 8 GPUs on the hybrid cube-mesh (beyond the paper).

    Each V100 exposes six NVLink2 ports (~25 GB/s each).  The mesh is
    *not* fully connected — e.g. GPU 0 has no direct edge to GPU 5 — so
    all-to-all traffic between "diagonal" pairs takes two hops, which is
    exactly the effect the extension bench measures when scaling the
    paper's design past its 4-GPU testbed.
    """
    if spec is None:
        from ..perfmodel.specs import V100

        spec = V100
    devices = [Device(i, spec) for i in range(8)]
    graph = nx.MultiGraph()
    graph.add_nodes_from(range(8))
    edges = [
        # quad 0-3 (double links marked x2)
        (0, 1, 1), (0, 2, 1), (0, 3, 2),
        (1, 2, 2), (1, 3, 1),
        (2, 3, 1),
        # quad 4-7
        (4, 5, 1), (4, 6, 1), (4, 7, 2),
        (5, 6, 2), (5, 7, 1),
        (6, 7, 1),
        # cross links between the quads
        (0, 4, 2), (1, 5, 2), (2, 6, 2), (3, 7, 2),
    ]
    for a, b, count in edges:
        for _ in range(count):
            graph.add_edge(a, b, bandwidth=nvlink_bandwidth)
    # four PCIe switches, one per GPU pair
    switch_of = {gpu: gpu // 2 for gpu in range(8)}
    return NodeTopology(
        devices=devices,
        nvlink=graph,
        pcie_switch_of=switch_of,
        pcie_switch_bandwidth=pcie_switch_bandwidth,
    )


def pcie_only_node(
    num_gpus: int = 4,
    *,
    pcie_p2p_bandwidth: float = 10.0 * _GB,
    pcie_switch_bandwidth: float = 11.0 * _GB,
    spec: GPUSpec | None = None,
) -> NodeTopology:
    """A node without NVLink: P2P rides PCIe (ablation comparator)."""
    if not 1 <= num_gpus <= 8:
        raise ConfigurationError(f"num_gpus must be in [1, 8], got {num_gpus}")
    if spec is None:
        from ..perfmodel.specs import P100

        spec = P100
    devices = [Device(i, spec) for i in range(num_gpus)]
    graph = nx.MultiGraph()
    graph.add_nodes_from(range(num_gpus))
    for a in range(num_gpus):
        for b in range(a + 1, num_gpus):
            graph.add_edge(a, b, bandwidth=pcie_p2p_bandwidth)
    switch_of = {gpu: gpu // 2 for gpu in range(num_gpus)}
    return NodeTopology(
        devices=devices,
        nvlink=graph,
        pcie_switch_of=switch_of,
        pcie_switch_bandwidth=pcie_switch_bandwidth,
    )


_NODE_PRESETS = {
    "p100": p100_nvlink_node,
    "pcie": pcie_only_node,
    "dgx1v": dgx1v_node,
}

_SPEC_GRAMMAR = (
    'a Topology, a TopologySpec, or a spec string: "p100"[:gpus], '
    '"pcie"[:gpus], "dgx1v", or "cluster:<nodes>x<gpus>" '
    '(e.g. topology="cluster:2x4"; see docs/topology.md)'
)


@dataclass(frozen=True)
class TopologySpec:
    """Declarative topology description for the :func:`topology` factory.

    ``preset`` names the per-node link graph (``"p100"``, ``"pcie"``,
    ``"dgx1v"``); ``num_nodes > 1`` (or ``force_cluster=True``) wraps the
    nodes in a :class:`ClusterTopology` with the given NIC parameters.
    """

    preset: str = "p100"
    gpus_per_node: int | None = None
    num_nodes: int = 1
    nic_bandwidth: float = DEFAULT_NIC_BANDWIDTH
    nic_latency: float = DEFAULT_NIC_LATENCY
    force_cluster: bool = False

    def _build_node(self) -> NodeTopology:
        try:
            factory = _NODE_PRESETS[self.preset]
        except KeyError:
            raise ConfigurationError(
                f"unknown topology preset '{self.preset}'; "
                f"expected one of {sorted(_NODE_PRESETS)}"
            ) from None
        if self.preset == "dgx1v":
            if self.gpus_per_node not in (None, 8):
                raise ConfigurationError(
                    "the dgx1v preset is fixed at 8 GPUs per node"
                )
            return factory()
        if self.gpus_per_node is None:
            return factory()
        return factory(self.gpus_per_node)

    def build(self) -> NodeTopology | ClusterTopology:
        if self.num_nodes < 1:
            raise ConfigurationError(
                f"num_nodes must be >= 1, got {self.num_nodes}"
            )
        if self.num_nodes == 1 and not self.force_cluster:
            return self._build_node()
        return ClusterTopology(
            nodes=[self._build_node() for _ in range(self.num_nodes)],
            nic_bandwidth=self.nic_bandwidth,
            nic_latency=self.nic_latency,
        )


def _parse_spec(text: str) -> TopologySpec:
    s = text.strip().lower()
    if not s:
        raise ConfigurationError(f"empty topology spec; expected {_SPEC_GRAMMAR}")
    if s.startswith("cluster:"):
        body = s[len("cluster:"):]
        num_nodes, sep, gpus = body.partition("x")
        if not sep or not num_nodes.isdigit() or not gpus.isdigit():
            raise ConfigurationError(
                f"bad cluster spec '{text}'; expected \"cluster:<nodes>x<gpus>\""
            )
        return TopologySpec(
            preset="p100",
            gpus_per_node=int(gpus),
            num_nodes=int(num_nodes),
            force_cluster=True,
        )
    preset, sep, count = s.partition(":")
    gpus_per_node = None
    if sep:
        if not count.isdigit():
            raise ConfigurationError(
                f"bad topology spec '{text}'; expected {_SPEC_GRAMMAR}"
            )
        gpus_per_node = int(count)
    if preset not in _NODE_PRESETS:
        raise ConfigurationError(
            f"unknown topology spec '{text}'; expected {_SPEC_GRAMMAR}"
        )
    return TopologySpec(preset=preset, gpus_per_node=gpus_per_node)


def topology(
    spec: "str | TopologySpec | Topology | None" = None, **overrides
) -> "Topology":
    """Build (or pass through) a topology from a spec.

    ``spec`` may be an existing :class:`Topology` (returned unchanged —
    overrides are rejected), a :class:`TopologySpec` (overrides are
    merged with :func:`dataclasses.replace`), a spec string, or ``None``
    for the paper's default 4×P100 node.
    """
    if spec is None:
        spec = TopologySpec()
    if isinstance(spec, (NodeTopology, ClusterTopology)):
        if overrides:
            raise ConfigurationError(
                "cannot apply spec overrides to an already-built topology; "
                "pass a spec string or TopologySpec instead"
            )
        return spec
    if isinstance(spec, str):
        spec = _parse_spec(spec)
    if isinstance(spec, TopologySpec):
        if overrides:
            try:
                spec = replace(spec, **overrides)
            except TypeError as exc:
                raise ConfigurationError(f"bad topology override: {exc}") from None
        return spec.build()
    if isinstance(spec, Topology):
        if overrides:
            raise ConfigurationError(
                "cannot apply spec overrides to an already-built topology"
            )
        return spec
    raise ConfigurationError(
        f"cannot build a topology from {type(spec).__name__}; "
        f"expected {_SPEC_GRAMMAR}"
    )
