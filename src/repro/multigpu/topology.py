"""Single-node multi-GPU interconnect topology (paper Fig. 6).

The paper's testbed: four Tesla P100s joined by an "augmented fully
connected graph consisting of 4×4 bidirectional links with 20 GB/s
bandwidth each" — every GPU pair gets at least one NVLink edge, and two
parallel edges of the 2D-hypercube subnetwork carry a second link.  Each
*pair* of GPUs shares a PCIe switch to the host (2 switches × ~12 GB/s).

The topology is a :mod:`networkx` multigraph so communication plans can
reason about per-link bandwidth; helpers price a traffic matrix the way
the all-to-all transposition loads the network.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..errors import ConfigurationError, TopologyError
from ..simt.device import Device, GPUSpec

__all__ = ["NodeTopology", "p100_nvlink_node", "pcie_only_node"]

_GB = 1e9


@dataclass
class NodeTopology:
    """Devices plus their NVLink graph and PCIe switch assignment.

    Attributes
    ----------
    devices:
        The simulated GPUs, ids ``0..m-1``.
    nvlink:
        Undirected multigraph; each edge carries ``bandwidth`` bytes/s
        (per direction — NVLink edges are bidirectional).
    pcie_switch_of:
        GPU id → switch id; host traffic of GPUs on the same switch
        shares that switch's bandwidth.
    pcie_switch_bandwidth:
        Bytes/s per switch and direction.
    """

    devices: list[Device]
    nvlink: nx.MultiGraph
    pcie_switch_of: dict[int, int]
    pcie_switch_bandwidth: float

    def __post_init__(self):
        ids = [d.device_id for d in self.devices]
        if ids != list(range(len(ids))):
            raise ConfigurationError("device ids must be 0..m-1 in order")
        for gpu in ids:
            if gpu not in self.pcie_switch_of:
                raise ConfigurationError(f"GPU {gpu} has no PCIe switch assignment")

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_switches(self) -> int:
        return len(set(self.pcie_switch_of.values()))

    def link_bandwidth(self, a: int, b: int) -> float:
        """Aggregate NVLink bytes/s between GPUs ``a`` and ``b``.

        Parallel edges aggregate — the augmented pairs of Fig. 6 get
        2 × 20 GB/s.
        """
        if a == b:
            raise TopologyError("no link from a GPU to itself")
        if not self.nvlink.has_edge(a, b):
            raise TopologyError(f"no NVLink edge between GPU {a} and GPU {b}")
        return sum(
            attrs["bandwidth"] for attrs in self.nvlink.get_edge_data(a, b).values()
        )

    def bisection_bandwidth(self) -> float:
        """Minimum aggregate bandwidth over all balanced bipartitions."""
        m = self.num_devices
        if m < 2:
            return 0.0
        best = float("inf")
        nodes = list(range(m))
        # enumerate balanced splits (m <= 8 in practice, so this is cheap)
        from itertools import combinations

        for left in combinations(nodes, m // 2):
            left_set = set(left)
            cut = 0.0
            for a, b, attrs in self.nvlink.edges(data=True):
                if (a in left_set) != (b in left_set):
                    cut += attrs["bandwidth"]
            best = min(best, cut)
        return best

    def total_nvlink_bandwidth(self) -> float:
        """Sum of all NVLink edge bandwidths (one direction)."""
        return sum(attrs["bandwidth"] for _, _, attrs in self.nvlink.edges(data=True))

    def route(self, a: int, b: int) -> list[int]:
        """GPU sequence a → b: the direct edge when present, otherwise a
        fewest-hops path preferring fat links (DGX-style hybrid meshes
        are not fully connected)."""
        if a == b:
            raise TopologyError("no route from a GPU to itself")
        if self.nvlink.has_edge(a, b):
            return [a, b]
        # fewest hops; among those, maximize the bottleneck bandwidth
        try:
            paths = list(nx.all_shortest_paths(self.nvlink, a, b))
        except nx.NetworkXNoPath:
            raise TopologyError(f"no NVLink route between GPU {a} and GPU {b}")
        return max(
            paths,
            key=lambda p: min(
                self.link_bandwidth(x, y) for x, y in zip(p, p[1:])
            ),
        )

    def alltoall_time(self, traffic: np.ndarray) -> float:
        """Seconds to deliver a bytes matrix ``traffic[src, dst]`` P2P.

        Each message follows :meth:`route` (one hop on the paper's fully
        connected 4-GPU mesh; up to two on a DGX-style hybrid cube) and
        all transfers proceed concurrently; links are full duplex, so a
        link direction's finishing time is its accumulated bytes over its
        bandwidth.  The all-to-all completes when the busiest link does —
        exactly how the paper's transposition step is bound by "the
        overall bandwidth of the utilized interconnection network".
        """
        m = self.num_devices
        traffic = np.asarray(traffic, dtype=np.float64)
        if traffic.shape != (m, m):
            raise TopologyError(
                f"traffic matrix must be {m}x{m}, got {traffic.shape}"
            )
        # accumulate directed bytes per edge along each message's route
        load: dict[tuple[int, int], float] = {}
        for a in range(m):
            for b in range(m):
                if a == b or traffic[a, b] == 0:
                    continue
                path = self.route(a, b)
                for x, y in zip(path, path[1:]):
                    load[(x, y)] = load.get((x, y), 0.0) + traffic[a, b]
        worst = 0.0
        for (x, y), nbytes in load.items():
            worst = max(worst, nbytes / self.link_bandwidth(x, y))
        return worst

    def host_transfer_time(self, bytes_per_gpu: np.ndarray) -> float:
        """Seconds to move per-GPU byte amounts over the PCIe switches.

        GPUs sharing a switch contend; switches work concurrently, so the
        node-level transfer finishes with the busiest switch.
        """
        loads: dict[int, float] = {}
        for gpu, nbytes in enumerate(np.asarray(bytes_per_gpu, dtype=np.float64)):
            sw = self.pcie_switch_of[gpu]
            loads[sw] = loads.get(sw, 0.0) + float(nbytes)
        if not loads:
            return 0.0
        return max(load / self.pcie_switch_bandwidth for load in loads.values())

    def reset_counters(self) -> None:
        for dev in self.devices:
            dev.reset_counters()


def p100_nvlink_node(
    num_gpus: int = 4,
    *,
    nvlink_bandwidth: float = 20.0 * _GB,
    pcie_switch_bandwidth: float = 11.0 * _GB,
    spec: GPUSpec | None = None,
) -> NodeTopology:
    """The paper's Mogon II node: 4×P100, augmented all-to-all NVLink.

    The two augmented (double-link) pairs are (0, 1) and (2, 3) — the
    parallel edges of the 2D hypercube, which are also the PCIe-switch
    pairs.  With the defaults the accumulated host bandwidth is ~22 GB/s,
    matching the "≈ 22 GB/s in experiments" note of §V-A.
    """
    if not 1 <= num_gpus <= 8:
        raise ConfigurationError(f"num_gpus must be in [1, 8], got {num_gpus}")
    if spec is None:
        from ..perfmodel.specs import P100

        spec = P100
    devices = [Device(i, spec) for i in range(num_gpus)]
    graph = nx.MultiGraph()
    graph.add_nodes_from(range(num_gpus))
    for a in range(num_gpus):
        for b in range(a + 1, num_gpus):
            graph.add_edge(a, b, bandwidth=nvlink_bandwidth)
    # augmented parallel edges of the hypercube subnetwork
    for a, b in ((0, 1), (2, 3)):
        if b < num_gpus:
            graph.add_edge(a, b, bandwidth=nvlink_bandwidth)
    switch_of = {gpu: gpu // 2 for gpu in range(num_gpus)}
    return NodeTopology(
        devices=devices,
        nvlink=graph,
        pcie_switch_of=switch_of,
        pcie_switch_bandwidth=pcie_switch_bandwidth,
    )


def dgx1v_node(
    *,
    nvlink_bandwidth: float = 25.0 * _GB,
    pcie_switch_bandwidth: float = 12.0 * _GB,
    spec: GPUSpec | None = None,
) -> NodeTopology:
    """An NVIDIA DGX-1V: 8 GPUs on the hybrid cube-mesh (beyond the paper).

    Each V100 exposes six NVLink2 ports (~25 GB/s each).  The mesh is
    *not* fully connected — e.g. GPU 0 has no direct edge to GPU 5 — so
    all-to-all traffic between "diagonal" pairs takes two hops, which is
    exactly the effect the extension bench measures when scaling the
    paper's design past its 4-GPU testbed.
    """
    if spec is None:
        from ..perfmodel.specs import V100

        spec = V100
    devices = [Device(i, spec) for i in range(8)]
    graph = nx.MultiGraph()
    graph.add_nodes_from(range(8))
    edges = [
        # quad 0-3 (double links marked x2)
        (0, 1, 1), (0, 2, 1), (0, 3, 2),
        (1, 2, 2), (1, 3, 1),
        (2, 3, 1),
        # quad 4-7
        (4, 5, 1), (4, 6, 1), (4, 7, 2),
        (5, 6, 2), (5, 7, 1),
        (6, 7, 1),
        # cross links between the quads
        (0, 4, 2), (1, 5, 2), (2, 6, 2), (3, 7, 2),
    ]
    for a, b, count in edges:
        for _ in range(count):
            graph.add_edge(a, b, bandwidth=nvlink_bandwidth)
    # four PCIe switches, one per GPU pair
    switch_of = {gpu: gpu // 2 for gpu in range(8)}
    return NodeTopology(
        devices=devices,
        nvlink=graph,
        pcie_switch_of=switch_of,
        pcie_switch_bandwidth=pcie_switch_bandwidth,
    )


def pcie_only_node(
    num_gpus: int = 4,
    *,
    pcie_p2p_bandwidth: float = 10.0 * _GB,
    pcie_switch_bandwidth: float = 11.0 * _GB,
    spec: GPUSpec | None = None,
) -> NodeTopology:
    """A node without NVLink: P2P rides PCIe (ablation comparator)."""
    if not 1 <= num_gpus <= 8:
        raise ConfigurationError(f"num_gpus must be in [1, 8], got {num_gpus}")
    if spec is None:
        from ..perfmodel.specs import P100

        spec = P100
    devices = [Device(i, spec) for i in range(num_gpus)]
    graph = nx.MultiGraph()
    graph.add_nodes_from(range(num_gpus))
    for a in range(num_gpus):
        for b in range(a + 1, num_gpus):
            graph.add_edge(a, b, bandwidth=pcie_p2p_bandwidth)
    switch_of = {gpu: gpu // 2 for gpu in range(num_gpus)}
    return NodeTopology(
        devices=devices,
        nvlink=graph,
        pcie_switch_of=switch_of,
        pcie_switch_bandwidth=pcie_switch_bandwidth,
    )
