"""Single-GPU multisplit (paper §IV-B).

Separates a device-resident chunk of key-value pairs into ``m`` classes
by the partition hash ``p(k)``.  The paper deliberately uses a simple
scheme instead of Ashkiani's full GPU multisplit [22]: "our approach ...
consecutively computes m binary splits (one class versus the rest) of
keys in global memory ... using a warp-aggregated atomic counter" [23],
accepting a small slowdown because multisplit "only accounts for a minor
portion of the overall runtime".

The functional result here is exact (a stable partition-grouped
reordering); the work accounting mirrors the m-binary-split algorithm:
``m`` read sweeps over the chunk, one compacting write per element, and
one warp-aggregated atomic per coalesced group per class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..primitives.compact import compact_fast
from ..primitives.scatter import counting_scatter
from ..core.report import KernelReport
from ..errors import ConfigurationError
from ..hashing.partition import PartitionHash
from ..simt.counters import TransactionCounter

__all__ = [
    "MultisplitResult",
    "TwoLevelSplitResult",
    "multisplit",
    "multisplit_fast",
    "multisplit_two_level",
]


@dataclass
class MultisplitResult:
    """Partition-grouped pairs plus the bookkeeping the transpose needs."""

    #: pairs reordered so class 0 comes first, then class 1, ...
    pairs: np.ndarray
    #: original positions of each reordered element (for stability checks
    #: and for routing query results back)
    source_index: np.ndarray
    #: per-class element counts, shape (m,)
    counts: np.ndarray
    #: exclusive prefix of counts — class p occupies
    #: ``pairs[offsets[p] : offsets[p] + counts[p]]``
    offsets: np.ndarray
    #: work accounting
    report: KernelReport

    @property
    def num_parts(self) -> int:
        return int(self.counts.shape[0])

    def part(self, p: int) -> np.ndarray:
        """View of class ``p``'s pairs."""
        start = int(self.offsets[p])
        return self.pairs[start : start + int(self.counts[p])]

    def part_sources(self, p: int) -> np.ndarray:
        """Original indices of class ``p``'s pairs."""
        start = int(self.offsets[p])
        return self.source_index[start : start + int(self.counts[p])]


def multisplit(
    pairs: np.ndarray,
    partition: PartitionHash,
    *,
    counter: TransactionCounter | None = None,
    group_size: int = 32,
) -> MultisplitResult:
    """Split packed pairs into ``partition.num_parts`` classes.

    Executes the paper's algorithm for real: one warp-aggregated
    compaction pass per class ("one class versus the rest"), each pass
    re-reading the input in global memory.  The reorder is therefore
    *stable within each class* and the atomic counts are measured, not
    estimated.
    """
    arr = np.asarray(pairs, dtype=np.uint64)
    if arr.ndim != 1:
        raise ConfigurationError(f"pairs must be 1-D, got shape {arr.shape}")
    m = partition.num_parts
    n = arr.shape[0]

    keys = (arr >> np.uint64(32)).astype(np.uint32)
    parts = partition(keys)

    local = TransactionCounter()
    chunks: list[np.ndarray] = []
    sources: list[np.ndarray] = []
    counts = np.zeros(m, dtype=np.int64)
    for p in range(m):
        result = compact_fast(arr, parts == p, counter=local, group_size=group_size)
        chunks.append(result.values)
        sources.append(result.source_index)
        counts[p] = result.values.shape[0]
        local.kernel_launches += 1

    out = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.uint64)
    source = (
        np.concatenate(sources) if sources else np.empty(0, dtype=np.int64)
    )
    offsets = np.zeros(m, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])

    report = KernelReport(op="multisplit", num_ops=n, group_size=group_size)
    report.load_sectors = local.load_sectors
    report.store_sectors = local.store_sectors
    report.warp_collectives = local.warp_collectives
    report.probe_windows = np.full(n, m, dtype=np.int64)
    if counter is not None:
        counter.merge(local)
    return MultisplitResult(
        pairs=out,
        source_index=source,
        counts=counts,
        offsets=offsets,
        report=report,
    )


def multisplit_fast(
    pairs: np.ndarray,
    partition: PartitionHash,
    *,
    counter: TransactionCounter | None = None,
    group_size: int = 32,
) -> MultisplitResult:
    """Single-pass :func:`multisplit` — same results, same accounting.

    Replaces the ``m`` ``compact_fast`` sweeps with one counting-sort
    scatter (histogram → exclusive scan → stable scatter by class) while
    charging the identical m-binary-split closed form, so outputs,
    ``counts``/``offsets``/``source_index`` *and* counter totals are
    bit-identical to the reference — the relationship ``compact`` /
    ``compact_fast`` already establishes, one level up.  Equivalence is
    property-tested in ``tests/multigpu/test_fused_distribution.py``.
    """
    arr = np.asarray(pairs, dtype=np.uint64)
    if arr.ndim != 1:
        raise ConfigurationError(f"pairs must be 1-D, got shape {arr.shape}")
    m = partition.num_parts
    n = arr.shape[0]

    keys = (arr >> np.uint64(32)).astype(np.uint32)
    parts = partition(keys)

    local = TransactionCounter()
    scattered = counting_scatter(
        arr, parts, m, counter=local, group_size=group_size
    )
    local.kernel_launches += m

    report = KernelReport(op="multisplit", num_ops=n, group_size=group_size)
    report.load_sectors = local.load_sectors
    report.store_sectors = local.store_sectors
    report.warp_collectives = local.warp_collectives
    report.probe_windows = np.full(n, m, dtype=np.int64)
    if counter is not None:
        counter.merge(local)
    return MultisplitResult(
        pairs=scattered.values,
        source_index=scattered.source_index,
        counts=scattered.counts,
        offsets=scattered.offsets,
        report=report,
    )


@dataclass
class TwoLevelSplitResult(MultisplitResult):
    """GPU-grouped pairs plus the node-level view of the same split.

    ``counts``/``offsets`` are per-GPU exactly as in
    :class:`MultisplitResult`; ``node_counts``/``node_offsets`` aggregate
    them over each node's contiguous GPU-id span.
    """

    #: per-node element counts, shape (num_nodes,)
    node_counts: np.ndarray = None  # type: ignore[assignment]
    #: exclusive prefix of node_counts
    node_offsets: np.ndarray = None  # type: ignore[assignment]
    #: half-open GPU-id span of each node
    node_spans: list[tuple[int, int]] = None  # type: ignore[assignment]

    @property
    def num_nodes(self) -> int:
        return int(self.node_counts.shape[0])

    def node_part(self, k: int) -> np.ndarray:
        """View of node ``k``'s pairs (all its GPU classes, in order)."""
        start = int(self.node_offsets[k])
        return self.pairs[start : start + int(self.node_counts[k])]


def multisplit_two_level(
    pairs: np.ndarray,
    partition: PartitionHash,
    node_spans: list[tuple[int, int]],
    *,
    counter: TransactionCounter | None = None,
    group_size: int = 32,
) -> TwoLevelSplitResult:
    """Split by node, then by GPU within the node — in one fused pass.

    Global GPU ids are node-major (node ``k`` owns the contiguous span
    ``node_spans[k]``), so grouping pairs by their GPU class with the
    same single :func:`counting_scatter` pass as :func:`multisplit_fast`
    *already* leaves them grouped by node: the node-level split costs
    nothing beyond summing each span's counts.  The pass is therefore
    charge-identical to :func:`multisplit_fast` — same sectors, same
    atomics, same ``m`` kernel launches — which is what makes a one-node
    cluster bit-identical to the flat path.
    """
    if not node_spans:
        raise ConfigurationError("node_spans must name at least one node")
    m = partition.num_parts
    expected = 0
    for lo, hi in node_spans:
        if lo != expected or hi <= lo:
            raise ConfigurationError(
                f"node_spans must tile 0..{m} contiguously, got {node_spans}"
            )
        expected = hi
    if expected != m:
        raise ConfigurationError(
            f"node_spans cover {expected} GPUs but the partition has {m} parts"
        )

    flat = multisplit_fast(
        pairs, partition, counter=counter, group_size=group_size
    )
    node_counts = np.array(
        [int(flat.counts[lo:hi].sum()) for lo, hi in node_spans], dtype=np.int64
    )
    node_offsets = np.zeros(len(node_spans), dtype=np.int64)
    np.cumsum(node_counts[:-1], out=node_offsets[1:])
    return TwoLevelSplitResult(
        pairs=flat.pairs,
        source_index=flat.source_index,
        counts=flat.counts,
        offsets=flat.offsets,
        report=flat.report,
        node_counts=node_counts,
        node_offsets=node_offsets,
        node_spans=list(node_spans),
    )
