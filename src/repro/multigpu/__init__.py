"""Multi-GPU distribution: topology, multisplit, all-to-all, sharded table."""

from .alltoall import AllToAllResult, reverse_exchange, transpose_exchange
from .distributed_table import CascadeReport, DistributedHashTable
from .strategies import StrategyCost, compare_strategies
from .multisplit import MultisplitResult, multisplit
from .partition_table import PartitionTable, TransferPlanEntry
from .topology import NodeTopology, dgx1v_node, p100_nvlink_node, pcie_only_node

__all__ = [
    "NodeTopology",
    "p100_nvlink_node",
    "dgx1v_node",
    "pcie_only_node",
    "MultisplitResult",
    "multisplit",
    "PartitionTable",
    "TransferPlanEntry",
    "AllToAllResult",
    "transpose_exchange",
    "reverse_exchange",
    "DistributedHashTable",
    "StrategyCost",
    "compare_strategies",
    "CascadeReport",
]
