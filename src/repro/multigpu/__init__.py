"""Multi-GPU distribution: topology, multisplit, all-to-all, sharded table."""

from .alltoall import (
    AllToAllResult,
    ExchangeRouting,
    ReverseExchangeResult,
    reverse_exchange,
    reverse_exchange_fast,
    transpose_exchange,
    transpose_exchange_fast,
)
from .distributed_table import CascadeReport, DistributedHashTable
from .plan import CascadePlan, PlanCache, chunk_slices
from .strategies import StrategyCost, compare_strategies
from .multisplit import (
    MultisplitResult,
    TwoLevelSplitResult,
    multisplit,
    multisplit_fast,
    multisplit_two_level,
)
from .partition_table import PartitionTable, TransferPlanEntry
from .topology import (
    ClusterTopology,
    NodeTopology,
    Topology,
    TopologySpec,
    TrafficBreakdown,
    dgx1v_node,
    p100_nvlink_node,
    pcie_only_node,
    topology,
)

__all__ = [
    "Topology",
    "NodeTopology",
    "ClusterTopology",
    "TopologySpec",
    "TrafficBreakdown",
    "topology",
    "p100_nvlink_node",
    "dgx1v_node",
    "pcie_only_node",
    "MultisplitResult",
    "TwoLevelSplitResult",
    "multisplit",
    "multisplit_fast",
    "multisplit_two_level",
    "PartitionTable",
    "TransferPlanEntry",
    "AllToAllResult",
    "ExchangeRouting",
    "ReverseExchangeResult",
    "transpose_exchange",
    "transpose_exchange_fast",
    "reverse_exchange",
    "reverse_exchange_fast",
    "DistributedHashTable",
    "CascadePlan",
    "PlanCache",
    "chunk_slices",
    "StrategyCost",
    "compare_strategies",
    "CascadeReport",
]
