"""Multi-GPU distribution: topology, multisplit, all-to-all, sharded table."""

from .alltoall import (
    AllToAllResult,
    ExchangeRouting,
    ReverseExchangeResult,
    reverse_exchange,
    reverse_exchange_fast,
    transpose_exchange,
    transpose_exchange_fast,
)
from .distributed_table import CascadeReport, DistributedHashTable
from .plan import CascadePlan, PlanCache, chunk_slices
from .strategies import StrategyCost, compare_strategies
from .multisplit import MultisplitResult, multisplit, multisplit_fast
from .partition_table import PartitionTable, TransferPlanEntry
from .topology import NodeTopology, dgx1v_node, p100_nvlink_node, pcie_only_node

__all__ = [
    "NodeTopology",
    "p100_nvlink_node",
    "dgx1v_node",
    "pcie_only_node",
    "MultisplitResult",
    "multisplit",
    "multisplit_fast",
    "PartitionTable",
    "TransferPlanEntry",
    "AllToAllResult",
    "ExchangeRouting",
    "ReverseExchangeResult",
    "transpose_exchange",
    "transpose_exchange_fast",
    "reverse_exchange",
    "reverse_exchange_fast",
    "DistributedHashTable",
    "CascadePlan",
    "PlanCache",
    "chunk_slices",
    "StrategyCost",
    "compare_strategies",
    "CascadeReport",
]
