"""All-to-all transposition of partitioned key-value chunks (§IV-B).

Takes each GPU's multisplit result and delivers, to every GPU ``i``, the
concatenation of all partition-``i`` blocks (its own block plus ``m − 1``
received ones).  "Note that matrix transposition is an isomorphism and
thus all-to-all communication is reversible as well" — the reverse
operation routes per-element results (query answers) back to the GPU and
position each key came from, which is what the retrieval cascade needs.

Two equivalent implementations are provided, mirroring ``compact`` /
``compact_fast``:

* the **reference** pair :func:`transpose_exchange` /
  :func:`reverse_exchange` materializes per-element ``(src, position)``
  provenance rows (16 B/element) and reverses with m² boolean-mask
  passes — the seed implementation, kept as the equivalence oracle;
* the **fused** pair :func:`transpose_exchange_fast` /
  :func:`reverse_exchange_fast` carries only the m×m offset ranges of
  the partition table plus a precomputed inverse permutation
  (:class:`ExchangeRouting`), so the reverse path is one fancy-index
  gather per GPU and the traffic matrix comes straight from the table.

Both log identical :class:`~repro.memory.transfer.TransferRecord`
sequences and price identical network seconds; the property tests in
``tests/multigpu/test_fused_distribution.py`` pin the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.kernels_jit import reverse_gather_fill
from ..errors import ConfigurationError
from ..memory.transfer import MemcpyKind, TransferLog, TransferRecord
from .partition_table import PartitionTable
from .topology import Topology, TrafficBreakdown

__all__ = [
    "AllToAllResult",
    "ExchangeRouting",
    "ReverseExchangeResult",
    "transpose_exchange",
    "transpose_exchange_fast",
    "reverse_exchange",
    "reverse_exchange_fast",
    "reverse_route_accounting",
]


@dataclass(frozen=True)
class ExchangeRouting:
    """Compact reverse-routing state: offset ranges + inverse permutation.

    Replaces per-element provenance rows.  Block ``(part, src)`` of the
    received buffers is ``received[part][recv_offsets[src, part] :
    + counts[src, part]]`` and originated at ``send_offsets[src, part]``
    in ``src``'s multisplit output — everything the reverse transposition
    needs, in m² integers instead of 16 bytes per element.
    """

    #: the forward partition table T[gpu, part]
    table: PartitionTable
    #: row-wise exclusive scan of T (sender-side block starts)
    send_offsets: np.ndarray
    #: column-wise exclusive scan of T (receiver-side block starts)
    recv_offsets: np.ndarray
    #: global base of each partition's block in the flat result vector
    result_bases: np.ndarray
    #: reverse_gather[src][q] — flat-result index holding the answer for
    #: position ``q`` of ``src``'s multisplit buffer (the precomputed
    #: inverse permutation of the exchange)
    reverse_gather: list[np.ndarray]


@dataclass
class AllToAllResult:
    """Per-GPU received buffers plus routing state for the reverse path."""

    #: received[i]: all pairs with p(k) == i, concatenated by source GPU
    received: list[np.ndarray]
    #: the transposed partition table T^t
    table: PartitionTable
    #: seconds the exchange occupies the interconnect (model time)
    network_seconds: float
    #: reference path: (src_gpu, src_position) per received element —
    #: src_position indexes the *source GPU's multisplit output*
    provenance: list[np.ndarray] | None = None
    #: fused path: compact offset-range routing
    routing: ExchangeRouting | None = None
    #: per-level (NVLink vs NIC) charge; ``breakdown.seconds`` equals
    #: :attr:`network_seconds`
    breakdown: TrafficBreakdown | None = None


@dataclass
class ReverseExchangeResult:
    """Routed answers plus the reverse network load."""

    #: outputs[src]: answers aligned with src's multisplit output
    outputs: list[np.ndarray]
    #: seconds the reverse exchange occupies the network (model time)
    network_seconds: float
    #: bytes moved per (sending part, receiving src); diagonal is zero
    traffic: np.ndarray
    #: per-level (NVLink vs NIC) charge of the reverse leg
    breakdown: TrafficBreakdown | None = None


def _log_transpose(
    log: TransferLog | None, part: int, src: int, nbytes: int
) -> None:
    if src != part and nbytes > 0 and log is not None:
        log.add(
            TransferRecord(
                kind=MemcpyKind.P2P,
                nbytes=nbytes,
                src_device=src,
                dst_device=part,
                tag=f"transpose part={part}",
            )
        )


def _check_shapes(
    split_pairs: list[np.ndarray],
    split_offsets: list[np.ndarray],
    counts: PartitionTable,
    topology: Topology,
) -> int:
    m = counts.num_gpus
    if len(split_pairs) != m or len(split_offsets) != m:
        raise ConfigurationError(
            f"expected {m} per-GPU buffers, got {len(split_pairs)}"
        )
    if topology.num_devices < m:
        raise ConfigurationError(
            f"topology has {topology.num_devices} devices but table needs {m}"
        )
    return m


def transpose_exchange(
    split_pairs: list[np.ndarray],
    split_offsets: list[np.ndarray],
    counts: PartitionTable,
    topology: Topology,
    *,
    log: TransferLog | None = None,
) -> AllToAllResult:
    """Execute the m×m transposition (reference: per-element provenance).

    Parameters
    ----------
    split_pairs:
        ``split_pairs[gpu]`` — the GPU's multisplit-ordered pair buffer.
    split_offsets:
        ``split_offsets[gpu][part]`` — start of each class in that buffer.
    counts:
        The partition table ``T[gpu, part]``.
    topology:
        Prices the off-diagonal traffic and receives the transfer log.
    """
    m = _check_shapes(split_pairs, split_offsets, counts, topology)

    received: list[np.ndarray] = []
    provenance: list[np.ndarray] = []
    for part in range(m):
        chunks = []
        prov = []
        for src in range(m):
            start = int(split_offsets[src][part])
            count = int(counts.counts[src, part])
            chunk = split_pairs[src][start : start + count]
            chunks.append(chunk)
            prov.append(
                np.stack(
                    [
                        np.full(count, src, dtype=np.int64),
                        np.arange(start, start + count, dtype=np.int64),
                    ],
                    axis=1,
                )
            )
            _log_transpose(log, part, src, count * counts.record_bytes)
        received.append(
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.uint64)
        )
        provenance.append(
            np.concatenate(prov) if prov else np.empty((0, 2), dtype=np.int64)
        )

    breakdown = topology.traffic_breakdown(counts.traffic_matrix())
    return AllToAllResult(
        received=received,
        provenance=provenance,
        table=counts.transposed(),
        network_seconds=breakdown.seconds,
        breakdown=breakdown,
    )


def transpose_exchange_fast(
    split_pairs: list[np.ndarray],
    split_offsets: list[np.ndarray],
    counts: PartitionTable,
    topology: Topology,
    *,
    log: TransferLog | None = None,
    build_routing: bool = True,
    gather_out: list[np.ndarray] | None = None,
) -> AllToAllResult:
    """Index-routed :func:`transpose_exchange` — same buffers, same log.

    Produces byte-identical ``received`` buffers and
    :class:`TransferRecord` sequences while carrying an
    :class:`ExchangeRouting` instead of per-element provenance: the
    send/recv offset scans the paper already prescribes ("row-wise
    exclusive prefix scans over T for the senders and column-wise scans
    for the receivers") plus the inverse permutation they induce.
    ``build_routing=False`` skips the inverse permutation for one-way
    cascades (insertion has no reverse leg).  ``gather_out`` supplies
    preplanned per-source ``int64`` buffers (length = that source's
    chunk size) which the inverse permutation is written into in place —
    the cascade-plan compiler (:mod:`repro.multigpu.plan`) reuses them
    across waves, so the buffers alias the returned routing and are only
    valid until the next cascade of the owning plan.
    """
    m = _check_shapes(split_pairs, split_offsets, counts, topology)
    send_off = counts.send_offsets()
    recv_off = counts.recv_offsets()
    recv_counts = counts.recv_counts()
    result_bases = np.zeros(m, dtype=np.int64)
    np.cumsum(recv_counts[:-1], out=result_bases[1:])

    received: list[np.ndarray] = []
    for part in range(m):
        chunks = []
        for src in range(m):
            start = int(split_offsets[src][part])
            count = int(counts.counts[src, part])
            chunk = split_pairs[src][start : start + count]
            chunks.append(chunk)
            _log_transpose(log, part, src, count * counts.record_bytes)
        received.append(
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.uint64)
        )

    # position q in src's split buffer (block of partition `part`) landed
    # at recv_offsets[src, part] + (q - send_offsets[src, part]) on GPU
    # `part`; flat-result index = result_bases[part] + that.  Built per
    # src as m consecutive ranges — the inverse permutation in closed form.
    routing = None
    if build_routing:
        if gather_out is not None and len(gather_out) != m:
            raise ConfigurationError(
                f"gather_out needs {m} buffers, got {len(gather_out)}"
            )
        reverse_gather = []
        for src in range(m):
            size = int(counts.counts[src].sum())
            if gather_out is None:
                buf = np.empty(size, dtype=np.int64)
            else:
                buf = gather_out[src]
                if buf.shape[0] != size:
                    raise ConfigurationError(
                        f"gather_out[{src}] holds {buf.shape[0]} slots "
                        f"for {size} elements"
                    )
            row = np.ascontiguousarray(counts.counts[src], dtype=np.int64)
            bases = (result_bases + recv_off[src]).astype(np.int64)
            if not reverse_gather_fill(row, bases, buf):
                # vectorized fallback: per-partition arange runs
                pos = 0
                for part in range(m):
                    count = int(row[part])
                    base = int(bases[part])
                    buf[pos : pos + count] = np.arange(
                        base, base + count, dtype=np.int64
                    )
                    pos += count
            reverse_gather.append(buf)
        routing = ExchangeRouting(
            table=counts,
            send_offsets=send_off,
            recv_offsets=recv_off,
            result_bases=result_bases,
            reverse_gather=reverse_gather,
        )
    breakdown = topology.traffic_breakdown(counts.traffic_matrix())
    return AllToAllResult(
        received=received,
        table=counts.transposed(),
        network_seconds=breakdown.seconds,
        routing=routing,
        breakdown=breakdown,
    )


def _log_reverse(
    log: TransferLog | None, table: PartitionTable, itemsize: int
) -> None:
    """Append the reverse-path P2P records (same order as the reference)."""
    if log is None:
        return
    m = table.num_gpus
    for part in range(m):
        for src in range(m):
            count = int(table.counts[src, part])
            if src != part and count > 0:
                log.add(
                    TransferRecord(
                        kind=MemcpyKind.P2P,
                        nbytes=count * itemsize,
                        src_device=part,
                        dst_device=src,
                        tag=f"reverse part={part}",
                    )
                )


def reverse_route_accounting(
    table: PartitionTable,
    itemsize: int,
    topology: Topology,
    *,
    log: TransferLog | None = None,
) -> tuple[float, np.ndarray]:
    """Price and log the reverse exchange from the partition table alone.

    Returns ``(network_seconds, traffic_matrix)`` — what the reverse
    transposition costs without touching a single element, since the
    table already knows every block size.  Used by the fused cascade,
    which folds the data movement itself into one global gather.
    """
    traffic = table.reverse_traffic_matrix(itemsize)
    _log_reverse(log, table, itemsize)
    return topology.alltoall_time(traffic), traffic


def reverse_exchange(
    results_per_part: list[np.ndarray],
    provenance: list[np.ndarray],
    chunk_sizes: list[int],
    topology: Topology,
    *,
    log: TransferLog | None = None,
    itemsize: int | None = None,
) -> ReverseExchangeResult:
    """Route per-element results back to their source GPUs (query path).

    ``results_per_part[i][j]`` is the answer for the j-th element GPU i
    received during :func:`transpose_exchange`; ``provenance[i][j]`` says
    where that element came from.  Returns per-source-GPU result arrays
    aligned with each GPU's multisplit output, the network seconds, and
    the m×m reverse traffic matrix (reference: m² boolean-mask passes).

    ``itemsize`` overrides the modelled bytes per routed answer
    (default: the result dtype's width) — callers pass one explicit
    figure to this path and the fused one so the two stay log-identical
    by construction rather than by coincidence of dtypes.
    """
    m = len(results_per_part)
    if len(provenance) != m:
        raise ConfigurationError("provenance/results length mismatch")
    outputs = [
        np.zeros(size, dtype=results_per_part[0].dtype if results_per_part else np.uint64)
        for size in chunk_sizes
    ]
    if itemsize is None:
        itemsize = (
            int(results_per_part[0].dtype.itemsize) if results_per_part else 8
        )
    traffic = np.zeros((m, m), dtype=np.int64)
    for part in range(m):
        res = results_per_part[part]
        prov = provenance[part]
        if res.shape[0] != prov.shape[0]:
            raise ConfigurationError(
                f"partition {part}: {res.shape[0]} results for "
                f"{prov.shape[0]} provenance rows"
            )
        for src in range(m):
            sel = prov[:, 0] == src
            if not np.any(sel):
                continue
            outputs[src][prov[sel, 1]] = res[sel]
            nbytes = int(np.count_nonzero(sel)) * int(itemsize)
            if src != part:
                traffic[part, src] += nbytes
                if log is not None:
                    log.add(
                        TransferRecord(
                            kind=MemcpyKind.P2P,
                            nbytes=nbytes,
                            src_device=part,
                            dst_device=src,
                            tag=f"reverse part={part}",
                        )
                    )
    breakdown = topology.traffic_breakdown(traffic)
    return ReverseExchangeResult(
        outputs=outputs,
        network_seconds=breakdown.seconds,
        traffic=traffic,
        breakdown=breakdown,
    )


def reverse_exchange_fast(
    results_per_part: list[np.ndarray],
    routing: ExchangeRouting,
    topology: Topology,
    *,
    log: TransferLog | None = None,
    itemsize: int | None = None,
) -> ReverseExchangeResult:
    """Vectorized :func:`reverse_exchange` — same outputs, log, traffic.

    The traffic matrix is read off the partition table (each partition
    sends ``T[src, part]`` answers back to ``src``) and the scatter is
    one precomputed fancy-index gather per GPU — no per-element
    provenance, no boolean masks.  ``itemsize`` as in
    :func:`reverse_exchange`.
    """
    m = routing.table.num_gpus
    if len(results_per_part) != m:
        raise ConfigurationError("routing/results length mismatch")
    recv_counts = routing.table.recv_counts()
    for part, res in enumerate(results_per_part):
        if res.shape[0] != int(recv_counts[part]):
            raise ConfigurationError(
                f"partition {part}: {res.shape[0]} results for "
                f"{int(recv_counts[part])} received elements"
            )
    flat = (
        np.concatenate(results_per_part)
        if results_per_part
        else np.empty(0, dtype=np.uint64)
    )
    seconds, traffic = reverse_route_accounting(
        routing.table,
        flat.dtype.itemsize if itemsize is None else int(itemsize),
        topology,
        log=log,
    )
    outputs = [flat[gather] for gather in routing.reverse_gather]
    return ReverseExchangeResult(
        outputs=outputs,
        network_seconds=seconds,
        traffic=traffic,
        breakdown=topology.traffic_breakdown(traffic),
    )
