"""All-to-all transposition of partitioned key-value chunks (§IV-B).

Takes each GPU's multisplit result and delivers, to every GPU ``i``, the
concatenation of all partition-``i`` blocks (its own block plus ``m − 1``
received ones).  "Note that matrix transposition is an isomorphism and
thus all-to-all communication is reversible as well" — the reverse
operation routes per-element results (query answers) back to the GPU and
position each key came from, which is what the retrieval cascade needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..memory.transfer import MemcpyKind, TransferLog, TransferRecord
from .partition_table import PartitionTable
from .topology import NodeTopology

__all__ = ["AllToAllResult", "transpose_exchange", "reverse_exchange"]


@dataclass
class AllToAllResult:
    """Per-GPU received buffers plus provenance for the reverse path."""

    #: received[i]: all pairs with p(k) == i, concatenated by source GPU
    received: list[np.ndarray]
    #: provenance[i]: (src_gpu, src_position) per received element —
    #: src_position indexes the *source GPU's multisplit output*
    provenance: list[np.ndarray]
    #: the transposed partition table T^t
    table: PartitionTable
    #: seconds the exchange occupies the NVLink network (model time)
    network_seconds: float


def transpose_exchange(
    split_pairs: list[np.ndarray],
    split_offsets: list[np.ndarray],
    counts: PartitionTable,
    topology: NodeTopology,
    *,
    log: TransferLog | None = None,
) -> AllToAllResult:
    """Execute the m×m transposition.

    Parameters
    ----------
    split_pairs:
        ``split_pairs[gpu]`` — the GPU's multisplit-ordered pair buffer.
    split_offsets:
        ``split_offsets[gpu][part]`` — start of each class in that buffer.
    counts:
        The partition table ``T[gpu, part]``.
    topology:
        Prices the off-diagonal traffic and receives the transfer log.
    """
    m = counts.num_gpus
    if len(split_pairs) != m or len(split_offsets) != m:
        raise ConfigurationError(
            f"expected {m} per-GPU buffers, got {len(split_pairs)}"
        )
    if topology.num_devices < m:
        raise ConfigurationError(
            f"topology has {topology.num_devices} devices but table needs {m}"
        )

    received: list[np.ndarray] = []
    provenance: list[np.ndarray] = []
    for part in range(m):
        chunks = []
        prov = []
        for src in range(m):
            start = int(split_offsets[src][part])
            count = int(counts.counts[src, part])
            chunk = split_pairs[src][start : start + count]
            chunks.append(chunk)
            prov.append(
                np.stack(
                    [
                        np.full(count, src, dtype=np.int64),
                        np.arange(start, start + count, dtype=np.int64),
                    ],
                    axis=1,
                )
            )
            if src != part and count > 0 and log is not None:
                log.add(
                    TransferRecord(
                        kind=MemcpyKind.P2P,
                        nbytes=chunk.nbytes,
                        src_device=src,
                        dst_device=part,
                        tag=f"transpose part={part}",
                    )
                )
        received.append(
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.uint64)
        )
        provenance.append(
            np.concatenate(prov) if prov else np.empty((0, 2), dtype=np.int64)
        )

    network_seconds = topology.alltoall_time(counts.traffic_matrix())
    return AllToAllResult(
        received=received,
        provenance=provenance,
        table=counts.transposed(),
        network_seconds=network_seconds,
    )


def reverse_exchange(
    results_per_part: list[np.ndarray],
    provenance: list[np.ndarray],
    chunk_sizes: list[int],
    topology: NodeTopology,
    *,
    log: TransferLog | None = None,
) -> tuple[list[np.ndarray], float]:
    """Route per-element results back to their source GPUs (query path).

    ``results_per_part[i][j]`` is the answer for the j-th element GPU i
    received during :func:`transpose_exchange`; ``provenance[i][j]`` says
    where that element came from.  Returns per-source-GPU result arrays
    aligned with each GPU's multisplit output, plus the network seconds.
    """
    m = len(results_per_part)
    if len(provenance) != m:
        raise ConfigurationError("provenance/results length mismatch")
    outputs = [
        np.zeros(size, dtype=results_per_part[0].dtype if results_per_part else np.uint64)
        for size in chunk_sizes
    ]
    traffic = np.zeros((m, m), dtype=np.int64)
    for part in range(m):
        res = results_per_part[part]
        prov = provenance[part]
        if res.shape[0] != prov.shape[0]:
            raise ConfigurationError(
                f"partition {part}: {res.shape[0]} results for "
                f"{prov.shape[0]} provenance rows"
            )
        for src in range(m):
            sel = prov[:, 0] == src
            if not np.any(sel):
                continue
            outputs[src][prov[sel, 1]] = res[sel]
            nbytes = int(res[sel].nbytes)
            if src != part:
                traffic[part, src] += nbytes
                if log is not None:
                    log.add(
                        TransferRecord(
                            kind=MemcpyKind.P2P,
                            nbytes=nbytes,
                            src_device=part,
                            dst_device=src,
                            tag=f"reverse part={part}",
                        )
                    )
    return outputs, topology.alltoall_time(traffic)
