"""The distributed multi-GPU hash table (paper §IV-B).

Implements the *distributed multisplit transposition* design the paper
selects: key-value pairs land on the ``m`` GPUs in arbitrary equal-size
chunks (unstructured), each GPU multisplits its chunk by the partition
hash ``p(k)``, the m×m partition table is transposed with all-to-all
NVLink traffic, and every GPU then owns exactly the keys hashed to it.

* insertion cascade:  (H2D →) multisplit → transpose → insert
* retrieval cascade:  (H2D →) multisplit → transpose → query →
  reverse-transpose (→ D2H)

Every phase produces work/byte accounting in a :class:`CascadeReport`
that :mod:`repro.perfmodel` prices into seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..constants import PAIR_BYTES
from ..core.kernels_jit import resolve_kernels
from ..core.store import slot_record_bytes
from ..core.report import KernelReport
from ..core.table import WarpDriveHashTable
from ..errors import ConfigurationError
from ..exec.engine import ExecutionEngine, ShardKernelTask, create_engine
from ..exec.metrics import ShardSpan
from ..obs import runtime as obs
from ..obs.protocol import reportable_dict
from ..options import UNSET, reject_unknown, resolve_renamed, warn_positional
from ..hashing.partition import PartitionHash, hashed_partition
from ..memory.buffer import DeviceBuffer
from ..memory.layout import pack_pairs, unpack_pairs
from ..memory.transfer import MemcpyKind, TransferLog, TransferRecord
from ..simt.counters import TransactionCounter
from ..utils.validation import check_keys, check_same_length, check_values
from .alltoall import (
    AllToAllResult,
    reverse_exchange,
    reverse_route_accounting,
    transpose_exchange,
    transpose_exchange_fast,
)
from .multisplit import (
    MultisplitResult,
    multisplit,
    multisplit_fast,
    multisplit_two_level,
)
from .partition_table import PartitionTable
from .plan import CascadePlan, PlanCache, chunk_slices
from .topology import Topology
from .topology import topology as build_topology

__all__ = ["CascadeReport", "DistributedHashTable", "StagedCascade"]


@dataclass
class CascadeReport:
    """Accounting for one distributed insert/query cascade."""

    op: str
    num_ops: int
    #: host↔device traffic (bytes, summed over GPUs)
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    #: per-GPU multisplit work
    multisplit_reports: list[KernelReport] = field(default_factory=list)
    #: the m×m partition table of this cascade
    partition_table: PartitionTable | None = None
    #: all-to-all traffic and modelled network occupancy
    alltoall_bytes: int = 0
    alltoall_seconds: float = 0.0
    reverse_bytes: int = 0
    reverse_seconds: float = 0.0
    #: hierarchical split of the exchange legs: ``*_intra`` stays on the
    #: node interconnect (NVLink/PCIe), ``*_inter`` crosses the NIC.  On
    #: a flat (or one-node) topology intra equals the total and inter is
    #: identically zero, keeping the flat path's charges unchanged.
    alltoall_intra_bytes: int = 0
    alltoall_inter_bytes: int = 0
    alltoall_intra_seconds: float = 0.0
    alltoall_inter_seconds: float = 0.0
    reverse_intra_bytes: int = 0
    reverse_inter_bytes: int = 0
    reverse_intra_seconds: float = 0.0
    reverse_inter_seconds: float = 0.0
    #: node count of the topology that priced this cascade
    num_nodes: int = 1
    #: per-GPU hash-kernel work (insert or query)
    kernel_reports: list[KernelReport] = field(default_factory=list)
    #: per-GPU H2D/D2H byte loads (for PCIe-switch pricing)
    h2d_per_gpu: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    d2h_per_gpu: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: measured per-shard kernel spans (seconds, 0 = kernel-phase start)
    kernel_spans: list[ShardSpan] = field(default_factory=list)
    #: measured wall-clock of the whole kernel phase (engine dispatch incl.)
    kernel_wall_seconds: float = 0.0
    #: measured wall-clock of the distribution phases (multisplit +
    #: transpose + reverse) — the host cost the fused path shrinks
    distribution_wall_seconds: float = 0.0
    #: per-shard rehash reports of any mid-cascade growth (op="rehash")
    grow_reports: list[KernelReport] = field(default_factory=list)
    #: measured wall-clock of the growth phase (0.0 = no growth happened)
    grow_wall_seconds: float = 0.0
    #: kernel backend the shard kernels actually ran ("fast" or
    #: "compiled") — post-fallback, so rows record the truth even when
    #: "compiled" was requested on a host without a JIT provider
    kernels: str = "fast"
    #: serving-layer hot-key cache accounting for the batch this cascade
    #: served: keys answered by the cache tier vs. keys that reached the
    #: cascade (0/num_ops outside the serving path)
    cache_hits: int = 0
    cache_misses: int = 0
    #: slot storage policy of the shards this cascade ran against
    layout: str = "aos"
    #: modelled wire/storage bytes per pair — ``PAIR_BYTES`` for packed
    #: shards, the quotiented record width for ``compact`` ones (max over
    #: shards; :func:`repro.core.store.slot_record_bytes`)
    record_bytes: int = PAIR_BYTES
    #: aggregate modelled VRAM of the shard slot arrays after the cascade
    table_bytes: int = 0

    # v2: hierarchical (intra/inter) exchange charges + num_nodes
    # v3: layout / record_bytes / table_bytes (compact slot layout)
    schema_version = 3

    @property
    def load_imbalance(self) -> float:
        if self.partition_table is None:
            return 1.0
        return self.partition_table.imbalance()

    def merged_kernel_report(self) -> KernelReport:
        """Roll per-GPU kernel reports into one (for whole-node stats)."""
        if not self.kernel_reports:
            return KernelReport(op=self.op)
        out = self.kernel_reports[0]
        for rep in self.kernel_reports[1:]:
            out = out.merge(rep)
        return out

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys)."""
        return reportable_dict(
            self,
            {
                "op": self.op,
                "num_ops": self.num_ops,
                "kernels": self.kernels,
                "layout": self.layout,
                "record_bytes": self.record_bytes,
                "table_bytes": self.table_bytes,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "h2d_bytes": self.h2d_bytes,
                "d2h_bytes": self.d2h_bytes,
                "alltoall_bytes": self.alltoall_bytes,
                "alltoall_seconds": self.alltoall_seconds,
                "reverse_bytes": self.reverse_bytes,
                "reverse_seconds": self.reverse_seconds,
                "alltoall_intra_bytes": self.alltoall_intra_bytes,
                "alltoall_inter_bytes": self.alltoall_inter_bytes,
                "alltoall_intra_seconds": self.alltoall_intra_seconds,
                "alltoall_inter_seconds": self.alltoall_inter_seconds,
                "reverse_intra_bytes": self.reverse_intra_bytes,
                "reverse_inter_bytes": self.reverse_inter_bytes,
                "reverse_intra_seconds": self.reverse_intra_seconds,
                "reverse_inter_seconds": self.reverse_inter_seconds,
                "num_nodes": self.num_nodes,
                "load_imbalance": self.load_imbalance,
                "kernel_wall_seconds": self.kernel_wall_seconds,
                "distribution_wall_seconds": self.distribution_wall_seconds,
                "h2d_per_gpu": self.h2d_per_gpu,
                "d2h_per_gpu": self.d2h_per_gpu,
                "multisplit_reports": [
                    r.to_dict() for r in self.multisplit_reports
                ],
                "kernel_reports": [r.to_dict() for r in self.kernel_reports],
                "kernel_spans": [s.to_dict() for s in self.kernel_spans],
                "grow_reports": [r.to_dict() for r in self.grow_reports],
                "grow_wall_seconds": self.grow_wall_seconds,
            },
        )


@dataclass
class StagedCascade:
    """Host-side distribution state of one cascade, ready to commit.

    Produced by :meth:`DistributedHashTable.stage_insert` /
    ``stage_query`` / ``stage_erase`` — everything up to (and including)
    the multisplit-transposition has run, but no shard has been touched.
    Staging is *table-state independent*: the partition hash and the
    exchange depend only on the keys, so a stager thread can prepare
    batch ``i+1`` while batch ``i``'s kernel phase commits.  All side
    effects are captured privately (``log``, ``counters``) and merged
    into the table in stream order by
    :meth:`DistributedHashTable.commit_staged`, which keeps transfer-log
    record order and counter totals bit-identical to the monolithic
    cascade entry points.
    """

    op: str
    num_ops: int
    source: str
    default: int
    report: CascadeReport
    plan: CascadePlan
    splits: list[MultisplitResult]
    exchange: AllToAllResult
    keys_per_gpu: list[np.ndarray]
    values_per_gpu: list[np.ndarray] | None
    buffers: list[DeviceBuffer]
    #: private transfer log of the staging phases (H2D + all-to-all)
    log: TransferLog
    #: private per-GPU multisplit charges, merged at commit
    counters: list[TransactionCounter]
    #: stream position, stamped by the pipeline scheduler
    seqno: int = 0

    @property
    def staged_bytes(self) -> int:
        """Device staging footprint this cascade holds until commit."""
        return sum(buf.nbytes for buf in self.buffers)


def _resolve_topology_capacity(owner, arg0, arg1, topology_kw):
    """Resolve the ``(capacity, topology=)`` vs ``(topology, capacity)`` forms.

    The canonical constructor takes the capacity positionally and the
    topology as the unified ``topology=`` option; the pre-hierarchy
    positional form ``(topology, capacity)`` is shimmed with a one-time
    deprecation warning.  Mixing the two for the same slot raises
    :class:`ConfigurationError` (mirroring ``engine=``/``executor=``).
    """
    topo_spec = UNSET
    capacity = UNSET
    if arg0 is not None:
        if isinstance(arg0, (int, np.integer)):
            capacity = int(arg0)
            if arg1 is not None:
                raise ConfigurationError(
                    f"{owner}: unexpected second positional argument "
                    f"{arg1!r}; the capacity was already given"
                )
        else:
            warn_positional(owner, "topology", "topology")
            topo_spec = arg0
            if arg1 is not None:
                capacity = int(arg1)
    if topology_kw is not UNSET:
        if topo_spec is not UNSET:
            raise ConfigurationError(
                f"{owner}: got both a positional topology and 'topology='"
            )
        topo_spec = topology_kw
    if capacity is UNSET:
        raise ConfigurationError(f"{owner}: total_capacity is required")
    topo = build_topology(None if topo_spec is UNSET else topo_spec)
    return topo, capacity


class DistributedHashTable:
    """A WarpDrive hash map sharded over the GPUs of a node or cluster.

    The canonical form is ``DistributedHashTable(total_capacity,
    topology=...)`` — the old positional-topology form
    ``DistributedHashTable(node, capacity)`` keeps working through a
    warn-once shim (see :mod:`repro.options`).

    Parameters
    ----------
    topology:
        The interconnect model: a :class:`~repro.multigpu.topology.Topology`
        (``NodeTopology`` or ``ClusterTopology``), a ``TopologySpec``, or
        a spec string (``"p100"``, ``"pcie:8"``, ``"dgx1v"``,
        ``"cluster:2x4"``) resolved by the
        :func:`~repro.multigpu.topology.topology` factory; defaults to
        the paper's 4×P100 node.  Shards allocate their slot arrays as
        VRAM on the corresponding simulated device; on a cluster the
        all-to-all charges intra-node traffic to NVLink/PCIe and
        inter-node traffic to the NIC.
    total_capacity:
        Aggregate slot count; each GPU gets ``ceil(total / m)``.
    group_size, p_max, probing, layout, growth:
        Forwarded to each single-GPU shard (see
        :class:`~repro.core.config.HashTableConfig`).  With a
        :class:`~repro.core.growth.GrowthPolicy` the shards grow in a
        *coordinated* step mid-cascade: when any shard's incoming batch
        trips its threshold, every shard resizes to a uniform target
        before the kernel phase, keeping shard capacities equal.  The
        per-shard rehash traffic is logged as D2D ``"grow rehash"``
        transfers and reported in :attr:`CascadeReport.grow_reports`.
    partition:
        GPU-assignment hash; defaults to a hashed partition so structured
        key sets still balance (Fig. 4's ``k mod m`` is available via
        :func:`repro.hashing.modulo_partition`).
    engine, workers:
        Shard-execution backend (``"serial"``, ``"thread"``, ``"process"``
        or a ready-made :class:`~repro.exec.ExecutionEngine`) and its
        worker count.  The process backend allocates every shard's slot
        array in shared memory so workers mutate the tables zero-copy.
        (``executor=`` is the deprecated spelling; see
        :mod:`repro.options`.)
    distribution:
        Host implementation of the distribution phases.  ``"fused"``
        (default) runs the single-pass multisplit and index-routed
        exchange; ``"reference"`` runs the seed's m-binary-split sweeps
        and provenance-based reverse.  Both are bit-identical in results
        and accounting (``tests/multigpu/test_fused_distribution.py``);
        only the host wall-clock differs (``docs/distribution.md``).
    kernels:
        Shard-kernel backend: ``"fast"`` (default, vectorized numpy) or
        ``"compiled"`` (JIT inner loops, bit-identical; auto-falls back
        to ``"fast"`` with a warning when no JIT provider is available
        — see ``docs/compiled_backend.md``).  Workers re-resolve the
        backend in their own process; :attr:`CascadeReport.kernels`
        records what actually ran.
    """

    def __init__(
        self,
        total_capacity=None,
        _legacy_capacity=None,
        *,
        topology=UNSET,
        group_size: int = 4,
        p_max: int | None = None,
        partition: PartitionHash | None = None,
        engine: str | ExecutionEngine = UNSET,
        workers: int | None = None,
        distribution: str = "fused",
        kernels: str = UNSET,
        probing: str = UNSET,
        layout: str = UNSET,
        growth=UNSET,
        **legacy,
    ):
        topology, total_capacity = _resolve_topology_capacity(
            "DistributedHashTable", total_capacity, _legacy_capacity, topology
        )
        engine = resolve_renamed(
            "DistributedHashTable",
            legacy,
            old="executor",
            new="engine",
            value=engine,
            default="serial",
        )
        reject_unknown("DistributedHashTable", legacy)
        if total_capacity < topology.num_devices:
            raise ConfigurationError(
                "total_capacity must be at least one slot per GPU"
            )
        if distribution not in ("fused", "reference"):
            raise ConfigurationError(
                f"distribution must be 'fused' or 'reference', got {distribution!r}"
            )
        self.distribution = distribution
        if kernels is UNSET:
            kernels = "fast"
        if kernels not in ("fast", "compiled"):
            raise ConfigurationError(
                f"kernels must be 'fast' or 'compiled', got {kernels!r}"
            )
        self.kernels = kernels
        self.topology = topology
        self.num_gpus = topology.num_devices
        if partition is None:
            partition = hashed_partition(self.num_gpus)
        elif partition.num_parts != self.num_gpus:
            raise ConfigurationError(
                f"partition has {partition.num_parts} parts for "
                f"{self.num_gpus} GPUs"
            )
        self.partition = partition
        self.engine = create_engine(engine, workers=workers)
        self._owns_engine = not isinstance(engine, ExecutionEngine)
        shard_capacity = -(-total_capacity // self.num_gpus)  # ceil div
        kwargs = {
            "group_size": group_size,
            "shared": self.engine.requires_shared_slots,
            # shards inherit the backend so grow() rehash replays run
            # compiled when the cascade kernels do
            "kernels": self.kernels,
        }
        if p_max is not None:
            kwargs["p_max"] = p_max
        for opt, val in (("probing", probing), ("layout", layout),
                         ("growth", growth)):
            if val is not UNSET:
                kwargs[opt] = val
        self.shards = [
            WarpDriveHashTable(shard_capacity, device=dev, **kwargs)
            for dev in topology.devices
        ]
        self.transfer_log = TransferLog()
        # per-batch-shape cascade plans (chunk slices, zero planes,
        # reverse-routing scratch) reused across waves of equal size
        self._plans = PlanCache()

    @classmethod
    def for_load_factor(
        cls,
        topology,
        num_pairs: int,
        load_factor: float,
        **kwargs,
    ) -> "DistributedHashTable":
        if not 0 < load_factor <= 1:
            raise ConfigurationError(
                f"load factor must be in (0, 1], got {load_factor}"
            )
        topology = build_topology(topology)
        total = max(int(np.ceil(num_pairs / load_factor)), topology.num_devices)
        return cls(total, topology=topology, **kwargs)

    @classmethod
    def for_workload(
        cls,
        topology,
        keys: np.ndarray,
        load_factor: float,
        *,
        partition: PartitionHash | None = None,
        **kwargs,
    ) -> "DistributedHashTable":
        """Size shards so the *busiest* shard hits exactly ``load_factor``.

        At paper scale the partition hash balances to a fraction of a
        percent and :meth:`for_load_factor` suffices; at scaled-down
        experiment sizes the binomial imbalance (~sqrt(m/n)) would push
        one shard over its capacity.  This constructor pre-splits the
        unique keys of the known workload and sizes every shard for the
        largest partition, keeping the target per-shard load exact.
        """
        if not 0 < load_factor <= 1:
            raise ConfigurationError(
                f"load factor must be in (0, 1], got {load_factor}"
            )
        topology = build_topology(topology)
        m = topology.num_devices
        if partition is None:
            partition = hashed_partition(m)
        uniq = np.unique(check_keys(keys))
        counts = np.bincount(partition(uniq), minlength=m)
        busiest = max(int(counts.max()), 1)
        shard_capacity = max(int(np.ceil(busiest / load_factor)), 1)
        return cls(
            shard_capacity * m, topology=topology, partition=partition, **kwargs
        )

    # -- properties ---------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    @property
    def total_capacity(self) -> int:
        return sum(shard.capacity for shard in self.shards)

    @property
    def load_factor(self) -> float:
        return len(self) / self.total_capacity

    def shard_sizes(self) -> np.ndarray:
        return np.array([len(s) for s in self.shards], dtype=np.int64)

    @property
    def layout(self) -> str:
        """Slot storage policy of the shards (uniform by construction)."""
        return self.shards[0].config.layout

    def _record_bytes(self) -> int:
        """Modelled bytes per exchanged pair — max over shards.

        Every exchange leg and grow-rehash copy charges this width:
        ``PAIR_BYTES`` for packed layouts, the quotiented record width of
        the smallest-capacity shard for ``compact`` (conservative — a
        record importable by every shard).
        """
        return max(
            slot_record_bytes(shard.config.layout, shard.capacity)
            for shard in self.shards
        )

    # -- cascades -------------------------------------------------------------

    def _chunk(self, n: int) -> list[slice]:
        """Unstructured distribution: m equal contiguous chunks."""
        return chunk_slices(n, self.num_gpus)

    def _plan(self, op: str, n: int) -> CascadePlan:
        """The (cached) compiled plan for one batch shape."""
        return self._plans.get(op, n, self.num_gpus, self.topology.num_nodes)

    def _split_phase(
        self,
        packed_chunks: list[np.ndarray],
        report: CascadeReport,
        *,
        counters: list[TransactionCounter] | None = None,
    ) -> tuple[list[MultisplitResult], PartitionTable]:
        """``counters`` overrides the charge targets (staging uses private
        per-GPU counters merged into the devices at commit time)."""
        with obs.span("multisplit", "distribution", path=self.distribution):
            t0 = time.perf_counter()
            if self.distribution != "fused":
                split_fn = multisplit
            elif self.topology.num_nodes > 1:
                # two-level split: by node, then by GPU — one fused pass,
                # charge-identical to multisplit_fast (global GPU ids are
                # node-major, so GPU grouping is already node grouping)
                spans = self.topology.node_spans()

                def split_fn(chunk, partition, *, counter):
                    return multisplit_two_level(
                        chunk, partition, spans, counter=counter
                    )
            else:
                split_fn = multisplit_fast
            splits = [
                split_fn(
                    chunk,
                    self.partition,
                    counter=(
                        counters[gpu]
                        if counters is not None
                        else self.topology.devices[gpu].counter
                    ),
                )
                for gpu, chunk in enumerate(packed_chunks)
            ]
            counts = np.stack([ms.counts for ms in splits])
            report.distribution_wall_seconds += time.perf_counter() - t0
        report.multisplit_reports = [ms.report for ms in splits]
        table = PartitionTable(counts, record_bytes=self._record_bytes())
        report.partition_table = table
        return splits, table

    def _transpose_phase(
        self,
        splits: list[MultisplitResult],
        table: PartitionTable,
        report: CascadeReport,
        *,
        reversible: bool,
        plan: CascadePlan | None = None,
        log: TransferLog | None = None,
    ) -> AllToAllResult:
        """Run the m×m exchange and record its traffic + measured time.

        ``reversible`` builds the reverse-routing state (inverse
        permutation or provenance) retrieval/erase cascades need; pure
        insertion skips it on the fused path.  A reversible ``plan``
        supplies the preallocated ``reverse_gather`` buffers the fused
        exchange fills in place.  ``log`` redirects the transfer records
        (staging captures them privately and replays them at commit).
        """
        if log is None:
            log = self.transfer_log
        with obs.span(
            "all-to-all", "distribution", path=self.distribution
        ) as sp:
            t0 = time.perf_counter()
            if self.distribution == "fused":
                exchange = transpose_exchange_fast(
                    [ms.pairs for ms in splits],
                    [ms.offsets for ms in splits],
                    table,
                    self.topology,
                    log=log,
                    build_routing=reversible,
                    gather_out=(
                        plan.gather_out
                        if reversible and plan is not None
                        else None
                    ),
                )
            else:
                exchange = transpose_exchange(
                    [ms.pairs for ms in splits],
                    [ms.offsets for ms in splits],
                    table,
                    self.topology,
                    log=log,
                )
            report.distribution_wall_seconds += time.perf_counter() - t0
            breakdown = exchange.breakdown
            if breakdown is not None and self.topology.num_nodes > 1:
                # surface both exchange levels as child spans of the
                # all-to-all (zero-width markers carrying the modelled
                # charge of each interconnect level)
                with obs.span(
                    "transpose.intra",
                    "distribution",
                    nbytes=breakdown.intra_bytes,
                    modelled_network_seconds=breakdown.intra_seconds,
                ):
                    pass
                with obs.span(
                    "transpose.inter",
                    "distribution",
                    nbytes=breakdown.inter_bytes,
                    modelled_network_seconds=breakdown.inter_seconds,
                    num_nodes=self.topology.num_nodes,
                ):
                    pass
        report.alltoall_bytes = table.offdiagonal_bytes()
        report.alltoall_seconds = exchange.network_seconds
        if breakdown is not None:
            report.alltoall_intra_bytes = breakdown.intra_bytes
            report.alltoall_inter_bytes = breakdown.inter_bytes
            report.alltoall_intra_seconds = breakdown.intra_seconds
            report.alltoall_inter_seconds = breakdown.inter_seconds
        if sp is not None:
            sp.attrs["alltoall_bytes"] = report.alltoall_bytes
            sp.attrs["modelled_network_seconds"] = report.alltoall_seconds
        return exchange

    def _reverse_phase(
        self,
        results: list[np.ndarray],
        exchange: AllToAllResult,
        splits: list[MultisplitResult],
        chunks: list[slice],
        n: int,
        report: CascadeReport,
        plan: CascadePlan | None = None,
    ) -> np.ndarray:
        """Reverse-route per-partition answers back to input order.

        Returns the flat answer vector aligned with the cascade's input
        and records the reverse traffic (priced from the partition table,
        not re-scanned) on the report.  Fused path: one global
        inverse-permutation gather composing the reverse exchange with
        the multisplit un-permute — no per-chunk staging copies; the
        plan's ``perm`` scratch is overwritten completely, so no
        per-batch allocation either.
        """
        with obs.span("reverse", "distribution", path=self.distribution):
            answers, seconds, traffic = self._reverse_route(
                results, exchange, splits, chunks, n, report, plan
            )
        report.reverse_seconds = seconds
        report.reverse_bytes = int(traffic.sum())
        breakdown = self.topology.traffic_breakdown(traffic)
        report.reverse_intra_bytes = breakdown.intra_bytes
        report.reverse_inter_bytes = breakdown.inter_bytes
        report.reverse_intra_seconds = breakdown.intra_seconds
        report.reverse_inter_seconds = breakdown.inter_seconds
        return answers

    def _reverse_route(
        self,
        results: list[np.ndarray],
        exchange: AllToAllResult,
        splits: list[MultisplitResult],
        chunks: list[slice],
        n: int,
        report: CascadeReport,
        plan: CascadePlan | None = None,
    ) -> tuple[np.ndarray, float, np.ndarray]:
        t0 = time.perf_counter()
        # answers travel in the same modelled record format the forward
        # exchange used: one packed word per key for aos/soa, the
        # quotiented record for compact (a 32-bit value plus found flag
        # fits any record width the model allows)
        itemsize = exchange.table.record_bytes
        if self.distribution == "fused":
            flat = (
                np.concatenate(results)
                if results
                else np.empty(0, dtype=np.uint64)
            )
            seconds, traffic = reverse_route_accounting(
                exchange.routing.table,
                itemsize,
                self.topology,
                log=self.transfer_log,
            )
            perm = (
                plan.perm
                if plan is not None and plan.perm is not None
                else np.empty(n, dtype=np.int64)
            )
            for gpu, sl in enumerate(chunks):
                perm[sl.start + splits[gpu].source_index] = (
                    exchange.routing.reverse_gather[gpu]
                )
            answers = flat[perm]
        else:
            chunk_sizes = [sl.stop - sl.start for sl in chunks]
            rev = reverse_exchange(
                results,
                exchange.provenance,
                chunk_sizes,
                self.topology,
                log=self.transfer_log,
                itemsize=itemsize,
            )
            seconds, traffic = rev.network_seconds, rev.traffic
            answers = np.zeros(n, dtype=np.uint64)
            for gpu, sl in enumerate(chunks):
                # undo the multisplit permutation inside the chunk
                split_result = np.zeros(chunk_sizes[gpu], dtype=np.uint64)
                split_result[:] = rev.outputs[gpu]
                chunk_vals = np.zeros(chunk_sizes[gpu], dtype=np.uint64)
                chunk_vals[splits[gpu].source_index] = split_result
                answers[sl] = chunk_vals
        report.distribution_wall_seconds += time.perf_counter() - t0
        return answers, seconds, traffic

    def _reserve_batch_buffers(
        self, packed_chunks: list[np.ndarray]
    ) -> list[DeviceBuffer]:
        """Reserve the per-GPU staging memory one cascade needs.

        Fig. 4: "all operations are issued out-of-place using one double
        buffer per GPU of sufficient size" — the arriving chunk plus its
        multisplit/transpose target.  Registering the footprint makes
        oversized batches fail against the 16 GB budget exactly like the
        real node.
        """
        buffers = []
        for gpu, chunk in enumerate(packed_chunks):
            if chunk.size:
                buffers.append(
                    DeviceBuffer.empty(
                        self.topology.devices[gpu], 2 * chunk.size, dtype=np.uint64
                    )
                )
        return buffers

    @staticmethod
    def _release_batch_buffers(buffers: list[DeviceBuffer]) -> None:
        for buf in buffers:
            buf.free()

    def _grow_shards_to(
        self, target: int, report: CascadeReport | None = None
    ) -> list[KernelReport]:
        """Grow every shard below ``target`` to exactly ``target`` slots.

        One rehash per shard runs on that shard's device (the table never
        leaves its GPU — logged as a D2D copy of the live pairs, tagged
        ``"grow rehash"``); reports land on the cascade report when one
        is given.  Returns the rehash reports of non-empty shards.
        """
        reports: list[KernelReport] = []
        with obs.span(
            "shard growth",
            "lifecycle",
            target_capacity=int(target),
            num_gpus=self.num_gpus,
        ):
            t0 = time.perf_counter()
            for gpu, shard in enumerate(self.shards):
                if target <= shard.capacity:
                    continue
                live = len(shard)
                # the rehash reads records at the *source* table's width
                # (pre-grow capacity: never narrower than the target's)
                record = slot_record_bytes(shard.config.layout, shard.capacity)
                rep = shard.grow(target)
                self.transfer_log.add(
                    TransferRecord(
                        kind=MemcpyKind.D2D,
                        nbytes=live * record,
                        src_device=gpu,
                        dst_device=gpu,
                        tag="grow rehash",
                    )
                )
                if rep is not None:
                    reports.append(rep)
            elapsed = time.perf_counter() - t0
        if report is not None:
            report.grow_reports.extend(reports)
            report.grow_wall_seconds += elapsed
        return reports

    def _maybe_grow_shards(
        self,
        keys_per_gpu: list[np.ndarray],
        report: CascadeReport,
        *,
        drain=None,
    ) -> None:
        """Coordinated pre-kernel growth (no-op without growth policies).

        Runs after the transposition — each shard's incoming count is
        known exactly — and before the kernel phase snapshots slot views
        and shm descriptors, so every engine backend lands the batch in
        the grown stores.  The target is the max over tripped shards'
        :meth:`~repro.core.growth.GrowthPolicy.next_capacity`, applied to
        *all* shards so capacities stay uniform.

        ``drain`` is called (once, with no arguments) after the growth
        decision but before any shard resizes — the pipeline scheduler
        uses it to wait out in-flight device waves so a coordinated grow
        never races a running kernel phase.
        """
        targets = []
        for gpu, shard in enumerate(self.shards):
            policy = shard.growth
            if policy is None:
                continue
            required = len(shard) + int(keys_per_gpu[gpu].shape[0])
            if policy.should_grow(shard.capacity, required):
                targets.append(policy.next_capacity(shard.capacity, required))
        if targets:
            if drain is not None:
                drain()
            self._grow_shards_to(max(targets), report)

    def grow(self, new_capacity: int) -> list[KernelReport]:
        """Explicitly grow the table to ``new_capacity`` total slots."""
        if new_capacity <= self.total_capacity:
            raise ConfigurationError(
                f"grown capacity {new_capacity} must exceed "
                f"current capacity {self.total_capacity}"
            )
        return self._grow_shards_to(-(-int(new_capacity) // self.num_gpus))

    def _kernel_phase(
        self,
        op: str,
        keys_per_gpu: list[np.ndarray],
        values_per_gpu: list[np.ndarray] | None = None,
        *,
        default: int = 0,
        report: CascadeReport,
    ) -> dict:
        """Run one per-shard kernel wave through the execution engine.

        Non-empty shards become :class:`ShardKernelTask`s; the engine
        runs them (possibly overlapped), then work is absorbed into the
        shards **in shard order** so device counters, sizes, and rebuild
        decisions match the serial schedule exactly.  Empty shards record
        a zero-work report so ``kernel_reports`` stays length ``m``.
        Returns results keyed by GPU index.
        """
        with obs.span(
            "kernel phase",
            "kernel",
            op=op,
            engine=self.engine.name,
            kernels=self.kernels,
        ) as ksp:
            t0 = time.perf_counter()
            tasks = []
            for gpu, gk in enumerate(keys_per_gpu):
                if gk.size == 0:
                    continue
                shard = self.shards[gpu]
                tasks.append(
                    ShardKernelTask(
                        shard=gpu,
                        op=op,
                        slots=shard.slots,
                        seq=shard.seq,
                        keys=gk,
                        values=None
                        if values_per_gpu is None
                        else values_per_gpu[gpu],
                        default=default,
                        shm=shard.shm_descriptor(),
                        kernels=self.kernels,
                    )
                )
            # non-blocking submit + immediate collect: identical to
            # engine.run() here, but exercises the same PendingWave path
            # the pipeline scheduler overlaps against
            by_gpu = (
                {r.shard: r for r in self.engine.submit(tasks).result()}
                if tasks
                else {}
            )
            # record the backend that actually ran (workers may have
            # fallen back independently); with no tasks, resolve locally
            if by_gpu:
                used = {r.kernels for r in by_gpu.values()}
                report.kernels = used.pop() if len(used) == 1 else "fast"
            else:
                report.kernels = resolve_kernels(
                    self.kernels,
                    slots=self.shards[0].slots,
                    owner="DistributedHashTable",
                )
            if ksp is not None:
                ksp.attrs["kernels"] = report.kernels
            for gpu, gk in enumerate(keys_per_gpu):
                shard = self.shards[gpu]
                res = by_gpu.get(gpu)
                if res is None:
                    report.kernel_reports.append(
                        KernelReport.empty(op, shard.config.group_size)
                    )
                    continue
                if op == "insert":
                    shard.absorb_insert(
                        gk, values_per_gpu[gpu], res.report, res.status
                    )
                elif op == "query":
                    shard.absorb_query(res.report)
                else:
                    shard.absorb_erase(res.report)
                report.kernel_reports.append(res.report)
                if res.span is not None:
                    report.kernel_spans.append(res.span)
            report.kernel_wall_seconds = time.perf_counter() - t0
        return by_gpu

    def _observe_cascade(self, report: CascadeReport, log_mark: int) -> None:
        """Feed the finished cascade into the metrics registry (if on)."""
        if not obs.enabled():
            return
        obs.observe_cascade(report)
        obs.observe_transfers(self.transfer_log.records[log_mark:])

    # -- staged (phase-split) entry points ------------------------------------
    #
    # Every cascade splits into a host-side *staging* half (H2D packing,
    # multisplit, all-to-all — table-state independent, safe on a stager
    # thread) and a device-side *commit* half (growth, kernel phase,
    # reverse routing, D2H).  The monolithic insert/query/erase below are
    # thin stage+commit compositions, bit-identical to the pre-split code
    # in results, span trees, transfer-log order, and counter totals.

    def _stage_h2d(
        self,
        op: str,
        packed: list[np.ndarray],
        key_bytes: np.ndarray | None,
        source: str,
        report: CascadeReport,
        log: TransferLog,
        tag: str,
    ) -> None:
        """Record the H2D leg of one staging phase into a private log."""
        per_gpu = (
            np.array([p.nbytes for p in packed], dtype=np.int64)
            if key_bytes is None
            else key_bytes
        )
        with obs.span("H2D", "transfer", op=op) as sp:
            report.h2d_per_gpu = (
                per_gpu if source == "host" else np.zeros_like(per_gpu)
            )
            report.h2d_bytes = int(report.h2d_per_gpu.sum())
            if sp is not None:
                sp.attrs["nbytes"] = report.h2d_bytes
            if source == "host":
                for gpu, nbytes in enumerate(per_gpu):
                    log.add(
                        TransferRecord(
                            kind=MemcpyKind.H2D,
                            nbytes=int(nbytes),
                            src_device=None,
                            dst_device=gpu,
                            tag=tag,
                        )
                    )

    def stage_insert(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        *,
        source: str = "host",
        plan: CascadePlan | None = None,
    ) -> StagedCascade:
        """Run the host-side distribution half of an insertion cascade.

        Returns a :class:`StagedCascade` holding per-GPU staging buffers
        (reserved against the device VRAM budgets) plus privately
        captured transfer records and multisplit charges; nothing is
        merged into the table until :meth:`commit_staged`.  ``plan``
        overrides the table's shared :class:`PlanCache` — the pipeline
        scheduler passes per-arena-slot plans so concurrently staged
        batches never alias scratch buffers.
        """
        if source not in ("host", "device"):
            raise ConfigurationError(
                f"source must be 'host' or 'device', got {source!r}"
            )
        k = check_keys(keys)
        v = check_values(values)
        check_same_length("keys", k, "values", v)
        n = k.shape[0]
        report = CascadeReport(
            op="insert",
            num_ops=n,
            num_nodes=self.topology.num_nodes,
            layout=self.layout,
            record_bytes=self._record_bytes(),
            table_bytes=sum(s.table_bytes for s in self.shards),
        )
        log = TransferLog()
        counters = [TransactionCounter() for _ in range(self.num_gpus)]
        if plan is None:
            plan = self._plan("insert", n)
        chunks = plan.chunks
        packed = [pack_pairs(k[sl], v[sl]) for sl in chunks]
        self._stage_h2d("insert", packed, None, source, report, log, "insert chunk")

        buffers = self._reserve_batch_buffers(packed)
        try:
            splits, table = self._split_phase(packed, report, counters=counters)
            exchange = self._transpose_phase(
                splits, table, report, reversible=False, log=log
            )
            per_gpu = [
                unpack_pairs(exchange.received[gpu])
                for gpu in range(self.num_gpus)
            ]
        except BaseException:
            self._release_batch_buffers(buffers)
            raise
        return StagedCascade(
            op="insert",
            num_ops=n,
            source=source,
            default=0,
            report=report,
            plan=plan,
            splits=splits,
            exchange=exchange,
            keys_per_gpu=[kv[0] for kv in per_gpu],
            values_per_gpu=[kv[1] for kv in per_gpu],
            buffers=buffers,
            log=log,
            counters=counters,
        )

    def _stage_keyed(
        self,
        op: str,
        keys: np.ndarray,
        *,
        default: int,
        source: str,
        plan: CascadePlan | None,
        tag: str,
    ) -> StagedCascade:
        """Shared staging half of the key-only (query/erase) cascades."""
        if source not in ("host", "device"):
            raise ConfigurationError(
                f"source must be 'host' or 'device', got {source!r}"
            )
        k = check_keys(keys)
        n = k.shape[0]
        report = CascadeReport(
            op=op,
            num_ops=n,
            num_nodes=self.topology.num_nodes,
            layout=self.layout,
            record_bytes=self._record_bytes(),
            table_bytes=sum(s.table_bytes for s in self.shards),
        )
        log = TransferLog()
        counters = [TransactionCounter() for _ in range(self.num_gpus)]
        if plan is None:
            plan = self._plan(op, n)
        chunks = plan.chunks
        # queries ship keys only (4 B/key up, 8 B/key down, cf. Fig. 10)
        packed = [
            pack_pairs(k[sl], plan.zeros[gpu]) for gpu, sl in enumerate(chunks)
        ]
        key_bytes = np.array(
            [(sl.stop - sl.start) * 4 for sl in chunks], dtype=np.int64
        )
        self._stage_h2d(op, packed, key_bytes, source, report, log, tag)

        buffers = self._reserve_batch_buffers(packed)
        try:
            splits, table = self._split_phase(packed, report, counters=counters)
            exchange = self._transpose_phase(
                splits, table, report, reversible=True, plan=plan, log=log
            )
            keys_per_gpu = [
                unpack_pairs(exchange.received[gpu])[0]
                for gpu in range(self.num_gpus)
            ]
        except BaseException:
            self._release_batch_buffers(buffers)
            raise
        return StagedCascade(
            op=op,
            num_ops=n,
            source=source,
            default=default,
            report=report,
            plan=plan,
            splits=splits,
            exchange=exchange,
            keys_per_gpu=keys_per_gpu,
            values_per_gpu=None,
            buffers=buffers,
            log=log,
            counters=counters,
        )

    def stage_query(
        self,
        keys: np.ndarray,
        *,
        default: int = 0,
        source: str = "host",
        plan: CascadePlan | None = None,
    ) -> StagedCascade:
        """Host-side distribution half of a retrieval cascade."""
        return self._stage_keyed(
            "query",
            keys,
            default=default,
            source=source,
            plan=plan,
            tag="query keys",
        )

    def stage_erase(
        self,
        keys: np.ndarray,
        *,
        source: str = "device",
        plan: CascadePlan | None = None,
    ) -> StagedCascade:
        """Host-side distribution half of a deletion cascade."""
        return self._stage_keyed(
            "erase", keys, default=0, source=source, plan=plan, tag="erase keys"
        )

    def commit_staged(self, staged: StagedCascade, *, drain=None):
        """Commit one staged cascade: merge its private accounting and
        run the device half (growth, kernel phase, reverse, D2H).

        Commits must happen in stream order — all table mutation lives
        here, so sequence-numbered commits make any ``depth`` bit-identical
        to ``depth=1``.  ``drain`` is forwarded to the coordinated-growth
        hook (see :meth:`_maybe_grow_shards`).  Returns what the matching
        monolithic entry point returns: the report for ``insert``,
        ``(values, found, report)`` for ``query``, ``(erased, report)``
        for ``erase``.
        """
        report = staged.report
        log_mark = len(self.transfer_log)
        for rec in staged.log.records:
            self.transfer_log.add(rec)
        for gpu, local in enumerate(staged.counters):
            self.topology.devices[gpu].counter.merge(local)
        try:
            if staged.op == "insert":
                self._maybe_grow_shards(
                    staged.keys_per_gpu, report, drain=drain
                )
                self._kernel_phase(
                    "insert",
                    staged.keys_per_gpu,
                    staged.values_per_gpu,
                    report=report,
                )
                result = report
            elif staged.op == "query":
                result = self._commit_query(staged)
            elif staged.op == "erase":
                result = self._commit_erase(staged)
            else:  # pragma: no cover - stage_* only produce these three
                raise ConfigurationError(f"unknown staged op {staged.op!r}")
        finally:
            self._release_batch_buffers(staged.buffers)
        # growth during commit may have widened the shards: refresh the
        # resident footprint so the report reflects the post-commit table
        report.table_bytes = sum(s.table_bytes for s in self.shards)
        self._observe_cascade(report, log_mark)
        return result

    def discard_staged(self, staged: StagedCascade) -> None:
        """Release a staged cascade that will never commit.

        Frees its device staging buffers and drops the private
        accounting on the floor — used by the pipeline scheduler's error
        paths so an aborted stream cannot leak modelled VRAM.
        """
        self._release_batch_buffers(staged.buffers)

    def _commit_query(
        self, staged: StagedCascade
    ) -> tuple[np.ndarray, np.ndarray, CascadeReport]:
        report, plan, n = staged.report, staged.plan, staged.num_ops
        chunks = plan.chunks
        # per-shard queries; answers packed as (found << 32) | value
        # so the reverse exchange moves one word per key
        by_gpu = self._kernel_phase(
            "query", staged.keys_per_gpu, default=staged.default, report=report
        )
        results = []
        for gpu in range(self.num_gpus):
            res = by_gpu.get(gpu)
            if res is None:
                vals = np.empty(0, dtype=np.uint32)
                found = np.empty(0, dtype=bool)
            else:
                vals, found = res.values, res.found
            results.append(
                vals.astype(np.uint64)
                | (found.astype(np.uint64) << np.uint64(32))
            )

        answers = self._reverse_phase(
            results, staged.exchange, staged.splits, chunks, n, report, plan
        )
        values = (answers & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        found_out = (answers >> np.uint64(32)).astype(bool)

        chunk_sizes = [sl.stop - sl.start for sl in chunks]
        with obs.span("D2H", "transfer", op="query") as sp:
            report.d2h_per_gpu = np.array(
                [
                    chunk_sizes[gpu] * PAIR_BYTES
                    if staged.source == "host"
                    else 0
                    for gpu in range(self.num_gpus)
                ],
                dtype=np.int64,
            )
            report.d2h_bytes = int(report.d2h_per_gpu.sum())
            if sp is not None:
                sp.attrs["nbytes"] = report.d2h_bytes
            if staged.source == "host":
                for gpu in range(self.num_gpus):
                    if chunk_sizes[gpu]:
                        self.transfer_log.add(
                            TransferRecord(
                                kind=MemcpyKind.D2H,
                                nbytes=chunk_sizes[gpu] * PAIR_BYTES,
                                src_device=gpu,
                                dst_device=None,
                                tag="query results",
                            )
                        )
        # defaults for missing keys
        values[~found_out] = staged.default
        return values, found_out, report

    def _commit_erase(
        self, staged: StagedCascade
    ) -> tuple[np.ndarray, CascadeReport]:
        report, plan, n = staged.report, staged.plan, staged.num_ops
        by_gpu = self._kernel_phase("erase", staged.keys_per_gpu, report=report)
        results = []
        for gpu in range(self.num_gpus):
            res = by_gpu.get(gpu)
            erased = np.empty(0, dtype=bool) if res is None else res.erased
            results.append(erased.astype(np.uint64))

        answers = self._reverse_phase(
            results, staged.exchange, staged.splits, plan.chunks, n, report, plan
        )
        return answers.astype(bool), report

    # -- monolithic entry points ----------------------------------------------

    def insert(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        *,
        source: str = "host",
    ) -> CascadeReport:
        """Distributed insertion cascade.

        ``source="host"`` charges the initial PCIe transfer; ``"device"``
        models data already resident on (or generated on) the GPUs, the
        bypass §IV-B describes for k-mer-style on-device generation.
        """
        if source not in ("host", "device"):
            raise ConfigurationError(f"source must be 'host' or 'device', got {source!r}")
        k = check_keys(keys)
        v = check_values(values)
        check_same_length("keys", k, "values", v)

        with obs.span("insert cascade", "cascade", num_ops=k.shape[0]):
            staged = self.stage_insert(k, v, source=source)
            return self.commit_staged(staged)

    def query(
        self,
        keys: np.ndarray,
        *,
        default: int = 0,
        source: str = "host",
    ) -> tuple[np.ndarray, np.ndarray, CascadeReport]:
        """Distributed retrieval cascade; returns (values, found, report).

        The reverse transposition routes each answer back to the GPU and
        offset its key arrived from, so results line up with the input
        order exactly.
        """
        if source not in ("host", "device"):
            raise ConfigurationError(f"source must be 'host' or 'device', got {source!r}")
        k = check_keys(keys)

        with obs.span("query cascade", "cascade", num_ops=k.shape[0]):
            staged = self.stage_query(k, default=default, source=source)
            return self.commit_staged(staged)

    def erase(
        self,
        keys: np.ndarray,
        *,
        source: str = "device",
    ) -> tuple[np.ndarray, CascadeReport]:
        """Distributed deletion cascade; returns (erased-mask, report).

        Deletion is a barrier-delimited phase exactly as on a single GPU
        (§IV-A); the cascade shape matches retrieval — multisplit →
        transpose → erase → reverse — with tombstone writes instead of
        value reads.
        """
        if source not in ("host", "device"):
            raise ConfigurationError(f"source must be 'host' or 'device', got {source!r}")
        k = check_keys(keys)

        with obs.span("erase cascade", "cascade", num_ops=k.shape[0]):
            staged = self.stage_erase(k, source=source)
            return self.commit_staged(staged)

    def export(self) -> tuple[np.ndarray, np.ndarray]:
        """All stored pairs across shards."""
        ks, vs = [], []
        for shard in self.shards:
            sk, sv = shard.export()
            ks.append(sk)
            vs.append(sv)
        return np.concatenate(ks), np.concatenate(vs)

    def free(self) -> None:
        for shard in self.shards:
            shard.free()
        if self._owns_engine:
            self.engine.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedHashTable(gpus={self.num_gpus}, "
            f"capacity={self.total_capacity}, size={len(self)})"
        )
