"""The four distribution strategies of §IV-B (ablation A3).

The paper enumerates four ways to spread a hash map over m GPUs and
argues for *distributed multisplit transposition*:

1. **host-sided partitioning** — "can be ruled out from the very
   beginning since linear time reordering of elements in host RAM is
   almost as expensive as CPU-based hash map construction";
2. **system-wide lock-free insertion** — unified memory + system-wide
   atomics, "unreasonably slow in our preliminary experiments";
3. **unstructured distribution** — fastest insertion (no communication)
   but "querying is cumbersome ... we have no a priori information about
   the location of a certain key": every query fans out to all m GPUs;
4. **distributed multisplit transposition** — the design WarpDrive uses.

:func:`compare_strategies` measures strategies 3 and 4 by running the
real simulators and prices strategies 1 and 2 with documented models, so
the bench can reproduce the paper's qualitative ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import PAIR_BYTES
from ..core.table import WarpDriveHashTable
from ..errors import ConfigurationError
from ..perfmodel import calibration as cal
from ..perfmodel.cascade import time_cascade
from ..perfmodel.memmodel import kernel_seconds
from ..perfmodel.specs import XEON_E5_2680V4_NODE
from .distributed_table import DistributedHashTable
from .topology import Topology

__all__ = ["StrategyCost", "compare_strategies"]

#: sustained system-wide (cross-device, unified-memory) atomic rate per
#: GPU.  NVLink-remote atomics run at a few tens of millions per second —
#: two orders below local CAS — which is what made the paper discard the
#: approach after "preliminary experiments".
SYSTEM_WIDE_CAS_RATE = 4.0e7


@dataclass(frozen=True)
class StrategyCost:
    """Modelled insert and query seconds for one strategy."""

    name: str
    insert_seconds: float
    query_seconds: float
    note: str = ""

    @property
    def total(self) -> float:
        return self.insert_seconds + self.query_seconds


def compare_strategies(
    topology: Topology,
    keys: np.ndarray,
    values: np.ndarray,
    *,
    load_factor: float = 0.9,
    group_size: int = 4,
) -> dict[str, StrategyCost]:
    """Price insert+query of the given workload under all four strategies."""
    n = keys.shape[0]
    m = topology.num_devices
    if n < m:
        raise ConfigurationError("need at least one key per GPU")

    results: dict[str, StrategyCost] = {}

    # --- 4: distributed multisplit transposition (the real cascade) -----
    table = DistributedHashTable.for_load_factor(
        topology, n, load_factor, group_size=group_size
    )
    ins_rep = table.insert(keys, values, source="host")
    ins_t = time_cascade(ins_rep, table, topology).total
    _, _, qry_rep = table.query(keys, source="host")
    qry_t = time_cascade(qry_rep, table, topology).total
    results["multisplit_transposition"] = StrategyCost(
        "multisplit_transposition", ins_t, qry_t, "measured cascade"
    )
    table.free()

    # --- 3: unstructured distribution ------------------------------------
    # insertion: chunks go straight into per-GPU tables (no communication);
    # querying: no location info -> every GPU probes every key.
    for dev in topology.devices:
        dev.reset_counters()
    shard_tables = [
        WarpDriveHashTable.for_load_factor(
            max(n // m, 1), load_factor, group_size=group_size, device=dev
        )
        for dev in topology.devices
    ]
    bounds = np.linspace(0, n, m + 1).astype(np.int64)
    ins_kernel = 0.0
    h2d_per_gpu = np.zeros(m, dtype=np.int64)
    for gpu in range(m):
        sl = slice(int(bounds[gpu]), int(bounds[gpu + 1]))
        rep = shard_tables[gpu].insert(keys[sl], values[sl])
        ins_kernel = max(
            ins_kernel,
            kernel_seconds(
                rep,
                topology.devices[gpu].spec,
                table_bytes=shard_tables[gpu].table_bytes,
            ),
        )
        h2d_per_gpu[gpu] = (sl.stop - sl.start) * PAIR_BYTES
    ins_t = topology.host_transfer_time(h2d_per_gpu / cal.PCIE_EFFICIENCY) + ins_kernel

    # query: broadcast all n keys to every GPU (m×H2D), all shards probe
    qry_kernel = 0.0
    for gpu in range(m):
        vals, found = shard_tables[gpu].query(keys)
        rep = shard_tables[gpu].last_report
        qry_kernel = max(
            qry_kernel,
            kernel_seconds(
                rep,
                topology.devices[gpu].spec,
                table_bytes=shard_tables[gpu].table_bytes,
            ),
        )
    broadcast_bytes = np.full(m, n * 4, dtype=np.int64)
    result_bytes = np.full(m, n * PAIR_BYTES // m, dtype=np.int64)
    qry_t = (
        topology.host_transfer_time(broadcast_bytes / cal.PCIE_EFFICIENCY)
        + qry_kernel
        + topology.host_transfer_time(result_bytes / cal.PCIE_EFFICIENCY)
    )
    results["unstructured"] = StrategyCost(
        "unstructured",
        ins_t,
        qry_t,
        "measured; queries fan out to all GPUs",
    )
    for t in shard_tables:
        t.free()

    # --- 1: host-sided partitioning ---------------------------------------
    # CPU reorders all pairs in RAM before the transfers.  The paper:
    # "linear time reordering of elements in host RAM is almost as
    # expensive as CPU-based hash map construction" — so we price it like
    # one pass of the Folklore CPU map: hash + scattered write per pair,
    # bounded by the node's random-access DDR4 bandwidth and per-pair
    # bookkeeping (~400 M pairs/s).
    cpu = XEON_E5_2680V4_NODE
    reorder = max(
        2 * n * PAIR_BYTES / cpu.effective_random_bandwidth,
        n / 4.0e8,
    )
    results["host_sided"] = StrategyCost(
        "host_sided",
        reorder + topology.host_transfer_time(h2d_per_gpu / cal.PCIE_EFFICIENCY) + ins_kernel,
        qry_kernel
        + topology.host_transfer_time((np.full(m, n * 4 // m)) / cal.PCIE_EFFICIENCY)
        + topology.host_transfer_time((np.full(m, n * PAIR_BYTES // m)) / cal.PCIE_EFFICIENCY),
        "modelled: CPU-side reorder before transfers",
    )

    # --- 2: system-wide lock-free insertion -------------------------------
    # every CAS crosses the unified-memory fabric at remote-atomic rates
    ins_t2 = n / (SYSTEM_WIDE_CAS_RATE * m) + topology.host_transfer_time(
        h2d_per_gpu / cal.PCIE_EFFICIENCY
    )
    qry_t2 = n / (SYSTEM_WIDE_CAS_RATE * m * 2) + topology.host_transfer_time(
        (np.full(m, n * 4 // m)) / cal.PCIE_EFFICIENCY
    )
    results["system_wide_atomics"] = StrategyCost(
        "system_wide_atomics",
        ins_t2,
        qry_t2,
        "modelled: remote atomics over unified memory",
    )
    return results
