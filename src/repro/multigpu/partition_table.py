"""The m×m partition table T[gpu, part] and its transposition plan.

After each GPU multisplits its chunk, ``T[gpu, part]`` holds the count
(and, implicitly, pointer) of partition ``part`` residing on GPU
``gpu``.  Transposing T sends the ``m² − m`` off-diagonal entries to
their target devices so GPU ``i`` ends up with exactly the keys where
``p(k) = i``.  "Offsets are computed using row-wise exclusive prefix
scans over T for the senders and column-wise scans for the receivers."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import PAIR_BYTES
from ..errors import ConfigurationError

__all__ = ["PartitionTable", "TransferPlanEntry"]


@dataclass(frozen=True)
class TransferPlanEntry:
    """One all-to-all message: partition ``part`` from ``src`` to ``dst``.

    ``itemsize`` is the modelled wire bytes per pair — ``PAIR_BYTES``
    for packed shards, the quotiented record width for ``compact`` ones
    (:func:`repro.core.store.slot_record_bytes`).
    """

    src: int
    dst: int
    count: int
    itemsize: int = PAIR_BYTES

    @property
    def nbytes(self) -> int:
        return self.count * self.itemsize


@dataclass
class PartitionTable:
    """Counts matrix with the scans and plan the transposition needs.

    ``record_bytes`` sets the modelled bytes each exchanged pair
    occupies on the wire (default ``PAIR_BYTES``); distributed tables
    over ``compact`` shards pass the quotiented record width so the
    traffic matrix, the transfer plan, and every logged P2P record
    charge the narrower format end to end.
    """

    counts: np.ndarray  # shape (m, m): T[gpu, part]
    record_bytes: int = PAIR_BYTES

    def __post_init__(self):
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.counts.ndim != 2 or self.counts.shape[0] != self.counts.shape[1]:
            raise ConfigurationError(
                f"partition table must be square, got {self.counts.shape}"
            )
        if np.any(self.counts < 0):
            raise ConfigurationError("partition counts must be non-negative")
        self.record_bytes = int(self.record_bytes)
        if self.record_bytes < 1:
            raise ConfigurationError(
                f"record_bytes must be >= 1, got {self.record_bytes}"
            )

    @property
    def num_gpus(self) -> int:
        return int(self.counts.shape[0])

    def send_offsets(self) -> np.ndarray:
        """Row-wise exclusive prefix scan: where each partition starts in
        the sender's multisplit-ordered buffer."""
        out = np.zeros_like(self.counts)
        out[:, 1:] = np.cumsum(self.counts[:, :-1], axis=1)
        return out

    def recv_offsets(self) -> np.ndarray:
        """Column-wise exclusive prefix scan: where each sender's block
        lands in the receiver's concatenated partition buffer."""
        out = np.zeros_like(self.counts)
        out[1:, :] = np.cumsum(self.counts[:-1, :], axis=0)
        return out

    def recv_counts(self) -> np.ndarray:
        """Total elements each GPU receives: column sums of T."""
        return self.counts.sum(axis=0)

    def transposed(self) -> "PartitionTable":
        """The post-all-to-all table T^t[part, gpu]."""
        return PartitionTable(self.counts.T.copy(), record_bytes=self.record_bytes)

    def traffic_matrix(self) -> np.ndarray:
        """Bytes moved between each (src, dst) pair; diagonal is local."""
        bytes_matrix = self.counts * self.record_bytes
        out = bytes_matrix.copy()
        np.fill_diagonal(out, 0)
        return out

    def offdiagonal_bytes(self) -> int:
        """Total bytes crossing the interconnect (the m² − m messages)."""
        return int(self.traffic_matrix().sum())

    def reverse_traffic_matrix(self, itemsize: int = PAIR_BYTES) -> np.ndarray:
        """Bytes the reverse transposition moves: partition ``part`` sends
        ``T[src, part]`` answers of ``itemsize`` bytes back to ``src``.
        Entry ``[part, src]``; the diagonal (local answers) is zero."""
        if itemsize < 1:
            raise ConfigurationError(f"itemsize must be >= 1, got {itemsize}")
        out = self.counts.T * int(itemsize)
        np.fill_diagonal(out, 0)
        return out

    def plan(self) -> list[TransferPlanEntry]:
        """All-to-all message list, diagonal (local copies) excluded."""
        entries = []
        m = self.num_gpus
        for src in range(m):
            for dst in range(m):
                if src != dst and self.counts[src, dst] > 0:
                    entries.append(
                        TransferPlanEntry(
                            src=src,
                            dst=dst,
                            count=int(self.counts[src, dst]),
                            itemsize=self.record_bytes,
                        )
                    )
        return entries

    def imbalance(self) -> float:
        """max/mean ratio of per-GPU receive counts (1.0 = perfectly balanced)."""
        recv = self.recv_counts().astype(np.float64)
        mean = recv.mean()
        return float(recv.max() / mean) if mean > 0 else 1.0
