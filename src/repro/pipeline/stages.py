"""Pipeline stages and the hardware resources they occupy (Fig. 5).

"Each block within a batch utilizes different hardware resources of a
multi-GPU node (H2D: PCIe bus, MST: mainly NVLINK interconnection
network, INS: video memory)" — so cascades of *different* batches can
overlap as long as no two stages contend for the same resource.
PCIe is full duplex: host-to-device and device-to-host traffic ride
separate lanes, so the H2D of one batch overlaps the D2H of another —
which is what lets the paper's retrieval cascade reach a 45% reduction
despite carrying two PCIe legs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..perfmodel.cascade import CascadeTiming

__all__ = ["Stage", "insert_stages", "query_stages", "RESOURCES"]

#: the contended node resources (PCIe is full duplex: one lane each way)
RESOURCES = ("pcie_up", "pcie_down", "nvlink", "vram")


@dataclass(frozen=True)
class Stage:
    """One block of a batch cascade."""

    name: str
    resource: str
    seconds: float

    def __post_init__(self):
        if self.resource not in RESOURCES:
            raise ConfigurationError(
                f"resource must be one of {RESOURCES}, got {self.resource!r}"
            )
        if self.seconds < 0:
            raise ConfigurationError(f"stage seconds must be >= 0, got {self.seconds}")


def insert_stages(timing: CascadeTiming, *, include_pcie: bool = True) -> list[Stage]:
    """The H2D → MST → INS cascade of one insert batch.

    MST bundles multisplit + transposition, as in Fig. 5/11 ("the
    fractions of multisplit and transposition range between 2% and 4%").
    """
    stages = []
    if include_pcie and timing.h2d > 0:
        stages.append(Stage("H2D", "pcie_up", timing.h2d))
    stages.append(Stage("MST", "nvlink", timing.multisplit + timing.alltoall))
    stages.append(Stage("INS", "vram", timing.kernel))
    return stages


def query_stages(timing: CascadeTiming, *, include_pcie: bool = True) -> list[Stage]:
    """The H2D → MST → RET → (reverse) → D2H cascade of one query batch.

    The reverse transposition rides NVLink again; the result copy-back is
    the extra PCIe leg that makes host-sided retrieval slower than
    insertion (§V-C).
    """
    stages = []
    if include_pcie and timing.h2d > 0:
        stages.append(Stage("H2D", "pcie_up", timing.h2d))
    stages.append(Stage("MST", "nvlink", timing.multisplit + timing.alltoall))
    stages.append(Stage("RET", "vram", timing.kernel))
    stages.append(Stage("REV", "nvlink", timing.reverse))
    if include_pcie and timing.d2h > 0:
        stages.append(Stage("D2H", "pcie_down", timing.d2h))
    return stages
