"""Asynchronous batch-cascade overlap (Fig. 5 / Fig. 11)."""

from .driver import AsyncCascadeDriver, StreamResult
from .schedule import overlap_improvement, schedule_batches
from .scheduler import PipelineScheduler
from .stages import RESOURCES, Stage, insert_stages, query_stages
from .staging import ArenaSlot, PipelineAborted, StagingArena, StagingBudget
from .timeline import Span, Timeline

__all__ = [
    "Stage",
    "AsyncCascadeDriver",
    "StreamResult",
    "RESOURCES",
    "insert_stages",
    "query_stages",
    "schedule_batches",
    "overlap_improvement",
    "Span",
    "Timeline",
    "PipelineScheduler",
    "StagingArena",
    "StagingBudget",
    "ArenaSlot",
    "PipelineAborted",
]
