"""Asynchronous cascade overlap scheduler (Fig. 5 / Fig. 11).

WarpDrive "supports asynchronous insertion and querying with a
user-defined number of CPU threads".  Each CPU thread issues whole batch
cascades; within a batch the H2D → MST → INS chain stays sequential, but
stages of *different* batches overlap whenever their resources (PCIe,
NVLink, VRAM) are free.

The scheduler is a deterministic greedy list scheduler:

* batch ``b`` is issued by thread ``b mod T`` and cannot start before
  that thread's previous batch finished;
* each stage starts at the latest of (its predecessor stage's end, its
  resource's free time, its thread's availability);
* resources serve stages FCFS in batch order.

With ``T = 1`` this degenerates to the fully sequential cascade chain,
so the Fig. 11 comparison (Ins1 vs Ins2/Ins4) is just two runs of the
same scheduler.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ScheduleError
from .stages import Stage
from .timeline import Span, Timeline

__all__ = ["schedule_batches", "overlap_improvement"]


def schedule_batches(
    batches: Sequence[Sequence[Stage]],
    num_threads: int,
) -> Timeline:
    """Schedule batch cascades over the node's resources.

    Parameters
    ----------
    batches:
        One stage list per batch, in issue order.
    num_threads:
        CPU threads issuing cascades (1 = sequential baseline).
    """
    if num_threads < 1:
        raise ScheduleError(f"num_threads must be >= 1, got {num_threads}")
    timeline = Timeline()
    resource_free: dict[str, float] = {}

    # per-thread chains of (batch, stage) in issue order
    chains: list[list[tuple[int, Stage]]] = [[] for _ in range(num_threads)]
    for b, stages in enumerate(batches):
        thread = b % num_threads
        for stage in stages:
            chains[thread].append((b, stage))

    heads = [0] * num_threads  # next unscheduled stage per thread
    cursors = [0.0] * num_threads  # when each thread's previous stage ended

    # event-driven greedy: repeatedly run the stage that can start
    # earliest (resources are granted in *time* order, so a later batch's
    # H2D can slot in before an earlier batch's D2H — the overlap Fig. 5
    # depicts)
    remaining = sum(len(c) for c in chains)
    while remaining:
        best_thread = -1
        best_start = float("inf")
        best_batch = -1
        for t in range(num_threads):
            if heads[t] >= len(chains[t]):
                continue
            b, stage = chains[t][heads[t]]
            start = max(cursors[t], resource_free.get(stage.resource, 0.0))
            if start < best_start or (start == best_start and b < best_batch):
                best_thread, best_start, best_batch = t, start, b
        b, stage = chains[best_thread][heads[best_thread]]
        end = best_start + stage.seconds
        timeline.add(
            Span(
                batch=b,
                stage=stage.name,
                resource=stage.resource,
                start=best_start,
                end=end,
            )
        )
        resource_free[stage.resource] = end
        cursors[best_thread] = end
        heads[best_thread] += 1
        remaining -= 1

    timeline.verify_no_overlap()
    timeline.verify_batch_order()
    return timeline


def overlap_improvement(
    batches: Sequence[Sequence[Stage]],
    num_threads: int,
) -> tuple[Timeline, Timeline, float]:
    """Run sequential vs overlapped schedules; returns the reduction.

    The returned fraction matches the paper's metric ("execution times
    ... can be reduced by up to 36% for insertion, and 45% for
    querying"): ``1 − makespan(T) / makespan(1)``.
    """
    sequential = schedule_batches(batches, 1)
    overlapped = schedule_batches(batches, num_threads)
    if sequential.makespan <= 0:
        raise ScheduleError("cannot compare empty schedules")
    reduction = 1.0 - overlapped.makespan / sequential.makespan
    return sequential, overlapped, reduction
