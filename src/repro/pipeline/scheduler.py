"""The stage/commit pipeline scheduler behind ``AsyncCascadeDriver``.

One **stager thread** walks the batch stream in order, claims an arena
slot (blocking on the ying/yang rotation and the staging budget — the
backpressure of §IV-B's bounded pipeline), runs the host-side
distribution phase into it, and enqueues the staged cascade.  The
**calling thread** commits staged cascades strictly in sequence-number
order — all table mutation happens there, so results, counters, and
transfer logs are bit-identical to ``depth=1`` regardless of how far the
stager runs ahead.

The queue itself is unbounded; admission is bounded by the arena (at
most ``depth`` staged batches alive, at most ``budget`` bytes staged).
Error handling never strands a thread: a failing stage is reported to
the committer and re-raised there; a failing commit aborts the arena
(waking a blocked stager), joins the stager, and discards every staged
cascade still in the queue so their device buffers release.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Iterable

from .staging import PipelineAborted, StagingArena

__all__ = ["PipelineScheduler"]

_JOIN_TIMEOUT = 30.0


class PipelineScheduler:
    """Run a payload stream through stage (async) + commit (in order)."""

    def __init__(self, arena: StagingArena):
        self.arena = arena

    def run(
        self,
        payloads: Iterable,
        *,
        stage: Callable,
        commit: Callable,
        nbytes: Callable,
        discard: Callable | None = None,
    ) -> list:
        """Pipeline every payload; returns the commit results in order.

        ``stage(slot, seqno, payload)`` runs on the stager thread and
        returns the staged cascade; ``commit(seqno, staged)`` runs on
        the calling thread in ascending ``seqno``; ``nbytes(payload)``
        prices a payload's staging footprint for budget admission
        *before* staging starts; ``discard(staged)`` releases a staged
        cascade that will never commit (committer error paths).

        ``payloads`` may be a generator — batches materialize lazily on
        the stager thread, which is what makes larger-than-VRAM
        (out-of-core) streams ingestible under a bounded budget.
        """
        q: queue.SimpleQueue = queue.SimpleQueue()
        arena = self.arena

        def _stager() -> None:
            try:
                for seqno, payload in enumerate(payloads):
                    charge = int(nbytes(payload))
                    try:
                        slot = arena.acquire(seqno, charge)
                    except PipelineAborted:
                        return
                    try:
                        staged = stage(slot, seqno, payload)
                    except BaseException as exc:
                        arena.release(slot, charge)
                        q.put(("err", exc))
                        return
                    q.put(("item", seqno, slot, charge, staged))
            except BaseException as exc:  # payload iteration / pricing
                q.put(("err", exc))
            finally:
                q.put(("done",))

        thread = threading.Thread(
            target=_stager, name="repro-stager", daemon=True
        )
        thread.start()
        outputs: list = []
        try:
            while True:
                msg = q.get()
                if msg[0] == "done":
                    break
                if msg[0] == "err":
                    raise msg[1]
                _, seqno, slot, charge, staged = msg
                try:
                    outputs.append(commit(seqno, staged))
                finally:
                    arena.release(slot, charge)
        except BaseException:
            arena.abort()
            # the stager exits promptly now (acquire raises); anything it
            # managed to stage must still release its device buffers
            thread.join(timeout=_JOIN_TIMEOUT)
            while True:
                try:
                    msg = q.get_nowait()
                except queue.Empty:
                    break
                if msg[0] == "item":
                    _, _seq, slot, charge, staged = msg
                    if discard is not None:
                        try:
                            discard(staged)
                        except Exception:  # pragma: no cover - best effort
                            pass
                    arena.release(slot, charge)
            raise
        thread.join(timeout=_JOIN_TIMEOUT)
        return outputs
