"""Schedule timelines: spans, utilization, and ASCII rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ScheduleError
from ..obs.protocol import reportable_dict
from .stages import RESOURCES

__all__ = ["Span", "Timeline"]


@dataclass(frozen=True)
class Span:
    """One executed stage instance."""

    batch: int
    stage: str
    resource: str
    start: float
    end: float

    schema_version = 1

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys)."""
        return reportable_dict(
            self,
            {
                "batch": self.batch,
                "stage": self.stage,
                "resource": self.resource,
                "start": self.start,
                "end": self.end,
                "duration": self.duration,
            },
        )


@dataclass
class Timeline:
    """A completed schedule."""

    spans: list[Span] = field(default_factory=list)

    def add(self, span: Span) -> None:
        if span.end < span.start:
            raise ScheduleError(f"span ends before it starts: {span}")
        self.spans.append(span)

    @property
    def makespan(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def busy_time(self, resource: str) -> float:
        return sum(s.duration for s in self.spans if s.resource == resource)

    def utilization(self, resource: str) -> float:
        span = self.makespan
        return self.busy_time(resource) / span if span > 0 else 0.0

    def utilizations(self) -> dict[str, float]:
        return {r: self.utilization(r) for r in RESOURCES}

    def batch_span(self, batch: int) -> tuple[float, float]:
        spans = [s for s in self.spans if s.batch == batch]
        if not spans:
            raise ScheduleError(f"no spans recorded for batch {batch}")
        return min(s.start for s in spans), max(s.end for s in spans)

    def stage_totals(self) -> dict[str, float]:
        """Accumulated seconds per stage name (Fig. 11 decomposition)."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.stage] = out.get(s.stage, 0.0) + s.duration
        return out

    def verify_no_overlap(self) -> None:
        """Invariant check: each resource runs at most one stage at a time."""
        for resource in RESOURCES:
            spans = sorted(
                (s for s in self.spans if s.resource == resource),
                key=lambda s: s.start,
            )
            for a, b in zip(spans, spans[1:]):
                if b.start < a.end - 1e-12:
                    raise ScheduleError(
                        f"{resource}: spans overlap — {a} and {b}"
                    )

    def verify_batch_order(self, num_stages: dict[int, int] | None = None) -> None:
        """Invariant: stages within a batch never overlap or reorder."""
        batches: dict[int, list[Span]] = {}
        for s in self.spans:
            batches.setdefault(s.batch, []).append(s)
        for batch, spans in batches.items():
            for a, b in zip(spans, spans[1:]):
                if b.start < a.end - 1e-12:
                    raise ScheduleError(
                        f"batch {batch}: stage {b.stage} started before "
                        f"{a.stage} finished"
                    )
            if num_stages is not None and len(spans) != num_stages.get(batch, len(spans)):
                raise ScheduleError(
                    f"batch {batch}: expected {num_stages[batch]} stages, "
                    f"got {len(spans)}"
                )

    def render(self, *, width: int = 72) -> str:
        """ASCII Gantt chart, one row per resource (Fig. 5 style).

        Drawn by the shared :func:`repro.obs.render_rows` renderer — the
        same one behind measured timelines and exported traces.
        """
        from ..obs.export import render_rows

        rows = [
            (
                resource,
                [
                    (s.start, s.end, str(s.batch % 10))
                    for s in self.spans
                    if s.resource == resource
                ],
            )
            for resource in RESOURCES
        ]
        return render_rows(
            rows,
            width=width,
            makespan=self.makespan,
            label_width=7,
            empty_message="(empty timeline)",
        )
