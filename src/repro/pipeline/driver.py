"""Asynchronous streaming driver — the paper's third contribution as API.

"WarpDrive supports asynchronous insertion and querying with a
user-defined number of CPU threads in order to fully utilize the
available hardware resources" (§IV-B).  The driver consumes a batch
stream and executes every cascade on a
:class:`~repro.multigpu.distributed_table.DistributedHashTable`, pricing
each batch with the perf model and scheduling the stage timeline with
the requested thread count — returning both the data-structure results
and the modelled overlapped wall time.

With ``depth >= 2`` the driver is a *real* pipeline scheduler: a stager
thread runs batch ``i+1``'s host-side distribution phase into a
ying/yang staging arena (:mod:`repro.pipeline.staging`) while the
calling thread commits batch ``i`` — bounded by a modelled-VRAM staging
budget, with stream-order sequence-numbered commits keeping every depth
bit-identical to ``depth=1``.  Because batches materialize lazily on the
stager thread, a generator stream larger than the modelled VRAM ingests
out-of-core under the budget's backpressure.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..exec.metrics import MeasuredTimeline, ShardSpan
from ..multigpu.distributed_table import CascadeReport, DistributedHashTable
from ..obs import runtime as obs
from ..obs.protocol import reportable_dict
from ..options import UNSET, reject_unknown, resolve_renamed
from ..perfmodel.cascade import time_cascade
from ..perfmodel.memmodel import throughput
from .schedule import schedule_batches
from .scheduler import PipelineScheduler
from .stages import insert_stages, query_stages
from .staging import StagingArena, StagingBudget
from .timeline import Timeline

__all__ = ["StreamResult", "AsyncCascadeDriver"]

#: accepted ``pace=`` vocabulary (see :class:`AsyncCascadeDriver`)
PACE_MODES = ("none", "modelled")


@dataclass
class StreamResult:
    """Outcome of one streamed operation sequence."""

    #: overlapped schedule of all batch cascades
    timeline: Timeline
    #: the T=1 (fully sequential) schedule for comparison
    sequential: Timeline
    #: total key-value operations streamed
    num_ops: int
    #: query streams: concatenated values and found mask, input order
    values: np.ndarray | None = None
    found: np.ndarray | None = None
    #: real wall-clock spans (``measure=True`` drivers only)
    measured: MeasuredTimeline | None = None
    #: in-flight batch depth the stream ran with
    depth: int = 1
    #: device-occupancy pacing mode the stream ran with
    pace: str = "none"
    #: total stager backpressure wait (budget-full + slot-busy), seconds
    stall_seconds: float = 0.0
    #: high-water mark of staged-but-uncommitted bytes
    peak_staged_bytes: int = 0

    schema_version = 2

    @property
    def makespan(self) -> float:
        return self.timeline.makespan

    @property
    def measured_makespan(self) -> float | None:
        """Real seconds the stream took.

        ``None`` when the driver ran with ``measure=False`` — there is
        no measurement, and returning a fake ``0.0`` would poison
        downstream statistics.  Callers needing a number should test
        ``result.measured is not None`` first.
        """
        return self.measured.makespan if self.measured is not None else None

    @property
    def reduction(self) -> float:
        """Wall-time reduction vs the sequential schedule (Fig. 11)."""
        if self.sequential.makespan <= 0:
            return 0.0
        return 1.0 - self.timeline.makespan / self.sequential.makespan

    @property
    def ops_per_second(self) -> float:
        """Stream throughput in operations per second.

        Prefers the *measured* makespan when the driver ran with
        ``measure=True`` — real seconds are authoritative whenever both
        exist (``docs/execution.md``) — and falls back to the modelled
        overlapped makespan otherwise.
        """
        span = self.measured_makespan
        if span is not None and span > 0:
            return throughput(self.num_ops, span)
        return throughput(self.num_ops, self.makespan)

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys).

        Array payloads (``values``/``found``) are summarized, not
        dumped — stream results can hold millions of elements.
        """
        return reportable_dict(
            self,
            {
                "num_ops": self.num_ops,
                "makespan": self.makespan,
                "sequential_makespan": self.sequential.makespan,
                "reduction": self.reduction,
                "ops_per_second": self.ops_per_second,
                "measured_makespan": self.measured_makespan,
                "depth": self.depth,
                "pace": self.pace,
                "stall_seconds": self.stall_seconds,
                "peak_staged_bytes": self.peak_staged_bytes,
                "num_values": (
                    None if self.values is None else int(self.values.shape[0])
                ),
                "num_found": (
                    None if self.found is None else int(self.found.sum())
                ),
                "spans": [s.to_dict() for s in self.timeline.spans],
                "measured_spans": (
                    []
                    if self.measured is None
                    else [s.to_dict() for s in self.measured.spans]
                ),
            },
        )


class _Pacer:
    """Real-time device-occupancy model behind ``pace="modelled"``.

    ``launch`` marks a committed batch's modelled kernel as occupying
    the devices; ``drain`` sleeps until the modelled device is idle
    again.  The sleep releases the GIL, so under ``depth >= 2`` the
    stager thread stages the next wave *during* the drain — the measured
    overlap is real concurrency against an explicitly modelled device,
    not a fabricated number.  Every depth drains the same modelled
    kernel seconds (the same cascades are committed), so any measured
    makespan reduction between depths is attributable purely to overlap.
    """

    def __init__(self, enabled: bool):
        self.enabled = enabled
        #: absolute ``perf_counter`` instant the modelled device frees up
        self.device_free_at = 0.0
        self.paced_seconds = 0.0

    def launch(self, kernel_seconds: float) -> None:
        """Occupy the modelled device for ``kernel_seconds`` more."""
        if not self.enabled or kernel_seconds <= 0:
            return
        now = time.perf_counter()
        self.device_free_at = max(self.device_free_at, now) + kernel_seconds

    def drain(self, reason: str) -> tuple[float, float] | None:
        """Sleep until the modelled device is idle.

        Returns the ``(start, end)`` wall instants of the wait, or
        ``None`` when nothing was in flight.
        """
        if not self.enabled:
            return None
        t0 = time.perf_counter()
        remaining = self.device_free_at - t0
        if remaining <= 0:
            return None
        with obs.span(
            "pipeline.pace", "pipeline", reason=reason, seconds=remaining
        ):
            time.sleep(remaining)
        t1 = time.perf_counter()
        self.paced_seconds += t1 - t0
        return (t0, t1)


class AsyncCascadeDriver:
    """Streams batches through a distributed table with overlap.

    Batches of equal size hit the table's cascade-plan cache
    (:mod:`repro.multigpu.plan`): the chunk slices, key-only packing
    planes, and reverse-routing scratch of the first wave are reused by
    every following wave, and with ``kernels="compiled"`` tables the
    shard loops launch from the warm process-local JIT cache — the
    compile-once/launch-many regime the paper's throughput numbers
    assume.

    Parameters
    ----------
    table:
        The target distributed hash map.  Alternatively pass
        ``total_capacity=`` (with the unified ``topology=`` option, see
        :mod:`repro.options`) and the driver builds — and owns — its own
        :class:`DistributedHashTable`; call :meth:`close` to free it.
    topology:
        Interconnect spec for a driver-owned table (a
        :class:`~repro.multigpu.topology.Topology`, ``TopologySpec``, or
        spec string like ``"cluster:2x4"``).  Invalid together with an
        explicit ``table`` — the table already fixes its topology.
    total_capacity:
        Aggregate slot count of the driver-owned table.
    num_threads:
        CPU threads in the *modelled* stage schedule (the paper
        evaluates 1, 2, 4).
    scale:
        Optional projection factor per batch (scaled-down batches standing
        in for paper-size ones).
    measure:
        When True, also *measure* each batch cascade with a monotonic
        clock and attach a :class:`~repro.exec.MeasuredTimeline` to the
        result — real seconds from the execution engine next to the
        modelled makespan (``docs/execution.md``).  (``wall_clock=`` is
        the deprecated spelling; see :mod:`repro.options`.)
    depth:
        In-flight batch depth.  ``1`` (default) runs each cascade to
        completion before the next one starts; ``depth >= 2`` turns the
        stream into a real pipeline: a stager thread runs batch
        ``i+1``'s distribution phase into a ying/yang staging arena
        while the calling thread commits batch ``i``, with results,
        counters, and transfer logs bit-identical to ``depth=1``
        (``docs/streaming_pipeline.md``).
    staging_budget:
        Byte ceiling for staged-but-uncommitted cascades (modelled VRAM
        set aside for staging buffers).  The stager blocks when the
        budget is full — the pipeline's backpressure, surfaced as
        ``pipeline.stall`` spans/metrics.  ``None`` (default) budgets
        half the node's free modelled VRAM at stream start.
    pace:
        ``"none"`` (default) or ``"modelled"``.  Modelled pacing makes
        the modelled kernel occupancy take *real* time: after each
        commit the driver sleeps until the modelled device would be
        free, for every depth, so measured makespans compare the same
        modelled device across depths and any reduction comes purely
        from overlap.  This is an explicit simulation mode for overlap
        experiments on hosts without accelerators — it never changes
        results, only wall time.
    """

    def __init__(
        self,
        table: DistributedHashTable | None = None,
        *,
        topology=UNSET,
        total_capacity: int | None = None,
        num_threads: int = 4,
        scale: float = 1.0,
        measure: bool = UNSET,
        depth: int = 1,
        staging_budget: int | None = None,
        pace: str = "none",
        **legacy,
    ):
        if table is None:
            if total_capacity is None:
                raise ConfigurationError(
                    "AsyncCascadeDriver: pass a table, or total_capacity= "
                    "(optionally with topology=) to build one"
                )
            table = DistributedHashTable(
                total_capacity,
                topology=None if topology is UNSET else topology,
            )
            self._owns_table = True
        else:
            if topology is not UNSET:
                raise ConfigurationError(
                    "AsyncCascadeDriver: got both a table and 'topology='; "
                    "the table already fixes its topology"
                )
            if total_capacity is not None:
                raise ConfigurationError(
                    "AsyncCascadeDriver: got both a table and 'total_capacity='"
                )
            self._owns_table = False
        measure = resolve_renamed(
            "AsyncCascadeDriver",
            legacy,
            old="wall_clock",
            new="measure",
            value=measure,
            default=False,
        )
        reject_unknown("AsyncCascadeDriver", legacy)
        if num_threads < 1:
            raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
        if scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {scale}")
        if int(depth) < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if pace not in PACE_MODES:
            raise ConfigurationError(
                f"pace must be one of {PACE_MODES}, got {pace!r}"
            )
        if staging_budget is not None and int(staging_budget) <= 0:
            raise ConfigurationError(
                f"staging_budget must be > 0 bytes, got {staging_budget}"
            )
        self.table = table
        self.num_threads = num_threads
        self.scale = scale
        self.measure = bool(measure)
        self.depth = int(depth)
        self.staging_budget = (
            None if staging_budget is None else int(staging_budget)
        )
        self.pace = pace

    def close(self) -> None:
        """Free the table if this driver built it (``total_capacity=``).

        No-op for drivers wrapping a caller-supplied table — the caller
        owns that table's lifetime.
        """
        if self._owns_table:
            self.table.free()
            self._owns_table = False

    @property
    def wall_clock(self) -> bool:
        """Deprecated alias for :attr:`measure`."""
        return self.measure

    def _resolve_budget(self) -> int:
        """The staging byte ceiling for one stream (half free VRAM)."""
        if self.staging_budget is not None:
            return self.staging_budget
        free = sum(d.free_bytes for d in self.table.topology.devices)
        return max(free // 2, 1)

    def _record_batch(
        self,
        measured: MeasuredTimeline | None,
        op: str,
        report: CascadeReport,
        epoch: float,
        batch_start: float,
    ) -> None:
        """Append one batch's measured spans (epoch-relative seconds)."""
        if measured is None:
            return
        now = time.perf_counter()
        measured.add(ShardSpan(-1, f"{op} batch", batch_start - epoch, now - epoch))
        # the host-side distribution phases (multisplit + transpose +
        # reverse) as one span anchored at the batch start — the cost the
        # fused path shrinks, visible next to the kernel spans
        if report.distribution_wall_seconds > 0:
            measured.add(
                ShardSpan(
                    -1,
                    f"{op} distribution",
                    batch_start - epoch,
                    batch_start - epoch + report.distribution_wall_seconds,
                )
            )
        # a mid-batch coordinated shard growth, anchored at the batch start
        # (it runs between the transposition and the kernel phase)
        if report.grow_wall_seconds > 0:
            measured.add(
                ShardSpan(
                    -1,
                    f"{op} grow",
                    batch_start - epoch,
                    batch_start - epoch + report.grow_wall_seconds,
                )
            )
        # kernel spans are 0-based at the kernel phase; rebase to the epoch
        offset = (now - epoch) - report.kernel_wall_seconds
        measured.extend(report.kernel_spans, offset=offset)

    @staticmethod
    def _record_pace(
        measured: MeasuredTimeline | None,
        epoch: float,
        op: str,
        window: tuple[float, float] | None,
    ) -> None:
        """Append one pacing drain as a measured span (if any)."""
        if measured is not None and window is not None:
            t0, t1 = window
            measured.add(ShardSpan(-1, f"{op} pace", t0 - epoch, t1 - epoch))

    def insert_stream(
        self, batches: Iterable[tuple[np.ndarray, np.ndarray]]
    ) -> StreamResult:
        """Insert (keys, values) batches; returns the overlapped timeline.

        With ``depth >= 2`` the batches stage ahead on the pipeline's
        stager thread; results and table state stay bit-identical to
        ``depth=1``.
        """
        if self.depth > 1:
            return self._pipelined_stream("insert", batches)
        stage_lists = []
        total = 0
        measured = MeasuredTimeline() if self.wall_clock else None
        pacer = _Pacer(self.pace == "modelled")
        epoch = time.perf_counter()
        for i, (keys, values) in enumerate(batches):
            with obs.span("insert batch", "batch", index=i):
                batch_start = time.perf_counter()
                report = self.table.insert(keys, values, source="host")
                self._record_batch(measured, "insert", report, epoch, batch_start)
                timing = time_cascade(
                    report, self.table, self.table.topology, scale=self.scale
                )
                stage_lists.append(insert_stages(timing))
                total += int(np.asarray(keys).shape[0])
            # depth=1: the device drains before the next batch stages
            pacer.launch(timing.kernel)
            self._record_pace(measured, epoch, "insert", pacer.drain("inline"))
        return StreamResult(
            timeline=schedule_batches(stage_lists, self.num_threads),
            sequential=schedule_batches(stage_lists, 1),
            num_ops=int(total * self.scale),
            measured=measured,
            depth=self.depth,
            pace=self.pace,
        )

    def query_stream(self, batches: Iterable[np.ndarray]) -> StreamResult:
        """Query key batches; results concatenate in stream order.

        With ``depth >= 2`` the batches stage ahead on the pipeline's
        stager thread; values and found masks stay bit-identical to
        ``depth=1``.
        """
        if self.depth > 1:
            return self._pipelined_stream("query", batches)
        stage_lists = []
        all_values: list[np.ndarray] = []
        all_found: list[np.ndarray] = []
        total = 0
        measured = MeasuredTimeline() if self.wall_clock else None
        pacer = _Pacer(self.pace == "modelled")
        epoch = time.perf_counter()
        for i, keys in enumerate(batches):
            with obs.span("query batch", "batch", index=i):
                batch_start = time.perf_counter()
                values, found, report = self.table.query(keys, source="host")
                self._record_batch(measured, "query", report, epoch, batch_start)
                timing = time_cascade(
                    report, self.table, self.table.topology, scale=self.scale
                )
                stage_lists.append(query_stages(timing))
                all_values.append(values)
                all_found.append(found)
                total += int(np.asarray(keys).shape[0])
            pacer.launch(timing.kernel)
            self._record_pace(measured, epoch, "query", pacer.drain("inline"))
        return StreamResult(
            timeline=schedule_batches(stage_lists, self.num_threads),
            sequential=schedule_batches(stage_lists, 1),
            num_ops=int(total * self.scale),
            values=np.concatenate(all_values) if all_values else np.empty(0, np.uint32),
            found=np.concatenate(all_found) if all_found else np.empty(0, bool),
            measured=measured,
            depth=self.depth,
            pace=self.pace,
        )

    def _pipelined_stream(self, op: str, batches: Iterable) -> StreamResult:
        """The ``depth >= 2`` overlapped path (§IV-B's pipeline).

        A stager thread walks ``batches`` in order, stages each into an
        arena slot (blocking on the ying/yang rotation and the staging
        budget), and the calling thread commits staged cascades strictly
        in sequence-number order — so all table mutation, counter
        merging, and transfer logging happen exactly as in the inline
        path, just overlapped with the next wave's distribution phase.
        """
        table = self.table
        m = table.num_gpus
        budget = StagingBudget(self._resolve_budget())
        arena = StagingArena(self.depth, budget)
        pacer = _Pacer(self.pace == "modelled")
        measured = MeasuredTimeline() if self.wall_clock else None
        stage_lists: list = []
        all_values: list[np.ndarray] = []
        all_found: list[np.ndarray] = []
        totals = {"ops": 0}
        epoch = time.perf_counter()

        def _nbytes(payload) -> int:
            # staged footprint: one packed uint64 plane per pair/key
            keys = payload[0] if op == "insert" else payload
            return int(np.asarray(keys).shape[0]) * 8

        def _stage(slot, seqno, payload):
            t0 = time.perf_counter()
            with obs.span(f"{op} stage", "pipeline", index=seqno):
                if op == "insert":
                    keys, values = payload
                    plan = slot.plans.get(
                        "insert", int(np.asarray(keys).shape[0]), m
                    )
                    staged = table.stage_insert(
                        keys, values, source="host", plan=plan
                    )
                else:
                    plan = slot.plans.get(
                        "query", int(np.asarray(payload).shape[0]), m
                    )
                    staged = table.stage_query(payload, source="host", plan=plan)
            staged.seqno = seqno
            return (staged, t0, time.perf_counter())

        def _drain_in_flight():
            # coordinated growth: the modelled device must be idle first
            self._record_pace(measured, epoch, op, pacer.drain("grow"))

        def _commit(seqno, item):
            staged, s0, s1 = item
            # the previous wave's modelled kernel must finish before this
            # wave's commit touches the shards; the stager keeps staging
            # through this wait — that concurrency is the measured overlap
            self._record_pace(measured, epoch, op, pacer.drain("commit"))
            c0 = time.perf_counter()
            with obs.span(f"{op} batch", "batch", index=seqno):
                out = table.commit_staged(staged, drain=_drain_in_flight)
            c1 = time.perf_counter()
            report = staged.report
            timing = time_cascade(report, table, table.topology, scale=self.scale)
            pacer.launch(timing.kernel)
            stage_lists.append(
                insert_stages(timing) if op == "insert" else query_stages(timing)
            )
            totals["ops"] += staged.num_ops
            if measured is not None:
                measured.add(ShardSpan(-1, f"{op} batch", s0 - epoch, c1 - epoch))
                # the distribution span carries the stager thread's real
                # instants — under load it genuinely overlaps the previous
                # batch's commit/pace spans (Fig. 5)
                measured.add(
                    ShardSpan(-1, f"{op} distribution", s0 - epoch, s1 - epoch)
                )
                if report.grow_wall_seconds > 0:
                    measured.add(
                        ShardSpan(
                            -1,
                            f"{op} grow",
                            c0 - epoch,
                            c0 - epoch + report.grow_wall_seconds,
                        )
                    )
                offset = (c1 - epoch) - report.kernel_wall_seconds
                measured.extend(report.kernel_spans, offset=offset)
            if op == "query":
                values, found, _ = out
                all_values.append(values)
                all_found.append(found)
            return out

        scheduler = PipelineScheduler(arena)
        scheduler.run(
            batches,
            stage=_stage,
            commit=_commit,
            nbytes=_nbytes,
            discard=lambda item: table.discard_staged(item[0]),
        )
        # stream end: the last modelled kernel finishes before we report
        self._record_pace(measured, epoch, op, pacer.drain("final"))

        result = StreamResult(
            timeline=schedule_batches(stage_lists, self.num_threads),
            sequential=schedule_batches(stage_lists, 1),
            num_ops=int(totals["ops"] * self.scale),
            measured=measured,
            depth=self.depth,
            pace=self.pace,
            stall_seconds=arena.stall_seconds,
            peak_staged_bytes=budget.peak_bytes,
        )
        if op == "query":
            result.values = (
                np.concatenate(all_values)
                if all_values
                else np.empty(0, np.uint32)
            )
            result.found = (
                np.concatenate(all_found) if all_found else np.empty(0, bool)
            )
        return result
