"""Asynchronous streaming driver — the paper's third contribution as API.

"WarpDrive supports asynchronous insertion and querying with a
user-defined number of CPU threads in order to fully utilize the
available hardware resources" (§IV-B).  The driver consumes a batch
stream, executes every cascade functionally on a
:class:`~repro.multigpu.distributed_table.DistributedHashTable`, prices
each batch with the perf model, and schedules the stage timeline with
the requested thread count — returning both the data-structure results
and the modelled overlapped wall time.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..exec.metrics import MeasuredTimeline, ShardSpan
from ..multigpu.distributed_table import CascadeReport, DistributedHashTable
from ..obs import runtime as obs
from ..obs.protocol import reportable_dict
from ..options import UNSET, reject_unknown, resolve_renamed
from ..perfmodel.cascade import time_cascade
from ..perfmodel.memmodel import throughput
from .schedule import schedule_batches
from .stages import insert_stages, query_stages
from .timeline import Timeline

__all__ = ["StreamResult", "AsyncCascadeDriver"]


@dataclass
class StreamResult:
    """Outcome of one streamed operation sequence."""

    #: overlapped schedule of all batch cascades
    timeline: Timeline
    #: the T=1 (fully sequential) schedule for comparison
    sequential: Timeline
    #: total key-value operations streamed
    num_ops: int
    #: query streams: concatenated values and found mask, input order
    values: np.ndarray | None = None
    found: np.ndarray | None = None
    #: real wall-clock spans (``measure=True`` drivers only)
    measured: MeasuredTimeline | None = None

    schema_version = 1

    @property
    def makespan(self) -> float:
        return self.timeline.makespan

    @property
    def measured_makespan(self) -> float | None:
        """Real seconds the stream took.

        ``None`` when the driver ran with ``measure=False`` — there is
        no measurement, and returning a fake ``0.0`` would poison
        downstream statistics.  Callers needing a number should test
        ``result.measured is not None`` first.
        """
        return self.measured.makespan if self.measured is not None else None

    @property
    def reduction(self) -> float:
        """Wall-time reduction vs the sequential schedule (Fig. 11)."""
        if self.sequential.makespan <= 0:
            return 0.0
        return 1.0 - self.timeline.makespan / self.sequential.makespan

    @property
    def ops_per_second(self) -> float:
        return throughput(self.num_ops, self.makespan)

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys).

        Array payloads (``values``/``found``) are summarized, not
        dumped — stream results can hold millions of elements.
        """
        return reportable_dict(
            self,
            {
                "num_ops": self.num_ops,
                "makespan": self.makespan,
                "sequential_makespan": self.sequential.makespan,
                "reduction": self.reduction,
                "ops_per_second": self.ops_per_second,
                "measured_makespan": self.measured_makespan,
                "num_values": (
                    None if self.values is None else int(self.values.shape[0])
                ),
                "num_found": (
                    None if self.found is None else int(self.found.sum())
                ),
                "spans": [s.to_dict() for s in self.timeline.spans],
                "measured_spans": (
                    []
                    if self.measured is None
                    else [s.to_dict() for s in self.measured.spans]
                ),
            },
        )


class AsyncCascadeDriver:
    """Streams batches through a distributed table with overlap.

    Batches of equal size hit the table's cascade-plan cache
    (:mod:`repro.multigpu.plan`): the chunk slices, key-only packing
    planes, and reverse-routing scratch of the first wave are reused by
    every following wave, and with ``kernels="compiled"`` tables the
    shard loops launch from the warm process-local JIT cache — the
    compile-once/launch-many regime the paper's throughput numbers
    assume.

    Parameters
    ----------
    table:
        The target distributed hash map.
    num_threads:
        CPU threads issuing cascades (the paper evaluates 1, 2, 4).
    scale:
        Optional projection factor per batch (scaled-down batches standing
        in for paper-size ones).
    measure:
        When True, also *measure* each batch cascade with a monotonic
        clock and attach a :class:`~repro.exec.MeasuredTimeline` to the
        result — real seconds from the execution engine next to the
        modelled makespan (``docs/execution.md``).  (``wall_clock=`` is
        the deprecated spelling; see :mod:`repro.options`.)
    """

    def __init__(
        self,
        table: DistributedHashTable,
        *,
        num_threads: int = 4,
        scale: float = 1.0,
        measure: bool = UNSET,
        **legacy,
    ):
        measure = resolve_renamed(
            "AsyncCascadeDriver",
            legacy,
            old="wall_clock",
            new="measure",
            value=measure,
            default=False,
        )
        reject_unknown("AsyncCascadeDriver", legacy)
        if num_threads < 1:
            raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
        if scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {scale}")
        self.table = table
        self.num_threads = num_threads
        self.scale = scale
        self.measure = bool(measure)

    @property
    def wall_clock(self) -> bool:
        """Deprecated alias for :attr:`measure`."""
        return self.measure

    def _record_batch(
        self,
        measured: MeasuredTimeline | None,
        op: str,
        report: CascadeReport,
        epoch: float,
        batch_start: float,
    ) -> None:
        """Append one batch's measured spans (epoch-relative seconds)."""
        if measured is None:
            return
        now = time.perf_counter()
        measured.add(ShardSpan(-1, f"{op} batch", batch_start - epoch, now - epoch))
        # the host-side distribution phases (multisplit + transpose +
        # reverse) as one span anchored at the batch start — the cost the
        # fused path shrinks, visible next to the kernel spans
        if report.distribution_wall_seconds > 0:
            measured.add(
                ShardSpan(
                    -1,
                    f"{op} distribution",
                    batch_start - epoch,
                    batch_start - epoch + report.distribution_wall_seconds,
                )
            )
        # a mid-batch coordinated shard growth, anchored at the batch start
        # (it runs between the transposition and the kernel phase)
        if report.grow_wall_seconds > 0:
            measured.add(
                ShardSpan(
                    -1,
                    f"{op} grow",
                    batch_start - epoch,
                    batch_start - epoch + report.grow_wall_seconds,
                )
            )
        # kernel spans are 0-based at the kernel phase; rebase to the epoch
        offset = (now - epoch) - report.kernel_wall_seconds
        measured.extend(report.kernel_spans, offset=offset)

    def insert_stream(
        self, batches: Iterable[tuple[np.ndarray, np.ndarray]]
    ) -> StreamResult:
        """Insert (keys, values) batches; returns the overlapped timeline."""
        stage_lists = []
        total = 0
        measured = MeasuredTimeline() if self.wall_clock else None
        epoch = time.perf_counter()
        for i, (keys, values) in enumerate(batches):
            with obs.span("insert batch", "batch", index=i):
                batch_start = time.perf_counter()
                report = self.table.insert(keys, values, source="host")
                self._record_batch(measured, "insert", report, epoch, batch_start)
                timing = time_cascade(
                    report, self.table, self.table.topology, scale=self.scale
                )
                stage_lists.append(insert_stages(timing))
                total += int(np.asarray(keys).shape[0])
        return StreamResult(
            timeline=schedule_batches(stage_lists, self.num_threads),
            sequential=schedule_batches(stage_lists, 1),
            num_ops=int(total * self.scale),
            measured=measured,
        )

    def query_stream(self, batches: Iterable[np.ndarray]) -> StreamResult:
        """Query key batches; results concatenate in stream order."""
        stage_lists = []
        all_values: list[np.ndarray] = []
        all_found: list[np.ndarray] = []
        total = 0
        measured = MeasuredTimeline() if self.wall_clock else None
        epoch = time.perf_counter()
        for i, keys in enumerate(batches):
            with obs.span("query batch", "batch", index=i):
                batch_start = time.perf_counter()
                values, found, report = self.table.query(keys, source="host")
                self._record_batch(measured, "query", report, epoch, batch_start)
                timing = time_cascade(
                    report, self.table, self.table.topology, scale=self.scale
                )
                stage_lists.append(query_stages(timing))
                all_values.append(values)
                all_found.append(found)
                total += int(np.asarray(keys).shape[0])
        return StreamResult(
            timeline=schedule_batches(stage_lists, self.num_threads),
            sequential=schedule_batches(stage_lists, 1),
            num_ops=int(total * self.scale),
            values=np.concatenate(all_values) if all_values else np.empty(0, np.uint32),
            found=np.concatenate(all_found) if all_found else np.empty(0, bool),
            measured=measured,
        )
