"""Double-buffered staging arenas + modelled-VRAM staging budgets.

The paper's async pipeline stages batch *i+1* on the host while batch
*i* occupies the devices, using "one double buffer per GPU of sufficient
size" (Fig. 4) — the classic ying/yang scheme.  This module provides the
bounded in-flight machinery behind ``AsyncCascadeDriver(depth=...)``:

* a :class:`StagingBudget` charges every staged-but-uncommitted cascade
  against a byte ceiling (modelled VRAM set aside for staging).  A
  blocking :meth:`~StagingBudget.acquire` is the *backpressure* point:
  when the budget is full the stager stalls, recorded as a
  ``pipeline.stall`` span plus ``pipeline.stall.*`` metrics and the
  ``queue.pipeline.staging_bytes`` high-water gauge in :mod:`repro.obs`.
* a :class:`StagingArena` multiplexes ``depth`` slots in ying/yang
  rotation (batch ``i`` stages into slot ``i % depth``).  Each slot owns
  a private :class:`~repro.multigpu.plan.PlanCache` so two in-flight
  batches never alias plan scratch (``perm`` / ``gather_out`` / zero
  planes).  A slot is reusable only after its previous occupant has
  fully *committed* — not merely been dequeued — because the commit's
  reverse phase still reads the plan buffers staged into it.

Both primitives support :meth:`abort`, which wakes any blocked waiter
with :class:`PipelineAborted` so a failing committer cannot strand the
stager thread.
"""

from __future__ import annotations

import threading
import time

from ..errors import AllocationError, ConfigurationError
from ..multigpu.plan import PlanCache
from ..obs import runtime as obs

__all__ = ["PipelineAborted", "StagingBudget", "StagingArena", "ArenaSlot"]


class PipelineAborted(RuntimeError):
    """The pipeline was torn down while a staging wait was in progress."""


def _record_stall(reason: str, waited: float, nbytes: int) -> None:
    """Trace + meter one backpressure stall (no-op when obs is off)."""
    if not obs.enabled():
        return
    recorder = obs.get_recorder()
    if recorder is not None:
        end = recorder.now()
        obs.add_span(
            "pipeline.stall",
            "pipeline",
            max(end - waited, 0.0),
            end,
            attrs={"reason": reason, "nbytes": int(nbytes)},
        )
    metrics = obs.get_metrics()
    if metrics is not None:
        metrics.inc("pipeline.stall.count")
        metrics.inc("pipeline.stall.seconds", waited)


class StagingBudget:
    """A byte ceiling for staged-but-uncommitted pipeline cascades.

    ``acquire`` blocks while the charge would exceed ``total_bytes``
    (the bounded admission queue of the tentpole); ``release`` wakes
    waiters.  ``peak_bytes`` records the in-flight high-water mark — the
    backpressure tests assert it never exceeds the ceiling.
    """

    def __init__(self, total_bytes: int):
        if int(total_bytes) <= 0:
            raise ConfigurationError(
                f"staging budget must be > 0 bytes, got {total_bytes}"
            )
        self.total_bytes = int(total_bytes)
        self.in_flight_bytes = 0
        self.peak_bytes = 0
        self.stalls = 0
        self.stall_seconds = 0.0
        self._cond = threading.Condition()
        self._aborted = False

    def acquire(self, nbytes: int) -> None:
        """Charge ``nbytes``, blocking while the budget is full.

        Raises :class:`~repro.errors.AllocationError` when a single
        cascade could never fit (out-of-core ingests must be re-batched,
        not deadlocked) and :class:`PipelineAborted` after
        :meth:`abort`.
        """
        nbytes = int(nbytes)
        if nbytes > self.total_bytes:
            raise AllocationError(
                f"staged cascade of {nbytes} B can never fit the "
                f"{self.total_bytes} B staging budget; use smaller batches"
            )
        stalled_at = None
        with self._cond:
            while (
                not self._aborted
                and self.in_flight_bytes + nbytes > self.total_bytes
            ):
                if stalled_at is None:
                    stalled_at = time.perf_counter()
                self._cond.wait(timeout=0.05)
            if self._aborted:
                raise PipelineAborted("staging budget aborted")
            self.in_flight_bytes += nbytes
            self.peak_bytes = max(self.peak_bytes, self.in_flight_bytes)
            in_flight = self.in_flight_bytes
        if stalled_at is not None:
            waited = time.perf_counter() - stalled_at
            self.stalls += 1
            self.stall_seconds += waited
            _record_stall("budget", waited, nbytes)
        self._observe_depth(in_flight)

    def try_acquire(self, nbytes: int) -> bool:
        """Charge ``nbytes`` only if it fits right now; never block.

        The serving layer's admission control: a full budget means the
        request is *rejected* (typed backpressure to the client) rather
        than queued, so a burst cannot build an unbounded backlog.
        Returns ``True`` when the charge was taken.
        """
        nbytes = int(nbytes)
        with self._cond:
            if self._aborted:
                raise PipelineAborted("staging budget aborted")
            if self.in_flight_bytes + nbytes > self.total_bytes:
                return False
            self.in_flight_bytes += nbytes
            self.peak_bytes = max(self.peak_bytes, self.in_flight_bytes)
            in_flight = self.in_flight_bytes
        self._observe_depth(in_flight)
        return True

    def release(self, nbytes: int) -> None:
        with self._cond:
            nbytes = int(nbytes)
            if nbytes > self.in_flight_bytes:
                raise ConfigurationError(
                    f"release({nbytes}) exceeds {self.in_flight_bytes} B "
                    "in flight"
                )
            self.in_flight_bytes -= nbytes
            in_flight = self.in_flight_bytes
            self._cond.notify_all()
        self._observe_depth(in_flight)

    def abort(self) -> None:
        """Wake every blocked ``acquire`` with :class:`PipelineAborted`."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    @staticmethod
    def _observe_depth(in_flight: int) -> None:
        if obs.enabled():
            metrics = obs.get_metrics()
            if metrics is not None:
                metrics.observe_queue_depth("pipeline.staging_bytes", in_flight)


class ArenaSlot:
    """One ying/yang staging slot: a private plan cache + busy latch."""

    def __init__(self, index: int):
        self.index = index
        #: per-slot cascade plans — two in-flight batches never share
        #: scratch buffers (plan reuse is unsafe under interleaving,
        #: see :mod:`repro.multigpu.plan`)
        self.plans = PlanCache(maxsize=4)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArenaSlot({self.index})"


class StagingArena:
    """``depth`` staging slots in rotation, charged against a budget.

    Batch ``seqno`` stages into slot ``seqno % depth`` once (a) that
    slot's previous occupant has *committed* and (b) the staging budget
    admits the batch's footprint.  ``depth=2`` is the paper's ying/yang
    double buffer; deeper arenas admit more in-flight waves when the
    budget allows.
    """

    def __init__(self, depth: int, budget: StagingBudget):
        if int(depth) < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.depth = int(depth)
        self.budget = budget
        self.slots = [ArenaSlot(i) for i in range(self.depth)]
        self._busy = [False] * self.depth
        self._cond = threading.Condition()
        self._aborted = False
        self.slot_stalls = 0
        self.slot_stall_seconds = 0.0

    @property
    def stall_seconds(self) -> float:
        """Total backpressure wait (budget-full + slot-busy)."""
        return self.budget.stall_seconds + self.slot_stall_seconds

    @property
    def stalls(self) -> int:
        return self.budget.stalls + self.slot_stalls

    def acquire(self, seqno: int, nbytes: int) -> ArenaSlot:
        """Claim the slot for ``seqno``, blocking on reuse + budget."""
        idx = seqno % self.depth
        stalled_at = None
        with self._cond:
            while not self._aborted and self._busy[idx]:
                if stalled_at is None:
                    stalled_at = time.perf_counter()
                self._cond.wait(timeout=0.05)
            if self._aborted:
                raise PipelineAborted("staging arena aborted")
            self._busy[idx] = True
        if stalled_at is not None:
            waited = time.perf_counter() - stalled_at
            self.slot_stalls += 1
            self.slot_stall_seconds += waited
            _record_stall("slot", waited, nbytes)
        try:
            self.budget.acquire(nbytes)
        except BaseException:
            with self._cond:
                self._busy[idx] = False
                self._cond.notify_all()
            raise
        return self.slots[idx]

    def release(self, slot: ArenaSlot, nbytes: int) -> None:
        """Return a slot after its batch fully committed (or discarded)."""
        self.budget.release(nbytes)
        with self._cond:
            self._busy[slot.index] = False
            self._cond.notify_all()

    def abort(self) -> None:
        """Wake every blocked ``acquire`` with :class:`PipelineAborted`."""
        self.budget.abort()
        with self._cond:
            self._aborted = True
            self._cond.notify_all()
