"""Library-wide constants.

These mirror the fixed quantities of the CUDA execution model and the
paper's experimental setup.  Anything tunable lives in the relevant
``config`` objects instead; only true invariants belong here.
"""

from __future__ import annotations

import numpy as np

#: Number of threads in a full CUDA warp.
WARP_SIZE: int = 32

#: Legal coalesced-group sizes |g| (divisors of the warp size, paper §IV-A).
VALID_GROUP_SIZES: tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: Size in bytes of one packed (key, value) pair (4-byte key + 4-byte value,
#: AoS layout, paper §II / Fig. 1).
PAIR_BYTES: int = 8

#: Width of a GPU global-memory transaction sector in bytes.  Coalesced
#: accesses are charged in units of this sector (32-byte L2 sectors on
#: Pascal-class hardware).
SECTOR_BYTES: int = 32

#: Sentinel slot contents marking a never-used slot.  The paper packs
#: key and value into 64 bits; the all-ones bit pattern is reserved.
EMPTY_SLOT: np.uint64 = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Sentinel slot contents marking a deleted slot (tombstone).
TOMBSTONE_SLOT: np.uint64 = np.uint64(0xFFFFFFFFFFFFFFFE)

#: Largest key storable in the packed 64-bit AoS layout.  The two largest
#: 32-bit keys are reserved so that no packed pair can collide with the
#: EMPTY/TOMBSTONE sentinels.
MAX_KEY: int = 0xFFFFFFFF - 1

#: Largest storable 32-bit value.
MAX_VALUE: int = 0xFFFFFFFF

#: Default maximum number of chaotic (outer) probing attempts before an
#: insertion error is raised (``p_max`` in Fig. 3).
DEFAULT_P_MAX: int = 1024

#: Number of bits in the key/value halves of a packed pair.
KEY_BITS: int = 32
VALUE_BITS: int = 32

#: 2**32, the size of the 4-byte key space; used by workload samplers.
KEY_SPACE: int = 1 << 32
