"""Persistent worker-process pool for the ``process`` backend.

A deliberately small pool (no futures machinery): ``workers`` long-lived
processes pull ``(id, func, arg)`` tuples from a task queue and push
``(id, ok, payload)`` back.  Design points the backends rely on:

* **lazy start** — processes spawn on first :meth:`map`, so building a
  table with ``executor="process"`` costs nothing until it runs;
* **exception propagation** — a worker catches everything, ships the
  formatted traceback home, and :class:`WorkerError` re-raises it in the
  parent with the remote traceback attached;
* **graceful shutdown** — :meth:`close` drains with sentinels, joins
  with a timeout, and only then terminates stragglers.

``fork`` is preferred (shared-memory attach is cheap and the library is
already imported); ``spawn`` is the fallback on platforms without fork.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import traceback
from collections.abc import Callable, Sequence

from ..errors import ExecutionError

__all__ = ["WorkerError", "WorkerPool", "default_worker_count"]


class WorkerError(ExecutionError):
    """A task raised inside a worker process.

    ``remote_traceback`` carries the worker-side formatted traceback.
    """

    def __init__(self, message: str, remote_traceback: str = ""):
        super().__init__(message)
        self.remote_traceback = remote_traceback


def default_worker_count() -> int:
    """One worker per core, capped — sized for per-shard kernel tasks."""
    return max(1, min(16, os.cpu_count() or 1))


def _worker_main(task_queue, result_queue) -> None:  # pragma: no cover - child
    while True:
        item = task_queue.get()
        if item is None:
            break
        task_id, func, arg = item
        try:
            result_queue.put((task_id, True, func(arg)))
        except BaseException as exc:  # noqa: BLE001 - must cross the pipe
            result_queue.put(
                (
                    task_id,
                    False,
                    (type(exc).__name__, str(exc), traceback.format_exc()),
                )
            )


class WorkerPool:
    """Fixed-size pool executing picklable ``func(arg)`` calls."""

    def __init__(self, workers: int | None = None):
        self.workers = int(workers) if workers else default_worker_count()
        if self.workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {self.workers}")
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._tasks = None
        self._results = None
        self._procs: list = []

    @property
    def started(self) -> bool:
        return bool(self._procs)

    def _ensure_started(self) -> None:
        if self._procs:
            return
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        for _ in range(self.workers):
            proc = self._ctx.Process(
                target=_worker_main, args=(self._tasks, self._results), daemon=True
            )
            proc.start()
            self._procs.append(proc)

    def map(self, func: Callable, args: Sequence) -> list:
        """Run ``func`` over ``args``; results in input order.

        The first failed task raises :class:`WorkerError` (after all
        submitted tasks have been collected, so the pool stays usable).
        """
        if not args:
            return []
        self._ensure_started()
        for task_id, arg in enumerate(args):
            self._tasks.put((task_id, func, arg))
        results: dict[int, object] = {}
        failure: tuple | None = None
        for _ in range(len(args)):
            task_id, ok, payload = self._results.get()
            if ok:
                results[task_id] = payload
            elif failure is None or task_id < failure[0]:
                failure = (task_id, payload)
        if failure is not None:
            task_id, (exc_type, message, remote_tb) = failure
            raise WorkerError(
                f"worker task {task_id} raised {exc_type}: {message}",
                remote_traceback=remote_tb,
            )
        return [results[i] for i in range(len(args))]

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop all workers; joins gracefully, terminates stragglers."""
        if not self._procs:
            return
        for _ in self._procs:
            self._tasks.put(None)
        for proc in self._procs:
            proc.join(timeout=timeout)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - hung worker path
                proc.terminate()
                proc.join(timeout=1.0)
        for queue in (self._tasks, self._results):
            queue.close()
            queue.join_thread()
        self._procs = []
        self._tasks = None
        self._results = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close(timeout=0.5)
        except Exception:
            pass
