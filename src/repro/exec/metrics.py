"""Measured wall-clock spans for the shard-execution engine.

The performance model (:mod:`repro.perfmodel`) produces *modelled*
seconds from counted work; the execution engine produces *measured*
seconds by actually running shard kernels concurrently and timing them.
This module holds the measured counterpart of
:class:`repro.pipeline.timeline.Timeline`: per-shard wall-clock spans
collected by the backends, composable into a node-level measured
timeline (``docs/execution.md`` explains when each is authoritative).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ShardSpan", "MeasuredTimeline"]


@dataclass(frozen=True)
class ShardSpan:
    """One timed unit of work: a shard kernel or a whole batch cascade.

    ``shard`` is the shard/GPU index, or ``-1`` for spans covering the
    whole node (e.g. one batch cascade in the async driver).  Times are
    seconds relative to the enclosing timeline's epoch.
    """

    shard: int
    op: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def shifted(self, offset: float) -> "ShardSpan":
        return ShardSpan(self.shard, self.op, self.start + offset, self.end + offset)


@dataclass
class MeasuredTimeline:
    """A collection of measured spans sharing one epoch (t = 0)."""

    spans: list[ShardSpan] = field(default_factory=list)

    def add(self, span: ShardSpan) -> None:
        self.spans.append(span)

    def extend(self, spans: list[ShardSpan], *, offset: float = 0.0) -> None:
        self.spans.extend(s.shifted(offset) if offset else s for s in spans)

    @property
    def makespan(self) -> float:
        """End of the last span (epoch-relative wall-clock seconds)."""
        return max((s.end for s in self.spans), default=0.0)

    @property
    def busy_seconds(self) -> float:
        """Sum of span durations — the serialized cost of the same work."""
        return sum(s.duration for s in self.spans)

    @property
    def overlap_speedup(self) -> float:
        """busy / makespan: 1.0 means fully serial, m means perfect overlap."""
        span = self.makespan
        return self.busy_seconds / span if span > 0 else 0.0

    def shard_spans(self, shard: int) -> list[ShardSpan]:
        return [s for s in self.spans if s.shard == shard]

    def render(self, *, width: int = 72) -> str:
        """ASCII Gantt chart, one row per shard (measured Fig. 5 analogue)."""
        span = self.makespan
        if span == 0:
            return "(empty measured timeline)"
        shards = sorted({s.shard for s in self.spans})
        lines = []
        for shard in shards:
            row = [" "] * width
            for s in self.spans:
                if s.shard != shard:
                    continue
                lo = int(s.start / span * (width - 1))
                hi = max(lo + 1, int(s.end / span * (width - 1)))
                mark = "=" if shard < 0 else str(shard % 10)
                for i in range(lo, min(hi, width)):
                    row[i] = mark
            label = "node" if shard < 0 else f"gpu{shard}"
            lines.append(f"{label:>6} |{''.join(row)}|")
        return "\n".join(lines)
