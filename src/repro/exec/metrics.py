"""Measured wall-clock spans for the shard-execution engine.

The performance model (:mod:`repro.perfmodel`) produces *modelled*
seconds from counted work; the execution engine produces *measured*
seconds by actually running shard kernels concurrently and timing them.
This module holds the measured counterpart of
:class:`repro.pipeline.timeline.Timeline`: per-shard wall-clock spans
collected by the backends, composable into a node-level measured
timeline (``docs/execution.md`` explains when each is authoritative).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.protocol import reportable_dict

__all__ = ["ShardSpan", "MeasuredTimeline"]


@dataclass(frozen=True)
class ShardSpan:
    """One timed unit of work: a shard kernel or a whole batch cascade.

    ``shard`` is the shard/GPU index, or ``-1`` for spans covering the
    whole node (e.g. one batch cascade in the async driver).  Times are
    seconds relative to the enclosing timeline's epoch.  ``pid`` is the
    OS process that ran the work (worker pids under the process engine)
    — the provenance :class:`repro.obs.TraceRecorder` keeps when it
    merges spans shipped home from workers.
    """

    shard: int
    op: str
    start: float
    end: float
    pid: int = 0

    schema_version = 1

    @property
    def duration(self) -> float:
        return self.end - self.start

    def shifted(self, offset: float) -> "ShardSpan":
        return ShardSpan(
            self.shard, self.op, self.start + offset, self.end + offset, self.pid
        )

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys)."""
        return reportable_dict(
            self,
            {
                "shard": self.shard,
                "op": self.op,
                "start": self.start,
                "end": self.end,
                "duration": self.duration,
                "pid": self.pid,
            },
        )


@dataclass
class MeasuredTimeline:
    """A collection of measured spans sharing one epoch (t = 0)."""

    spans: list[ShardSpan] = field(default_factory=list)

    def add(self, span: ShardSpan) -> None:
        self.spans.append(span)

    def extend(self, spans: list[ShardSpan], *, offset: float = 0.0) -> None:
        self.spans.extend(s.shifted(offset) if offset else s for s in spans)

    @property
    def makespan(self) -> float:
        """End of the last span (epoch-relative wall-clock seconds)."""
        return max((s.end for s in self.spans), default=0.0)

    @property
    def busy_seconds(self) -> float:
        """Sum of span durations — the serialized cost of the same work."""
        return sum(s.duration for s in self.spans)

    @property
    def overlap_speedup(self) -> float:
        """busy / makespan: 1.0 means fully serial, m means perfect overlap."""
        span = self.makespan
        return self.busy_seconds / span if span > 0 else 0.0

    def shard_spans(self, shard: int) -> list[ShardSpan]:
        return [s for s in self.spans if s.shard == shard]

    def render(self, *, width: int = 72) -> str:
        """ASCII Gantt chart, one row per shard (measured Fig. 5 analogue).

        Rendering goes through the shared :func:`repro.obs.render_rows`
        renderer, so measured, modelled, and traced timelines all draw
        identically.
        """
        from ..obs.export import render_rows

        shards = sorted({s.shard for s in self.spans})
        rows = []
        for shard in shards:
            mark = "=" if shard < 0 else str(shard % 10)
            rows.append(
                (
                    "node" if shard < 0 else f"gpu{shard}",
                    [
                        (s.start, s.end, mark)
                        for s in self.spans
                        if s.shard == shard
                    ],
                )
            )
        return render_rows(
            rows,
            width=width,
            makespan=self.makespan,
            label_width=6,
            empty_message="(empty measured timeline)",
        )
