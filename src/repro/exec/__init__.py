"""Shard-execution engine: real wall-clock overlap of per-shard kernels."""

from .engine import (
    ExecutionEngine,
    PendingWave,
    ProcessEngine,
    SerialEngine,
    ShardKernelResult,
    ShardKernelTask,
    ThreadEngine,
    available_backends,
    create_engine,
    run_kernel_task,
)
from .metrics import MeasuredTimeline, ShardSpan
from .pool import WorkerError, WorkerPool, default_worker_count
from .shm import SharedSlots, SlotsDescriptor, attach_slots

__all__ = [
    "ExecutionEngine",
    "PendingWave",
    "SerialEngine",
    "ThreadEngine",
    "ProcessEngine",
    "ShardKernelTask",
    "ShardKernelResult",
    "run_kernel_task",
    "available_backends",
    "create_engine",
    "MeasuredTimeline",
    "ShardSpan",
    "WorkerPool",
    "WorkerError",
    "default_worker_count",
    "SharedSlots",
    "SlotsDescriptor",
    "attach_slots",
]
