"""Pluggable shard-execution engine (backend protocol + registry).

The paper's central wall-clock claim is that the ``m`` GPUs of a node
work *concurrently*: after the all-to-all transpose every shard owns
exactly its own keys, so the per-shard insert/query/erase kernels are
embarrassingly parallel (§IV-B, Fig. 9/11).  This module makes that
concurrency real instead of merely modelled: a
:class:`ShardKernelTask` describes one shard's bulk kernel, and an
:class:`ExecutionEngine` backend runs a batch of them —

``serial``
    in submission order on the calling thread (the reference schedule);
``thread``
    on a thread pool — NumPy kernels release the GIL for large array
    ops, so shards genuinely overlap on multi-core hosts;
``process``
    on a worker-process pool with the slot tables in shared memory
    (:mod:`repro.exec.shm`), sidestepping the GIL entirely.

Every backend is **deterministic**: shards are disjoint address spaces,
per-shard kernels are pure functions of (slots, seq, keys, values), and
results return in task order — so final tables are bit-identical and
merged :class:`~repro.core.report.KernelReport` counters are equal
across backends (property-tested in ``tests/exec``).
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace

import numpy as np

from ..core.bulk import bulk_erase, bulk_insert, bulk_query
from ..core.kernels_jit import (
    bulk_erase_compiled,
    bulk_insert_compiled,
    bulk_query_compiled,
    resolve_kernels,
    slot_planes,
    warm,
)
from ..core.probing import WindowSequence
from ..core.report import KernelReport
from ..core.store import attach_view
from ..errors import ConfigurationError, ExecutionError
from ..obs import runtime as obs
from .metrics import ShardSpan
from .pool import WorkerPool, default_worker_count
from .shm import SlotsDescriptor

__all__ = [
    "ShardKernelTask",
    "ShardKernelResult",
    "PendingWave",
    "ExecutionEngine",
    "SerialEngine",
    "ThreadEngine",
    "ProcessEngine",
    "available_backends",
    "create_engine",
]


@dataclass
class ShardKernelTask:
    """One shard's bulk kernel: op + operands + a handle to its table."""

    shard: int
    op: str  # "insert" | "query" | "erase"
    slots: np.ndarray | None
    seq: WindowSequence
    keys: np.ndarray
    values: np.ndarray | None = None
    default: int = 0
    #: set when the slot array is shared-memory backed (process backend)
    shm: SlotsDescriptor | None = None
    #: kernel backend: "fast" or "compiled" ("compiled" re-resolves in
    #: the executing process, so workers fall back independently)
    kernels: str = "fast"

    def for_pickling(self) -> "ShardKernelTask":
        """A copy without the slot array — workers re-map it via ``shm``."""
        return replace(self, slots=None)


@dataclass
class ShardKernelResult:
    """Outcome of one shard kernel; payload fields depend on ``op``."""

    shard: int
    op: str
    report: KernelReport
    status: np.ndarray | None = None  # insert
    values: np.ndarray | None = None  # query
    found: np.ndarray | None = None  # query
    erased: np.ndarray | None = None  # erase
    span: ShardSpan | None = None
    #: kernel backend that actually ran (post-fallback), for reporting
    kernels: str = "fast"


def run_kernel_task(slots: np.ndarray, task: ShardKernelTask) -> ShardKernelResult:
    """Execute one task against ``slots`` (no counter: the caller merges).

    Work accounting stays in the returned report so counter merging
    happens on the parent in deterministic shard order, identically for
    in-process and out-of-process backends.
    """
    # resolve here, in the executing process: a worker without a JIT
    # provider falls back on its own, and the result records the truth
    kernels = resolve_kernels(
        task.kernels, slots=slots, owner="run_kernel_task"
    )
    compiled = kernels == "compiled"
    if compiled:
        # warm the process-local JIT cache (no-op when hot) so compile
        # time lands in a jit_compile span, never in the measured span
        warm(task.seq.name, slot_planes(slots)[0])
    t0 = time.perf_counter()
    if task.op == "insert":
        op = bulk_insert_compiled if compiled else bulk_insert
        report, status = op(slots, task.seq, task.keys, task.values, None)
        result = ShardKernelResult(task.shard, task.op, report, status=status)
    elif task.op == "query":
        op = bulk_query_compiled if compiled else bulk_query
        report, values, found = op(
            slots, task.seq, task.keys, None, default=task.default
        )
        result = ShardKernelResult(
            task.shard, task.op, report, values=values, found=found
        )
    elif task.op == "erase":
        op = bulk_erase_compiled if compiled else bulk_erase
        report, erased = op(slots, task.seq, task.keys, None)
        result = ShardKernelResult(task.shard, task.op, report, erased=erased)
    else:
        raise ConfigurationError(f"unknown kernel op {task.op!r}")
    t1 = time.perf_counter()
    result.span = ShardSpan(task.shard, task.op, t0, t1, pid=os.getpid())
    result.kernels = kernels
    return result


def _normalize_spans(results: list[ShardKernelResult]) -> None:
    """Rebase all spans so the earliest task start is t = 0."""
    starts = [r.span.start for r in results if r.span is not None]
    if not starts:
        return
    epoch = min(starts)
    for r in results:
        if r.span is not None:
            r.span = r.span.shifted(-epoch)


class PendingWave:
    """Handle for an in-flight kernel wave (the non-blocking submit path).

    ``result()`` blocks until the wave completes and returns the results
    in task order — exactly what :meth:`ExecutionEngine.run` would have
    returned, including the traced dispatch span when :mod:`repro.obs`
    is enabled.  ``done()`` polls without blocking.  Backends without
    genuine asynchrony (serial, process) return already-completed waves;
    the thread backend dispatches futures and defers collection, so a
    pipeline committer can overlap host work with the running kernels.
    """

    def __init__(self, results=None, *, poll=None, collect=None):
        if results is None and collect is None:
            raise ConfigurationError(
                "PendingWave needs either results or a collect callback"
            )
        self._results = results
        self._poll = poll
        self._collect = collect

    def done(self) -> bool:
        """True when ``result()`` would not block."""
        if self._results is not None:
            return True
        return self._poll() if self._poll is not None else True

    def result(self) -> list[ShardKernelResult]:
        """Wait for completion; results in task order (idempotent)."""
        if self._results is None:
            self._results = self._collect()
            self._collect = None
        return self._results


class ExecutionEngine(ABC):
    """A strategy for running a batch of independent shard kernels."""

    name: str = "abstract"
    #: True when shard tables must be shared-memory backed (process pool)
    requires_shared_slots: bool = False

    def run(self, tasks: list[ShardKernelTask]) -> list[ShardKernelResult]:
        """Execute all tasks; results in task order, spans rebased to 0.

        When :mod:`repro.obs` is enabled the dispatch is traced: one
        ``engine`` span for the batch, plus the per-shard measured spans
        shipped back by the backends (worker pids preserved) merged as
        its children — the process-safe collection point for
        out-of-process workers.
        """
        if not obs.enabled():
            return self._run(tasks)
        # the backend rides in attrs, not the name: span trees stay
        # identical across serial/thread/process (tested in tests/obs)
        with obs.span(
            "dispatch", "engine", backend=self.name, tasks=len(tasks)
        ) as sp:
            results = self._run(tasks)
        if sp is not None:
            obs.record_shard_spans(
                (r.span for r in results if r.span is not None),
                offset=sp.start,
                parent_id=sp.span_id,
            )
        return results

    def submit(self, tasks: list[ShardKernelTask]) -> PendingWave:
        """Dispatch a wave without waiting for it (default: eager).

        The base implementation runs synchronously and hands back a
        completed :class:`PendingWave`, so every backend supports the
        submit/poll protocol; backends with real asynchrony (thread)
        override this to defer collection until ``result()``.  Span
        trees stay backend-identical because the dispatch span is
        recorded with the same name/category/attrs either way, parented
        to whatever span is current when the wave is *collected*.
        """
        return PendingWave(self.run(tasks))

    @abstractmethod
    def _run(self, tasks: list[ShardKernelTask]) -> list[ShardKernelResult]:
        """Backend hook: execute all tasks, results in task order."""

    def close(self) -> None:
        """Release backend resources (worker threads/processes)."""

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialEngine(ExecutionEngine):
    """Reference backend: shard kernels in submission order, one thread."""

    name = "serial"

    def _run(self, tasks: list[ShardKernelTask]) -> list[ShardKernelResult]:
        results = [run_kernel_task(task.slots, task) for task in tasks]
        _normalize_spans(results)
        return results


class ThreadEngine(ExecutionEngine):
    """Thread-pool backend; NumPy's GIL releases let shards overlap."""

    name = "thread"

    def __init__(self, workers: int | None = None):
        self.workers = int(workers) if workers else default_worker_count()
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-shard"
            )
        return self._pool

    def _run(self, tasks: list[ShardKernelTask]) -> list[ShardKernelResult]:
        pool = self._ensure_pool()
        futures = [pool.submit(run_kernel_task, t.slots, t) for t in tasks]
        results = [f.result() for f in futures]
        _normalize_spans(results)
        return results

    def submit(self, tasks: list[ShardKernelTask]) -> PendingWave:
        """Genuinely asynchronous dispatch: futures fly immediately,
        collection (and the traced dispatch span) waits for ``result()``."""
        if not tasks:
            return PendingWave([])
        pool = self._ensure_pool()
        traced = obs.enabled()
        t0 = obs.get_recorder().now() if traced else 0.0
        futures = [pool.submit(run_kernel_task, t.slots, t) for t in tasks]

        def _collect() -> list[ShardKernelResult]:
            results = [f.result() for f in futures]
            _normalize_spans(results)
            if traced and obs.enabled():
                sp = obs.add_span(
                    "dispatch",
                    "engine",
                    t0,
                    obs.get_recorder().now(),
                    attrs={"backend": self.name, "tasks": len(tasks)},
                )
                if sp is not None:
                    obs.record_shard_spans(
                        (r.span for r in results if r.span is not None),
                        offset=t0,
                        parent_id=sp.span_id,
                    )
            return results

        return PendingWave(
            poll=lambda: all(f.done() for f in futures), collect=_collect
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _process_entry(task: ShardKernelTask) -> ShardKernelResult:
    """Worker-side: map the shard's shared slots, run, ship the result."""
    array, shm = _attached(task.shm)
    del shm  # cache keeps the mapping alive
    return run_kernel_task(array, task)


_ATTACH_CACHE: dict[str, tuple[np.ndarray, object]] = {}


def _attached(descriptor: SlotsDescriptor) -> tuple[np.ndarray, object]:
    # keyed by segment name: a grown table allocates a *new* segment, so
    # workers naturally re-attach after a resize instead of mutating the
    # stale mapping
    cached = _ATTACH_CACHE.get(descriptor.name)
    if cached is None or cached[0].shape[0] != descriptor.capacity:
        cached = attach_view(descriptor)
        _ATTACH_CACHE[descriptor.name] = cached
    return cached


class ProcessEngine(ExecutionEngine):
    """Worker-process backend over shared-memory slot tables.

    Keys/values and reports are pickled across the queue; the ``uint64``
    tables themselves are never copied — workers mutate the same pages
    the parent reads (:mod:`repro.exec.shm`).
    """

    name = "process"
    requires_shared_slots = True

    def __init__(self, workers: int | None = None):
        self._pool = WorkerPool(workers)
        self.workers = self._pool.workers

    def _run(self, tasks: list[ShardKernelTask]) -> list[ShardKernelResult]:
        for task in tasks:
            if task.shm is None:
                raise ExecutionError(
                    "process backend needs shared-memory slot tables; "
                    "construct the table with engine='process' (or "
                    "shared=True) so shards allocate via repro.exec.shm"
                )
        results = self._pool.map(
            _process_entry, [task.for_pickling() for task in tasks]
        )
        _normalize_spans(results)
        return results

    def close(self) -> None:
        self._pool.close()


BACKENDS: dict[str, type[ExecutionEngine]] = {
    "serial": SerialEngine,
    "thread": ThreadEngine,
    "process": ProcessEngine,
}


def available_backends() -> tuple[str, ...]:
    return tuple(BACKENDS)


def create_engine(
    engine: str | ExecutionEngine = "serial", workers: int | None = None
) -> ExecutionEngine:
    """Resolve an engine spec (name or ready-made engine instance)."""
    if isinstance(engine, ExecutionEngine):
        return engine
    try:
        backend = BACKENDS[engine]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {sorted(BACKENDS)}"
        ) from None
    if backend is SerialEngine:
        return backend()
    return backend(workers=workers)
