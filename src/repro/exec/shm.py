"""Shared-memory slot buffers for the process execution backend.

A shard's slot table is one contiguous ``np.uint64`` array.  Backing it
with :class:`multiprocessing.shared_memory.SharedMemory` lets worker
processes map the *same* physical pages the parent owns, so per-shard
kernels mutate the table zero-copy — only keys/values and the
:class:`~repro.core.report.KernelReport` cross the process boundary.

Ownership model: the table that created a :class:`SharedSlots` owns the
segment and unlinks it on :meth:`close`; workers attach read-write by
name and keep their mapping alive for the pool's lifetime (an unlinked
segment stays valid for already-attached mappings on POSIX).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..constants import EMPTY_SLOT
from ..errors import ConfigurationError

__all__ = ["SlotsDescriptor", "SharedSlots", "attach_slots"]


@dataclass(frozen=True)
class SlotsDescriptor:
    """Everything a worker needs to map a shard's slot table.

    ``layout`` names the slot store arrangement inside the segment:
    ``"aos"`` (one packed ``uint64`` word per slot), ``"soa"``
    (``capacity`` ``uint32`` keys followed by ``capacity`` ``uint32``
    values), or ``"compact"`` (same plane geometry as ``"soa"`` but the
    first plane holds σ-permuted key halves — see
    :class:`repro.core.store.CompactPackedView`).  ``dtype`` stays the
    *logical* packed dtype in every case.
    """

    name: str
    capacity: int
    dtype: str = "uint64"
    layout: str = "aos"


class SharedSlots:
    """Owner side of a shared-memory slot array.

    Every layout occupies the same 8 *physical* bytes per slot (the
    compact layout's sub-8-byte record width is a modelled quantity —
    see :func:`repro.core.store.slot_record_bytes`); ``"soa"`` and
    ``"compact"`` expose the segment as two ``uint32`` planes (``keys``,
    ``values``) instead of one packed ``array``.
    """

    def __init__(self, capacity: int, *, fill=EMPTY_SLOT, layout: str = "aos"):
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        if layout not in ("aos", "soa", "compact"):
            raise ConfigurationError(f"unknown slot layout {layout!r}")
        nbytes = max(capacity * np.dtype(np.uint64).itemsize, 1)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.capacity = capacity
        self.layout = layout
        fill = int(fill)
        if layout in ("soa", "compact"):
            self.array = None
            self.keys = np.ndarray(
                (capacity,), dtype=np.uint32, buffer=self._shm.buf
            )
            self.values = np.ndarray(
                (capacity,),
                dtype=np.uint32,
                buffer=self._shm.buf,
                offset=capacity * 4,
            )
            key_half = np.uint32((fill >> 32) & 0xFFFFFFFF)
            if layout == "compact":
                # the compact plane stores σ(key-half); permute the
                # sentinel fill the same way the packed view does
                from ..hashing.mixers import fmix32

                key_half = np.uint32(fmix32(np.asarray([key_half]))[0])
            self.keys.fill(key_half)
            self.values.fill(np.uint32(fill & 0xFFFFFFFF))
        else:
            self.array = np.ndarray(
                (capacity,), dtype=np.uint64, buffer=self._shm.buf
            )
            self.keys = None
            self.values = None
            self.array.fill(fill)

    def descriptor(self) -> SlotsDescriptor:
        return SlotsDescriptor(
            name=self._shm.name, capacity=self.capacity, layout=self.layout
        )

    @property
    def nbytes(self) -> int:
        return self.capacity * 8

    @property
    def closed(self) -> bool:
        return self._shm is None

    def close(self) -> None:
        """Release the mapping and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        # drop the numpy views before closing the mmap under them
        self.array = (
            np.empty(0, dtype=np.uint64) if self.layout == "aos" else None
        )
        self.keys = None
        self.values = None
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass
        self._shm = None

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def attach_slots(
    descriptor: SlotsDescriptor,
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Worker-side attach; returns (array view, segment handle to keep).

    The caller must keep the returned segment handle referenced for as
    long as the view is used.  No resource-tracker bookkeeping happens
    here: pool workers share the parent's tracker process (fork *and*
    spawn children inherit its fd), so the attach-side register is an
    idempotent set-add and the owner's unlink unregisters exactly once.
    """
    if descriptor.dtype != "uint64":
        raise ConfigurationError(f"unsupported slot dtype {descriptor.dtype!r}")
    if descriptor.layout != "aos":
        raise ConfigurationError(
            f"attach_slots maps packed arrays only; use "
            f"repro.core.store.attach_view for layout {descriptor.layout!r}"
        )
    shm = shared_memory.SharedMemory(name=descriptor.name)
    array = np.ndarray((descriptor.capacity,), dtype=np.uint64, buffer=shm.buf)
    return array, shm
