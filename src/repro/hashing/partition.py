"""Partition (GPU-assignment) hash functions ``p(k) ∈ {0..m-1}``.

§IV-B introduces the partition hash that assigns each key a unique GPU
identifier.  Fig. 4's worked example uses the trivial ``p(k) = k mod m``;
production use hashes first so that structured key sets still balance.
Both are provided, plus a multiply-shift "fastrange" variant that avoids
the modulo on power-of-two-hostile ``m``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .families import HashFunction, make_hash

__all__ = ["PartitionHash", "modulo_partition", "hashed_partition", "fastrange_partition"]


@dataclass(frozen=True)
class PartitionHash:
    """Maps keys to GPU identifiers in ``{0, ..., num_parts - 1}``."""

    num_parts: int
    fn: Callable[[np.ndarray], np.ndarray]
    name: str = "partition"

    def __post_init__(self):
        if self.num_parts < 1:
            raise ConfigurationError(
                f"num_parts must be >= 1, got {self.num_parts}"
            )

    def __call__(self, keys) -> np.ndarray:
        parts = np.asarray(self.fn(np.asarray(keys, dtype=np.uint32)))
        return parts.astype(np.int64, copy=False)

    def balance(self, keys) -> np.ndarray:
        """Fraction of keys landing on each partition (diagnostics)."""
        counts = np.bincount(self(keys), minlength=self.num_parts)
        total = max(int(counts.sum()), 1)
        return counts / total


def modulo_partition(num_parts: int) -> PartitionHash:
    """The paper's Fig. 4 example partitioner: ``p(k) = k mod m``."""
    m = np.uint32(num_parts)

    def fn(keys: np.ndarray) -> np.ndarray:
        return keys % m

    return PartitionHash(num_parts, fn, name=f"mod{num_parts}")


def hashed_partition(
    num_parts: int, hash_fn: HashFunction | None = None
) -> PartitionHash:
    """Hash then reduce: balances structured key sets across GPUs."""
    h = hash_fn if hash_fn is not None else make_hash("mueller", translation=0x5BD1E995)
    m = np.uint32(num_parts)

    def fn(keys: np.ndarray) -> np.ndarray:
        return h(keys) % m

    return PartitionHash(num_parts, fn, name=f"hashed{num_parts}")


def fastrange_partition(
    num_parts: int, hash_fn: HashFunction | None = None
) -> PartitionHash:
    """Lemire fastrange reduction: ``(h(k) * m) >> 32`` — no modulo."""
    h = hash_fn if hash_fn is not None else make_hash("fmix32", translation=0x27D4EB2F)
    m = np.uint64(num_parts)

    def fn(keys: np.ndarray) -> np.ndarray:
        wide = h(keys).astype(np.uint64) * m
        return (wide >> np.uint64(32)).astype(np.uint32)

    return PartitionHash(num_parts, fn, name=f"fastrange{num_parts}")
