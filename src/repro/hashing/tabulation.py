"""Tabulation-based hashing (Thorup & Zhang style).

§II of the paper points out that linear probing needs 5-wise independent
hash functions for constant-time guarantees and that such functions "can be
constructed using tabulation based hashing schemes" [13].  We implement
simple tabulation over the four bytes of a 32-bit key: the hash is the XOR
of four independent 256-entry random tables.  Simple tabulation is 3-wise
independent and behaves like 5-independent hashing for linear probing
(Pătraşcu & Thorup), which is the property the tests exercise.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["TabulationHash"]


class TabulationHash:
    """Simple tabulation hash over 32-bit keys.

    Parameters
    ----------
    seed:
        Seeds the four random byte-tables.  Two instances with the same
        seed are identical functions.
    """

    #: number of 8-bit characters in a 32-bit key
    NUM_CHARS = 4

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ConfigurationError(f"seed must be >= 0, got {seed}")
        rng = np.random.default_rng(seed)
        # shape (4, 256): one table per key byte
        self.tables = rng.integers(
            0, 1 << 32, size=(self.NUM_CHARS, 256), dtype=np.uint64
        ).astype(np.uint32)
        self.seed = seed
        self.name = f"tabulation(seed={seed})"

    def __call__(self, keys) -> np.ndarray:
        x = np.asarray(keys, dtype=np.uint32)
        out = self.tables[0][x & np.uint32(0xFF)].copy()
        for c in range(1, self.NUM_CHARS):
            chars = (x >> np.uint32(8 * c)) & np.uint32(0xFF)
            out ^= self.tables[c][chars]
        return out

    def translated(self, delta: int) -> "TabulationHash":
        """A fresh independent member (reseeded), mirroring HashFunction."""
        return TabulationHash(seed=(self.seed + delta + 1) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TabulationHash(seed={self.seed})"
