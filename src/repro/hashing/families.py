"""Hash-function families: translated variants and double-hashing pairs.

The paper (§V-A) notes that because ``fmix32`` and ``mueller`` are
bijections on 4-byte integers, the *translated* variants
``h_y(x) = h(x + y)`` retain their mathematical properties.  The table uses
one translated hash per (re)build attempt, so an insertion failure can be
healed by rebuilding with a fresh translation (§II).

Double ("chaotic") hashing additionally needs a second hash ``g(k)`` whose
value is made odd so it is coprime with power-of-two capacities and the
probe sequence visits every window.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .mixers import MIXERS, fmix32, mueller

__all__ = ["HashFunction", "DoubleHashFamily", "make_hash", "make_double_family"]

_U32 = np.uint32


@dataclass(frozen=True)
class HashFunction:
    """A translated 32-bit hash ``h_y(x) = mixer(x + y)``.

    Parameters
    ----------
    mixer:
        The base bijective finalizer.
    translation:
        The additive constant ``y`` (mod 2**32).  Distinct translations
        give distinct, equally well-mixed functions.
    name:
        Human-readable identifier used in reports.
    """

    mixer: Callable[[np.ndarray], np.ndarray]
    translation: int = 0
    name: str = "fmix32"

    def __call__(self, keys) -> np.ndarray:
        x = np.asarray(keys, dtype=np.uint32)
        if self.translation:
            x = x + _U32(self.translation & 0xFFFFFFFF)
        return self.mixer(x)

    def translated(self, delta: int) -> "HashFunction":
        """A fresh family member shifted by ``delta`` (rebuild path)."""
        return HashFunction(
            mixer=self.mixer,
            translation=(self.translation + delta) & 0xFFFFFFFF,
            name=self.name,
        )


@dataclass(frozen=True)
class DoubleHashFamily:
    """A pair (h, g) driving the chaotic window sequence of Fig. 3.

    ``window_hash(k, p)`` yields the start position hash of the ``p``-th
    probing window: ``h(k) + p * g(k)`` with ``g(k)`` forced odd so every
    residue class modulo a power-of-two window count is eventually visited.
    """

    h: HashFunction
    g: HashFunction = field(default_factory=lambda: HashFunction(mueller, 0, "mueller"))

    def primary(self, keys) -> np.ndarray:
        return self.h(keys)

    def step(self, keys) -> np.ndarray:
        """Secondary hash, forced odd (never zero) to guarantee full cycles."""
        return self.g(keys) | _U32(1)

    def window_hash(self, keys, attempt: int) -> np.ndarray:
        """Hash value of the ``attempt``-th chaotic probing window.

        ``attempt == 0`` reduces to the primary hash, matching
        ``s(k, 0) = h(k)`` in §II.
        """
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        base = self.primary(keys)
        if attempt == 0:
            return base
        return base + _U32(attempt & 0xFFFFFFFF) * self.step(keys)

    def rebuilt(self, salt: int) -> "DoubleHashFamily":
        """A distinct family for table reconstruction after insert failure."""
        return DoubleHashFamily(
            h=self.h.translated(0x9E3779B9 * (salt + 1)),
            g=self.g.translated(0x85EBCA77 * (salt + 1)),
        )


def make_hash(name: str = "fmix32", translation: int = 0) -> HashFunction:
    """Build a named translated hash (``fmix32``, ``mueller``, ``identity``)."""
    try:
        mixer = MIXERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown mixer {name!r}; choose from {sorted(MIXERS)}"
        ) from None
    return HashFunction(mixer=mixer, translation=translation, name=name)


def make_double_family(
    primary: str = "fmix32",
    secondary: str = "mueller",
    *,
    translation: int = 0,
) -> DoubleHashFamily:
    """Build the default (h, g) pair used by WarpDrive tables."""
    if primary == secondary and translation == 0:
        # identical h and g would degrade double hashing to linear stepping
        return DoubleHashFamily(
            h=make_hash(primary, 0), g=make_hash(secondary, 0x9E3779B9)
        )
    return DoubleHashFamily(
        h=make_hash(primary, translation), g=make_hash(secondary, translation)
    )


# Keep a convenient module-level default mirroring the paper's choice.
DEFAULT_FAMILY = DoubleHashFamily(h=HashFunction(fmix32, 0, "fmix32"))
