"""Avalanche-quality metrics for 32-bit hash functions.

The paper selects ``fmix32`` and ``mueller`` because "both functions
exhibit favorable avalanche properties".  This module quantifies that: a
good mixer flips each output bit with probability ~0.5 when any single
input bit flips.  Used by unit tests to certify the shipped mixers and to
demonstrate that ``identity32`` (the control) fails.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["AvalancheReport", "avalanche_matrix", "avalanche_report", "chi2_uniformity"]

_BITS = 32


@dataclass(frozen=True)
class AvalancheReport:
    """Summary of an avalanche matrix.

    ``bias`` entries are ``|P(flip) - 0.5]``; an ideal mixer has all biases
    near zero.
    """

    matrix: np.ndarray  # shape (32, 32): P(output bit j flips | input bit i flips)
    mean_bias: float
    max_bias: float
    worst_input_bit: int
    worst_output_bit: int

    def passes(self, max_bias: float = 0.05) -> bool:
        """True when the worst-case bias is below ``max_bias``."""
        return self.max_bias <= max_bias


def avalanche_matrix(
    fn: Callable[[np.ndarray], np.ndarray],
    *,
    samples: int = 4096,
    seed: int = 7,
) -> np.ndarray:
    """Estimate the 32x32 avalanche probability matrix of ``fn``.

    Entry ``(i, j)`` is the empirical probability that output bit ``j``
    flips when input bit ``i`` is flipped, over ``samples`` random inputs.
    """
    if samples <= 0:
        raise ConfigurationError(f"samples must be > 0, got {samples}")
    rng = np.random.default_rng(seed)
    xs = rng.integers(0, 1 << 32, size=samples, dtype=np.uint64).astype(np.uint32)
    base = np.asarray(fn(xs), dtype=np.uint32)
    matrix = np.empty((_BITS, _BITS), dtype=np.float64)
    for i in range(_BITS):
        flipped = np.asarray(fn(xs ^ np.uint32(1 << i)), dtype=np.uint32)
        diff = base ^ flipped
        for j in range(_BITS):
            matrix[i, j] = np.mean((diff >> np.uint32(j)) & np.uint32(1))
    return matrix


def avalanche_report(
    fn: Callable[[np.ndarray], np.ndarray],
    *,
    samples: int = 4096,
    seed: int = 7,
) -> AvalancheReport:
    """Run the avalanche test and summarize biases."""
    matrix = avalanche_matrix(fn, samples=samples, seed=seed)
    bias = np.abs(matrix - 0.5)
    worst = np.unravel_index(int(np.argmax(bias)), bias.shape)
    return AvalancheReport(
        matrix=matrix,
        mean_bias=float(bias.mean()),
        max_bias=float(bias.max()),
        worst_input_bit=int(worst[0]),
        worst_output_bit=int(worst[1]),
    )


def chi2_uniformity(
    fn: Callable[[np.ndarray], np.ndarray],
    *,
    buckets: int = 256,
    samples: int = 1 << 16,
    seed: int = 11,
) -> float:
    """Chi-squared statistic of hash values binned into ``buckets``.

    Returns the statistic normalized by its degrees of freedom; values
    near 1.0 indicate uniform bucket occupancy for *sequential* keys —
    the regime hash tables actually face.
    """
    if buckets <= 1:
        raise ConfigurationError(f"buckets must be > 1, got {buckets}")
    keys = np.arange(seed, seed + samples, dtype=np.uint32)
    hashes = np.asarray(fn(keys), dtype=np.uint64)
    counts = np.bincount((hashes % np.uint64(buckets)).astype(np.int64), minlength=buckets)
    expected = samples / buckets
    chi2 = float(np.sum((counts - expected) ** 2) / expected)
    return chi2 / (buckets - 1)
