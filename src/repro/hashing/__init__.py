"""Hash functions: mixers, translated families, tabulation, partitioning."""

from .avalanche import AvalancheReport, avalanche_matrix, avalanche_report, chi2_uniformity
from .families import DoubleHashFamily, HashFunction, make_double_family, make_hash
from .mixers import (
    MIXERS,
    fmix32,
    fmix32_inverse,
    fmix64,
    identity32,
    mueller,
    mueller_inverse,
)
from .partition import (
    PartitionHash,
    fastrange_partition,
    hashed_partition,
    modulo_partition,
)
from .tabulation import TabulationHash

__all__ = [
    "fmix32",
    "fmix32_inverse",
    "mueller",
    "mueller_inverse",
    "fmix64",
    "identity32",
    "MIXERS",
    "HashFunction",
    "DoubleHashFamily",
    "make_hash",
    "make_double_family",
    "TabulationHash",
    "AvalancheReport",
    "avalanche_matrix",
    "avalanche_report",
    "chi2_uniformity",
    "PartitionHash",
    "modulo_partition",
    "hashed_partition",
    "fastrange_partition",
]
