"""Integer finalizer ("mixer") hash functions from the paper (§V-A).

The paper employs two 4-byte hash functions: the integer finalizer of
Appleby's MurmurHash3 (``fmix32``) and Mueller's hash.  Both are bijections
("act as isomorphism on the space of 4-byte integers") with strong
avalanche behaviour, which is why translated variants
``h_y(x) = h(x + y)`` preserve their quality.

All functions here are vectorized: they accept scalars or ``uint32``
arrays and return the same shape.  Exact bit-for-bit parity with the C
reference implementations is covered by golden-vector unit tests.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "fmix32",
    "fmix32_inverse",
    "mueller",
    "mueller_inverse",
    "fmix64",
    "identity32",
    "MIXERS",
]

_U32 = np.uint32
_U64 = np.uint64
_MASK32 = np.uint32(0xFFFFFFFF)


def _modular(fn):
    """Silence NumPy's overflow warning — wraparound *is* the arithmetic.

    All mixers compute modulo 2^32/2^64 by design; NumPy only warns for
    0-d (scalar) operands, so without this a scalar call would be noisy
    while the vectorized call is silent.
    """
    import functools

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with np.errstate(over="ignore"):
            return fn(*args, **kwargs)

    return wrapper


def _as_u32(x) -> np.ndarray:
    return np.asarray(x, dtype=np.uint32)


@_modular
def fmix32(x) -> np.ndarray:
    """MurmurHash3 32-bit integer finalizer (Appleby).

    Mirrors the exact shift/multiply cascade quoted in the paper::

        x ^= x >> 16; x *= 0x85ebca6b; x ^= x >> 13;
        x *= 0xc2b2ae35; x ^= x >> 16;
    """
    x = _as_u32(x).copy()
    x ^= x >> _U32(16)
    x *= _U32(0x85EBCA6B)
    x ^= x >> _U32(13)
    x *= _U32(0xC2B2AE35)
    x ^= x >> _U32(16)
    return x


def _unxorshift(x: np.ndarray, shift: int) -> np.ndarray:
    """Invert ``x ^= x >> shift`` for 32-bit lanes."""
    out = x.copy()
    s = shift
    while s < 32:
        out = x ^ (out >> _U32(shift))
        s += shift
    return out


# Modular inverses of the fmix32/mueller multipliers modulo 2**32.
_INV_85EBCA6B = _U32(pow(0x85EBCA6B, -1, 1 << 32))
_INV_C2B2AE35 = _U32(pow(0xC2B2AE35, -1, 1 << 32))
_INV_45D9F3B = _U32(pow(0x45D9F3B, -1, 1 << 32))


@_modular
def fmix32_inverse(x) -> np.ndarray:
    """Exact inverse of :func:`fmix32` (used to verify bijectivity)."""
    x = _as_u32(x).copy()
    x = _unxorshift(x, 16)
    x *= _INV_C2B2AE35
    x = _unxorshift(x, 13)
    x *= _INV_85EBCA6B
    x = _unxorshift(x, 16)
    return x


@_modular
def mueller(x) -> np.ndarray:
    """Mueller's 32-bit hash, as quoted in the paper::

        x ^= x >> 16; x *= 0x45d9f3b; x ^= x >> 16;
        x *= 0x45d9f3b; x ^= x >> 16;
    """
    x = _as_u32(x).copy()
    x ^= x >> _U32(16)
    x *= _U32(0x45D9F3B)
    x ^= x >> _U32(16)
    x *= _U32(0x45D9F3B)
    x ^= x >> _U32(16)
    return x


@_modular
def mueller_inverse(x) -> np.ndarray:
    """Exact inverse of :func:`mueller`."""
    x = _as_u32(x).copy()
    x = _unxorshift(x, 16)
    x *= _INV_45D9F3B
    x = _unxorshift(x, 16)
    x *= _INV_45D9F3B
    x = _unxorshift(x, 16)
    return x


@_modular
def fmix64(x) -> np.ndarray:
    """MurmurHash3 64-bit finalizer (used for packed-pair hashing)."""
    x = np.asarray(x, dtype=np.uint64).copy()
    x ^= x >> _U64(33)
    x *= _U64(0xFF51AFD7ED558CCD)
    x ^= x >> _U64(33)
    x *= _U64(0xC4CEB9FE1A85EC53)
    x ^= x >> _U64(33)
    return x


def identity32(x) -> np.ndarray:
    """Identity "hash" — deliberately terrible; used by clustering tests."""
    return _as_u32(x).copy()


#: Registry of named mixers for config-driven selection.
MIXERS = {
    "fmix32": fmix32,
    "mueller": mueller,
    "identity": identity32,
}
