"""SIMT race sanitizer for the simulated reference kernels.

The analogue of ``compute-sanitizer --tool racecheck`` for this repo's
execution model.  The reference kernels (:mod:`repro.core.kernels_ref`)
run as one generator per coalesced group, interleaved by a scheduler; the
checker shadows every word of the instrumented arrays and records
``(launch, task, lane, instruction-epoch, access-kind)`` per access.

Memory-model discipline
-----------------------
The paper's kernels obey two rules, and the checker flags exactly their
violations:

``unguarded-write``
    *Between groups* there is no synchronization inside a kernel launch
    (grid barriers only exist between launches), so every write to a
    shared word must be atomic (the 64-bit CAS of Fig. 3 line 13).  A
    plain store to a word that any *other* group touches in the same
    launch — read, write, or atomic — is a data race.  Plain reads may
    race with other groups' atomics: that staleness is the algorithm's
    documented tolerance ("the copies of the keys in registers might have
    already been deprecated"), resolved by reloading after a failed CAS.

``intra-group-unsynced``
    *Within a group*, lanes synchronize only at the implicit barriers of
    the collectives (``ballot`` / ``any`` / ``shfl``).  Under Volta
    independent thread scheduling nothing else orders lanes, so a plain
    write by one lane plus any access by a *different* lane to the same
    word inside one sync interval (one "instruction epoch") is a race —
    the classic missing ``__syncwarp`` after a ballot.

Both rules are schedule-independent: they are judged on the recorded
access sets, not on the particular interleaving the scheduler happened to
produce, so a seeded mutant is flagged deterministically under lock-step
and Volta-style scheduling alike.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..constants import EMPTY_SLOT
from ..core.config import HashTableConfig
from ..core.probing import WindowSequence
from ..simt.counters import TransactionCounter
from ..simt.kernel import launch
from ..simt.scheduler import RoundRobinScheduler, ScheduleObserver, Scheduler
from ..simt.warp import CoalescedGroup
from .shadow import AccessKind, AccessRecord, ShadowedArray

__all__ = [
    "RaceChecker",
    "RaceFinding",
    "RacecheckReport",
    "RacecheckSession",
]

#: per-word record cap; beyond this the word's extra traffic is only
#: counted (a hot word has long since accumulated every distinct
#: (task, lane, kind) combination that matters for the rules)
MAX_RECORDS_PER_WORD = 256


@dataclass(frozen=True)
class _Shadow:
    """One recorded access, tagged with its kernel launch."""

    launch: int
    record: AccessRecord


@dataclass(frozen=True)
class RaceFinding:
    """One detected race on one shadowed word."""

    array: str
    row: int
    rule: str  # "unguarded-write" | "intra-group-unsynced"
    write: AccessRecord
    other: AccessRecord
    launch: int

    def describe(self) -> str:
        return (
            f"[{self.rule}] {self.array}[{self.row}] launch {self.launch}: "
            f"{self.write.describe()} conflicts with {self.other.describe()}"
        )

    def to_dict(self) -> dict:
        return {
            "array": self.array,
            "row": self.row,
            "rule": self.rule,
            "launch": self.launch,
            "write": self.write.describe(),
            "other": self.other.describe(),
        }


@dataclass
class RacecheckReport:
    """Findings plus traffic statistics for one checked session."""

    findings: list[RaceFinding] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    schedule: str = ""

    schema_version = 1

    @property
    def clean(self) -> bool:
        return not self.findings

    def rules_hit(self) -> set[str]:
        return {f.rule for f in self.findings}

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys)."""
        from ..obs.protocol import reportable_dict

        return reportable_dict(
            self,
            {
                "clean": self.clean,
                "schedule": self.schedule,
                "rules_hit": sorted(self.rules_hit()),
                "findings": [f.to_dict() for f in self.findings],
                "stats": dict(sorted(self.stats.items())),
            },
        )

    def format(self) -> str:
        lines = [
            f"racecheck: {len(self.findings)} finding(s) under {self.schedule}"
        ]
        for f in self.findings[:20]:
            lines.append("  " + f.describe())
        if len(self.findings) > 20:
            lines.append(f"  ... and {len(self.findings) - 20} more")
        lines.append(
            "traffic: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.stats.items()))
        )
        return "\n".join(lines)


class RaceChecker(ScheduleObserver):
    """Shadow-memory recorder + conflict detector.

    One checker instance can shadow several arrays (slots plus auxiliary
    buffers) and span several kernel launches; launch boundaries act as
    global barriers, so conflicts are only reported within a launch.
    """

    def __init__(self):
        self.current_task: int | None = None
        self.current_launch = -1
        self._epochs: dict[int, int] = {}
        #: (array_name, row) -> recorded accesses
        self._words: dict[tuple[str, int], list[_Shadow]] = {}
        self._suppress_depth = 0
        self.overflowed_words = 0
        self.stats = {
            "plain_reads": 0,
            "plain_writes": 0,
            "atomics": 0,
            "syncs": 0,
            "launches": 0,
            "tasks": 0,
        }

    # -- array registration ----------------------------------------------

    def shadow(self, array: np.ndarray, name: str = "slots") -> ShadowedArray:
        """Wrap ``array`` so its accesses are recorded under ``name``."""
        return ShadowedArray(array, self, name)

    # -- sanitizer protocol (shadow + atomics + warp) ----------------------

    @property
    def plain_enabled(self) -> bool:
        return self._suppress_depth == 0

    @contextmanager
    def suppress_plain(self):
        """Hide the plain accesses inside an atomic implementation."""
        self._suppress_depth += 1
        try:
            yield
        finally:
            self._suppress_depth -= 1

    def record_plain(
        self, name: str, rows: np.ndarray, kind: AccessKind, *, lanes_positional: bool
    ) -> None:
        key = "plain_reads" if kind is AccessKind.READ else "plain_writes"
        self.stats[key] += int(rows.size)
        if self.current_task is None:
            return  # host-phase traffic cannot race with group traffic
        epoch = self._epochs.get(self.current_task, 0)
        for i, row in enumerate(rows):
            lane = i if lanes_positional else -1
            self._record(
                name, int(row), AccessRecord(self.current_task, lane, epoch, kind)
            )

    def record_atomic(self, name: str, row: int, *, lane: int = -1) -> None:
        self.stats["atomics"] += 1
        if self.current_task is None:
            return
        epoch = self._epochs.get(self.current_task, 0)
        self._record(
            name,
            int(row),
            AccessRecord(self.current_task, lane, epoch, AccessKind.ATOMIC),
        )

    def on_sync(self) -> None:
        self.stats["syncs"] += 1
        if self.current_task is not None:
            self._epochs[self.current_task] = (
                self._epochs.get(self.current_task, 0) + 1
            )

    # -- ScheduleObserver --------------------------------------------------

    def on_launch(self, num_tasks: int, description: str) -> None:
        self.current_launch += 1
        self.stats["launches"] += 1
        self.stats["tasks"] += num_tasks
        self._epochs = {}

    def on_task_step(self, idx: int) -> None:
        self.current_task = idx

    def on_task_done(self, idx: int) -> None:
        if self.current_task == idx:
            self.current_task = None

    # -- recording ---------------------------------------------------------

    def _record(self, name: str, row: int, record: AccessRecord) -> None:
        key = (name, row)
        bucket = self._words.setdefault(key, [])
        if len(bucket) >= MAX_RECORDS_PER_WORD:
            self.overflowed_words += 1
            return
        bucket.append(_Shadow(self.current_launch, record))

    # -- conflict detection ------------------------------------------------

    def findings(self) -> list[RaceFinding]:
        out: list[RaceFinding] = []
        for (name, row), shadows in sorted(self._words.items()):
            by_launch: dict[int, list[AccessRecord]] = {}
            for s in shadows:
                by_launch.setdefault(s.launch, []).append(s.record)
            for launch_id, records in by_launch.items():
                out.extend(
                    self._word_findings(name, row, launch_id, records)
                )
        return out

    @staticmethod
    def _word_findings(
        name: str, row: int, launch_id: int, records: list[AccessRecord]
    ) -> list[RaceFinding]:
        found: list[RaceFinding] = []
        seen_rules: set[tuple[str, int]] = set()  # (rule, writer task)
        writes = [r for r in records if r.kind is AccessKind.WRITE]
        for w in writes:
            # rule 1: cross-group plain write vs any other group's access
            if ("unguarded-write", w.task) not in seen_rules:
                other = next((r for r in records if r.task != w.task), None)
                if other is not None:
                    found.append(
                        RaceFinding(name, row, "unguarded-write", w, other, launch_id)
                    )
                    seen_rules.add(("unguarded-write", w.task))
            # rule 2: same group, same sync interval, different lanes
            if w.lane >= 0 and ("intra-group-unsynced", w.task) not in seen_rules:
                other = next(
                    (
                        r
                        for r in records
                        if r.task == w.task
                        and r.epoch == w.epoch
                        and r.lane >= 0
                        and r.lane != w.lane
                    ),
                    None,
                )
                if other is not None:
                    found.append(
                        RaceFinding(
                            name, row, "intra-group-unsynced", w, other, launch_id
                        )
                    )
                    seen_rules.add(("intra-group-unsynced", w.task))
        return found

    def report(self, schedule: str = "") -> RacecheckReport:
        stats = dict(self.stats)
        stats["overflowed_words"] = self.overflowed_words
        return RacecheckReport(
            findings=self.findings(), stats=stats, schedule=schedule
        )


class RacecheckSession:
    """A shadow-instrumented mini-table for racechecking kernels.

    Owns an EMPTY-filled slot array (wrapped), the window sequence, and a
    coalesced group whose collectives advance the checker's epochs.  Any
    generator-kernel with the ``kernels_ref`` calling convention can be
    launched through :meth:`launch`; auxiliary shared buffers (e.g. a
    success counter) come from :meth:`aux`.
    """

    def __init__(
        self,
        capacity: int,
        group_size: int,
        *,
        p_max: int | None = None,
        scheduler: Scheduler | None = None,
    ):
        self.checker = RaceChecker()
        kwargs = {"capacity": capacity, "group_size": group_size}
        if p_max is not None:
            kwargs["p_max"] = p_max
        config = HashTableConfig(**kwargs)
        self.config = config
        self.counter = TransactionCounter()
        self.slots = self.checker.shadow(
            np.full(capacity, EMPTY_SLOT, dtype=np.uint64), "slots"
        )
        self.seq = WindowSequence(config.family, config.group_size, config.p_max)
        self.group = CoalescedGroup(
            group_size, self.counter, sanitizer=self.checker
        )
        self.scheduler = scheduler if scheduler is not None else RoundRobinScheduler()
        self._aux: dict[str, np.ndarray] = {}

    def aux(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        """A named shadow-instrumented auxiliary device buffer."""
        if name not in self._aux:
            base = np.zeros(size, dtype=dtype)
            self._aux[name] = self.checker.shadow(base, name)
        return self._aux[name]

    def launch(self, kernel_factory, num_items: int):
        """Launch ``num_items`` tasks of ``kernel_factory(i)``."""
        return launch(
            kernel_factory,
            num_items,
            scheduler=self.scheduler,
            counter=self.counter,
            observer=self.checker,
        )

    def report(self) -> RacecheckReport:
        return self.checker.report(schedule=self.scheduler.describe())
