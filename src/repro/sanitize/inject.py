"""Fault injection: seeded fast-path defects the fuzz harness must find.

Each injection monkey-patches a defective variant of one fast-path
function into **every** namespace that holds a direct reference to it
(``from X import f`` freezes bindings, so patching the defining module
alone is not enough).  The defects are real bug classes for this data
structure, and each is *conditional* — it only changes behaviour on
workloads with the right shape — so discovering one genuinely exercises
the harness's randomization, and shrinking it exercises the reducer:

``query-tombstone-skip``
    ``bulk_query`` treats tombstones as EMPTY, so the absence proof
    fires at the first vacant slot.  Visible only when a live key's
    probe path crosses a tombstone (needs deletions + enough load).

``erase-early-stop``
    ``bulk_erase`` walks only the first outer probe attempt.  Visible
    only when an erased key lives beyond window ``p = 0`` or a shadowed
    duplicate copy follows the first match.

``multisplit-unstable``
    ``multisplit_fast`` loses its stable within-bin order.  Final
    tables stay correct — only the bit-exact differential against the
    reference multisplit (ordering + routing arrays) catches it.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..constants import EMPTY_SLOT, TOMBSTONE_SLOT

__all__ = ["INJECTIONS", "InjectionSpec"]


@dataclass(frozen=True)
class InjectionSpec:
    """One seeded fast-path defect and where the harness should catch it."""

    name: str
    summary: str
    #: differential check expected to report the first mismatch
    expected_check: str
    #: builds [(module, attr, replacement), ...] given the live originals
    _targets: Callable[[], list[tuple[object, str, object]]]

    @contextmanager
    def apply(self) -> Iterator[None]:
        targets = self._targets()
        saved = [(mod, attr, getattr(mod, attr)) for mod, attr, _ in targets]
        for mod, attr, replacement in targets:
            setattr(mod, attr, replacement)
        try:
            yield
        finally:
            for mod, attr, original in saved:
                setattr(mod, attr, original)


def _query_tombstone_skip_targets() -> list[tuple[object, str, object]]:
    from ..core import bulk as bulk_mod
    from ..core import table as table_mod
    from ..exec import engine as engine_mod

    real_bulk_query = bulk_mod.bulk_query

    def broken_bulk_query(slots, seq, keys, counter=None, default=0):
        # DEFECT: tombstones treated as EMPTY — the probe walk's absence
        # proof fires at the first *vacant* slot instead of the first
        # truly empty one, hiding keys stored beyond a deletion
        view = np.asarray(slots).copy()
        view[view == TOMBSTONE_SLOT] = EMPTY_SLOT
        return real_bulk_query(view, seq, keys, counter, default=default)

    return [
        (table_mod, "bulk_query", broken_bulk_query),
        (engine_mod, "bulk_query", broken_bulk_query),
    ]


def _erase_early_stop_targets() -> list[tuple[object, str, object]]:
    from ..core import bulk as bulk_mod
    from ..core import table as table_mod
    from ..core.probing import WindowSequence
    from ..exec import engine as engine_mod

    real_bulk_erase = bulk_mod.bulk_erase

    def broken_bulk_erase(slots, seq, keys, counter=None):
        # DEFECT: gives up after the first outer probe attempt — keys
        # that live past window p = 0 (or duplicate copies beyond the
        # first match) survive the erase
        truncated = WindowSequence(seq.family, seq.group_size, 1)
        return real_bulk_erase(slots, truncated, keys, counter)

    return [
        (table_mod, "bulk_erase", broken_bulk_erase),
        (engine_mod, "bulk_erase", broken_bulk_erase),
    ]


def _multisplit_unstable_targets() -> list[tuple[object, str, object]]:
    import importlib

    multisplit_mod = importlib.import_module("repro.multigpu.multisplit")
    dist_mod = importlib.import_module("repro.multigpu.distributed_table")

    real_multisplit_fast = multisplit_mod.multisplit_fast

    def broken_multisplit_fast(pairs, partition, *args, **kwargs):
        # DEFECT: within-bin order reversed — a lost stability guarantee.
        # Routing stays self-consistent, so only the bit-exact
        # differential against the reference multisplit sees it.
        result = real_multisplit_fast(pairs, partition, *args, **kwargs)
        for p in range(result.num_parts):
            start = int(result.offsets[p])
            stop = start + int(result.counts[p])
            result.pairs[start:stop] = result.pairs[start:stop][::-1].copy()
            result.source_index[start:stop] = (
                result.source_index[start:stop][::-1].copy()
            )
        return result

    return [
        (multisplit_mod, "multisplit_fast", broken_multisplit_fast),
        (dist_mod, "multisplit_fast", broken_multisplit_fast),
    ]


INJECTIONS: dict[str, InjectionSpec] = {
    spec.name: spec
    for spec in [
        InjectionSpec(
            name="query-tombstone-skip",
            summary="bulk_query treats tombstones as EMPTY (early absence)",
            expected_check="erase-tombstone",
            _targets=_query_tombstone_skip_targets,
        ),
        InjectionSpec(
            name="erase-early-stop",
            summary="bulk_erase walks only the first outer probe attempt",
            expected_check="erase-tombstone",
            _targets=_erase_early_stop_targets,
        ),
        InjectionSpec(
            name="multisplit-unstable",
            summary="multisplit_fast loses stable within-bin ordering",
            expected_check="multisplit",
            _targets=_multisplit_unstable_targets,
        ),
    ]
}
