"""Race sanitizer and differential fuzzing for the simulated fast paths.

Two halves, mirroring NVIDIA's ``compute-sanitizer`` + fuzzing practice:

- :mod:`repro.sanitize.shadow` / :mod:`repro.sanitize.racecheck` — a
  shadow-memory *racecheck* pass over the reference generator kernels,
  flagging unguarded cross-group writes and missing intra-group syncs
  under any scheduler.  :mod:`repro.sanitize.mutants` carries the seeded
  defect catalogue that proves the checker's teeth.
- :mod:`repro.sanitize.fuzz` / :mod:`repro.sanitize.inject` — a
  differential fuzz harness cross-checking the vectorized fast paths
  against the reference semantics on randomized workloads, with fault
  injection, shrinking, and deterministic replay (``repro fuzz``).

The fuzz half imports the core/exec/multigpu stacks, which in turn can
import :mod:`repro.sanitize.shadow`; to keep that cycle broken the heavy
submodules load lazily via module ``__getattr__``.
"""

from __future__ import annotations

from .racecheck import RaceChecker, RacecheckReport, RacecheckSession, RaceFinding
from .shadow import AccessKind, AccessRecord, ShadowedArray

__all__ = [
    "AccessKind",
    "AccessRecord",
    "RaceChecker",
    "RaceFinding",
    "RacecheckReport",
    "RacecheckSession",
    "ShadowedArray",
    "fuzz",
    "inject",
    "mutants",
]

_LAZY_SUBMODULES = {"fuzz", "inject", "mutants"}


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
