"""Shadow-memory instrumentation for simulated device arrays.

A :class:`ShadowedArray` is a drop-in ``np.ndarray`` view whose plain
``__getitem__`` / ``__setitem__`` report every access to an attached
sanitizer, together with the issuing coalesced-group lane (positional:
lane ``i`` of a 1-D fancy-index access touches the ``i``-th indexed word,
matching the window convention of the reference kernels, where
``slots[rows]`` loads ``rows[i]`` into lane ``i``'s register).

Atomic operations (:mod:`repro.simt.atomics`) detect the shadow wrapper,
report themselves as *atomic* accesses, and suppress the plain accesses
their implementation performs underneath — one indivisible access, like
real hardware atomics.

Views and copies derived from a shadowed array are **not** tracked: the
window snapshot a kernel loads is register state, and register traffic is
not shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["AccessKind", "AccessRecord", "ShadowedArray"]


class AccessKind(Enum):
    """How a shadowed word was touched."""

    READ = "read"
    WRITE = "write"
    ATOMIC = "atomic"


@dataclass(frozen=True)
class AccessRecord:
    """One access to one shadowed word.

    ``task`` is the scheduler's group-task index (-1 outside any launch,
    e.g. host-side setup), ``lane`` the issuing group lane (-1 when the
    access pattern does not identify one), ``epoch`` the task's
    instruction-epoch — the count of implicit group syncs (ballot / any /
    shfl) the task had executed when the access happened.
    """

    task: int
    lane: int
    epoch: int
    kind: AccessKind

    def describe(self) -> str:
        where = f"group {self.task}" if self.task >= 0 else "host"
        lane = f" lane {self.lane}" if self.lane >= 0 else ""
        return f"{self.kind.value} by {where}{lane} @epoch {self.epoch}"


def _index_rows(n: int, index) -> np.ndarray:
    """Flat word indices touched by ``array[index]``, lane-ordered.

    For the kernel-idiomatic access shapes (scalar int, 1-D integer
    array) the order of the result *is* the lane order.  Any other index
    type (slices, boolean masks, multi-dimensional gathers from the
    vectorized host paths) is normalized via an arange gather and carries
    no lane attribution.
    """
    if isinstance(index, (int, np.integer)):
        return np.asarray([int(index) % n if index < 0 else int(index)])
    idx = np.asarray(index) if not isinstance(index, np.ndarray) else index
    if idx.dtype.kind in "iu" and idx.ndim == 1:
        rows = idx.astype(np.int64, copy=True)
        rows[rows < 0] += n
        return rows
    return np.arange(n, dtype=np.int64)[index].ravel()


class ShadowedArray(np.ndarray):
    """An ndarray whose plain element accesses report to a sanitizer.

    Construct with the array to instrument and the checker; the result is
    a *view* over the same memory, so the caller can keep using either
    handle (only accesses through the shadowed view are recorded).
    """

    def __new__(
        cls, base: np.ndarray, sanitizer, name: str = "slots"
    ) -> "ShadowedArray":
        obj = np.asarray(base).view(cls)
        obj.sanitizer = sanitizer
        obj.shadow_name = name
        return obj

    def __array_finalize__(self, obj):
        # views/copies derived from a shadowed array are register state,
        # not shared memory — they carry no sanitizer
        self.sanitizer = None
        self.shadow_name = "derived"

    # -- instrumented element access ------------------------------------

    def __getitem__(self, index):
        sanitizer = self.sanitizer
        if sanitizer is not None and sanitizer.plain_enabled:
            lane_attributed = isinstance(index, np.ndarray) and index.ndim == 1
            sanitizer.record_plain(
                self.shadow_name,
                _index_rows(self.shape[0], index),
                AccessKind.READ,
                lanes_positional=lane_attributed,
            )
        out = super().__getitem__(index)
        if isinstance(out, np.ndarray):
            return out.view(np.ndarray)
        return out

    def __setitem__(self, index, value):
        sanitizer = self.sanitizer
        if sanitizer is not None and sanitizer.plain_enabled:
            lane_attributed = isinstance(index, np.ndarray) and index.ndim == 1
            sanitizer.record_plain(
                self.shadow_name,
                _index_rows(self.shape[0], index),
                AccessKind.WRITE,
                lanes_positional=lane_attributed,
            )
        super().__setitem__(index, value)

    def __reduce__(self):  # pragma: no cover - defensive
        # pickling would detach the sanitizer; ship the plain data instead
        return (np.asarray, (np.asarray(self).copy(),))
