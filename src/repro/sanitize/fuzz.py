"""Differential fuzz harness cross-checking fast paths against reference.

Every case is derived from a single integer seed: workload shape (size,
group size, load factor, key skew, tombstone ratio, GPU count) and the
scheduler seed for the randomized-interleaving subcheck.  A case runs a
fixed battery of differential checks, each asserting an equivalence the
repo's property tests establish as exact:

``insert-export``
    Fast bulk insert vs the Fig. 3 reference kernels: identical stored
    pair sets (and, for unique keys, identical under a Volta-style
    random interleaving of the reference groups).
``query``
    Identical (values, found) for present and absent probe keys.
``erase-tombstone``
    Identical erase masks, identical post-erase query answers, and
    identical exports after re-inserting into the tombstoned table.
``multisplit``
    ``multisplit_fast`` bit-identical to ``multisplit`` — outputs,
    KernelReport, and TransactionCounter snapshots.
``distributed``
    The fused distribution path vs the reference path over an ``m``-GPU
    node: cascade answers, exports, per-phase accounting, device
    counters, and transfer logs all bit-identical.

Failures shrink greedily (smaller n, fewer GPUs, simpler skew) while
preserving the failing check, and are appended to a JSON seed corpus for
deterministic replay (``repro fuzz --replay <seed>``).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

import numpy as np

__all__ = [
    "CHECK_NAMES",
    "FuzzCase",
    "FuzzFailure",
    "FuzzRunResult",
    "load_corpus",
    "replay_seed",
    "run_case",
    "run_fuzz",
    "shrink",
]

#: entries kept in the corpus (failures are always kept first)
CORPUS_MAX_ENTRIES = 200

_N_CHOICES = (12, 24, 48, 96, 160, 240)
_GROUP_CHOICES = (1, 2, 4, 8, 16, 32)
_LOAD_CHOICES = (0.35, 0.55, 0.75, 0.85, 0.92)
_SKEW_CHOICES = ("unique", "uniform", "zipf", "dup")
_TOMBSTONE_CHOICES = (0.0, 0.25, 0.25, 0.5)  # tombstoned paths weighted up
_M_CHOICES = (1, 2, 4, 8)


@dataclass(frozen=True)
class FuzzCase:
    """One randomized differential workload, fully determined by ``seed``."""

    seed: int
    n: int
    group_size: int
    load_factor: float
    skew: str
    tombstone_ratio: float
    m: int
    scheduler_seed: int

    @classmethod
    def from_seed(cls, seed: int) -> "FuzzCase":
        import random

        rng = random.Random(seed)
        return cls(
            seed=seed,
            n=rng.choice(_N_CHOICES),
            group_size=rng.choice(_GROUP_CHOICES),
            load_factor=rng.choice(_LOAD_CHOICES),
            skew=rng.choice(_SKEW_CHOICES),
            tombstone_ratio=rng.choice(_TOMBSTONE_CHOICES),
            m=rng.choice(_M_CHOICES),
            scheduler_seed=rng.randrange(1 << 16),
        )

    schema_version = 1

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys)."""
        return {"schema_version": self.schema_version, **asdict(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__})

    def describe(self) -> str:
        return (
            f"seed={self.seed} n={self.n} g={self.group_size} "
            f"load={self.load_factor} skew={self.skew} "
            f"tombstones={self.tombstone_ratio} m={self.m} "
            f"scheduler_seed={self.scheduler_seed}"
        )


@dataclass
class FuzzFailure:
    """One differential mismatch, with everything needed to replay it."""

    case: FuzzCase
    check: str
    detail: str
    shrunk: FuzzCase | None = None

    def message(self) -> str:
        lines = [
            f"differential check {self.check!r} failed: {self.detail}",
            f"  case: {self.case.describe()}",
            f"  replay: repro fuzz --replay {self.case.seed}",
        ]
        if self.shrunk is not None and self.shrunk != self.case:
            lines.append(f"  shrunk: {self.shrunk.describe()}")
        return "\n".join(lines)


@dataclass
class FuzzRunResult:
    """Outcome of one fuzzing run."""

    cases_run: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    elapsed: float = 0.0
    corpus_path: str | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        lines = [
            f"fuzz: {self.cases_run} case(s) in {self.elapsed:.1f}s, "
            f"{len(self.failures)} failure(s)"
        ]
        for f in self.failures:
            lines.append(f.message())
        if self.corpus_path:
            lines.append(f"corpus: {self.corpus_path}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# workload derivation
# ---------------------------------------------------------------------------


def _workload(case: FuzzCase) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(keys, values, absent-probe-keys) for one case."""
    from ..workloads.distributions import (
        random_values,
        uniform_keys,
        unique_keys,
        zipf_keys,
    )

    n, seed = case.n, case.seed
    if case.skew == "unique":
        keys = unique_keys(n, seed=seed)
    elif case.skew == "uniform":
        keys = uniform_keys(n, seed=seed)
    elif case.skew == "zipf":
        keys = zipf_keys(n, s=1.3, universe=max(n // 2, 2), seed=seed)
    elif case.skew == "dup":
        # heavy exact duplication over a tiny universe
        universe = unique_keys(max(n // 6, 1), seed=seed)
        rng = np.random.default_rng(seed)
        keys = universe[rng.integers(0, universe.size, size=n)]
    else:  # pragma: no cover - guarded by _SKEW_CHOICES
        raise ValueError(f"unknown skew {case.skew!r}")
    values = random_values(n, seed=seed + 1)
    # absent keys: drawn from a disjoint stream, filtered against present
    candidates = unique_keys(n + 16, seed=seed + 2)
    absent = candidates[~np.isin(candidates, keys)][: max(n // 2, 1)]
    return keys.astype(np.uint32), values, absent.astype(np.uint32)


def _table_pair(case: FuzzCase, keys: np.ndarray):
    """Two identically-configured single-GPU tables (fast vs ref)."""
    from ..core.table import WarpDriveHashTable

    uniq = int(np.unique(keys).size)
    make = lambda: WarpDriveHashTable.for_load_factor(  # noqa: E731
        max(uniq, 1), case.load_factor, group_size=case.group_size
    )
    return make(), make()


def _diff(what: str, a: np.ndarray, b: np.ndarray) -> str | None:
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        return f"{what}: shape {a.shape} vs {b.shape}"
    if a.size and not (a == b).all():
        i = int(np.argmax(a != b))
        return f"{what}: first mismatch at [{i}]: {a[i]} vs {b[i]}"
    return None


def _sorted_pairs(table) -> tuple[np.ndarray, np.ndarray]:
    k, v = table.export()
    order = np.argsort(k, kind="stable")
    return k[order], v[order]


# ---------------------------------------------------------------------------
# differential checks
# ---------------------------------------------------------------------------


def _check_insert_export(case, keys, values, absent) -> str | None:
    from ..simt.scheduler import RandomScheduler, SequentialScheduler

    fast, ref = _table_pair(case, keys)
    fast.insert(keys, values, kernels="fast")
    ref.insert(keys, values, kernels="ref", scheduler=SequentialScheduler())
    fk, fv = _sorted_pairs(fast)
    rk, rv = _sorted_pairs(ref)
    err = _diff("export keys", fk, rk) or _diff("export values", fv, rv)
    if err:
        return err
    if len(fast) != len(ref):
        return f"size: {len(fast)} vs {len(ref)}"
    if case.skew == "unique":
        # unique keys: the stored pair set is schedule-independent, so a
        # randomized Volta-style interleaving must agree bit for bit
        _, ref2 = _table_pair(case, keys)
        ref2.insert(
            keys, values, kernels="ref",
            scheduler=RandomScheduler(seed=case.scheduler_seed),
        )
        rk2, rv2 = _sorted_pairs(ref2)
        err = _diff("export keys (random schedule)", fk, rk2) or _diff(
            "export values (random schedule)", fv, rv2
        )
        if err:
            return f"{err} [scheduler_seed={case.scheduler_seed}]"
    return None


def _check_query(case, keys, values, absent) -> str | None:
    fast, _ = _table_pair(case, keys)
    fast.insert(keys, values)
    probe = np.concatenate([keys, absent])
    vf, ff = fast.query(probe, kernels="fast")
    vr, fr = fast.query(probe, kernels="ref")
    return _diff("query found", ff, fr) or _diff("query values", vf, vr)


def _check_erase_tombstone(case, keys, values, absent) -> str | None:
    from ..workloads.distributions import random_values, unique_keys

    fast, ref = _table_pair(case, keys)
    fast.insert(keys, values)
    ref.insert(keys, values, kernels="ref")
    present = np.unique(keys)
    n_erase = int(round(present.size * case.tombstone_ratio)) or 1
    victims = present[:n_erase]
    ef = fast.erase(victims, kernels="fast")
    er = ref.erase(victims, kernels="ref")
    err = _diff("erase mask", ef, er)
    if err:
        return err
    probe = np.concatenate([keys, absent])
    vf, ff = fast.query(probe, kernels="fast")
    vr, fr = ref.query(probe, kernels="ref")
    err = _diff("post-erase found", ff, fr) or _diff("post-erase values", vf, vr)
    if err:
        return err
    # re-insert over the tombstones: both executors must reuse them into
    # the same final pair set
    fresh = unique_keys(n_erase, seed=case.seed + 3)
    fresh_v = random_values(n_erase, seed=case.seed + 4)
    fast.insert(fresh, fresh_v, kernels="fast")
    ref.insert(fresh, fresh_v, kernels="ref")
    fk, fv = _sorted_pairs(fast)
    rk, rv = _sorted_pairs(ref)
    return _diff("post-reinsert keys", fk, rk) or _diff(
        "post-reinsert values", fv, rv
    )


def _check_multisplit(case, keys, values, absent) -> str | None:
    import importlib

    from ..hashing.partition import hashed_partition
    from ..memory.layout import pack_pairs
    from ..simt.counters import TransactionCounter

    # the package rebinds `multisplit` to the function; resolve the module
    # (and call through it, so fault injection on its attributes is seen)
    multisplit_mod = importlib.import_module("repro.multigpu.multisplit")

    pairs = pack_pairs(keys, values)
    partition = hashed_partition(case.m)
    c_ref, c_fast = TransactionCounter(), TransactionCounter()
    ref = multisplit_mod.multisplit(
        pairs, partition, counter=c_ref, group_size=case.group_size
    )
    fast = multisplit_mod.multisplit_fast(
        pairs, partition, counter=c_fast, group_size=case.group_size
    )
    err = (
        _diff("multisplit pairs", ref.pairs, fast.pairs)
        or _diff("multisplit source_index", ref.source_index, fast.source_index)
        or _diff("multisplit counts", ref.counts, fast.counts)
        or _diff("multisplit offsets", ref.offsets, fast.offsets)
        or _diff(
            "multisplit probe_windows",
            ref.report.probe_windows,
            fast.report.probe_windows,
        )
    )
    if err:
        return err
    for field_name in ("load_sectors", "store_sectors", "warp_collectives"):
        a = getattr(ref.report, field_name)
        b = getattr(fast.report, field_name)
        if a != b:
            return f"multisplit report.{field_name}: {a} vs {b}"
    if c_ref.snapshot() != c_fast.snapshot():
        return f"multisplit counters: {c_ref.snapshot()} vs {c_fast.snapshot()}"
    return None


def _cascade_report_diff(ref, fused) -> str | None:
    for name in (
        "op",
        "num_ops",
        "h2d_bytes",
        "d2h_bytes",
        "alltoall_bytes",
        "alltoall_seconds",
        "reverse_bytes",
        "reverse_seconds",
    ):
        a, b = getattr(ref, name), getattr(fused, name)
        if a != b:
            return f"cascade.{name}: {a} vs {b}"
    err = _diff("cascade.h2d_per_gpu", ref.h2d_per_gpu, fused.h2d_per_gpu) or _diff(
        "cascade.d2h_per_gpu", ref.d2h_per_gpu, fused.d2h_per_gpu
    )
    if err:
        return err
    if (ref.partition_table is None) != (fused.partition_table is None):
        return "cascade.partition_table: presence mismatch"
    if ref.partition_table is not None:
        err = _diff(
            "cascade.partition_table",
            ref.partition_table.counts,
            fused.partition_table.counts,
        )
        if err:
            return err
    for label, a_list, b_list in (
        ("multisplit_reports", ref.multisplit_reports, fused.multisplit_reports),
        ("kernel_reports", ref.kernel_reports, fused.kernel_reports),
    ):
        if len(a_list) != len(b_list):
            return f"cascade.{label}: length {len(a_list)} vs {len(b_list)}"
        for i, (a, b) in enumerate(zip(a_list, b_list)):
            if a.as_dict() != b.as_dict():
                return f"cascade.{label}[{i}]: {a.as_dict()} vs {b.as_dict()}"
    return None


def _check_distributed(case, keys, values, absent) -> str | None:
    from ..multigpu import distributed_table as dist_mod
    from ..multigpu.topology import p100_nvlink_node

    tables = {}
    for mode in ("reference", "fused"):
        node = p100_nvlink_node(case.m)
        tables[mode] = dist_mod.DistributedHashTable.for_workload(
            node, keys, min(case.load_factor, 0.9),
            group_size=case.group_size, distribution=mode,
        )
    ref, fused = tables["reference"], tables["fused"]
    try:
        rep_ref = ref.insert(keys, values, source="host")
        rep_fused = fused.insert(keys, values, source="host")
        err = _cascade_report_diff(rep_ref, rep_fused)
        if err:
            return f"insert {err}"

        probe = np.concatenate([keys, absent])
        vr, fr, qrep_ref = ref.query(probe, source="host")
        vf, ff, qrep_fused = fused.query(probe, source="host")
        err = (
            _diff("distributed query values", vr, vf)
            or _diff("distributed query found", fr, ff)
            or _cascade_report_diff(qrep_ref, qrep_fused)
        )
        if err:
            return err

        present = np.unique(keys)
        n_erase = int(round(present.size * case.tombstone_ratio)) or 1
        victims = present[:n_erase]
        er, erep_ref = ref.erase(victims)
        ef, erep_fused = fused.erase(victims)
        err = _diff("distributed erase mask", er, ef) or _cascade_report_diff(
            erep_ref, erep_fused
        )
        if err:
            return err

        rk, rv = ref.export()
        fk, fv = fused.export()
        order_r = np.argsort(rk, kind="stable")
        order_f = np.argsort(fk, kind="stable")
        err = _diff("distributed export keys", rk[order_r], fk[order_f]) or _diff(
            "distributed export values", rv[order_r], fv[order_f]
        )
        if err:
            return err

        if ref.transfer_log.bytes_by_kind() != fused.transfer_log.bytes_by_kind():
            return (
                f"transfer log: {ref.transfer_log.bytes_by_kind()} vs "
                f"{fused.transfer_log.bytes_by_kind()}"
            )
        for gpu, (dr, df) in enumerate(
            zip(ref.topology.devices, fused.topology.devices)
        ):
            if dr.counter.snapshot() != df.counter.snapshot():
                return f"device {gpu} counters diverge"
    finally:
        ref.free()
        fused.free()
    return None


#: check battery, in execution order (first failure wins)
CHECKS = [
    ("insert-export", _check_insert_export),
    ("query", _check_query),
    ("erase-tombstone", _check_erase_tombstone),
    ("multisplit", _check_multisplit),
    ("distributed", _check_distributed),
]

CHECK_NAMES = tuple(name for name, _ in CHECKS)


def run_case(case: FuzzCase) -> FuzzFailure | None:
    """Run the full check battery on one case; first mismatch wins."""
    keys, values, absent = _workload(case)
    for name, check in CHECKS:
        try:
            detail = check(case, keys, values, absent)
        except Exception as exc:  # differential harness: crashes are findings
            detail = f"exception {type(exc).__name__}: {exc}"
        if detail is not None:
            return FuzzFailure(case=case, check=name, detail=detail)
    return None


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------


def _shrink_candidates(case: FuzzCase):
    """Simpler variants of ``case``, most aggressive first."""
    if case.n > _N_CHOICES[0]:
        for smaller in (case.n // 4, case.n // 2, (3 * case.n) // 4):
            if _N_CHOICES[0] <= smaller < case.n:
                yield replace(case, n=smaller)
    if case.m > 1:
        yield replace(case, m=1)
        if case.m > 2:
            yield replace(case, m=2)
    if case.skew != "unique":
        yield replace(case, skew="unique")
    if case.tombstone_ratio > 0.0:
        yield replace(case, tombstone_ratio=0.0)
    if case.group_size > 2:
        yield replace(case, group_size=2)
    if case.load_factor > _LOAD_CHOICES[0]:
        yield replace(case, load_factor=_LOAD_CHOICES[0])


def shrink(failure: FuzzFailure, *, max_attempts: int = 40) -> FuzzCase:
    """Greedy shrink: accept any simpler case failing the *same* check."""
    current = failure.case
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _shrink_candidates(current):
            attempts += 1
            if attempts > max_attempts:
                break
            smaller_failure = run_case(candidate)
            if smaller_failure is not None and smaller_failure.check == failure.check:
                current = candidate
                improved = True
                break
    return current


# ---------------------------------------------------------------------------
# corpus + run loop
# ---------------------------------------------------------------------------


def load_corpus(path: str | Path) -> dict:
    p = Path(path)
    if not p.exists():
        return {"version": 1, "entries": []}
    try:
        data = json.loads(p.read_text())
    except (OSError, json.JSONDecodeError):
        return {"version": 1, "entries": []}
    if not isinstance(data, dict) or "entries" not in data:
        return {"version": 1, "entries": []}
    return data


def _save_corpus(path: str | Path, corpus: dict) -> None:
    failures = [e for e in corpus["entries"] if e.get("status") == "fail"]
    passing = [e for e in corpus["entries"] if e.get("status") != "fail"]
    corpus["entries"] = (failures + passing)[:CORPUS_MAX_ENTRIES]
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(corpus, indent=2, sort_keys=True) + "\n")


def replay_seed(seed: int, *, inject: str | None = None) -> FuzzFailure | None:
    """Re-run the case derived from ``seed`` (optionally under a fault)."""
    case = FuzzCase.from_seed(seed)
    if inject is None:
        return run_case(case)
    from .inject import INJECTIONS

    with INJECTIONS[inject].apply():
        return run_case(case)


def run_fuzz(
    *,
    budget_seconds: float | None = None,
    max_cases: int | None = None,
    start_seed: int = 0,
    inject: str | None = None,
    corpus_path: str | Path | None = None,
    shrink_failures: bool = True,
    stop_on_failure: bool = False,
    log=None,
) -> FuzzRunResult:
    """Fuzz until the time budget or case cap runs out.

    Passing seeds are appended to the corpus (as replayable regression
    entries) alongside every failure and its shrunk form.
    """
    if budget_seconds is None and max_cases is None:
        max_cases = 25
    result = FuzzRunResult()
    corpus = load_corpus(corpus_path) if corpus_path is not None else None
    t0 = time.perf_counter()

    def _one(case: FuzzCase) -> None:
        failure = run_case(case)
        result.cases_run += 1
        if failure is not None:
            if shrink_failures:
                failure.shrunk = shrink(failure)
            result.failures.append(failure)
            if log is not None:
                log(failure.message())
        if corpus is not None:
            entry = {"case": case.to_dict(), "status": "ok"}
            if failure is not None:
                entry["status"] = "fail"
                entry["check"] = failure.check
                entry["detail"] = failure.detail
                if failure.shrunk is not None:
                    entry["shrunk"] = failure.shrunk.to_dict()
                if inject is not None:
                    entry["inject"] = inject
            corpus["entries"].append(entry)

    def _loop() -> None:
        seed = start_seed
        while True:
            if max_cases is not None and result.cases_run >= max_cases:
                return
            if (
                budget_seconds is not None
                and time.perf_counter() - t0 >= budget_seconds
            ):
                return
            _one(FuzzCase.from_seed(seed))
            if stop_on_failure and result.failures:
                return
            seed += 1

    if inject is not None:
        from .inject import INJECTIONS

        with INJECTIONS[inject].apply():
            _loop()
    else:
        _loop()

    result.elapsed = time.perf_counter() - t0
    if corpus is not None and corpus_path is not None:
        _save_corpus(corpus_path, corpus)
        result.corpus_path = str(corpus_path)
    return result
