"""Seeded defect catalogue proving the racecheck pass has teeth.

Each mutant is a realistic miscompilation of a reference kernel — the
kind of bug the paper's Fig. 3 discipline exists to prevent — paired
with a workload that makes its racy accesses overlap.  A mutant *must*
be flagged (with the expected rule) under every scheduler, and the
unmutated kernels on the same workloads must stay silent; both halves
are enforced by ``tests/sanitize/test_mutants.py``.

The catalogue:

``dropped-cas-guard``
    Fig. 3 line 13's slot-claiming CAS replaced by a plain store.  Two
    groups inserting the same key walk the same windows, so the store
    races with the other group's loads (and its own store).

``missing-post-ballot-sync``
    After the vacancy ballot the group writes the merged window back and
    immediately re-reads the leader's word as a memory broadcast — with
    no collective between store and load.  The classic missing
    ``__syncwarp()``; flagged with a *single* group.

``split-tombstone-rmw``
    The CAS-guarded tombstone write of ``erase_task`` split into a
    read-check-write sequence with a scheduling point in the middle.
    Two erasers of one key interleave inside the torn RMW.

``unsync-counter-bump``
    A success counter bumped with a plain read-modify-write instead of
    ``atomic_add``.  The insert itself stays correct — the race is on
    the auxiliary ``stats`` word.  The ``atomic`` control variant of the
    same kernel must stay clean.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..constants import TOMBSTONE_SLOT
from ..core.kernels_ref import erase_task, insert_task, query_task
from ..memory.layout import pack_scalar
from ..core.slots import is_empty, is_vacant, matches_key
from ..simt.atomics import atomic_add
from ..simt.scheduler import Scheduler
from .racecheck import RacecheckReport, RacecheckSession

__all__ = [
    "MUTANTS",
    "MutantSpec",
    "make_session",
    "run_clean",
    "run_mutant",
]


@dataclass(frozen=True)
class MutantSpec:
    """One catalogued defect: how to run it, what the checker must say."""

    name: str
    summary: str
    expected_rule: str  # rule that must appear in report.rules_hit()
    expected_array: str  # array the finding must land on
    run: Callable[[RacecheckSession], None]


def make_session(
    scheduler: Scheduler | None = None,
    *,
    capacity: int = 64,
    group_size: int = 8,
) -> RacecheckSession:
    """The catalogue's standard shadow-instrumented mini table."""
    return RacecheckSession(capacity, group_size, scheduler=scheduler)


# ---------------------------------------------------------------------------
# mutant kernels
# ---------------------------------------------------------------------------


def _dropped_cas_guard_insert(slots, seq, group, key, value):
    """Insert whose slot claim is a plain store instead of a CAS."""
    capacity = slots.shape[0]
    pair = pack_scalar(key, value)
    key_arr = np.asarray([key], dtype=np.uint32)
    for p in range(seq.p_max):
        for q in range(seq.inner_count):
            rows = seq.window_slots(key_arr, p, q, capacity)[0]
            d_t = slots[rows].copy()
            yield
            mask = group.ballot(is_vacant(d_t))
            if mask:
                leader = group.elect_leader(mask)
                # DEFECT: no CAS guard — a racing group claiming the same
                # vacancy is silently overwritten
                slots[int(rows[leader])] = pair
                yield
                return ("inserted", 0)
    return ("failed", 0)


def _run_dropped_cas_guard(session: RacecheckSession) -> None:
    # two groups insert the *same* key: identical probe walks guarantee
    # the unguarded store overlaps the other group's traffic
    keys = [17, 17, 29, 29]

    def kernel(i):
        return _dropped_cas_guard_insert(
            session.slots, session.seq, session.group, keys[i], i + 1
        )

    session.launch(kernel, len(keys))


def _missing_post_ballot_sync_insert(slots, seq, group, key, value):
    """Insert that memory-broadcasts the claim without a post-ballot sync."""
    capacity = slots.shape[0]
    pair = pack_scalar(key, value)
    key_arr = np.asarray([key], dtype=np.uint32)
    g = group.size
    for p in range(seq.p_max):
        for q in range(seq.inner_count):
            rows = seq.window_slots(key_arr, p, q, capacity)[0]
            d_t = slots[rows].copy()
            yield
            mask = group.ballot(is_vacant(d_t))
            if mask:
                leader = group.elect_leader(mask)
                d_t[leader] = pair
                # DEFECT: non-atomic window write-back, then every lane
                # re-reads the leader's word as a memory broadcast with no
                # collective in between — a missing __syncwarp() after
                # the ballot
                slots[rows] = d_t
                broadcast = slots[np.full(g, rows[leader])]
                yield
                return ("inserted", int(broadcast[0] & np.uint64(0)))
    return ("failed", 0)


def _run_missing_post_ballot_sync(session: RacecheckSession) -> None:
    # a single group suffices: the race is between lanes, not groups
    def kernel(i):
        return _missing_post_ballot_sync_insert(
            session.slots, session.seq, session.group, 41, 1
        )

    session.launch(kernel, 1)


def _split_tombstone_erase(slots, seq, group, key):
    """Erase whose tombstone write is a torn read-check-write."""
    capacity = slots.shape[0]
    key_arr = np.asarray([key], dtype=np.uint32)
    for p in range(seq.p_max):
        for q in range(seq.inner_count):
            rows = seq.window_slots(key_arr, p, q, capacity)[0]
            d_t = slots[rows].copy()
            yield
            mask = group.ballot(matches_key(d_t, key))
            if mask:
                leader = group.elect_leader(mask)
                row = int(rows[leader])
                # DEFECT: the CAS split into read / reschedule / write —
                # a concurrent eraser interleaves inside the RMW
                cur = slots[row]
                yield
                if cur == d_t[leader]:
                    slots[row] = TOMBSTONE_SLOT
                yield
                return ("erased", 0)
            if group.any(is_empty(d_t)):
                return ("absent", 0)
    return ("absent", 0)


def _run_split_tombstone_rmw(session: RacecheckSession) -> None:
    # launch 0 (clean reference insert) populates; launch 1 races two
    # erasers of the same key through the torn RMW
    keys = [21, 22, 23]

    def insert(i):
        return insert_task(
            session.slots, session.seq, session.group, keys[i], i + 1,
            session.counter,
        )

    session.launch(insert, len(keys))

    def erase(i):
        return _split_tombstone_erase(
            session.slots, session.seq, session.group, 21
        )

    session.launch(erase, 2)


def _counter_bump_insert(slots, seq, group, key, value, stats, counter, *, atomic):
    """Reference insert plus a per-success stats bump (racy or atomic)."""
    result = yield from insert_task(slots, seq, group, key, value, counter)
    if atomic:
        atomic_add(stats, 0, 1, counter)
    else:
        # DEFECT: plain read-modify-write on a word every group touches
        n = int(stats[0])
        yield
        stats[0] = n + 1
    return result


def _run_unsync_counter_bump(session: RacecheckSession) -> None:
    _run_counter_bump(session, atomic=False)


def _run_counter_bump(session: RacecheckSession, *, atomic: bool) -> None:
    stats = session.aux("stats", 1)
    keys = [51, 52, 53, 54]  # distinct keys: the table traffic is clean

    def kernel(i):
        return _counter_bump_insert(
            session.slots, session.seq, session.group, keys[i], i + 1,
            stats, session.counter, atomic=atomic,
        )

    session.launch(kernel, len(keys))


# ---------------------------------------------------------------------------
# registry + entry points
# ---------------------------------------------------------------------------

MUTANTS: dict[str, MutantSpec] = {
    spec.name: spec
    for spec in [
        MutantSpec(
            name="dropped-cas-guard",
            summary="slot claim is a plain store instead of Fig. 3's CAS",
            expected_rule="unguarded-write",
            expected_array="slots",
            run=_run_dropped_cas_guard,
        ),
        MutantSpec(
            name="missing-post-ballot-sync",
            summary="window write-back + memory broadcast with no sync",
            expected_rule="intra-group-unsynced",
            expected_array="slots",
            run=_run_missing_post_ballot_sync,
        ),
        MutantSpec(
            name="split-tombstone-rmw",
            summary="tombstone CAS torn into read / reschedule / write",
            expected_rule="unguarded-write",
            expected_array="slots",
            run=_run_split_tombstone_rmw,
        ),
        MutantSpec(
            name="unsync-counter-bump",
            summary="shared stats counter bumped without atomic_add",
            expected_rule="unguarded-write",
            expected_array="stats",
            run=_run_unsync_counter_bump,
        ),
    ]
}


def run_mutant(
    name: str, scheduler: Scheduler | None = None
) -> RacecheckReport:
    """Run one catalogued mutant under ``scheduler``; return its report."""
    spec = MUTANTS[name]
    session = make_session(scheduler)
    spec.run(session)
    return session.report()


def run_clean(scheduler: Scheduler | None = None) -> RacecheckReport:
    """The no-findings baseline: unmutated kernels on conflicting workloads.

    Exercises every path the mutants corrupt — duplicate-key inserts
    (update path + CAS restarts), queries, duplicate-key erases, and an
    atomic stats bump — so a clean report certifies the rules do not
    misfire on legal traffic.
    """
    session = make_session(scheduler)
    stats = session.aux("stats", 1)
    keys = [3, 5, 7, 3, 5, 7, 11, 13]

    def insert(i):
        def task():
            result = yield from insert_task(
                session.slots, session.seq, session.group, keys[i], i + 1,
                session.counter,
            )
            atomic_add(stats, 0, 1, session.counter)
            return result

        return task()

    session.launch(insert, len(keys))

    def query(i):
        return query_task(
            session.slots, session.seq, session.group, keys[i], session.counter
        )

    session.launch(query, len(keys))

    def erase(i):
        return erase_task(
            session.slots, session.seq, session.group, keys[i], session.counter
        )

    session.launch(erase, len(keys))
    return session.report()


def run_counter_bump_control(
    scheduler: Scheduler | None = None,
) -> RacecheckReport:
    """The atomic control for ``unsync-counter-bump`` — must stay clean."""
    session = make_session(scheduler)
    _run_counter_bump(session, atomic=True)
    return session.report()
