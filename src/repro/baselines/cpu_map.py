"""Folklore-style concurrent CPU hash map (Maier et al. [10]).

The CPU state of the art the paper positions itself against: "CAS
operations on fixed-length machine words ... up to 300 million insertions
per second on a 24-core dual-socket workstation".  Algorithmically it is
plain linear probing over packed 64-bit pairs; what distinguishes the
*platform* is memory: ~76 GB/s of DDR4 instead of 720 GB/s of HBM2, and
64-byte cache lines instead of 32-byte sectors.

Work is therefore accounted in cache lines (``load_sectors`` /
``store_sectors`` carry *cache-line* counts here; the CPU spec in
:mod:`repro.perfmodel.specs` prices them accordingly).
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import EMPTY_SLOT, PAIR_BYTES
from ..core.report import KernelReport
from ..errors import CapacityError, ConfigurationError
from ..hashing.families import HashFunction, make_hash
from ..memory.layout import pack_pairs, unpack_pairs
from ..utils.validation import check_keys, check_same_length, check_values

__all__ = ["FolkloreCpuMap", "CACHE_LINE_BYTES"]

_U64 = np.uint64

#: x86_64 cache-line width
CACHE_LINE_BYTES = 64

#: pairs per cache line — a probe step within the same line is free
_PAIRS_PER_LINE = CACHE_LINE_BYTES // PAIR_BYTES


class FolkloreCpuMap:
    """Linear-probing CAS hash map with cache-line cost accounting."""

    def __init__(self, capacity: int, *, seed: int = 0, max_probes: int | None = None):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.h: HashFunction = make_hash("fmix32", translation=seed * 0xDEADBEEF)
        self.slots = np.full(capacity, EMPTY_SLOT, dtype=_U64)
        self.max_probes = max_probes if max_probes is not None else max(
            256, 64 * int(math.log2(max(capacity, 2)))
        )
        self._size = 0
        self.last_report: KernelReport | None = None

    @classmethod
    def for_load_factor(cls, num_pairs: int, load_factor: float, **kwargs):
        if not 0 < load_factor <= 1:
            raise ConfigurationError(f"load factor must be in (0, 1], got {load_factor}")
        capacity = max(int(math.ceil(num_pairs / load_factor)), 1)
        return cls(capacity, **kwargs)

    def __len__(self) -> int:
        return self._size

    @property
    def load_factor(self) -> float:
        return self._size / self.capacity

    def _home(self, keys: np.ndarray) -> np.ndarray:
        return (self.h(keys).astype(_U64) % _U64(self.capacity)).astype(np.int64)

    @staticmethod
    def _line_charges(home: np.ndarray, probes: np.ndarray) -> int:
        """Cache lines touched by linear probes of given lengths.

        Probing ``l`` consecutive slots starting anywhere touches roughly
        ``1 + floor(l / pairs_per_line)`` lines — linear probing's cache
        friendliness (§II), which the perf model rewards.
        """
        return int(np.sum(1 + probes // _PAIRS_PER_LINE))

    def insert(self, keys: np.ndarray, values: np.ndarray) -> KernelReport:
        """Linear-probing insert with update-on-duplicate semantics."""
        k = check_keys(keys)
        v = check_values(values)
        check_same_length("keys", k, "values", v)
        pairs = pack_pairs(k, v)
        n = k.shape[0]
        report = KernelReport(op="insert", num_ops=n, group_size=1)
        probes = np.zeros(n, dtype=np.int64)
        home = self._home(k)

        pending = np.arange(n, dtype=np.int64)
        attempt = np.zeros(n, dtype=np.int64)
        while pending.size:
            pos = (home[pending] + attempt[pending]) % self.capacity
            probes[pending] += 1
            resident = self.slots[pos]
            vacant = resident == EMPTY_SLOT
            res_keys = (resident >> _U64(32)).astype(np.uint32)
            same = ~vacant & (res_keys == k[pending])
            wants = vacant | same

            done = np.zeros(pending.shape[0], dtype=bool)
            sel = np.flatnonzero(wants)
            if sel.size:
                target = pos[sel]
                items = pending[sel]
                order = np.lexsort((items, target))
                t_sorted = target[order]
                i_sorted = items[order]
                # updates serialize (all succeed, last value wins); vacant
                # claims pick one winner per slot
                upd = same[sel][order]
                first = np.ones(order.size, dtype=bool)
                first[1:] = t_sorted[1:] != t_sorted[:-1]
                is_upd_group = upd  # updates always commit
                winners_mask = first | is_upd_group
                # for update groups keep the *last* writer's value
                last = np.ones(order.size, dtype=bool)
                last[:-1] = t_sorted[1:] != t_sorted[:-1]
                write_mask = (first & ~is_upd_group) | (last & is_upd_group)
                self.slots[t_sorted[write_mask]] = pairs[i_sorted[write_mask]]
                new_inserts = first & ~is_upd_group
                self._size += int(new_inserts.sum())
                report.cas_attempts += sel.size
                report.cas_successes += int(winners_mask.sum())
                report.store_sectors += int(write_mask.sum())
                done_items = i_sorted[winners_mask]
                done[np.isin(pending, done_items)] = True

            advance = ~wants
            attempt[pending[advance]] += 1
            if np.any(attempt[pending] >= self.max_probes):
                raise CapacityError("cpu map probing budget exhausted; table full")
            pending = pending[~done]

        report.probe_windows = probes
        report.load_sectors = self._line_charges(home, probes)
        self.last_report = report
        return report

    def query(self, keys: np.ndarray, *, default: int = 0) -> tuple[np.ndarray, np.ndarray]:
        k = check_keys(keys)
        n = k.shape[0]
        values = np.full(n, default, dtype=np.uint32)
        found = np.zeros(n, dtype=bool)
        report = KernelReport(op="query", num_ops=n, group_size=1)
        probes = np.zeros(n, dtype=np.int64)
        home = self._home(k)

        pending = np.arange(n, dtype=np.int64)
        attempt = np.zeros(n, dtype=np.int64)
        while pending.size:
            pos = (home[pending] + attempt[pending]) % self.capacity
            probes[pending] += 1
            resident = self.slots[pos]
            vacant = resident == EMPTY_SLOT
            res_keys = (resident >> _U64(32)).astype(np.uint32)
            hit = ~vacant & (res_keys == k[pending])
            items = pending[hit]
            values[items] = (resident[hit] & _U64(0xFFFFFFFF)).astype(np.uint32)
            found[items] = True

            keep = ~hit & ~vacant
            attempt[pending[keep]] += 1
            still = pending[keep]
            pending = still[attempt[still] < self.max_probes]

        report.probe_windows = probes
        report.load_sectors = self._line_charges(home, probes)
        report.failed = int(np.sum(~found))
        self.last_report = report
        return values, found

    def export(self) -> tuple[np.ndarray, np.ndarray]:
        live = self.slots[self.slots != EMPTY_SLOT]
        return unpack_pairs(live)
