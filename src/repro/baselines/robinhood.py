"""Robin Hood GPU hashing baseline (García et al. [8]).

"Their implementation uses one thread for the insertion of a key-value
pair in a lock-free manner ... [and] equalizes probing lengths by
augmenting each key with an additional 4-bit age indicator" (§III).

Each stored pair carries its *age* — the linear-probe displacement from
its home slot.  An inserting thread carrying a pair of age ``a`` swaps
with any resident whose age is smaller ("rob the rich"), then continues
carrying the evicted, older-home pair.  The 4-bit age caps displacement
at 15, which bounds worst-case queries but limits reliable loads to
roughly 0.9 — one reason the paper's CG scheme wins at α ≥ 0.95.

Like CUDPP, every access is per-thread and uncoalesced (one sector per
probed slot).
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import EMPTY_SLOT
from ..core.report import KernelReport
from ..errors import CapacityError, ConfigurationError
from ..hashing.families import HashFunction, make_hash
from ..memory.layout import pack_pairs, unpack_pairs
from ..utils.validation import check_keys, check_same_length, check_values

__all__ = ["RobinHoodTable"]

_U64 = np.uint64

#: 4-bit age indicator => maximum displacement
MAX_AGE = 15


class RobinHoodTable:
    """Robin Hood open-addressing table with 4-bit ages."""

    def __init__(self, capacity: int, *, seed: int = 0):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        self.h: HashFunction = make_hash("fmix32", translation=seed * 0x9E3779B9)
        self.slots = np.full(capacity, EMPTY_SLOT, dtype=_U64)
        self.ages = np.zeros(capacity, dtype=np.uint8)
        self._size = 0
        self.rebuilds = 0
        self.last_report: KernelReport | None = None

    @classmethod
    def for_load_factor(cls, num_pairs: int, load_factor: float, **kwargs):
        if not 0 < load_factor <= 1:
            raise ConfigurationError(f"load factor must be in (0, 1], got {load_factor}")
        capacity = max(int(math.ceil(num_pairs / load_factor)), 1)
        return cls(capacity, **kwargs)

    def __len__(self) -> int:
        return self._size

    @property
    def load_factor(self) -> float:
        return self._size / self.capacity

    def _pos(self, keys: np.ndarray, age: np.ndarray | int) -> np.ndarray:
        """Slot of ``keys`` at a given age.

        García's coherent scheme *rehashes* per age — ``H_age(k)`` is an
        independent position, not a linear offset — which is what keeps
        the needed ages within 4 bits at high loads.
        """
        age_arr = np.broadcast_to(np.asarray(age, dtype=np.uint32), keys.shape)
        salted = keys + age_arr * np.uint32(0x9E3779B9)
        return (self.h(salted).astype(_U64) % _U64(self.capacity)).astype(np.int64)

    def insert(self, keys: np.ndarray, values: np.ndarray) -> KernelReport:
        """Insert pairs; rebuilds with a fresh hash on age overflow.

        Raises :class:`CapacityError` when even rebuilds cannot keep every
        displacement within the 4-bit age budget.
        """
        k = check_keys(keys)
        v = check_values(values)
        check_same_length("keys", k, "values", v)
        report = self._try_insert(pack_pairs(k, v))
        tries = 0
        while report is None:
            tries += 1
            if tries > 3:
                raise CapacityError(
                    "robin hood ages overflowed 15 after 3 rebuilds; load too high"
                )
            self._rebuild()
            report = self._try_insert(pack_pairs(k, v))
        self.last_report = report
        return report

    def _try_insert(self, pairs: np.ndarray) -> KernelReport | None:
        n = pairs.shape[0]
        report = KernelReport(op="insert", num_ops=n, group_size=1)
        probes_per_item = np.zeros(n, dtype=np.int64)

        cur_pairs = pairs.copy()
        cur_age = np.zeros(n, dtype=np.int64)
        owner = np.arange(n, dtype=np.int64)

        while cur_pairs.size:
            keys = (cur_pairs >> _U64(32)).astype(np.uint32)
            pos = self._pos(keys, cur_age)
            report.load_sectors += cur_pairs.size
            probes_per_item[owner] += 1

            resident = self.slots[pos]
            resident_age = self.ages[pos].astype(np.int64)
            vacant = resident == EMPTY_SLOT
            # §V-B-style update: same key at this displacement -> overwrite
            res_keys = (resident >> _U64(32)).astype(np.uint32)
            same_key = ~vacant & (res_keys == keys)
            # robin hood rule: steal the slot from a "richer" resident
            steal = ~vacant & ~same_key & (resident_age < cur_age)
            wants_write = vacant | same_key | steal

            write_sel = np.flatnonzero(wants_write)
            done = np.zeros(cur_pairs.shape[0], dtype=bool)
            evicted_pairs = []
            evicted_ages = []
            evicted_owner = []
            if write_sel.size:
                # one writer per slot (lowest submission index); losers retry
                target = pos[write_sel]
                order = np.lexsort((owner[write_sel], target))
                t_sorted = target[order]
                first = np.ones(order.size, dtype=bool)
                first[1:] = t_sorted[1:] != t_sorted[:-1]
                winners = write_sel[order[first]]

                w_pos = pos[winners]
                old_pair = self.slots[w_pos].copy()
                old_age = self.ages[w_pos].astype(np.int64)
                self.slots[w_pos] = cur_pairs[winners]
                self.ages[w_pos] = cur_age[winners].astype(np.uint8)
                report.cas_attempts += write_sel.size
                report.cas_successes += winners.size
                report.store_sectors += winners.size

                landed = old_pair == EMPTY_SLOT
                updated = ~landed & same_key[winners]
                self._size += int(landed.sum())
                done[winners[landed | updated]] = True

                carries = winners[~landed & ~updated]
                if carries.size:
                    sel = ~landed & ~updated
                    evicted_pairs = old_pair[sel]
                    evicted_ages = old_age[sel]
                    evicted_owner = owner[carries]
                    done[carries] = True  # replaced below by the evictee

            # advance: non-writers (and CAS losers) age by one...
            advance = ~wants_write
            cur_age[advance] += 1
            if np.any(cur_age > MAX_AGE):
                return None  # age overflow -> rebuild

            keep = ~done
            next_pairs = [cur_pairs[keep]]
            next_age = [cur_age[keep]]
            next_owner = [owner[keep]]
            if len(evicted_pairs):
                # the carried pair continues from the *evicted* resident,
                # aged one past its stolen displacement
                ev_age = evicted_ages + 1
                if np.any(ev_age > MAX_AGE):
                    return None
                next_pairs.append(evicted_pairs)
                next_age.append(ev_age)
                next_owner.append(evicted_owner)
            cur_pairs = np.concatenate(next_pairs)
            cur_age = np.concatenate(next_age)
            owner = np.concatenate(next_owner)

        report.probe_windows = probes_per_item
        return report

    def query(self, keys: np.ndarray, *, default: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Probe displacements 0..15; early-out on vacancy or younger age."""
        k = check_keys(keys)
        n = k.shape[0]
        values = np.full(n, default, dtype=np.uint32)
        found = np.zeros(n, dtype=bool)
        report = KernelReport(op="query", num_ops=n, group_size=1)
        probes = np.zeros(n, dtype=np.int64)

        pending = np.arange(n, dtype=np.int64)
        for age in range(MAX_AGE + 1):
            if pending.size == 0:
                break
            pos = self._pos(k[pending], age)
            resident = self.slots[pos]
            res_age = self.ages[pos].astype(np.int64)
            probes[pending] += 1
            report.load_sectors += pending.size

            res_keys = (resident >> _U64(32)).astype(np.uint32)
            vacant = resident == EMPTY_SLOT
            hit = ~vacant & (res_keys == k[pending])
            items = pending[hit]
            values[items] = (resident[hit] & _U64(0xFFFFFFFF)).astype(np.uint32)
            found[items] = True

            # robin hood invariant: a resident younger than the probe age
            # proves the key cannot be stored at this or a later slot
            dead = vacant | (~hit & (res_age < age))
            pending = pending[~hit & ~dead]

        report.probe_windows = probes
        report.failed = int(np.sum(~found))
        self.last_report = report
        return values, found

    def _rebuild(self) -> None:
        """Rehash everything with a fresh function; retry unlucky seeds."""
        stored = self.slots[self.slots != EMPTY_SLOT]
        for _ in range(5):
            self.rebuilds += 1
            self.h = make_hash(
                "fmix32", translation=(self.seed + self.rebuilds * 131) * 0x9E3779B9
            )
            self.slots.fill(EMPTY_SLOT)
            self.ages.fill(0)
            self._size = 0
            if stored.size == 0 or self._try_insert(stored) is not None:
                return
        raise CapacityError("robin hood rebuild overflowed ages again")

    def export(self) -> tuple[np.ndarray, np.ndarray]:
        live = self.slots[self.slots != EMPTY_SLOT]
        return unpack_pairs(live)
