"""Comparator implementations: GPU cuckoo (CUDPP), Robin Hood, Stadium
hashing, sort-and-compress stores, and the Folklore CPU map."""

from .cpu_map import CACHE_LINE_BYTES, FolkloreCpuMap
from .cudpp_cuckoo import CudppCuckooTable
from .robinhood import MAX_AGE, RobinHoodTable
from .sortcompress import SortCompressStore
from .stadium import StadiumHashTable

__all__ = [
    "CudppCuckooTable",
    "RobinHoodTable",
    "MAX_AGE",
    "StadiumHashTable",
    "SortCompressStore",
    "FolkloreCpuMap",
    "CACHE_LINE_BYTES",
]
