"""Stadium Hashing baseline (Khorasani et al. [9]).

Stadium hash splits the data structure in two: the *ticket board* — a
compact bit/bookkeeping array that always stays in GPU global memory —
and the bucket table itself, which may live in GPU memory (in-core) or in
host memory (out-of-core).  A thread inserting a key first claims an
availability ticket; only when the ticket shows the bucket free is the
pair actually written.  Queries consult the ticket board (plus small
"info" signature bits) to skip most expensive table reads.

We reproduce both modes:

* ``in_core=True`` — table reads/writes charge VRAM sectors; the paper
  reports this within 1.04–1.19× of GPU cuckoo at α = 0.8.
* ``in_core=False`` — table traffic is charged to
  ``host_load_sectors``/``host_store_sectors`` so the perf model prices
  it at PCIe bandwidth, reproducing the "performance drops to around 100
  million inserts per second" observation of §III.
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import EMPTY_SLOT
from ..core.report import KernelReport
from ..errors import CapacityError, ConfigurationError
from ..hashing.families import DoubleHashFamily, make_double_family
from ..memory.layout import pack_pairs, unpack_pairs
from ..utils.primes import next_prime
from ..utils.validation import check_keys, check_same_length, check_values

__all__ = ["StadiumHashTable"]

_U64 = np.uint64


class StadiumHashTable:
    """Ticket-board hash table with double-hashing probes."""

    #: bits of per-slot info signature kept on the ticket board
    INFO_BITS = 8

    def __init__(
        self,
        capacity: int,
        *,
        in_core: bool = True,
        seed: int = 0,
        max_probes: int | None = None,
    ):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity}")
        # double hashing needs every step coprime with the capacity;
        # Stadium uses prime table sizes, so round up to the next prime
        self.capacity = next_prime(capacity)
        self.in_core = in_core
        self.family: DoubleHashFamily = make_double_family(
            translation=seed * 0x85EBCA77
        )
        self.max_probes = max_probes if max_probes is not None else max(
            128, 32 * int(math.log2(max(capacity, 2)))
        )
        # ticket board: occupancy bit + 8-bit key signature, VRAM-resident
        self.tickets = np.zeros(self.capacity, dtype=bool)
        self.info = np.zeros(self.capacity, dtype=np.uint8)
        # bucket table: VRAM (in-core) or host memory (out-of-core)
        self.slots = np.full(self.capacity, EMPTY_SLOT, dtype=_U64)
        self._size = 0
        self.last_report: KernelReport | None = None

    @classmethod
    def for_load_factor(cls, num_pairs: int, load_factor: float, **kwargs):
        if not 0 < load_factor <= 1:
            raise ConfigurationError(f"load factor must be in (0, 1], got {load_factor}")
        capacity = max(int(math.ceil(num_pairs / load_factor)), 1)
        return cls(capacity, **kwargs)

    def __len__(self) -> int:
        return self._size

    @property
    def load_factor(self) -> float:
        return self._size / self.capacity

    def _signature(self, keys: np.ndarray) -> np.ndarray:
        """Info bits: an 8-bit digest independent of the probe position."""
        return (self.family.g(keys) >> np.uint32(24)).astype(np.uint8)

    def _positions(self, keys: np.ndarray, attempt: np.ndarray) -> np.ndarray:
        h = self.family.primary(keys).astype(_U64)
        # reduce the step into [1, capacity): with a prime capacity this
        # makes every step coprime, guaranteeing full probe cycles
        step = self.family.step(keys).astype(_U64) % _U64(self.capacity)
        step = np.maximum(step, _U64(1))
        return ((h + attempt.astype(_U64) * step) % _U64(self.capacity)).astype(
            np.int64
        )

    def _charge_table(self, report: KernelReport, sectors: int, store: bool) -> None:
        if self.in_core:
            if store:
                report.store_sectors += sectors
            else:
                report.load_sectors += sectors
        else:
            if store:
                report.host_store_sectors += sectors
            else:
                report.host_load_sectors += sectors

    def insert(self, keys: np.ndarray, values: np.ndarray) -> KernelReport:
        """Ticket-first insertion; duplicate keys create duplicate entries
        only if their signature probe misses — like the original, Stadium
        is a build-once structure and we insert unique key sets in benches.
        """
        k = check_keys(keys)
        v = check_values(values)
        check_same_length("keys", k, "values", v)
        if self._size + k.shape[0] > self.capacity:
            raise CapacityError("stadium table capacity exceeded")
        pairs = pack_pairs(k, v)
        n = k.shape[0]
        report = KernelReport(op="insert", num_ops=n, group_size=1)
        probes = np.zeros(n, dtype=np.int64)

        pending = np.arange(n, dtype=np.int64)
        attempt = np.zeros(n, dtype=np.int64)
        while pending.size:
            pos = self._positions(k[pending], attempt[pending])
            probes[pending] += 1
            # ticket-board read is always in-core
            report.load_sectors += pending.size
            free = ~self.tickets[pos]

            claim_sel = np.flatnonzero(free)
            if claim_sel.size:
                target = pos[claim_sel]
                items = pending[claim_sel]
                order = np.lexsort((items, target))
                t_sorted = target[order]
                first = np.ones(order.size, dtype=bool)
                first[1:] = t_sorted[1:] != t_sorted[:-1]
                winners = items[order[first]]
                w_pos = t_sorted[first]
                # CAS on the ticket, then the actual table write
                report.cas_attempts += claim_sel.size
                report.cas_successes += winners.size
                self.tickets[w_pos] = True
                self.info[w_pos] = self._signature(k[winners])
                report.store_sectors += winners.size  # ticket+info write
                self.slots[w_pos] = pairs[winners]
                self._charge_table(report, winners.size, store=True)
                self._size += winners.size
                done = np.isin(pending, winners)
                # losers retry the same position: their ticket CAS failed
                lost_here = np.isin(pending, items[order[~first]])
                advance = ~done & ~lost_here
                attempt[pending[advance]] += 1
                pending = pending[~done]
            else:
                attempt[pending] += 1

            over = attempt[pending] >= self.max_probes
            if np.any(over):
                raise CapacityError(
                    "stadium probing exceeded its budget; table too full"
                )

        report.probe_windows = probes
        self.last_report = report
        return report

    def query(self, keys: np.ndarray, *, default: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Probe tickets+info first; hit the table only on signature match."""
        k = check_keys(keys)
        n = k.shape[0]
        values = np.full(n, default, dtype=np.uint32)
        found = np.zeros(n, dtype=bool)
        report = KernelReport(op="query", num_ops=n, group_size=1)
        probes = np.zeros(n, dtype=np.int64)
        sig = self._signature(k)

        pending = np.arange(n, dtype=np.int64)
        attempt = np.zeros(n, dtype=np.int64)
        while pending.size:
            pos = self._positions(k[pending], attempt[pending])
            probes[pending] += 1
            report.load_sectors += pending.size  # ticket board
            occupied = self.tickets[pos]
            sig_match = occupied & (self.info[pos] == sig[pending])

            # only signature matches pay for a (possibly PCIe) table read
            check = np.flatnonzero(sig_match)
            hit_mask = np.zeros(pending.shape[0], dtype=bool)
            if check.size:
                self._charge_table(report, check.size, store=False)
                slot = self.slots[pos[check]]
                skeys, svals = unpack_pairs(slot)
                real = (slot != EMPTY_SLOT) & (skeys == k[pending[check]])
                items = pending[check[real]]
                values[items] = svals[real]
                found[items] = True
                hit_mask[check[real]] = True

            dead = ~occupied  # an unclaimed ticket ends the probe sequence
            keep = ~hit_mask & ~dead
            attempt[pending[keep]] += 1
            still = pending[keep]
            exhausted = attempt[still] >= self.max_probes
            pending = still[~exhausted]

        report.probe_windows = probes
        report.failed = int(np.sum(~found))
        self.last_report = report
        return values, found

    def export(self) -> tuple[np.ndarray, np.ndarray]:
        live = self.slots[self.slots != EMPTY_SLOT]
        return unpack_pairs(live)
