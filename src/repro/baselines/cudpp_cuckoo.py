"""CUDPP-style GPU cuckoo hash (Alcantara et al. [2], [7]).

The paper's only publicly available single-GPU comparator: a fourth-degree
cuckoo scheme where each *thread* owns one pair and inserts it with an
unconditional 64-bit atomic exchange, bouncing evicted residents between
four hash functions until an empty slot absorbs the chain.  A small stash
catches chains that exceed the iteration budget; an unabsorbed chain
invalidates the table ("restart with new hash functions").

Key behavioural properties preserved for the Fig. 7 comparison:

* supported load factors cap at 0.97 ("CUDPP is constrained to a maximum
  load of 97%", §V-B) — enforced;
* per-thread, non-cooperative probing: every access is an uncoalesced
  single-slot transaction (one 32-byte sector for 8 useful bytes);
* eviction chains lengthen super-linearly as the load approaches the
  4-ary cuckoo threshold, which is what makes WarpDrive ~3× faster at
  α ≥ 0.95;
* duplicate keys are *not* coalesced — "CUDPP does not support key
  collisions unless a multi-value hash table is used" (§V-B).
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import EMPTY_SLOT
from ..errors import ConfigurationError, CuckooEvictionError
from ..hashing.families import HashFunction, make_hash
from ..memory.layout import pack_pairs, unpack_pairs
from ..core.report import KernelReport
from ..simt.counters import TransactionCounter
from ..utils.validation import check_keys, check_same_length, check_values

__all__ = ["CudppCuckooTable"]

_U64 = np.uint64


class CudppCuckooTable:
    """Four-function cuckoo hash table with stash, CUDPP semantics.

    Parameters
    ----------
    capacity:
        Main-table slot count.
    num_hashes:
        Cuckoo degree (CUDPP's single-pass variant uses 4).
    stash_size:
        Auxiliary open-addressing stash (CUDPP uses 101).
    max_chain_factor:
        Iteration budget multiplier: budget = factor · log2(capacity).
        CUDPP's heuristic is ``7 lg n``; we default higher so the table
        stays reliable right up to its 0.97 load cap without leaning on
        rebuild luck.
    """

    #: maximum supported load factor (paper §V-B)
    MAX_LOAD = 0.97

    def __init__(
        self,
        capacity: int,
        *,
        num_hashes: int = 4,
        stash_size: int = 101,
        max_chain_factor: float = 48.0,
        seed: int = 0,
        counter: TransactionCounter | None = None,
    ):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity}")
        if num_hashes < 2:
            raise ConfigurationError(f"num_hashes must be >= 2, got {num_hashes}")
        self.capacity = capacity
        self.num_hashes = num_hashes
        self.stash_size = stash_size
        self.max_chain = max(8, int(max_chain_factor * math.log2(max(capacity, 2))))
        self.counter = counter if counter is not None else TransactionCounter()
        self.seed = seed
        self.hashes: list[HashFunction] = self._make_hashes(seed)
        self.slots = np.full(capacity, EMPTY_SLOT, dtype=_U64)
        self.stash = np.full(stash_size, EMPTY_SLOT, dtype=_U64)
        self._size = 0
        self.rebuilds = 0
        self.last_report: KernelReport | None = None

    def _make_hashes(self, seed: int) -> list[HashFunction]:
        golden = 0x9E3779B9
        return [
            make_hash("fmix32", translation=(seed * 31 + i + 1) * golden & 0xFFFFFFFF)
            for i in range(self.num_hashes)
        ]

    @classmethod
    def for_load_factor(cls, num_pairs: int, load_factor: float, **kwargs):
        """Capacity sizing mirroring the WarpDrive constructor."""
        if load_factor > cls.MAX_LOAD:
            raise ConfigurationError(
                f"CUDPP cuckoo supports loads up to {cls.MAX_LOAD}, "
                f"got {load_factor}"
            )
        if num_pairs <= 0:
            raise ConfigurationError(f"num_pairs must be > 0, got {num_pairs}")
        capacity = max(int(math.ceil(num_pairs / load_factor)), 1)
        return cls(capacity, **kwargs)

    # -- properties --------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def load_factor(self) -> float:
        return self._size / self.capacity

    def _positions(self, keys: np.ndarray, hash_idx: np.ndarray) -> np.ndarray:
        """Slot of each key under its current hash function index."""
        out = np.empty(keys.shape[0], dtype=np.int64)
        for i in range(self.num_hashes):
            sel = hash_idx == i
            if np.any(sel):
                out[sel] = (self.hashes[i](keys[sel]).astype(_U64) % _U64(self.capacity)).astype(np.int64)
        return out

    def _next_hash_index(self, keys: np.ndarray, current_pos: np.ndarray) -> np.ndarray:
        """Evicted pairs move to the hash *after* the one that put them here.

        Alcantara's rule: find which h_i maps the evicted key to its
        current position, then use h_{(i+1) mod d}.  Ambiguities (several
        h_i agree) resolve to the first match, as in CUDPP.
        """
        n = keys.shape[0]
        next_idx = np.zeros(n, dtype=np.int64)
        undecided = np.ones(n, dtype=bool)
        for i in range(self.num_hashes):
            pos_i = (self.hashes[i](keys).astype(_U64) % _U64(self.capacity)).astype(np.int64)
            hit = undecided & (pos_i == current_pos)
            next_idx[hit] = (i + 1) % self.num_hashes
            undecided &= ~hit
        # keys that match no hash (cannot happen unless table was tampered
        # with) restart at h_0
        next_idx[undecided] = 0
        return next_idx

    # -- operations ---------------------------------------------------------

    def insert(self, keys: np.ndarray, values: np.ndarray) -> KernelReport:
        """Insert pairs; raises :class:`CuckooEvictionError` past capacity.

        On a failed chain the table retries with fresh hash functions (a
        full rebuild, as CUDPP does) up to 3 times before raising.
        """
        k = check_keys(keys)
        v = check_values(values)
        check_same_length("keys", k, "values", v)
        if self._size + k.shape[0] > self.MAX_LOAD * self.capacity + 1:
            raise CuckooEvictionError(
                f"insert of {k.shape[0]} pairs would exceed the {self.MAX_LOAD} "
                f"maximum load of the cuckoo scheme"
            )
        report = self._try_insert(pack_pairs(k, v))
        attempts = 0
        while report is None:
            attempts += 1
            if attempts > 3:
                raise CuckooEvictionError(
                    "cuckoo eviction chains kept failing after 3 rebuilds"
                )
            self._rebuild()
            report = self._try_insert(pack_pairs(k, v))
        self.last_report = report
        return report

    def _try_insert(self, pairs: np.ndarray) -> KernelReport | None:
        """One insertion pass; None signals an exhausted eviction chain.

        Items are launched in waves bounding the in-flight set, mirroring
        the resident-thread concurrency of real hardware (see
        :func:`repro.core.bulk.default_wave_size`).
        """
        from ..core.bulk import default_wave_size

        n = pairs.shape[0]
        report = KernelReport(op="insert", num_ops=n, group_size=1)
        chain_len = np.zeros(n, dtype=np.int64)
        wave = default_wave_size(self.capacity)

        # pending cuckoo items: the *pair being carried*, its hash index,
        # and the submission item whose chain it extends (for chain stats)
        cur_pairs = np.empty(0, dtype=_U64)
        hash_idx = np.empty(0, dtype=np.int64)
        owner = np.empty(0, dtype=np.int64)
        iters = np.empty(0, dtype=np.int64)
        cursor = 0

        while cur_pairs.size or cursor < n:
            if cursor < n and cur_pairs.size < wave:
                take = min(wave - cur_pairs.size, n - cursor)
                cur_pairs = np.concatenate([cur_pairs, pairs[cursor : cursor + take]])
                hash_idx = np.concatenate(
                    [hash_idx, np.zeros(take, dtype=np.int64)]
                )
                owner = np.concatenate(
                    [owner, np.arange(cursor, cursor + take, dtype=np.int64)]
                )
                iters = np.concatenate([iters, np.zeros(take, dtype=np.int64)])
                cursor += take
            keys = (cur_pairs >> _U64(32)).astype(np.uint32)
            pos = self._positions(keys, hash_idx)

            # arbitration: one exchange per slot per round (winner = first);
            # losers retry next round against the updated table
            order = np.lexsort((owner, pos))
            pos_sorted = pos[order]
            first = np.ones(order.size, dtype=bool)
            first[1:] = pos_sorted[1:] != pos_sorted[:-1]
            winners = order[first]
            losers = order[~first]

            w_pos = pos[winners]
            evicted = self.slots[w_pos].copy()
            self.slots[w_pos] = cur_pairs[winners]
            report.cas_attempts += winners.size
            report.cas_successes += winners.size
            report.load_sectors += winners.size  # exchange reads the slot
            report.store_sectors += winners.size
            chain_len[owner[winners]] += 1
            iters[winners] += 1

            landed = evicted == EMPTY_SLOT
            self._size += int(landed.sum())

            # evicted residents continue the chain with their next hash
            cont = winners[~landed]
            if cont.size:
                ev_pairs = evicted[~landed]
                ev_keys = (ev_pairs >> _U64(32)).astype(np.uint32)
                nxt = self._next_hash_index(ev_keys, w_pos[~landed])
                cur_pairs[cont] = ev_pairs
                hash_idx[cont] = nxt

            keep = np.ones(cur_pairs.shape[0], dtype=bool)
            keep[winners[landed]] = False

            # budget check: still-pending overflowing chains go to the stash
            stash_items = np.flatnonzero(keep & (iters > self.max_chain))
            if stash_items.size:
                if not self._stash_put(cur_pairs[stash_items], report):
                    return None  # stash full: whole pass fails -> rebuild
                keep[stash_items] = False
            cur_pairs = cur_pairs[keep]
            hash_idx = hash_idx[keep]
            owner = owner[keep]
            iters = iters[keep]

        report.probe_windows = chain_len
        return report

    def _stash_put(self, pairs: np.ndarray, report: KernelReport) -> bool:
        """Linear-probe pairs into the stash; False when it overflows."""
        for pair in pairs:
            key = np.uint32(int(pair) >> 32)
            h = int(self.hashes[0](np.asarray([key]))[0]) % self.stash_size
            placed = False
            for step in range(self.stash_size):
                idx = (h + step) % self.stash_size
                report.load_sectors += 1
                if self.stash[idx] == EMPTY_SLOT:
                    self.stash[idx] = pair
                    report.store_sectors += 1
                    self._size += 1
                    placed = True
                    break
            if not placed:
                return False
        return True

    def query(self, keys: np.ndarray, *, default: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Check all ``num_hashes`` positions, then the stash."""
        k = check_keys(keys)
        n = k.shape[0]
        values = np.full(n, default, dtype=np.uint32)
        found = np.zeros(n, dtype=bool)
        report = KernelReport(op="query", num_ops=n, group_size=1)
        probes = np.zeros(n, dtype=np.int64)

        pending = np.arange(n, dtype=np.int64)
        for i in range(self.num_hashes):
            if pending.size == 0:
                break
            pos = (self.hashes[i](k[pending]).astype(_U64) % _U64(self.capacity)).astype(np.int64)
            slot = self.slots[pos]
            probes[pending] += 1
            report.load_sectors += pending.size
            skeys, svals = unpack_pairs(slot)
            hit = (slot != EMPTY_SLOT) & (skeys == k[pending])
            items = pending[hit]
            values[items] = svals[hit]
            found[items] = True
            pending = pending[~hit]

        # stash scan for unresolved keys (CUDPP checks it last)
        if pending.size and np.any(self.stash != EMPTY_SLOT):
            stash_keys, stash_vals = unpack_pairs(self.stash)
            live = self.stash != EMPTY_SLOT
            report.load_sectors += pending.size  # ticketed single pass
            for item in pending:
                hit = live & (stash_keys == k[item])
                if np.any(hit):
                    values[item] = stash_vals[np.argmax(hit)]
                    found[item] = True

        report.probe_windows = probes
        report.failed = int(np.sum(~found))
        self.last_report = report
        return values, found

    def _rebuild(self) -> None:
        """Restart with distinct hash functions, re-inserting stored pairs.

        A rebuild can itself hit an unlucky hash set at very high loads,
        so it reseeds and retries a few times before giving up.
        """
        stored = self.slots[self.slots != EMPTY_SLOT]
        stashed = self.stash[self.stash != EMPTY_SLOT]
        all_pairs = np.concatenate([stored, stashed])
        for _ in range(5):
            self.rebuilds += 1
            self.hashes = self._make_hashes(self.seed + self.rebuilds * 977)
            self.slots.fill(EMPTY_SLOT)
            self.stash.fill(EMPTY_SLOT)
            self._size = 0
            if all_pairs.size == 0 or self._try_insert(all_pairs) is not None:
                return
        raise CuckooEvictionError("rebuild failed to re-place stored pairs")

    def export(self) -> tuple[np.ndarray, np.ndarray]:
        """All stored (keys, values) including the stash."""
        live = np.concatenate(
            [self.slots[self.slots != EMPTY_SLOT], self.stash[self.stash != EMPTY_SLOT]]
        )
        return unpack_pairs(live)
