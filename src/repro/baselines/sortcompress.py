"""Sort-and-compress key-value store (paper §II, competing structure).

"The keys are sorted together with their associated values using an
efficient sorting algorithm such as CUDA Unbound's radix sort primitive.
Multiple values belonging to the same key ... are subsequently compressed
using a logarithmic time parallel prefix scan.  Querying can be
accomplished in logarithmic time with a binary search."

Built on the library's own :mod:`repro.primitives` — a real LSD radix
sort (per-pass histogram → exclusive scan → stable scatter) standing in
for CUB, plus a prefix-scan compression for multi-value support and
``searchsorted`` binary search.  Work accounting mirrors the GPU
algorithm:

* build: 4 radix passes over the 32-bit keys (values riding along), each
  a full load+store sweep, plus the O(n) scan — the O(n) *auxiliary
  memory* drawback is surfaced via :attr:`aux_bytes` ("effectively
  reduces the capacity by a factor of two");
* query: ``ceil(log2 n)`` uncoalesced probes per lookup.
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import PAIR_BYTES, SECTOR_BYTES
from ..core.report import KernelReport
from ..errors import ConfigurationError
from ..primitives.radix_sort import radix_sort_pairs
from ..simt.counters import TransactionCounter
from ..utils.validation import check_keys, check_same_length, check_values

__all__ = ["SortCompressStore"]


class SortCompressStore:
    """Immutable sorted key-value store with multi-value compression."""

    def __init__(self, keys: np.ndarray, values: np.ndarray):
        k = check_keys(keys)
        v = check_values(values)
        check_same_length("keys", k, "values", v)
        if k.size == 0:
            raise ConfigurationError("SortCompressStore requires at least one pair")

        n = k.shape[0]
        counter = TransactionCounter()
        sorted_pairs = radix_sort_pairs(k, v, counter=counter)
        self.sorted_keys = sorted_pairs.keys
        self.sorted_values = sorted_pairs.values
        # compression: unique keys + offsets into the value runs
        self.unique_keys, self.offsets = np.unique(self.sorted_keys, return_index=True)
        self.num_pairs = n

        report = KernelReport(op="build", num_ops=n, group_size=1)
        report.load_sectors = counter.load_sectors
        report.store_sectors = counter.store_sectors
        # prefix-scan compression: one more load+store sweep
        sweep_sectors = math.ceil(n * PAIR_BYTES / SECTOR_BYTES)
        report.load_sectors += sweep_sectors
        report.store_sectors += sweep_sectors
        report.probe_windows = np.full(n, sorted_pairs.passes, dtype=np.int64)
        self.build_report = report
        self.last_report: KernelReport | None = report

    def __len__(self) -> int:
        return int(self.unique_keys.shape[0])

    @property
    def table_bytes(self) -> int:
        """Resident footprint of the sorted arrays."""
        return self.num_pairs * PAIR_BYTES

    @property
    def aux_bytes(self) -> int:
        """Auxiliary memory the radix sort + scan needed (O(n) ping-pong)."""
        return self.num_pairs * PAIR_BYTES

    def query(self, keys: np.ndarray, *, default: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Binary-search lookups; multi-value keys return their first value."""
        k = check_keys(keys)
        n = k.shape[0]
        idx = np.searchsorted(self.unique_keys, k)
        idx_clamped = np.minimum(idx, len(self.unique_keys) - 1)
        found = self.unique_keys[idx_clamped] == k
        values = np.full(n, default, dtype=np.uint32)
        values[found] = self.sorted_values[self.offsets[idx_clamped[found]]]

        report = KernelReport(op="query", num_ops=n, group_size=1)
        probes = max(1, math.ceil(math.log2(max(len(self.unique_keys), 2))))
        report.probe_windows = np.full(n, probes, dtype=np.int64)
        report.load_sectors = n * probes  # each bisection step is uncoalesced
        report.failed = int(np.sum(~found))
        self.last_report = report
        return values, found

    def query_multi(self, key: int) -> np.ndarray:
        """All values stored under ``key`` (multi-value retrieval)."""
        i = int(np.searchsorted(self.unique_keys, np.uint32(key)))
        if i >= len(self.unique_keys) or self.unique_keys[i] != np.uint32(key):
            return np.empty(0, dtype=np.uint32)
        start = int(self.offsets[i])
        end = (
            int(self.offsets[i + 1])
            if i + 1 < len(self.offsets)
            else self.num_pairs
        )
        return self.sorted_values[start:end].copy()

    def multiplicity(self, key: int) -> int:
        """Number of values stored under ``key``."""
        return int(self.query_multi(key).shape[0])
