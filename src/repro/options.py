"""Unified construction options across the public surface.

Before this module, the same concepts went by different names in
different layers: the shard-execution backend was ``executor=`` on
:class:`~repro.multigpu.distributed_table.DistributedHashTable` but the
*kernel implementation* was also ``executor=`` on
:meth:`~repro.core.table.WarpDriveHashTable.insert`, and measured
wall-clock collection was ``wall_clock=`` on
:class:`~repro.pipeline.driver.AsyncCascadeDriver`.  The canonical
option set is now:

``engine=``
    Shard-execution backend: ``"serial"`` | ``"thread"`` | ``"process"``
    or a ready-made :class:`~repro.exec.engine.ExecutionEngine`.
    Accepted by ``WarpDriveHashTable`` (decides shared-memory slot
    backing), ``DistributedHashTable``, and
    ``PartitionedWarpDriveTable``.
``workers=``
    Pool size for the thread/process engines.
``distribution=``
    Host distribution path: ``"fused"`` | ``"reference"``
    (``DistributedHashTable``).
``kernels=``
    Kernel implementation: ``"fast"`` (vectorized) | ``"ref"``
    (faithful generator kernels) | ``"compiled"`` (JIT inner loops,
    bit-identical to ``"fast"``, auto-falling back when no provider is
    available — :mod:`repro.core.kernels_jit`) on the bulk methods of
    ``WarpDriveHashTable``, ``CountingHashTable``, and
    ``MultiValueHashTable`` (the latter two are fast-only); as a
    constructor option (``"fast"`` | ``"compiled"``) on
    ``DistributedHashTable`` and ``PartitionedWarpDriveTable``, where
    it selects the shard-kernel backend that execution engines resolve
    per worker process.
``measure=``
    Attach measured wall-clock timelines (``AsyncCascadeDriver``).
``depth=``
    In-flight batch depth of the streaming pipeline
    (``AsyncCascadeDriver``): ``1`` runs cascades to completion one at
    a time; ``>= 2`` stages the next wave on a stager thread into a
    ying/yang staging arena while the current wave commits
    (:mod:`repro.pipeline.staging`), bit-identical at any depth.
``staging_budget=``
    Byte ceiling for staged-but-uncommitted pipeline cascades — the
    backpressure bound of the ``depth >= 2`` path
    (``AsyncCascadeDriver``; ``None`` budgets half the free modelled
    VRAM at stream start).
``pace=``
    Device-occupancy pacing for overlap experiments
    (``AsyncCascadeDriver``): ``"none"`` | ``"modelled"``, where
    modelled pacing sleeps out each committed cascade's modelled kernel
    seconds at every depth so measured makespans isolate the overlap
    win (``docs/streaming_pipeline.md``).
``probing=``
    Window-walk policy: ``"window"`` (the paper's hybrid) |
    ``"double"`` | ``"linear"`` (:mod:`repro.core.probing`).
``layout=``
    Slot storage policy: ``"aos"`` (packed) | ``"soa"`` (split
    key/value planes) | ``"compact"`` (quotiented sub-8-byte records,
    bit-identical results at a narrower modelled footprint;
    :mod:`repro.core.store`, ``docs/compact_layout.md``).
``growth=``
    A :class:`~repro.core.growth.GrowthPolicy`: resize-and-rehash
    instead of failing when an ingest would exceed the load ceiling
    (accepted wherever ``probing=``/``layout=`` are).
``topology=``
    Interconnect model the cascade prices traffic against: a
    :class:`~repro.multigpu.topology.Topology` instance, a
    :class:`~repro.multigpu.topology.TopologySpec`, or a spec string
    (``"p100"``, ``"pcie:8"``, ``"dgx1v"``, ``"cluster:2x4"`` — see
    ``docs/topology.md``).  Accepted by ``DistributedHashTable``,
    ``AsyncCascadeDriver``, the bench suites, and the CLI's
    ``--topology``; resolved by the
    :func:`~repro.multigpu.topology.topology` factory.

Deprecated keywords keep working through warn-once shims:

================================  =============================
old                               new
================================  =============================
``executor=`` (constructors)      ``engine=``
``executor=`` (bulk methods)      ``kernels=``
``wall_clock=``                   ``measure=``
positional topology (tables)      ``topology=``
================================  =============================
"""

from __future__ import annotations

import warnings
from typing import Any

from .errors import ConfigurationError

__all__ = [
    "UNSET",
    "resolve_renamed",
    "reject_unknown",
    "warn_deprecated",
    "warn_positional",
    "reset_deprecation_warnings",
]


class _Unset:
    """Sentinel distinguishing 'not passed' from any real value."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


UNSET: Any = _Unset()

#: (owner, old-keyword) pairs already warned about this process
_WARNED: set[tuple[str, str]] = set()


def warn_deprecated(owner: str, old: str, new: str) -> None:
    """Emit one DeprecationWarning per (owner, keyword) per process."""
    key = (owner, old)
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(
        f"{owner}: keyword '{old}=' is deprecated; use '{new}=' "
        f"(see repro.options)",
        DeprecationWarning,
        stacklevel=4,
    )


def warn_positional(owner: str, what: str, new: str) -> None:
    """Like :func:`warn_deprecated` for a deprecated *positional* form."""
    key = (owner, what)
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(
        f"{owner}: passing the {what} positionally is deprecated; "
        f"use '{new}=' (see repro.options)",
        DeprecationWarning,
        stacklevel=4,
    )


def reset_deprecation_warnings() -> None:
    """Forget which deprecations fired (test isolation helper)."""
    _WARNED.clear()


def resolve_renamed(
    owner: str,
    legacy: dict[str, Any],
    *,
    old: str,
    new: str,
    value: Any,
    default: Any,
) -> Any:
    """Resolve a renamed keyword: canonical value, shimmed old value, or default.

    ``value`` is the canonical keyword's argument (``UNSET`` when the
    caller did not pass it); ``legacy`` is the ``**kwargs`` catch-all
    that may hold the deprecated spelling.  Passing both is an error —
    silently preferring one would mask a caller bug.
    """
    if old in legacy:
        warn_deprecated(owner, old, new)
        shimmed = legacy.pop(old)
        if value is not UNSET:
            raise ConfigurationError(
                f"{owner}: got both '{new}=' and deprecated '{old}='"
            )
        return shimmed
    return default if value is UNSET else value


def reject_unknown(owner: str, legacy: dict[str, Any]) -> None:
    """Fail on leftover keywords exactly like a normal signature would."""
    if legacy:
        unexpected = ", ".join(sorted(legacy))
        raise TypeError(f"{owner}: unexpected keyword argument(s): {unexpected}")
