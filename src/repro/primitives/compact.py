"""Stream compaction via warp-aggregated atomics (Adinetz [23]).

The multisplit's building block: select the elements satisfying a
predicate and write them densely, reserving output slots with one atomic
add per coalesced group instead of one per element — "a warp-aggregated
atomic counter that increments the final position of a key within a
coalesced group" (§IV-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import SECTOR_BYTES, WARP_SIZE
from ..errors import ConfigurationError
from ..simt.atomics import warp_aggregated_add
from ..simt.counters import TransactionCounter

__all__ = ["CompactResult", "compact", "compact_fast", "histogram"]


@dataclass(frozen=True)
class CompactResult:
    """Selected elements (stable) plus the atomic traffic used."""

    values: np.ndarray
    source_index: np.ndarray
    atomics_used: int


def compact(
    values: np.ndarray,
    predicate: np.ndarray,
    *,
    counter: TransactionCounter | None = None,
    group_size: int = WARP_SIZE,
) -> CompactResult:
    """Keep ``values[predicate]`` densely, preserving order.

    Executes the warp-aggregated reservation for real, group by group,
    so the atomic count is exact: one fetch-add per group that has at
    least one participating lane.
    """
    arr = np.asarray(values)
    pred = np.asarray(predicate, dtype=bool)
    if arr.shape != pred.shape or arr.ndim != 1:
        raise ConfigurationError("values and predicate must be equal-length 1-D")
    if group_size < 1 or group_size > 64:
        raise ConfigurationError(f"group_size must be in [1, 64], got {group_size}")

    n = arr.shape[0]
    cursor = np.zeros(1, dtype=np.int64)
    out = np.empty(int(pred.sum()), dtype=arr.dtype)
    src = np.empty(out.shape[0], dtype=np.int64)
    atomics_before = counter.atomic_adds if counter is not None else 0
    local = TransactionCounter() if counter is None else counter

    for start in range(0, n, group_size):
        lanes = pred[start : start + group_size]
        if not lanes.any():
            continue
        positions = warp_aggregated_add(cursor, 0, lanes, local)
        taken = positions[lanes]
        out[taken] = arr[start : start + group_size][lanes]
        src[taken] = np.arange(start, start + lanes.shape[0], dtype=np.int64)[lanes]

    if counter is not None:
        sectors = math.ceil(max(arr.nbytes, 1) / SECTOR_BYTES)
        counter.charge_load(sectors)
        counter.charge_store(math.ceil(max(out.nbytes, 1) / SECTOR_BYTES))
        atomics = counter.atomic_adds - atomics_before
    else:
        atomics = local.atomic_adds
    return CompactResult(values=out, source_index=src, atomics_used=atomics)


def compact_fast(
    values: np.ndarray,
    predicate: np.ndarray,
    *,
    counter: TransactionCounter | None = None,
    group_size: int = WARP_SIZE,
) -> CompactResult:
    """Vectorized :func:`compact` — same results, same accounting.

    The per-group loop above *is* the warp-aggregated algorithm; this
    closed form computes the identical output (order-preserving
    compaction) and the identical atomic count (one fetch-add per group
    with at least one participating lane) without the Python loop.
    Equivalence is property-tested in ``tests/primitives/test_compact.py``.
    """
    arr = np.asarray(values)
    pred = np.asarray(predicate, dtype=bool)
    if arr.shape != pred.shape or arr.ndim != 1:
        raise ConfigurationError("values and predicate must be equal-length 1-D")
    if group_size < 1 or group_size > 64:
        raise ConfigurationError(f"group_size must be in [1, 64], got {group_size}")

    src = np.flatnonzero(pred)
    out = arr[src]
    n = arr.shape[0]
    num_groups = (n + group_size - 1) // group_size
    pad = num_groups * group_size - n
    padded = np.concatenate([pred, np.zeros(pad, dtype=bool)]) if pad else pred
    atomics = int(padded.reshape(num_groups, group_size).any(axis=1).sum())

    if counter is not None:
        counter.atomic_adds += atomics
        counter.warp_collectives += atomics
        counter.charge_load(math.ceil(max(arr.nbytes, 1) / SECTOR_BYTES))
        counter.charge_store(math.ceil(max(out.nbytes, 1) / SECTOR_BYTES))
    return CompactResult(values=out, source_index=src, atomics_used=atomics)


def histogram(
    values: np.ndarray,
    num_bins: int,
    *,
    counter: TransactionCounter | None = None,
) -> np.ndarray:
    """Per-bin counts with block-level privatized-histogram accounting."""
    arr = np.asarray(values, dtype=np.int64)
    if num_bins < 1:
        raise ConfigurationError(f"num_bins must be >= 1, got {num_bins}")
    if arr.size and (arr.min() < 0 or arr.max() >= num_bins):
        raise ConfigurationError("values out of bin range")
    counts = np.bincount(arr, minlength=num_bins)
    if counter is not None:
        counter.charge_load(math.ceil(max(arr.nbytes, 1) / SECTOR_BYTES))
        # privatized per-block histograms merge with num_bins atomics each
        blocks = max(1, arr.size // 256)
        counter.atomic_adds += blocks * min(num_bins, 256)
    return counts
