"""Single-pass counting-sort scatter (Ashkiani-style multisplit core).

The fused alternative to iterating :func:`~repro.primitives.compact.compact_fast`
once per class: one histogram, one exclusive scan, and one stable scatter
by bin id produce the identical partition-grouped output in a single
sweep of the input.  *GPU Multisplit* (Ashkiani et al., PAPERS.md) shows
this shape beating consecutive binary splits; WarpCore's fused routing
kernels follow the same design.

The modelled device work is deliberately **not** the single-pass cost:
WarpDrive's paper commits to the simpler m-binary-split scheme ("our
approach ... consecutively computes m binary splits"), so this primitive
charges the exact closed form of that algorithm — ``num_bins`` read
sweeps over the input, one compacting store per class, and one
warp-aggregated atomic per coalesced group per class present — making it
bit-compatible with the ``num_bins × compact_fast`` reference while the
host-side execution is one pass.  Equivalence is property-tested in
``tests/primitives/test_scatter.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import SECTOR_BYTES, WARP_SIZE
from ..errors import ConfigurationError
from ..simt.counters import TransactionCounter

__all__ = ["CountingScatterResult", "counting_scatter"]

#: bin-id dtypes small enough for NumPy's O(n) radix argsort — the
#: narrowest one that holds every bin id minimizes sort passes
_RADIX_DTYPES = (np.uint8, np.uint16)


def _popcount_sum(masks: np.ndarray) -> int:
    """Total set bits across an array of uint64 bitmasks."""
    arr = np.ascontiguousarray(np.atleast_1d(masks))
    if hasattr(np, "bitwise_count"):
        return int(np.bitwise_count(arr).sum())
    return int(np.unpackbits(arr.view(np.uint8)).sum())  # pragma: no cover


@dataclass(frozen=True)
class CountingScatterResult:
    """Bin-grouped values plus the bookkeeping a multisplit needs."""

    #: values reordered so bin 0 comes first, then bin 1, ... (stable)
    values: np.ndarray
    #: original position of each reordered element
    source_index: np.ndarray
    #: per-bin element counts, shape (num_bins,)
    counts: np.ndarray
    #: exclusive prefix of counts
    offsets: np.ndarray
    #: warp-aggregated fetch-adds the modelled m-binary-split would issue
    atomics_used: int


def _count_group_class_pairs(
    b: np.ndarray, n: int, num_bins: int, group_size: int
) -> int:
    """Distinct ``(group, class)`` pairs — one warp-aggregated fetch-add
    each in the modelled m-binary-split."""
    if n == 0:
        return 0
    if num_bins <= 64:
        # per-group class bitmasks: OR-reduce then popcount — avoids the
        # (num_groups x num_bins) presence matrix and the group-id division
        for dt in (np.uint8, np.uint16, np.uint32, np.uint64):
            if num_bins <= np.dtype(dt).itemsize * 8:
                break
        codes = np.left_shift(dt(1), b.astype(dt))
        full = (n // group_size) * group_size
        atomics = 0
        if full:
            ors = np.bitwise_or.reduce(
                codes[:full].reshape(-1, group_size), axis=1
            )
            atomics += _popcount_sum(ors)
        if full < n:
            atomics += _popcount_sum(np.bitwise_or.reduce(codes[full:]))
        return atomics
    num_groups = (n + group_size - 1) // group_size  # pragma: no cover
    present = np.zeros((num_groups, num_bins), dtype=bool)
    present[np.arange(n, dtype=np.int64) // group_size, b] = True
    return int(present.sum())


def counting_scatter(
    values: np.ndarray,
    bins: np.ndarray,
    num_bins: int,
    *,
    counter: TransactionCounter | None = None,
    group_size: int = WARP_SIZE,
) -> CountingScatterResult:
    """Stable-scatter ``values`` into ``num_bins`` groups in one pass.

    Histogram → exclusive scan → stable scatter: the output is exactly
    ``concatenate([values[bins == b] for b in range(num_bins)])`` with
    matching ``source_index``, computed without the per-bin sweeps.  The
    work charged to ``counter`` is the m-binary-split closed form (see
    module docstring), identical to running ``compact_fast`` once per bin.
    """
    arr = np.asarray(values)
    b = np.asarray(bins, dtype=np.int64)
    if arr.shape != b.shape or arr.ndim != 1:
        raise ConfigurationError("values and bins must be equal-length 1-D")
    if num_bins < 1:
        raise ConfigurationError(f"num_bins must be >= 1, got {num_bins}")
    if group_size < 1 or group_size > 64:
        raise ConfigurationError(f"group_size must be in [1, 64], got {group_size}")
    if b.size and (b.min() < 0 or b.max() >= num_bins):
        raise ConfigurationError("bins out of range")

    n = arr.shape[0]
    # compiled single-pass histogram + stable scatter when a JIT provider
    # is live (same permutation, counts, and offsets as the sort below —
    # property-tested in tests/primitives/test_scatter.py)
    from ..core.kernels_jit import scatter_permutation

    compiled = scatter_permutation(b, num_bins)
    if compiled is not None:
        src, counts, offsets = compiled
    else:
        counts = np.bincount(b, minlength=num_bins).astype(np.int64)
        offsets = np.zeros(num_bins, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])

        # stable argsort by bin id == per-bin ascending source indices
        # concatenated in bin order; a narrow dtype selects radix sort (O(n))
        for radix_dtype in _RADIX_DTYPES:
            if num_bins <= np.iinfo(radix_dtype).max + 1:
                sort_key = b.astype(radix_dtype)
                break
        else:  # pragma: no cover - beyond any realistic GPU count
            sort_key = b
        src = np.argsort(sort_key, kind="stable").astype(np.int64, copy=False)
    out = arr[src]

    atomics = _count_group_class_pairs(b, n, num_bins, group_size)

    if counter is not None:
        counter.atomic_adds += atomics
        counter.warp_collectives += atomics
        # m read sweeps of the full input ...
        counter.charge_load(num_bins * math.ceil(max(arr.nbytes, 1) / SECTOR_BYTES))
        # ... and one compacting store per class, rounded up per class
        itemsize = arr.dtype.itemsize
        counter.charge_store(
            int(
                np.sum(
                    np.ceil(np.maximum(counts * itemsize, 1) / SECTOR_BYTES)
                ).astype(np.int64)
            )
        )
    return CountingScatterResult(
        values=out,
        source_index=src,
        counts=counts,
        offsets=offsets,
        atomics_used=atomics,
    )
