"""Parallel prefix-scan primitives (CUB-style).

The paper leans on scans in two places: multisplit offsets are "computed
using row-wise exclusive prefix scans" (§IV-B), and the sort-and-compress
competitor compresses multi-value runs "using a logarithmic time parallel
prefix scan" (§II).  These implementations compute exact results while
accounting the work of the classic Blelloch two-phase scan: ``2(n-1)``
additions over ``log2 n`` levels, one load+store sweep of the data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import SECTOR_BYTES
from ..errors import ConfigurationError
from ..simt.counters import TransactionCounter

__all__ = ["ScanResult", "exclusive_scan", "inclusive_scan", "segmented_reduce"]


@dataclass(frozen=True)
class ScanResult:
    """Scan output plus the device work it represents."""

    values: np.ndarray
    #: total additions performed by the Blelloch up/down sweeps
    operations: int
    #: tree depth (kernel rounds on a GPU)
    levels: int


def _charge(counter: TransactionCounter | None, arr: np.ndarray) -> None:
    if counter is None:
        return
    sectors = math.ceil(max(arr.nbytes, 1) / SECTOR_BYTES)
    counter.charge_load(sectors)
    counter.charge_store(sectors)


def exclusive_scan(
    values: np.ndarray, *, counter: TransactionCounter | None = None
) -> ScanResult:
    """Blelloch exclusive prefix sum: out[i] = sum(values[:i])."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ConfigurationError(f"scan input must be 1-D, got shape {arr.shape}")
    n = arr.shape[0]
    out = np.zeros_like(arr)
    if n:
        np.cumsum(arr[:-1], out=out[1:])
    _charge(counter, arr)
    ops = max(0, 2 * (n - 1))
    levels = max(0, math.ceil(math.log2(n))) if n > 1 else 0
    return ScanResult(values=out, operations=ops, levels=levels)


def inclusive_scan(
    values: np.ndarray, *, counter: TransactionCounter | None = None
) -> ScanResult:
    """Inclusive prefix sum: out[i] = sum(values[:i+1])."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ConfigurationError(f"scan input must be 1-D, got shape {arr.shape}")
    out = np.cumsum(arr)
    _charge(counter, arr)
    n = arr.shape[0]
    ops = max(0, 2 * (n - 1))
    levels = max(0, math.ceil(math.log2(n))) if n > 1 else 0
    return ScanResult(values=out, operations=ops, levels=levels)


def segmented_reduce(
    values: np.ndarray,
    segment_offsets: np.ndarray,
    *,
    counter: TransactionCounter | None = None,
) -> ScanResult:
    """Sum each segment ``values[offsets[i]:offsets[i+1]]``.

    The compression step of the sort-and-compress store: after sorting,
    equal-key runs reduce to (key, aggregated values).
    """
    arr = np.asarray(values)
    offs = np.asarray(segment_offsets, dtype=np.int64)
    if offs.ndim != 1 or offs.size < 1:
        raise ConfigurationError("segment_offsets must be a non-empty 1-D array")
    if np.any(np.diff(offs) < 0) or (offs.size and (offs[0] < 0 or offs[-1] > arr.size)):
        raise ConfigurationError("segment_offsets must be sorted within the input")
    sums = np.add.reduceat(arr, offs[:-1]) if offs.size > 1 else np.empty(0, arr.dtype)
    # empty segments: reduceat returns the element at the offset; zero them
    if offs.size > 1:
        empty = np.diff(offs) == 0
        if np.any(empty):
            sums = sums.copy()
            sums[empty] = 0
    _charge(counter, arr)
    n = int(arr.shape[0])
    return ScanResult(
        values=sums,
        operations=max(0, n - 1),
        levels=max(0, math.ceil(math.log2(n))) if n > 1 else 0,
    )
