"""LSD radix sort (CUB's ``DeviceRadixSort`` stand-in).

"The keys are sorted together with their associated values using an
efficient sorting algorithm such as CUDA Unbound's radix sort primitive"
(§II).  This is a real least-significant-digit radix sort — per-pass
histogram, exclusive scan of the digit counts, stable scatter — not a
call to ``np.sort``, so the pass structure, the O(n) double buffer, and
the per-pass work accounting all mirror the GPU algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import SECTOR_BYTES
from ..errors import ConfigurationError
from ..simt.counters import TransactionCounter
from .scan import exclusive_scan

__all__ = ["RadixSortResult", "radix_sort", "radix_sort_pairs"]

#: digit width per pass (CUB uses 4-8 bits; 8 keeps passes minimal)
DIGIT_BITS = 8
RADIX = 1 << DIGIT_BITS


@dataclass(frozen=True)
class RadixSortResult:
    """Sorted data plus pass-level accounting."""

    keys: np.ndarray
    values: np.ndarray | None
    #: original index of each output element (the stable permutation)
    permutation: np.ndarray
    passes: int
    #: auxiliary ping-pong buffer bytes the sort needed
    aux_bytes: int


def _num_passes(key_bits: int) -> int:
    return math.ceil(key_bits / DIGIT_BITS)


def radix_sort(
    keys: np.ndarray,
    *,
    key_bits: int | None = None,
    counter: TransactionCounter | None = None,
) -> RadixSortResult:
    """Stable LSD radix sort of unsigned integer keys."""
    return radix_sort_pairs(keys, None, key_bits=key_bits, counter=counter)


def radix_sort_pairs(
    keys: np.ndarray,
    values: np.ndarray | None,
    *,
    key_bits: int | None = None,
    counter: TransactionCounter | None = None,
) -> RadixSortResult:
    """Sort (key, value) pairs by key, stably, digit by digit."""
    k = np.asarray(keys)
    if k.ndim != 1:
        raise ConfigurationError(f"keys must be 1-D, got shape {k.shape}")
    if not np.issubdtype(k.dtype, np.unsignedinteger):
        raise ConfigurationError(f"radix sort needs unsigned keys, got {k.dtype}")
    v = None
    if values is not None:
        v = np.asarray(values)
        if v.shape[0] != k.shape[0]:
            raise ConfigurationError("keys and values must have equal length")

    if key_bits is None:
        key_bits = k.dtype.itemsize * 8
    if not 1 <= key_bits <= k.dtype.itemsize * 8:
        raise ConfigurationError(f"key_bits out of range: {key_bits}")
    passes = _num_passes(key_bits)
    n = k.shape[0]

    cur_keys = k.copy()
    cur_vals = v.copy() if v is not None else None
    perm = np.arange(n, dtype=np.int64)

    item_bytes = k.dtype.itemsize + (v.dtype.itemsize if v is not None else 0)
    sweep_sectors = math.ceil(max(n * item_bytes, 1) / SECTOR_BYTES)

    for p in range(passes):
        shift = k.dtype.type(p * DIGIT_BITS)
        digits = (cur_keys >> shift) & k.dtype.type(RADIX - 1)
        digits_i = digits.astype(np.int64)
        # per-pass histogram + exclusive scan of the digit counts
        hist = np.bincount(digits_i, minlength=RADIX)
        offsets = exclusive_scan(hist, counter=counter).values
        # stable counting scatter: position = digit base + rank in digit
        order = np.argsort(digits_i, kind="stable")
        ranks = np.empty(n, dtype=np.int64)
        ranks[order] = np.arange(n, dtype=np.int64) - np.repeat(offsets, hist)
        positions = offsets[digits_i] + ranks
        nxt_keys = np.empty_like(cur_keys)
        nxt_keys[positions] = cur_keys
        nxt_perm = np.empty_like(perm)
        nxt_perm[positions] = perm
        cur_keys, perm = nxt_keys, nxt_perm
        if cur_vals is not None:
            nxt_vals = np.empty_like(cur_vals)
            nxt_vals[positions] = cur_vals
            cur_vals = nxt_vals
        if counter is not None:
            counter.charge_load(sweep_sectors)   # read pass input
            counter.charge_store(sweep_sectors)  # scatter to the buffer
            counter.atomic_adds += max(1, n // 32)  # block-level histogram

    return RadixSortResult(
        keys=cur_keys,
        values=cur_vals,
        permutation=perm,
        passes=passes,
        aux_bytes=n * item_bytes,
    )
