"""Device primitives (CUB stand-ins): scans, radix sort, compaction."""

from .compact import CompactResult, compact, histogram
from .radix_sort import DIGIT_BITS, RADIX, RadixSortResult, radix_sort, radix_sort_pairs
from .scan import ScanResult, exclusive_scan, inclusive_scan, segmented_reduce

__all__ = [
    "ScanResult",
    "exclusive_scan",
    "inclusive_scan",
    "segmented_reduce",
    "RadixSortResult",
    "radix_sort",
    "radix_sort_pairs",
    "DIGIT_BITS",
    "RADIX",
    "CompactResult",
    "compact",
    "histogram",
]
