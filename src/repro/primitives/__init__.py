"""Device primitives (CUB stand-ins): scans, radix sort, compaction."""

from .compact import CompactResult, compact, compact_fast, histogram
from .radix_sort import DIGIT_BITS, RADIX, RadixSortResult, radix_sort, radix_sort_pairs
from .scan import ScanResult, exclusive_scan, inclusive_scan, segmented_reduce
from .scatter import CountingScatterResult, counting_scatter

__all__ = [
    "ScanResult",
    "exclusive_scan",
    "inclusive_scan",
    "segmented_reduce",
    "RadixSortResult",
    "radix_sort",
    "radix_sort_pairs",
    "DIGIT_BITS",
    "RADIX",
    "CompactResult",
    "compact",
    "compact_fast",
    "histogram",
    "CountingScatterResult",
    "counting_scatter",
]
