"""Command-line interface: ``python -m repro <command>``.

Commands
--------
info
    Library, model-calibration, and simulated-hardware summary.
demo
    A 30-second single-GPU + multi-GPU functional demo.
rates
    Modelled single-GPU insert/retrieve rates for chosen loads and |g|.
figures
    Regenerate paper figures (delegates to the experiment harness).
bench
    Measured wall-clock suites: shard-execution backends and the
    fused-vs-reference distribution path.
trace
    Run a small traced cascade and write a Chrome/Perfetto
    ``.trace.json`` through :mod:`repro.obs`.
grow
    Dynamic-growth exercise: ingest past the load ceiling through every
    table flavour and validate the traced grow/rehash spans
    (``--smoke`` is the CI gate).
stream
    Streaming-pipeline exercise: depth bit-identity, staging-budget
    backpressure, and measured distribution/kernel overlap under
    modelled pacing, with Perfetto validation (``--smoke`` is the CI
    gate).
cluster
    Hierarchical-topology exercise: one-node-cluster bit-identity
    against the flat node, NIC byte charging on a two-node cluster, and
    the traced ``transpose.intra``/``transpose.inter`` exchange levels
    (``--smoke`` is the CI gate).
compact
    Compact slot layout exercise: cross-layout bit-identity under
    growth/tombstone churn plus strictly narrower modelled VRAM and
    exchange charges on quotienting tables (``--smoke`` is the CI
    gate).
racecheck
    Shadow-memory race sanitizer over the reference kernels: clean-tree
    certification plus the seeded mutant catalogue.
fuzz
    Differential fuzzing of the fast paths against the reference
    semantics, with fault injection, shrinking, and seed replay.
"""

from __future__ import annotations

import argparse
import sys


__all__ = ["main", "build_parser"]


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.perfmodel import P100, calibration as cal
    from repro.utils.tables import format_kv

    print(f"repro {repro.__version__} — WarpDrive reproduction (IPDPS 2018)")
    print()
    print(
        format_kv(
            {
                "simulated GPU": P100.name,
                "VRAM": f"{P100.vram_gib:.0f} GiB",
                "peak bandwidth": f"{P100.mem_bandwidth / 1e9:.0f} GB/s",
                "random-access efficiency": cal.RANDOM_ACCESS_EFFICIENCY,
                "atomic CAS rate": f"{cal.ATOMIC_CAS_RATE / 1e9:.1f} G/s",
                "CAS degradation knee": f"{cal.CAS_DEGRADE_KNEE_BYTES >> 30} GiB",
                "NVLink efficiency": cal.NVLINK_EFFICIENCY,
                "PCIe efficiency": cal.PCIE_EFFICIENCY,
            },
            title="calibration (repro/perfmodel/calibration.py)",
        )
    )
    print()
    print("subsystems: core simt memory hashing primitives multigpu "
          "pipeline baselines perfmodel workloads bench")
    return 0



def _resolve_topology_arg(args: argparse.Namespace, *, default_m: int = 4):
    """Build a command's topology from ``--topology`` / ``--m``.

    The two are mutually exclusive — a spec like ``cluster:2x4`` already
    fixes the GPU count.  Re-resolves the spec on every call so each run
    starts on fresh simulated devices.
    """
    from repro.errors import ConfigurationError
    from repro.multigpu import p100_nvlink_node
    from repro.multigpu import topology as build_topology

    spec = getattr(args, "topology", None)
    m = getattr(args, "m", None)
    if spec is not None:
        if m is not None:
            raise ConfigurationError(
                "got both --topology and --m; the topology spec already "
                "fixes the GPU count (see repro.options)"
            )
        return build_topology(spec)
    return p100_nvlink_node(default_m if m is None else m)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import WarpDriveHashTable
    from repro.multigpu import DistributedHashTable
    from repro.perfmodel import kernel_seconds, P100, throughput, time_cascade
    from repro.workloads import random_values, unique_keys

    n = args.n
    keys = unique_keys(n, seed=1)
    values = random_values(n, seed=2)

    table = WarpDriveHashTable.for_load_factor(n, 0.95, group_size=4)
    rep = table.insert(keys, values)
    got, found = table.query(keys)
    assert bool(found.all()) and bool((got == values).all())
    secs = kernel_seconds(rep, P100, table_bytes=table.table_bytes)
    print(
        f"single GPU : {n} pairs at load {table.load_factor:.2f}, "
        f"mean probe windows {rep.mean_windows:.2f}, "
        f"modelled {throughput(n, secs) / 1e9:.2f} G inserts/s"
    )

    node = _resolve_topology_arg(args)
    dist = DistributedHashTable.for_workload(
        node, keys, 0.95, group_size=4,
        engine=args.engine, workers=args.workers,
    )
    drep = dist.insert(keys, values, source="host")
    timing = time_cascade(drep, dist, node)
    got, found, _ = dist.query(keys[: n // 4], source="device")
    assert bool(found.all())
    print(
        f"4x P100    : imbalance {drep.load_imbalance:.3f}, "
        f"modelled {throughput(n, timing.total) / 1e9:.2f} G inserts/s "
        f"host-sided ({throughput(n, timing.device_only) / 1e9:.2f} device-sided)"
    )
    print(
        f"engine     : {dist.engine.name}, kernel phase measured "
        f"{drep.kernel_wall_seconds * 1e3:.1f} ms across {node.num_devices} shards"
    )
    dist.free()
    print("demo OK")
    return 0


def _cmd_rates(args: argparse.Namespace) -> int:
    from repro.bench import run_single_gpu_sweep

    sweep = run_single_gpu_sweep(
        n=args.n,
        loads=tuple(args.loads),
        group_sizes=tuple(args.groups),
        distribution=args.distribution,
    )
    print(sweep.format())
    return 0


def _cmd_scorecard(args: argparse.Namespace) -> int:
    from repro.bench import evaluate_claims, format_scorecard

    results = evaluate_claims(quick=not args.full)
    print(format_scorecard(results))
    return 0 if all(r.ok for r in results) else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench.figures import print_all_figures

    print_all_figures(full=args.full)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        bench_pipeline_depth,
        distribution_speedup,
        format_distribution_records,
        format_records,
        run_distribution_suite,
        run_wallclock_suite,
        write_results,
    )

    n = 1 << 12 if args.smoke else args.n
    if args.kernels == "ref" and not args.smoke and n > (1 << 14):
        print(
            "note: kernels='ref' runs the per-operation verification "
            "kernels; large n will take a very long time (--smoke "
            "recommended)"
        )
    # resolve --topology/--m once (mutually exclusive) so every suite
    # row reports the same GPU count
    num_gpus = _resolve_topology_arg(args).num_devices
    records: list = []
    if args.suite in ("wallclock", "all"):
        wall = run_wallclock_suite(
            n=n,
            m=args.m,
            topology=args.topology,
            engines=tuple(args.engines) if args.engines else None,
            workers=args.workers,
            kernels=args.kernels,
        )
        if args.kernels != "ref":
            wall.extend(
                bench_pipeline_depth(n, m=args.m, topology=args.topology)
            )
        print(format_records(wall))
        if args.kernels == "ref":
            print(
                "(ref kernels: single-shard rows only — the cascade has "
                "no ref-level dispatch)"
            )
        records.extend(wall)
    if args.suite in ("distribution", "all"):
        dist = run_distribution_suite(n=n, m=args.m, topology=args.topology)
        print(format_distribution_records(dist))
        print(
            f"distribution total speedup: "
            f"{distribution_speedup(dist, 'total'):.2f}x fused vs reference"
        )
        records.extend(dist)
    if args.suite in ("serving", "all"):
        from repro.bench import format_serving_records, run_serving_suite

        serving = run_serving_suite(
            num_gpus=num_gpus,
            batches_per_client=4 if args.smoke else 16,
            batch_size=4096 if args.smoke else 32768,
        )
        print(format_serving_records(serving))
        off = next(r for r in serving if r.cache == "off")
        on = next(r for r in serving if r.cache == "on")
        if off.seconds and on.seconds:
            print(
                f"serving cache lift: {off.seconds / on.seconds:.2f}x "
                f"at {on.hit_rate:.0%} hit rate"
            )
        records.extend(serving)
    if args.out:
        path = write_results(records, args.out)
        print(f"wrote {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.multigpu import DistributedHashTable
    from repro.workloads import random_values, unique_keys

    n = 1 << 12 if args.smoke else args.n
    keys = unique_keys(n, seed=3)
    values = random_values(n, seed=4)
    node = _resolve_topology_arg(args)
    with obs.session() as (recorder, metrics):
        table = DistributedHashTable.for_workload(
            node, keys, 0.95, group_size=4,
            engine=args.engine, workers=args.workers,
        )
        try:
            table.insert(keys, values, source="host")
            _, found, _ = table.query(keys, source="host")
        finally:
            table.free()
    if not bool(found.all()):
        print("trace workload failed: not all inserted keys were found")
        return 1

    data = obs.to_perfetto(recorder, metrics)
    problems = obs.validate_trace(data)
    path = obs.write_trace(args.out, recorder, metrics)

    print(obs.render_trace(recorder))
    print()
    counts = {c: len(recorder.by_category(c)) for c in sorted(recorder.categories())}
    summary = ", ".join(f"{c}={k}" for c, k in counts.items())
    print(f"{len(recorder.spans)} spans ({summary})")
    print(f"makespan {recorder.makespan * 1e3:.1f} ms, trace {recorder.trace_id}")
    print(f"wrote {path} (open at https://ui.perfetto.dev)")
    if problems:
        print(f"INVALID trace_event output ({len(problems)} problems):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    return 0


def _cmd_grow(args: argparse.Namespace) -> int:
    """Ingest far past the load ceiling through every table flavour.

    Each stage starts at a small capacity with a ``GrowthPolicy`` and
    streams in ``--scale`` times that many pairs; success means zero
    ``InsertionError``, every key retrievable, at least one recorded
    rehash, and a valid Perfetto trace containing the lifecycle spans.
    """
    import numpy as np

    from repro import obs
    from repro.core import (
        GrowthPolicy,
        PartitionedWarpDriveTable,
        WarpDriveHashTable,
    )
    from repro.multigpu import DistributedHashTable, p100_nvlink_node
    from repro.pipeline.driver import AsyncCascadeDriver
    from repro.workloads import random_values, unique_keys

    policy = GrowthPolicy(max_load=args.max_load)
    base = 256 if args.smoke else args.capacity
    n = int(base * args.scale)
    keys = unique_keys(n, seed=11)
    values = random_values(n, seed=12)
    chunks = list(
        zip(np.array_split(keys, 8), np.array_split(values, 8))
    )
    failures: list[str] = []

    def check(label: str, table, query) -> None:
        got, found = query()
        if not bool(found.all()) or not bool((got == values).all()):
            failures.append(f"{label}: grown table lost pairs")

    with obs.session() as (recorder, metrics):
        t = WarpDriveHashTable(base, growth=policy)
        for ck, cv in chunks:
            t.insert(ck, cv)
        if t.grows == 0:
            failures.append("single: no growth at 4x ingest")
        check("single", t, lambda: t.query(keys))
        print(f"single       capacity {base} -> {t.capacity} "
              f"({t.grows} grows)")

        pt = PartitionedWarpDriveTable(
            base, max_partition_bytes=base * 2, growth=policy
        )
        for ck, cv in chunks:
            pt.insert(ck, cv)
        check("partitioned", pt, lambda: pt.query(keys))
        print(f"partitioned  capacity {base} -> {pt.capacity} "
              f"({sum(s.grows for s in pt.subtables)} grows)")
        pt.free()

        node = p100_nvlink_node(4)
        dt = DistributedHashTable(base, topology=node, growth=policy)
        for ck, cv in chunks:
            dt.insert(ck, cv)
        check("distributed", dt,
              lambda: dt.query(keys)[:2])
        rehash_xfers = sum(
            r.tag == "grow rehash" for r in dt.transfer_log.records
        )
        print(f"distributed  capacity {base} -> {dt.total_capacity} "
              f"({sum(s.grows for s in dt.shards)} grows, "
              f"{rehash_xfers} D2D rehash transfers)")
        dt.free()

        st = DistributedHashTable(base, topology=node, growth=policy)
        driver = AsyncCascadeDriver(st, num_threads=2, measure=True)
        res = driver.insert_stream(chunks)
        check("driver", st, lambda: st.query(keys)[:2])
        grow_spans = [
            s for s in res.measured.spans if s.op == "insert grow"
        ]
        if not grow_spans:
            failures.append("driver: no measured mid-stream grow span")
        print(f"driver       capacity {base} -> {st.total_capacity} "
              f"({len(grow_spans)} measured grow spans)")
        st.free()

    data = obs.to_perfetto(recorder, metrics)
    problems = obs.validate_trace(data)
    if problems:
        failures.extend(f"trace: {p}" for p in problems)
    names = {s.name for s in recorder.spans}
    for required in ("grow", "shard growth"):
        if required not in names:
            failures.append(f"trace: no '{required}' span recorded")
    rehashes = metrics.counters.get("kernel.rehash.ops", 0)
    if not rehashes:
        failures.append("metrics: kernel.rehash.ops never incremented")
    print(f"trace: {len(recorder.spans)} spans, "
          f"{rehashes} pairs migrated by rehash kernels")
    if args.out:
        path = obs.write_trace(args.out, recorder, metrics)
        print(f"wrote {path}")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("growth smoke: all table flavours grew cleanly")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    """Exercise the ``depth >= 2`` pipeline end to end.

    Four gates, all of which must hold: (1) the pipelined stream is
    bit-identical to ``depth=1`` on the same data; (2) a one-wave
    staging budget produces real backpressure, surfaced as
    ``pipeline.stall`` spans and metrics; (3) under modelled pacing the
    pipelined *measured* makespan beats ``depth=1`` because staging
    spans genuinely overlap device-occupancy spans in the trace; (4) the
    whole session exports a valid Perfetto trace.
    """
    import numpy as np

    from repro import obs
    from repro.multigpu import DistributedHashTable
    from repro.pipeline import AsyncCascadeDriver
    from repro.workloads import random_values, unique_keys

    n = 1 << 14 if args.smoke else args.n
    num_batches = 8
    depth = args.depth
    keys = unique_keys(n, seed=21)
    values = random_values(n, seed=22)
    batches = list(
        zip(np.array_split(keys, num_batches), np.array_split(values, num_batches))
    )
    per_batch = (n // num_batches) * 8  # packed uint64 pairs
    failures: list[str] = []

    def run(d: int, *, budget=None, pace="none", scale=20.0):
        table = DistributedHashTable(
            int(n / 0.8), topology=_resolve_topology_arg(args)
        )
        driver = AsyncCascadeDriver(
            table, depth=d, staging_budget=budget, pace=pace, scale=scale
        )
        ins = driver.insert_stream(iter(batches))
        qry = driver.query_stream([k for k, _ in batches])
        ks, vs = table.export()
        order = np.argsort(ks, kind="stable")
        state = (len(table), ks[order].tobytes(), vs[order].tobytes())
        table.free()
        return ins, qry, state

    with obs.session() as (recorder, metrics):
        # 1. bit-identity: depth=1 vs the pipelined depth
        _, base_qry, base_state = run(1)
        ins, qry, state = run(depth)
        if state != base_state:
            failures.append(f"depth={depth}: table state differs from depth=1")
        if (
            qry.values.tobytes() != base_qry.values.tobytes()
            or qry.found.tobytes() != base_qry.found.tobytes()
        ):
            failures.append(f"depth={depth}: query results differ from depth=1")
        print(
            f"identity     depth {depth} vs 1: {n} pairs, "
            f"{ins.num_ops + qry.num_ops} streamed ops, bit-identical="
            f"{state == base_state}"
        )

        # 2. backpressure: a one-wave budget must stall the stager
        bp_ins, _, _ = run(4, budget=per_batch, pace="modelled", scale=50.0)
        if bp_ins.stall_seconds <= 0:
            failures.append("backpressure: one-wave budget produced no stall")
        if bp_ins.peak_staged_bytes > per_batch:
            failures.append(
                f"backpressure: peak {bp_ins.peak_staged_bytes} B "
                f"exceeded the {per_batch} B budget"
            )
        print(
            f"backpressure depth 4, budget {per_batch} B: "
            f"peak {bp_ins.peak_staged_bytes} B, "
            f"stalled {bp_ins.stall_seconds * 1e3:.1f} ms"
        )

    if not any(s.name == "pipeline.stall" for s in recorder.spans):
        failures.append("trace: no pipeline.stall span recorded")
    if metrics.counter("pipeline.stall.count") < 1:
        failures.append("metrics: pipeline.stall.count never incremented")

    # staging spans (stager thread) overlapping commit-side occupancy
    stage_spans = [
        s for s in recorder.spans
        if s.category == "pipeline" and s.name.endswith(" stage")
    ]
    busy_spans = [
        s for s in recorder.spans
        if s.category == "batch" or s.name == "pipeline.pace"
    ]
    overlapped = any(
        s.start < b.end and b.start < s.end
        for s in stage_spans for b in busy_spans
    )
    if not stage_spans:
        failures.append("trace: no pipelined staging spans recorded")
    if not overlapped:
        failures.append(
            "trace: staging never overlapped a commit/occupancy span"
        )
    print(
        f"trace        {len(recorder.spans)} spans, "
        f"{len(stage_spans)} staged waves, overlap={overlapped}"
    )

    data = obs.to_perfetto(recorder, metrics)
    problems = obs.validate_trace(data)
    if problems:
        failures.extend(f"trace: {p}" for p in problems)
    if args.out:
        path = obs.write_trace(args.out, recorder, metrics)
        print(f"wrote {path} (open at https://ui.perfetto.dev)")

    # 3. measured overlap win under modelled pacing (same data both
    # depths; one retry absorbs host-scheduler noise)
    on = 1 << 19 if args.smoke else max(n, 1 << 19)
    okeys = unique_keys(on, seed=31)
    ovalues = random_values(on, seed=32)
    obatches = list(zip(np.array_split(okeys, 8), np.array_split(ovalues, 8)))

    def measured(d: int) -> float:
        table = DistributedHashTable(
            on * 2, topology=_resolve_topology_arg(args)
        )
        driver = AsyncCascadeDriver(
            table, depth=d, pace="modelled", measure=True, scale=500.0
        )
        res = driver.insert_stream(iter(obatches))
        table.free()
        return res.measured_makespan

    for attempt in (1, 2):
        m1, md = measured(1), measured(depth)
        if md < m1:
            break
    reduction = (1 - md / m1) * 100
    print(
        f"overlap      measured makespan {m1 * 1e3:.1f} ms -> "
        f"{md * 1e3:.1f} ms at depth {depth} ({reduction:.1f}% reduction)"
    )
    if md >= m1:
        failures.append(
            f"overlap: depth={depth} measured makespan {md * 1e3:.1f} ms "
            f"did not beat depth=1 {m1 * 1e3:.1f} ms"
        )

    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("stream smoke: pipelined, bounded, bit-identical, and overlapped")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Hierarchical-topology exercise: cluster bit-identity + NIC charges.

    Runs the same insert/erase/query workload through a flat 4-GPU node,
    a ``cluster:1x4`` (one-node cluster), and a ``cluster:2x2`` (same
    four GPUs split across two nodes).  Success means: the one-node
    cluster is bit-identical to the flat node *including* its charged
    bytes; the two-node cluster reaches the identical table state and
    query answers while charging part of the all-to-all to the NIC; and
    the traced run validates as Perfetto output with ``transpose.intra``
    / ``transpose.inter`` child spans (``--smoke`` is the CI gate).
    """
    import numpy as np

    from repro import obs
    from repro.multigpu import DistributedHashTable, topology as build_topology

    from repro.workloads import random_values, unique_keys

    n = 1 << 13 if args.smoke else args.n
    keys = unique_keys(n, seed=41)
    values = random_values(n, seed=42)
    erase_keys = keys[: n // 4]
    query_keys = keys
    failures: list[str] = []

    def run(spec: str):
        """One full cascade workload; returns (state, answers, reports)."""
        table = DistributedHashTable(int(n / 0.8), topology=build_topology(spec))
        try:
            ins = table.insert(keys, values, source="host")
            table.erase(erase_keys)
            got, found, qry = table.query(query_keys, source="host")
            ks, vs = table.export()
            order = np.argsort(ks, kind="stable")
            state = (len(table), ks[order].tobytes(), vs[order].tobytes())
            charges = tuple(
                (r.op, r.alltoall_bytes, r.alltoall_seconds,
                 r.reverse_bytes, r.reverse_seconds)
                for r in (ins, qry)
            )
        finally:
            table.free()
        return state, (got.tobytes(), found.tobytes()), charges, (ins, qry)

    flat_state, flat_ans, flat_charges, _ = run("p100:4")

    with obs.session() as (recorder, metrics):
        one_state, one_ans, one_charges, (one_ins, one_qry) = run("cluster:1x4")
        two_state, two_ans, two_charges, (two_ins, two_qry) = run("cluster:2x2")

    # 1. one-node cluster: bit-identical to flat, charges included
    if one_state != flat_state or one_ans != flat_ans:
        failures.append("cluster:1x4 state/answers differ from flat p100:4")
    if one_charges != flat_charges:
        failures.append("cluster:1x4 charged bytes/seconds differ from flat")
    if one_ins.alltoall_inter_bytes or one_qry.reverse_inter_bytes:
        failures.append("cluster:1x4 charged traffic to the NIC")
    print(
        f"identity     cluster:1x4 vs p100:4: {n} pairs, bit-identical="
        f"{one_state == flat_state and one_charges == flat_charges}"
    )

    # 2. two-node cluster: same data, NIC-charged exchange
    if two_state != flat_state or two_ans != flat_ans:
        failures.append("cluster:2x2 state/answers differ from flat p100:4")
    inter = two_ins.alltoall_inter_bytes + two_qry.alltoall_inter_bytes
    if inter <= 0:
        failures.append("cluster:2x2 charged no inter-node traffic")
    if two_ins.num_nodes != 2:
        failures.append(f"cluster:2x2 report num_nodes={two_ins.num_nodes}")
    total = two_ins.alltoall_intra_bytes + two_ins.alltoall_inter_bytes
    if total != two_ins.alltoall_bytes:
        failures.append(
            f"cluster:2x2 intra+inter {total} != total {two_ins.alltoall_bytes}"
        )
    print(
        f"hierarchy    cluster:2x2: identical state, "
        f"{inter} B over the NIC "
        f"({two_ins.alltoall_inter_seconds * 1e6:.1f} us inter-level)"
    )

    # 3. trace: hierarchical child spans + valid Perfetto output
    intra_spans = [s for s in recorder.spans if s.name == "transpose.intra"]
    inter_spans = [s for s in recorder.spans if s.name == "transpose.inter"]
    if not intra_spans or not inter_spans:
        failures.append(
            f"trace: expected transpose.intra/inter spans, got "
            f"{len(intra_spans)}/{len(inter_spans)}"
        )
    data = obs.to_perfetto(recorder, metrics)
    problems = obs.validate_trace(data)
    failures.extend(f"trace: {p}" for p in problems)
    if args.out:
        path = obs.write_trace(args.out, recorder, metrics)
        print(f"wrote {path} (open at https://ui.perfetto.dev)")
    print(
        f"trace        {len(recorder.spans)} spans, "
        f"{len(intra_spans)} intra + {len(inter_spans)} inter transpose "
        f"levels, valid={not problems}"
    )

    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("cluster smoke: hierarchical, NIC-charged, and bit-identical")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    """Compact-layout exercise: bit-identity + narrower charged bytes.

    Four gates, all of which must hold: (1) a ``compact`` table returns
    bit-identical query/erase results and counter-consistent reports vs
    ``aos`` and ``soa`` across probings, kernel backends, and
    growth/tombstone churn; (2) a distributed cascade over compact
    shards at quotienting capacity charges strictly fewer modelled
    VRAM/exchange bytes while answering identically; (3) a compact
    snapshot round-trips through :mod:`repro.core.serialize` into any
    layout; (4) the perf model prices the narrower record no slower.
    """
    import numpy as np

    from repro.core import GrowthPolicy, WarpDriveHashTable
    from repro.core.serialize import load_table, save_table
    from repro.core.store import STORE_LAYOUTS, slot_record_bytes
    from repro.multigpu import DistributedHashTable
    from repro.perfmodel import P100, predicted_op_seconds
    from repro.workloads import random_values, unique_keys

    n = 2000 if args.smoke else args.n
    keys = unique_keys(n, seed=51)
    values = random_values(n, seed=52)
    failures: list[str] = []

    # 1. single-table bit-identity under growth + tombstone churn
    def churn(layout: str, probing: str, kernels: str):
        t = WarpDriveHashTable(
            max(256, n // 4), probing=probing, layout=layout,
            growth=GrowthPolicy(max_load=0.8),
        )
        for ck, cv in zip(np.array_split(keys, 4), np.array_split(values, 4)):
            t.insert(ck, cv, kernels=kernels)
        erased = t.erase(keys[: n // 2], kernels=kernels)
        t.insert(keys[: n // 4], values[: n // 4], kernels=kernels)
        got, found = t.query(keys, kernels=kernels)
        # record widths stay at 8 B below the 2^16 quotienting crossover,
        # so the sector counters must agree across layouts exactly
        state = (
            got.tobytes(), found.tobytes(), np.asarray(erased).tobytes(),
            len(t), t.grows, t.counter.load_sectors, t.counter.store_sectors,
        )
        record = t.store.record_bytes
        t.free()
        return state, record

    combos = 0
    for probing in ("window", "double", "linear"):
        for kernels in ("fast", "compiled"):
            states = {
                layout: churn(layout, probing, kernels)[0]
                for layout in sorted(STORE_LAYOUTS)
            }
            combos += 1
            if len(set(states.values())) != 1:
                failures.append(
                    f"identity: layouts diverge at probing={probing} "
                    f"kernels={kernels}"
                )
    print(f"identity     {combos} probing x kernel combos, "
          f"{len(STORE_LAYOUTS)} layouts, grown+churned: "
          f"{'DIVERGED' if failures else 'bit-identical'}")

    # 2. distributed: narrower charges at quotienting capacity
    def cascade(layout: str):
        t = DistributedHashTable(
            (1 << 17) * 4, topology="p100:4", layout=layout
        )
        ins = t.insert(keys, values)
        got, found, qry = t.query(keys)
        t.free()
        return ins, qry, (got.tobytes(), found.tobytes())

    ins_a, qry_a, ans_a = cascade("aos")
    ins_c, qry_c, ans_c = cascade("compact")
    if ans_a != ans_c:
        failures.append("cascade: compact answers differ from aos")
    if not (ins_c.table_bytes < ins_a.table_bytes):
        failures.append("cascade: compact did not shrink modelled VRAM")
    if not (ins_c.alltoall_bytes < ins_a.alltoall_bytes):
        failures.append("cascade: compact did not shrink all-to-all bytes")
    if not (qry_c.reverse_bytes < qry_a.reverse_bytes):
        failures.append("cascade: compact did not shrink reverse bytes")
    print(
        f"cascade      4x P100 at 2^17/GPU: record "
        f"{ins_a.record_bytes} -> {ins_c.record_bytes} B, VRAM "
        f"{ins_a.table_bytes >> 20} -> {ins_c.table_bytes >> 20} MiB, "
        f"all-to-all {ins_a.alltoall_bytes} -> {ins_c.alltoall_bytes} B"
    )

    # 3. serialize: compact snapshot loads bit-identically into aos
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        t = WarpDriveHashTable(1 << 12, layout="compact")
        t.insert(keys, values)
        save_table(t, f"{tmp}/compact.npz")
        back = load_table(f"{tmp}/compact.npz")
        if back.config.layout != "compact" or not np.array_equal(
            back.slots, t.slots
        ):
            failures.append("serialize: compact round-trip lost slots")
        t.free()
        back.free()
    print("serialize    compact -> disk -> compact: packed slots preserved")

    # 4. perf model: narrower record never predicts slower
    for g in (8, 16, 32):
        wide = predicted_op_seconds(0.8, g, P100, op="query", record_bytes=8)
        narrow = predicted_op_seconds(
            0.8, g, P100, op="query",
            record_bytes=slot_record_bytes("compact", 1 << 24),
        )
        if narrow > wide:
            failures.append(f"perfmodel: compact slower at g={g}")
    print("perfmodel    compact record priced <= packed at g in {8,16,32}")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("compact smoke: bit-identical, narrower charges, round-trippable")
    return 0


def _parse_budget(text: str) -> float:
    """Seconds from a ``30s`` / ``2m`` / plain-number budget string."""
    text = text.strip().lower()
    if text.endswith("m"):
        return float(text[:-1]) * 60.0
    if text.endswith("s"):
        return float(text[:-1])
    return float(text)


def _cmd_racecheck(args: argparse.Namespace) -> int:
    from repro.sanitize.mutants import MUTANTS, run_clean, run_mutant
    from repro.simt.scheduler import RandomScheduler, RoundRobinScheduler

    schedulers = {
        "round_robin": lambda: RoundRobinScheduler(),
        "random": lambda: RandomScheduler(seed=args.seed),
    }
    names = [args.mutant] if args.mutant else ["clean", *MUTANTS]
    failures = 0
    for name in names:
        for label, make in schedulers.items():
            if name == "clean":
                report = run_clean(make())
                ok = report.clean
                verdict = "clean" if ok else "FINDINGS (unexpected)"
            else:
                report = run_mutant(name, make())
                expected = MUTANTS[name].expected_rule
                ok = expected in report.rules_hit()
                verdict = (
                    f"flagged [{expected}]" if ok else "NOT FLAGGED (bug!)"
                )
            failures += not ok
            print(f"{name:26s} {label:12s} {verdict}")
            if args.verbose or not ok:
                for line in report.format().splitlines():
                    print("    " + line)
    return 1 if failures else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.sanitize.fuzz import replay_seed, run_fuzz
    from repro.sanitize.inject import INJECTIONS

    if args.inject is not None and args.inject not in INJECTIONS:
        print(f"unknown injection {args.inject!r}; choose from "
              f"{sorted(INJECTIONS)}")
        return 2

    if args.replay is not None:
        failure = replay_seed(args.replay, inject=args.inject)
        if failure is None:
            print(f"replay seed={args.replay}: all differential checks pass")
            return 0
        print(failure.message())
        return 1

    result = run_fuzz(
        budget_seconds=_parse_budget(args.budget) if args.budget else None,
        max_cases=args.max_cases,
        start_seed=args.seed,
        inject=args.inject,
        corpus_path=args.corpus,
        shrink_failures=not args.no_shrink,
        log=print,
    )
    print(result.format())
    return 1 if result.failures else 0


def _serve_smoke() -> int:
    """The ``repro serve --smoke`` CI gate: correctness + faults + cache.

    Four gates on one in-process server: (1) insert/query/erase round
    trips through the socket layer; (2) repeated hot-key traffic is
    answered by the cache tier and invalidation keeps it coherent;
    (3) a malformed frame draws a typed error, never a hang or a
    corrupted table; (4) a saturated admission budget rejects with
    ``OVERLOADED`` and counts ``serve.rejected``.
    """
    import socket as socketlib

    import numpy as np

    from repro.serve import (
        ErrorCode,
        FrameType,
        KVClient,
        KVServer,
        ServeError,
        read_frame,
    )

    failures: list[str] = []
    server = KVServer.create(
        num_gpus=4, capacity=1 << 13, oplog=True, batch_window=0.0005
    ).start()
    try:
        rng = np.random.default_rng(5)
        keys = np.arange(1, 513, dtype=np.uint32)
        values = rng.integers(0, 1 << 32, size=512, dtype=np.uint32)
        with KVClient(server.address, name="smoke") as client:
            client.insert(keys, values)
            for _ in range(3):  # repeats promote the keys into the cache
                got, found = client.query(keys)
            if not (found.all() and (got == values).all()):
                failures.append("serve: query round-trip mismatch")
            erased = client.erase(keys[:64])
            if int(erased.sum()) != 64:
                failures.append("serve: erase round-trip mismatch")
            _, refound = client.query(keys[:64])
            if refound.any():
                failures.append("serve: cache served erased keys (stale)")
            counters = client.stats()["counters"]
        if not counters.get("serve.cache.hits"):
            failures.append("serve: hot keys never hit the cache tier")

        # gate 3: garbage bytes → typed error frame, connection closed
        raw = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        raw.connect(server.address)
        raw.sendall(b"\x00" * 12)
        reply = read_frame(raw)
        if reply.type != FrameType.ERROR:
            failures.append("serve: malformed header not answered typed")
        raw.close()

        # gate 4: a one-frame budget rejects the second in-flight frame
        tiny = KVServer.create(
            num_gpus=2,
            capacity=1 << 10,
            admission_bytes=1 << 10,
            batch_window=0.2,  # park frame one in the coalescer window
        ).start()
        try:
            with KVClient(
                tiny.address, name="flood", presplit=False
            ) as flood:
                overloaded = False
                try:
                    flood.insert(
                        np.arange(1, 257, dtype=np.uint32),
                        np.ones(256, dtype=np.uint32),
                    )
                    flood.insert(
                        np.arange(300, 556, dtype=np.uint32),
                        np.ones(256, dtype=np.uint32),
                    )
                except ServeError as exc:
                    overloaded = exc.code == ErrorCode.OVERLOADED
            if not overloaded:
                failures.append("serve: saturated budget never rejected")
            if not tiny.stats.get("serve.rejected"):
                failures.append("serve: serve.rejected counter still zero")
        finally:
            tiny.close()
    finally:
        server.close()
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(
        "serve smoke: round-trips, cache coherence, typed faults, "
        "and admission backpressure all hold"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import KVServer

    if args.smoke:
        return _serve_smoke()
    address = args.socket
    if address is None and args.port is not None:
        address = (args.host, args.port)
    server = KVServer.create(
        num_gpus=args.m,
        capacity=args.capacity,
        address=address,
        cache=not args.no_cache,
        cache_size=args.cache_size,
        batch_window=args.batch_window,
    ).start()
    addr = server.address
    shown = addr if isinstance(addr, str) else f"{addr[0]}:{addr[1]}"
    print(f"serving {args.m}-GPU table (capacity {args.capacity}) on {shown}")
    print("stop with Ctrl-C or a client-side shutdown")
    try:
        server.wait()
    except KeyboardInterrupt:
        server.close()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json as jsonlib
    import time as timelib

    import numpy as np

    from repro.serve import KVClient
    from repro.workloads import random_values, serving_zipf_keys, universe_key_map

    address = args.socket
    if address is None and args.port is not None:
        address = (args.host, args.port)
    if address is None:
        print("FAIL client needs --socket PATH or --port N")
        return 2
    with KVClient(
        address, name=args.name, retry_overloaded=8
    ) as client:
        if args.op == "stats":
            print(jsonlib.dumps(client.stats(), indent=2))
            return 0
        if args.op == "shutdown":
            client.shutdown_server()
            print("server asked to shut down")
            return 0
        if args.op == "prefill":
            keys = universe_key_map(args.universe, seed=args.seed)
            values = random_values(args.universe, seed=args.seed ^ 0xBEEF)
            count = client.insert(keys, values)
            print(f"prefilled {count} universe pairs")
            return 0
        # op == "zipf": the Zipfian load generator against a live server
        total = 0
        t0 = timelib.perf_counter()
        for batch in range(args.batches):
            keys = serving_zipf_keys(
                args.batch_size,
                args.s,
                universe=args.universe,
                seed=args.seed + 7919 * (batch + 1),
                map_seed=args.seed,
            )
            _, found = client.query(keys)
            total += int(keys.size)
        seconds = timelib.perf_counter() - t0
        counters = client.stats()["counters"]
        hits = counters.get("serve.cache.hits", 0)
        misses = counters.get("serve.cache.misses", 0)
        rate = hits / (hits + misses) if hits + misses else 0.0
        print(
            f"{total} Zipf(s={args.s}) queries in {seconds:.3f} s "
            f"({total / seconds / 1e6:.3f} Mops/s), "
            f"found {int(found.sum())}/{found.size} in last batch, "
            f"server hit rate {rate:.0%}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="WarpDrive reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and calibration summary").set_defaults(
        fn=_cmd_info
    )

    demo = sub.add_parser("demo", help="functional single+multi GPU demo")
    demo.add_argument("--n", type=int, default=100_000, help="pairs to insert")
    demo.add_argument(
        "--engine",
        choices=("serial", "thread", "process"),
        default="serial",
        help="shard-execution backend for the multi-GPU part",
    )
    demo.add_argument(
        "--workers", type=int, default=None, help="pool size for thread/process"
    )
    demo.add_argument(
        "--topology", default=None, metavar="SPEC",
        help='''topology spec: "p100:M", "pcie:M", "dgx1v", "cluster:NxM" (see repro.options)''',
    )
    demo.set_defaults(fn=_cmd_demo)

    rates = sub.add_parser("rates", help="modelled single-GPU rate table")
    rates.add_argument("--n", type=int, default=1 << 14)
    rates.add_argument(
        "--loads", type=float, nargs="+", default=[0.5, 0.8, 0.95]
    )
    rates.add_argument(
        "--groups", type=int, nargs="+", default=[1, 2, 4, 8, 16, 32]
    )
    rates.add_argument(
        "--distribution", choices=("unique", "uniform", "zipf"), default="unique"
    )
    rates.set_defaults(fn=_cmd_rates)

    figures = sub.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument("--full", action="store_true")
    figures.set_defaults(fn=_cmd_figures)

    score = sub.add_parser(
        "scorecard", help="grade every checkable paper claim"
    )
    score.add_argument("--full", action="store_true")
    score.set_defaults(fn=_cmd_scorecard)

    bench = sub.add_parser(
        "bench", help="measured wall-clock suites (engines, distribution)"
    )
    bench.add_argument("--n", type=int, default=1 << 18, help="keys per bench")
    bench.add_argument(
        "--m", type=int, default=None,
        help="GPUs in the cascade (default 4; exclusive with --topology)",
    )
    bench.add_argument(
        "--topology", default=None, metavar="SPEC",
        help='''topology spec: "p100:M", "pcie:M", "dgx1v", "cluster:NxM" (see repro.options)''',
    )
    bench.add_argument(
        "--suite",
        choices=("wallclock", "distribution", "serving", "all"),
        default="all",
        help="which measured suite(s) to run",
    )
    bench.add_argument(
        "--smoke", action="store_true", help="tiny n for a quick sanity run"
    )
    bench.add_argument(
        "--engines",
        nargs="+",
        choices=("serial", "thread", "process"),
        default=None,
        help="backends to compare (default: all)",
    )
    bench.add_argument(
        "--workers", type=int, default=None, help="pool size for thread/process"
    )
    bench.add_argument(
        "--kernels",
        choices=("fast", "ref", "compiled"),
        default="fast",
        help="kernel backend for the wallclock suite (compiled falls "
        "back to fast without a JIT provider; rows record what ran)",
    )
    bench.add_argument(
        "--out", default=None, help="also write records to this JSON path"
    )
    bench.set_defaults(fn=_cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="serve a distributed table over a unix/TCP socket "
        "(--smoke is the CI gate)",
    )
    serve.add_argument(
        "--smoke", action="store_true",
        help="in-process serve/fault/cache gate for CI",
    )
    serve.add_argument("--m", type=int, default=4, help="GPUs behind the server")
    serve.add_argument(
        "--capacity", type=int, default=1 << 16, help="total table capacity"
    )
    serve.add_argument(
        "--socket", default=None,
        help="unix socket path (default: fresh path under /tmp)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port (0 picks one); overrides the unix default",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="disable the hot-key cache tier"
    )
    serve.add_argument(
        "--cache-size", type=int, default=4096, help="hot-key cache capacity"
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.002,
        help="seconds the coalescer waits to merge requests",
    )
    serve.set_defaults(fn=_cmd_serve)

    client = sub.add_parser(
        "client",
        help="drive a running `repro serve` (Zipfian load generator)",
    )
    client.add_argument(
        "--op", choices=("zipf", "prefill", "stats", "shutdown"),
        default="zipf", help="what to run against the server",
    )
    client.add_argument("--socket", default=None, help="server unix socket path")
    client.add_argument("--host", default="127.0.0.1", help="server TCP host")
    client.add_argument("--port", type=int, default=None, help="server TCP port")
    client.add_argument("--name", default=None, help="client identity for HELLO")
    client.add_argument("--s", type=float, default=1.0, help="Zipf skew exponent")
    client.add_argument(
        "--universe", type=int, default=4096, help="distinct keys in the trace"
    )
    client.add_argument("--batches", type=int, default=16)
    client.add_argument("--batch-size", type=int, default=2048)
    client.add_argument("--seed", type=int, default=11)
    client.set_defaults(fn=_cmd_client)

    trace = sub.add_parser(
        "trace",
        help="run a traced m-GPU cascade and write Perfetto trace_event JSON",
    )
    trace.add_argument("--n", type=int, default=1 << 16, help="pairs to stream")
    trace.add_argument(
        "--m", type=int, default=None,
        help="GPUs in the cascade (default 4; exclusive with --topology)",
    )
    trace.add_argument(
        "--topology", default=None, metavar="SPEC",
        help='''topology spec: "p100:M", "pcie:M", "dgx1v", "cluster:NxM" (see repro.options)''',
    )
    trace.add_argument(
        "--engine",
        choices=("serial", "thread", "process"),
        default="serial",
        help="shard-execution backend to trace",
    )
    trace.add_argument(
        "--workers", type=int, default=None, help="pool size for thread/process"
    )
    trace.add_argument(
        "--smoke", action="store_true", help="tiny n for a quick sanity run"
    )
    trace.add_argument(
        "--out", default="repro.trace.json", help="trace_event JSON output path"
    )
    trace.set_defaults(fn=_cmd_trace)

    grow = sub.add_parser(
        "grow",
        help="dynamic-growth exercise across every table flavour",
    )
    grow.add_argument(
        "--smoke", action="store_true",
        help="small fixed workload for CI (capacity 256)",
    )
    grow.add_argument("--capacity", type=int, default=1024,
                      help="starting capacity per stage")
    grow.add_argument("--scale", type=float, default=4.0,
                      help="ingest scale x starting capacity pairs")
    grow.add_argument("--max-load", type=float, default=0.9,
                      help="GrowthPolicy load ceiling")
    grow.add_argument("--out", default=None,
                      help="optional Perfetto trace output path")
    grow.set_defaults(fn=_cmd_grow)

    stream = sub.add_parser(
        "stream",
        help="streaming-pipeline exercise: depth identity, backpressure, "
        "measured overlap",
    )
    stream.add_argument(
        "--smoke", action="store_true",
        help="small fixed workload for CI",
    )
    stream.add_argument("--n", type=int, default=1 << 17,
                        help="pairs to stream (8 batches)")
    stream.add_argument(
        "--topology", default=None, metavar="SPEC",
        help='''topology spec: "p100:M", "pcie:M", "dgx1v", "cluster:NxM" (see repro.options)''',
    )
    stream.add_argument("--m", type=int, default=None,
                        help="GPUs in the cascade")
    stream.add_argument("--depth", type=int, default=2,
                        help="pipelined in-flight batch depth to validate")
    stream.add_argument("--out", default=None,
                        help="optional Perfetto trace output path")
    stream.set_defaults(fn=_cmd_stream)

    cluster = sub.add_parser(
        "cluster",
        help="hierarchical-topology exercise: one-node cluster "
        "bit-identity, NIC charging, traced exchange levels",
    )
    cluster.add_argument(
        "--smoke", action="store_true",
        help="small fixed workload for CI",
    )
    cluster.add_argument("--n", type=int, default=1 << 16,
                         help="pairs to ingest per topology")
    cluster.add_argument("--out", default=None,
                         help="optional Perfetto trace output path")
    cluster.set_defaults(fn=_cmd_cluster)

    compact = sub.add_parser(
        "compact",
        help="compact slot layout exercise: cross-layout bit-identity "
        "and narrower charged bytes",
    )
    compact.add_argument(
        "--smoke", action="store_true",
        help="small fixed workload for CI",
    )
    compact.add_argument("--n", type=int, default=1 << 14,
                         help="pairs per identity combo")
    compact.set_defaults(fn=_cmd_compact)

    race = sub.add_parser(
        "racecheck",
        help="SIMT race sanitizer: clean-tree certification + mutant catalogue",
    )
    race.add_argument(
        "--mutant", default=None, help="run one catalogued mutant only"
    )
    race.add_argument(
        "--seed", type=int, default=7, help="random-scheduler seed"
    )
    race.add_argument(
        "--verbose", action="store_true", help="print full reports"
    )
    race.set_defaults(fn=_cmd_racecheck)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing of fast paths vs reference"
    )
    fuzz.add_argument(
        "--budget", default=None, help="time budget, e.g. 30s or 2m"
    )
    fuzz.add_argument(
        "--max-cases", type=int, default=None, help="cap on cases run"
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="first case seed (cases count up)"
    )
    fuzz.add_argument(
        "--replay", type=int, default=None, metavar="SEED",
        help="re-run the single case derived from SEED and exit",
    )
    fuzz.add_argument(
        "--inject", default=None, metavar="NAME",
        help="enable a seeded fault (see repro.sanitize.inject)",
    )
    fuzz.add_argument(
        "--corpus", default="tests/fuzz/corpus.json",
        help="seed-corpus JSON to append to (replayable regressions)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true", help="skip failure shrinking"
    )
    fuzz.set_defaults(fn=_cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
