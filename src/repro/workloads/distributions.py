"""Key distributions of the paper's evaluation (§V-A).

Three 4-byte key distributions with arbitrary 4-byte values:

* **unique** — sampling without replacement from the 2^32 key space,
  "equivalent to a Fisher-Yates shuffle of an ascending integer
  sequence";
* **uniform** — sampling with replacement; the number of unique keys
  follows the bootstrap ratio ``1 − e^(−n/2^32)``;
* **Zipf** — power-law multiplicities: the key of rank k appears
  ``∝ k^(−s)`` times, ``s > 1`` (the paper uses ``s = 1 + 10^{-6}``).

All samplers avoid the two reserved top key values (EMPTY/TOMBSTONE
sentinels) and take explicit seeds.
"""

from __future__ import annotations

import numpy as np

from ..constants import KEY_SPACE, MAX_KEY
from ..errors import ConfigurationError

__all__ = [
    "unique_keys",
    "uniform_keys",
    "zipf_keys",
    "random_values",
    "expected_unique_fraction",
    "make_distribution",
]


def _check_n(n: int) -> None:
    if n <= 0:
        raise ConfigurationError(f"n must be > 0, got {n}")


def unique_keys(n: int, seed: int = 0) -> np.ndarray:
    """``n`` distinct keys, uniformly from the legal 4-byte key space.

    A full 2^32 Fisher-Yates shuffle would need 16 GB of scratch; instead
    we sample without replacement via random 64-bit draws + dedup top-up,
    which yields the same distribution restricted to n draws.
    """
    _check_n(n)
    if n > MAX_KEY + 1:
        raise ConfigurationError(
            f"cannot draw {n} unique keys from a space of {MAX_KEY + 1}"
        )
    rng = np.random.default_rng(seed)
    have = np.empty(0, dtype=np.uint32)
    want = n
    while want > 0:
        draw = rng.integers(0, MAX_KEY + 1, size=int(want * 1.05) + 16, dtype=np.int64)
        have = np.unique(np.concatenate([have, draw.astype(np.uint32)]))
        want = n - have.shape[0]
    # unique() sorted the keys; shuffle to restore a random insertion order
    rng.shuffle(have)
    return have[:n]


def uniform_keys(n: int, seed: int = 0) -> np.ndarray:
    """``n`` keys drawn with replacement from the legal key space."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    return rng.integers(0, MAX_KEY + 1, size=n, dtype=np.int64).astype(np.uint32)


def expected_unique_fraction(n: int) -> float:
    """Bootstrap ratio: E[#unique]/n for uniform sampling (§V-A)."""
    _check_n(n)
    return (1.0 - np.exp(-n / KEY_SPACE)) * KEY_SPACE / n


def zipf_keys(n: int, s: float = 1.0 + 1e-6, *, universe: int | None = None, seed: int = 0) -> np.ndarray:
    """``n`` keys with Zipf(s) multiplicities over a shuffled rank space.

    The multiplicity of the rank-k key is smaller than the most common
    key's by a factor ``k^(−s)`` [24].  Ranks are mapped to random key
    values so the *hash* distribution stays uniform — only multiplicities
    are skewed, exactly as in the paper's experiment.
    """
    _check_n(n)
    if s <= 1.0:
        raise ConfigurationError(f"Zipf exponent must be > 1, got {s}")
    rng = np.random.default_rng(seed)
    if universe is None:
        universe = n
    if universe <= 0 or universe > MAX_KEY + 1:
        raise ConfigurationError(f"universe must be in [1, {MAX_KEY + 1}]")
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = ranks ** (-s)
    weights /= weights.sum()
    drawn_ranks = rng.choice(universe, size=n, p=weights)
    # map ranks to random distinct key values
    rank_to_key = unique_keys(universe, seed=seed ^ 0x5EED)
    return rank_to_key[drawn_ranks]


def random_values(n: int, seed: int = 0) -> np.ndarray:
    """Arbitrary 4-byte values."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 32, size=n, dtype=np.int64).astype(np.uint32)


#: registry used by the bench harness
_DISTRIBUTIONS = {
    "unique": unique_keys,
    "uniform": uniform_keys,
    "zipf": zipf_keys,
}


def make_distribution(name: str, n: int, seed: int = 0, **kwargs) -> np.ndarray:
    """Draw ``n`` keys from a named distribution."""
    try:
        fn = _DISTRIBUTIONS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown distribution {name!r}; choose from {sorted(_DISTRIBUTIONS)}"
        ) from None
    return fn(n, seed=seed, **kwargs)
