"""Workload generation: the paper's key distributions plus domain data."""

from .distributions import (
    expected_unique_fraction,
    make_distribution,
    random_values,
    uniform_keys,
    unique_keys,
    zipf_keys,
)
from .generators import Batch, BatchStream
from .kmers import (
    encode_bases,
    extract_kmers,
    kmer_to_string,
    pcie_amplification,
    random_dna,
)
from .serving import (
    ServingOp,
    ServingWorkload,
    serving_workload,
    serving_zipf_keys,
    universe_key_map,
)
from .patches import (
    extract_patches,
    patch_amplification,
    patch_keys,
    random_image,
)
from .text import bag_of_words, synthetic_corpus, token_keys, tokenize

__all__ = [
    "unique_keys",
    "uniform_keys",
    "zipf_keys",
    "random_values",
    "expected_unique_fraction",
    "make_distribution",
    "Batch",
    "BatchStream",
    "ServingOp",
    "ServingWorkload",
    "serving_workload",
    "serving_zipf_keys",
    "universe_key_map",
    "random_dna",
    "encode_bases",
    "extract_kmers",
    "kmer_to_string",
    "pcie_amplification",
    "random_image",
    "extract_patches",
    "patch_keys",
    "patch_amplification",
    "tokenize",
    "token_keys",
    "synthetic_corpus",
    "bag_of_words",
]
