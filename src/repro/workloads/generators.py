"""Batched workload streams.

The multi-GPU experiments process data "in batches consisting of 2^24
elements (128 MB)" (§V-C).  A :class:`BatchStream` cuts a keyspace into
deterministic, disjoint batches so experiments and the overlap pipeline
can iterate without materializing the full paper-scale dataset.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .distributions import make_distribution, random_values

__all__ = ["Batch", "BatchStream"]


@dataclass(frozen=True)
class Batch:
    """One batch of key-value pairs."""

    index: int
    keys: np.ndarray
    values: np.ndarray

    @property
    def size(self) -> int:
        return int(self.keys.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.keys.nbytes + self.values.nbytes)


class BatchStream:
    """Deterministic stream of batches from a named key distribution.

    ``distribution="unique"`` guarantees batches are *globally* disjoint
    (one big draw, chunked), matching the paper's insert-everything-once
    protocol; other distributions draw per-batch with derived seeds.
    """

    def __init__(
        self,
        total: int,
        batch_size: int,
        *,
        distribution: str = "unique",
        seed: int = 0,
        **dist_kwargs,
    ):
        if total <= 0 or batch_size <= 0:
            raise ConfigurationError("total and batch_size must be > 0")
        self.total = total
        self.batch_size = batch_size
        self.distribution = distribution
        self.seed = seed
        self.dist_kwargs = dist_kwargs
        self.num_batches = -(-total // batch_size)  # ceil
        self._unique_pool: np.ndarray | None = None
        if distribution == "unique":
            self._unique_pool = make_distribution(
                "unique", total, seed=seed, **dist_kwargs
            )

    def __len__(self) -> int:
        return self.num_batches

    def batch(self, index: int) -> Batch:
        if not 0 <= index < self.num_batches:
            raise ConfigurationError(
                f"batch index {index} out of range [0, {self.num_batches})"
            )
        start = index * self.batch_size
        size = min(self.batch_size, self.total - start)
        if self._unique_pool is not None:
            keys = self._unique_pool[start : start + size]
        else:
            keys = make_distribution(
                self.distribution, size, seed=self.seed + 7919 * (index + 1), **self.dist_kwargs
            )
        values = random_values(size, seed=self.seed + 104729 * (index + 1))
        return Batch(index=index, keys=keys, values=values)

    def __iter__(self) -> Iterator[Batch]:
        for i in range(self.num_batches):
            yield self.batch(i)
