"""Zipfian serving traffic for the KV front-end (ROADMAP item 1).

The paper's Zipf sampler (:func:`~repro.workloads.distributions
.zipf_keys`) models the *ingest* experiment: ``s > 1`` over an
effectively unbounded rank space.  Serving traffic is the other regime —
"millions of users" hitting a **finite working set**, where the
classical exponent is ``s = 1.0`` (and anything down to ``s = 0``,
i.e. uniform, is a legal skew knob).  Over a finite universe every
``s >= 0`` normalizes, so this module provides the generalized sampler
plus a mixed-op workload builder for the soak/bench harnesses.

The key *values* stay hash-uniform exactly as in the paper: ranks are
mapped through a shuffled :func:`~repro.workloads.distributions
.unique_keys` table, so skew lives in multiplicities only and the
table's partition stays balanced — the hot-key cache tier, not a lucky
shard, must absorb the skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import MAX_KEY
from ..errors import ConfigurationError
from .distributions import random_values, unique_keys

__all__ = [
    "ServingOp",
    "ServingWorkload",
    "serving_zipf_keys",
    "serving_workload",
    "universe_key_map",
]


def serving_zipf_keys(
    n: int,
    s: float = 1.0,
    *,
    universe: int = 4096,
    seed: int = 0,
    map_seed: int | None = None,
) -> np.ndarray:
    """``n`` keys, rank-``k`` drawn ``∝ k^(-s)`` from a finite universe.

    Unlike :func:`~repro.workloads.distributions.zipf_keys` this allows
    the full serving-skew range ``s >= 0`` (``0`` = uniform, ``1.0`` =
    classical Zipf, larger = hotter head) — a finite universe keeps the
    weights normalizable.  ``seed`` varies the draw; ``map_seed``
    (defaulting to ``seed``) pins the rank → key-value map, so a trace
    of many differently-seeded batches still targets one universe.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be > 0, got {n}")
    if s < 0:
        raise ConfigurationError(f"serving skew must be >= 0, got {s}")
    if universe <= 0 or universe > MAX_KEY + 1:
        raise ConfigurationError(f"universe must be in [1, {MAX_KEY + 1}]")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = ranks ** (-s)
    weights /= weights.sum()
    drawn = rng.choice(universe, size=n, p=weights)
    key_map_seed = seed if map_seed is None else map_seed
    return universe_key_map(universe, seed=key_map_seed)[drawn]


def universe_key_map(universe: int, *, seed: int = 0) -> np.ndarray:
    """The rank → key-value table ``serving_zipf_keys`` samples through.

    Exposed so harnesses can prefill a table with exactly the keys the
    traffic will touch.  Note the map depends only on ``(universe,
    seed)`` — per-batch seeds must vary only the *draw*, not the map.
    """
    return unique_keys(universe, seed=seed ^ 0x5EED)


@dataclass(frozen=True)
class ServingOp:
    """One client-sized request: an op plus its key (and value) batch."""

    op: str  #: "insert" | "query" | "erase"
    keys: np.ndarray
    values: np.ndarray | None = None


@dataclass
class ServingWorkload:
    """A prefilled universe plus a mixed-op request stream."""

    universe: int
    s: float
    prefill_keys: np.ndarray
    prefill_values: np.ndarray
    ops: list[ServingOp] = field(default_factory=list)

    @property
    def num_ops(self) -> int:
        return sum(int(op.keys.size) for op in self.ops)


def serving_workload(
    num_batches: int,
    batch_size: int,
    *,
    s: float = 1.0,
    universe: int = 4096,
    mix: tuple[float, float, float] = (0.05, 0.90, 0.05),
    seed: int = 0,
) -> ServingWorkload:
    """Build a Zipf(s) serving trace: prefill + ``num_batches`` requests.

    ``mix`` is the (insert, query, erase) batch-type split.  Inserts
    re-write universe keys with fresh values and erases tombstone them —
    both invalidate cache residents, so a coherence bug shows up as a
    wrong query answer, not just a stale counter.  Every batch draws
    with its own sub-seed; the rank → key map stays fixed.
    """
    if num_batches <= 0:
        raise ConfigurationError(
            f"num_batches must be > 0, got {num_batches}"
        )
    if batch_size <= 0:
        raise ConfigurationError(f"batch_size must be > 0, got {batch_size}")
    if len(mix) != 3 or any(m < 0 for m in mix) or sum(mix) <= 0:
        raise ConfigurationError(
            f"mix must be three non-negative weights, got {mix!r}"
        )
    rng = np.random.default_rng(seed)
    prefill_keys = universe_key_map(universe, seed=seed)
    prefill_values = random_values(universe, seed=seed ^ 0xBEEF)
    weights = np.asarray(mix, dtype=np.float64)
    weights /= weights.sum()
    kinds = rng.choice(3, size=num_batches, p=weights)
    ops: list[ServingOp] = []
    for i, kind in enumerate(kinds):
        batch_seed = seed + 7919 * (i + 1)
        keys = serving_zipf_keys(
            batch_size, s, universe=universe, seed=batch_seed, map_seed=seed
        )
        if kind == 0:
            ops.append(
                ServingOp(
                    "insert",
                    keys,
                    random_values(batch_size, seed=batch_seed ^ 0xF00D),
                )
            )
        elif kind == 1:
            ops.append(ServingOp("query", keys))
        else:
            ops.append(ServingOp("erase", keys))
    return ServingWorkload(
        universe=universe,
        s=s,
        prefill_keys=prefill_keys,
        prefill_values=prefill_values,
        ops=ops,
    )
