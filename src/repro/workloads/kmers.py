"""DNA k-mer extraction (the paper's motivating bioinformatics workload).

§IV-B: "bioinformatics applications often extract and hash all n − k + 1
substrings of length k (called k-mers) from a DNA sequence of length n"
— so O(n·k) bytes of keys are generated on-device from O(n) transferred
bytes, multiplying the effective PCIe rate by ≈ k.  The k-mer example
(:mod:`examples.kmer_index`) builds a k-mer counting index on the
distributed table using these helpers.
"""

from __future__ import annotations

import numpy as np

from ..constants import MAX_KEY
from ..errors import ConfigurationError

__all__ = [
    "random_dna",
    "encode_bases",
    "extract_kmers",
    "kmer_to_string",
    "pcie_amplification",
]

_BASES = np.frombuffer(b"ACGT", dtype=np.uint8)
_CODE = np.full(256, 255, dtype=np.uint8)
for _i, _b in enumerate(b"ACGT"):
    _CODE[_b] = _i
for _i, _b in enumerate(b"acgt"):
    _CODE[_b] = _i


def random_dna(length: int, seed: int = 0) -> bytes:
    """A random DNA sequence of the given length."""
    if length <= 0:
        raise ConfigurationError(f"length must be > 0, got {length}")
    rng = np.random.default_rng(seed)
    return bytes(_BASES[rng.integers(0, 4, size=length)])


def encode_bases(sequence: bytes | str) -> np.ndarray:
    """2-bit base codes (A=0, C=1, G=2, T=3); raises on non-ACGT."""
    if isinstance(sequence, str):
        sequence = sequence.encode("ascii")
    raw = np.frombuffer(sequence, dtype=np.uint8)
    codes = _CODE[raw]
    if np.any(codes == 255):
        bad = chr(int(raw[np.argmax(codes == 255)]))
        raise ConfigurationError(f"non-ACGT base {bad!r} in sequence")
    return codes


def extract_kmers(sequence: bytes | str, k: int) -> np.ndarray:
    """All n−k+1 k-mers as 2-bit packed integer keys.

    ``k`` is capped at 15 so the packed k-mer (2k bits) stays within the
    table's 32-bit key space (k=15 ⇒ 30 bits < MAX_KEY).
    """
    if not 1 <= k <= 15:
        raise ConfigurationError(f"k must be in [1, 15] for 32-bit keys, got {k}")
    codes = encode_bases(sequence).astype(np.uint64)
    n = codes.shape[0]
    if n < k:
        raise ConfigurationError(f"sequence length {n} shorter than k={k}")
    # rolling pack: kmer[i] = sum codes[i+j] << 2*(k-1-j)
    out = np.zeros(n - k + 1, dtype=np.uint64)
    for j in range(k):
        out = (out << np.uint64(2)) | codes[j : n - k + 1 + j]
    if int(out.max(initial=0)) > MAX_KEY:
        raise ConfigurationError("packed k-mer exceeded the 32-bit key space")
    return out.astype(np.uint32)


def kmer_to_string(kmer: int, k: int) -> str:
    """Decode a packed k-mer key back to its base string."""
    if not 1 <= k <= 15:
        raise ConfigurationError(f"k must be in [1, 15], got {k}")
    bases = "ACGT"
    out = []
    for shift in range(2 * (k - 1), -2, -2):
        out.append(bases[(kmer >> shift) & 3])
    return "".join(out)


def pcie_amplification(sequence_length: int, k: int) -> float:
    """Effective PCIe rate multiplier of on-device k-mer generation.

    Transferring O(n) sequence bytes yields k·(n−k+1) bytes of keys —
    "the effective transfer rate over the PCIe bus is artificially
    increased by a factor of approximately k" (§IV-B).
    """
    if sequence_length < k:
        raise ConfigurationError("sequence shorter than k")
    # the paper counts raw k-byte substrings: k·(n−k+1) bytes generated
    # from n transferred bytes ⇒ amplification ≈ k
    generated = k * (sequence_length - k + 1)
    transferred = sequence_length
    return generated / transferred
