"""Bag-of-words workload (the paper's NLP motivation [1]).

Sparse text features hash naturally: token → 32-bit key via the library's
own mixers, multiplicities follow a Zipf-like law — the workload the
Fig. 8 experiment models synthetically.  Used by the word-count example.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..hashing.mixers import fmix32

__all__ = ["tokenize", "token_keys", "synthetic_corpus", "bag_of_words"]

# a compact wordlist for synthetic corpora (no file I/O dependencies)
_STEMS = (
    "data map hash key value gpu warp probe slot table node link host "
    "device memory batch split merge query insert load store factor "
    "graph core thread block grid sync atomic race time rate scale"
).split()


def tokenize(text: str) -> list[str]:
    """Lower-case alphanumeric tokens."""
    out = []
    word = []
    for ch in text.lower():
        if ch.isalnum():
            word.append(ch)
        elif word:
            out.append("".join(word))
            word = []
    if word:
        out.append("".join(word))
    return out


def token_keys(tokens: list[str]) -> np.ndarray:
    """Hash tokens to 32-bit table keys (FNV-1a folded through fmix32)."""
    keys = np.empty(len(tokens), dtype=np.uint32)
    for i, tok in enumerate(tokens):
        h = np.uint32(2166136261)
        for byte in tok.encode("utf-8"):
            h = np.uint32((int(h) ^ byte) * 16777619 & 0xFFFFFFFF)
        keys[i] = h
    # final avalanche so short tokens spread over the key space; clamp
    # into the legal range (top two values are reserved sentinels)
    mixed = fmix32(keys)
    return np.minimum(mixed, np.uint32(0xFFFFFFFD))


def synthetic_corpus(num_tokens: int, *, zipf_s: float = 1.2, seed: int = 0) -> list[str]:
    """A Zipf-distributed token stream over a compound-word vocabulary."""
    if num_tokens <= 0:
        raise ConfigurationError(f"num_tokens must be > 0, got {num_tokens}")
    if zipf_s <= 1.0:
        raise ConfigurationError(f"zipf_s must be > 1, got {zipf_s}")
    rng = np.random.default_rng(seed)
    vocab = [a + b for a in _STEMS for b in _STEMS]
    ranks = np.arange(1, len(vocab) + 1, dtype=np.float64)
    weights = ranks ** (-zipf_s)
    weights /= weights.sum()
    draws = rng.choice(len(vocab), size=num_tokens, p=weights)
    return [vocab[i] for i in draws]


def bag_of_words(tokens: list[str]) -> tuple[np.ndarray, np.ndarray, dict[int, str]]:
    """Token stream → (keys, counts, key→token legend).

    Keys are the hashed tokens; counts are per-key multiplicities —
    ready for a multi-value or counting hash-table build.
    """
    keys = token_keys(tokens)
    uniq, counts = np.unique(keys, return_counts=True)
    legend: dict[int, str] = {}
    for tok, key in zip(tokens, keys):
        legend.setdefault(int(key), tok)
    return uniq, counts.astype(np.uint32), legend
