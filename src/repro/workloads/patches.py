"""Windowed image-patch extraction (paper §IV-B's second example).

Alongside k-mers, the paper lists "windowed patch extraction from
images" as a workload whose keys are generated on-device from much
smaller transferred data, amplifying the effective PCIe rate.  We
extract all (H−p+1)·(W−p+1) overlapping p×p patches of an 8-bit image
and hash each to a 32-bit table key — the building block of
patch-duplicate detection and LSH-style nearest-neighbour pipelines [3].
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..hashing.mixers import fmix32

__all__ = ["random_image", "extract_patches", "patch_keys", "patch_amplification"]


def random_image(height: int, width: int, *, seed: int = 0, noise: int = 0) -> np.ndarray:
    """A random 8-bit grayscale image with blocky structure.

    Nearest-neighbour-upsampled low-frequency content produces genuinely
    repeated patches (the deduplication signal the hash-table pipeline
    looks for); ``noise > 0`` perturbs pixels and makes repeats rarer.
    """
    if height < 1 or width < 1:
        raise ConfigurationError("image dimensions must be positive")
    if noise < 0 or noise > 255:
        raise ConfigurationError("noise must be in [0, 255]")
    rng = np.random.default_rng(seed)
    coarse = rng.integers(
        0, 32, size=(max(height // 8, 1) + 1, max(width // 8, 1) + 1)
    )
    # upsample: blocks of equal pixels => aligned patches repeat whenever
    # two coarse cells draw the same (small-alphabet) value pattern
    img = np.kron(coarse, np.ones((8, 8), dtype=np.int64))[:height, :width]
    if noise:
        img = img + rng.integers(0, noise + 1, size=(height, width))
    return np.clip(img * 8, 0, 255).astype(np.uint8)


def extract_patches(image: np.ndarray, p: int) -> np.ndarray:
    """All overlapping p×p patches, shape ((H−p+1)·(W−p+1), p, p).

    Returned as a *view* via stride tricks — zero copies, exactly how a
    GPU kernel would index the source image directly.
    """
    img = np.asarray(image)
    if img.ndim != 2:
        raise ConfigurationError(f"image must be 2-D, got shape {img.shape}")
    h, w = img.shape
    if not 1 <= p <= min(h, w):
        raise ConfigurationError(f"patch size {p} out of range for {h}x{w} image")
    windows = np.lib.stride_tricks.sliding_window_view(img, (p, p))
    return windows.reshape(-1, p, p)


def patch_keys(image: np.ndarray, p: int, *, seed: int = 0) -> np.ndarray:
    """Hash every p×p patch to a 32-bit table key.

    A per-position salted FNV-style fold of the patch bytes, finished
    with :func:`fmix32`; identical patches always collide (by design —
    that *is* the deduplication signal), distinct patches almost never
    do for realistic image sizes.
    """
    patches = extract_patches(image, p)
    n = patches.shape[0]
    flat = patches.reshape(n, p * p).astype(np.uint64)
    rng = np.random.default_rng(seed + 0x9A7C)
    salts = rng.integers(1, 1 << 32, size=p * p, dtype=np.uint64)
    mixed = (flat * salts[None, :]).sum(axis=1) & np.uint64(0xFFFFFFFF)
    keys = fmix32(mixed.astype(np.uint32))
    # clamp away the two reserved sentinel keys
    return np.minimum(keys, np.uint32(0xFFFFFFFD))


def patch_amplification(height: int, width: int, p: int) -> float:
    """Bytes of generated patch data per byte of transferred image."""
    if not 1 <= p <= min(height, width):
        raise ConfigurationError(f"patch size {p} out of range")
    generated = (height - p + 1) * (width - p + 1) * p * p
    return generated / (height * width)
