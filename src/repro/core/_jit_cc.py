"""C toolchain provider for the ``kernels="compiled"`` backend.

When numba is not installed but a host C compiler is, this module gives
``kernels="compiled"`` a real compiled path instead of a fallback: the
scalar loops of :mod:`repro.core.kernels_jit` are emitted as C (a
line-for-line transcription — same phase order, same counter charges,
same sorted-claim arbitration), built once into a shared library, and
launched through ctypes.  The ``.so`` is disk-cached under
``~/.cache/repro-jit`` keyed by a hash of the source text, so a process
pays the compile exactly once per source revision and workers attach to
the cached artifact.

ctypes releases the GIL around every call, so the thread engine gets
genuine shard parallelism out of this provider for free.

The exported functions return an int status (0 = ok, 1 = scratch
allocation failed) so OOM surfaces as a Python exception rather than a
crash.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

_SOURCE_TEMPLATE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define EMPTY_W 0xFFFFFFFFFFFFFFFFULL
#define TOMB_W  0xFFFFFFFFFFFFFFFEULL
/* sentinel words of the compact layout's sigma-permuted key plane
 * (sigma = fmix32; interpolated from Python so the two sides cannot
 * drift -- the source hash keys the disk cache, so a sigma change
 * rebuilds the library automatically) */
#define CEMPTY_W @CEMPTY@
#define CTOMB_W  @CTOMB@
#define ST_PENDING  0
#define ST_INSERTED 1
#define ST_UPDATED  2
#define ST_FAILED   3

/* soa is a layout mode flag: 0 = aos (packed uint64 array), 1 = soa
 * (two uint32 planes), 2 = compact (soa plane geometry, key plane
 * sigma-permuted -- same loads/stores, different sentinel words) */
static inline uint64_t slot_load(int64_t soa, const uint64_t *packed,
                                 const uint32_t *kp, const uint32_t *vp,
                                 int64_t idx) {
    if (soa)
        return ((uint64_t)kp[idx] << 32) | (uint64_t)vp[idx];
    return packed[idx];
}

static inline void slot_store(int64_t soa, uint64_t *packed,
                              uint32_t *kp, uint32_t *vp,
                              int64_t idx, uint64_t word) {
    if (soa) {
        kp[idx] = (uint32_t)(word >> 32);
        vp[idx] = (uint32_t)(word & 0xFFFFFFFFULL);
    } else {
        packed[idx] = word;
    }
}

static inline void slot_prefetch(int64_t soa, const uint64_t *packed,
                                 const uint32_t *kp, const uint32_t *vp,
                                 int64_t idx) {
#if defined(__GNUC__) || defined(__clang__)
    if (soa) {
        __builtin_prefetch(&kp[idx]);
        __builtin_prefetch(&vp[idx]);
    } else {
        __builtin_prefetch(&packed[idx]);
    }
#endif
}

/* prefetch distance for the probe passes: far enough to hide a cache
 * miss, near enough to stay inside the round's working set */
#define PF_DIST 12

/* uint32 wraparound of the affine window walk; identical to
 * (h1 + (p & 0xFFFFFFFF)*step + q*g) mod 2^32 mod capacity.  inner is
 * always a power of two (32/g), so p and q reduce to shift/mask; the
 * mod runs in 32-bit when capacity allows (it always does in practice). */
static inline int64_t window_start(uint32_t h1, uint32_t step, int64_t flat,
                                   int64_t inner, int ish,
                                   int64_t g, int64_t capacity) {
    int64_t p, q;
    if (ish >= 0) {
        p = flat >> ish;
        q = flat & (inner - 1);
    } else {
        p = flat / inner;
        q = flat - p * inner;
    }
    uint32_t h = h1 + (uint32_t)p * step + (uint32_t)(q * g);
    if (capacity <= 0xFFFFFFFFLL)
        return (int64_t)(h % (uint32_t)capacity);
    return (int64_t)((uint64_t)h % (uint64_t)capacity);
}

static inline int inner_shift(int64_t inner) {
    if (inner <= 0 || (inner & (inner - 1)) != 0)
        return -1;
    int s = 0;
    while ((inner >> s) > 1) s++;
    return s;
}

static int cmp_i64(const void *a, const void *b) {
    int64_t x = *(const int64_t *)a, y = *(const int64_t *)b;
    return (x > y) - (x < y);
}

/* The ring keeps pending items in ascending submission order (refills
 * append ascending indices, compaction preserves order), so the lexsort
 * group leader of the vectorized claim arbitration -- lowest submission
 * index per claimed slot -- is simply the FIRST claimant seen in ring
 * order.  Its store makes the slot non-vacant, which is exactly the
 * CAS-failure signal every later claimant of that slot observes: the
 * vacancy re-check doubles as the arbitration, no sort needed.  Same
 * winners, same counter charges. */
int repro_insert(int64_t soa, uint64_t *packed, uint32_t *kp, uint32_t *vp,
                 int64_t capacity, int64_t g, int64_t inner,
                 int64_t max_windows, int64_t wave, int64_t spw,
                 const uint32_t *h1, const uint32_t *step,
                 const uint32_t *keys, const uint64_t *pairs,
                 uint8_t *status, int64_t *probes, int64_t *counters) {
    const uint64_t EW = soa == 2 ? CEMPTY_W : EMPTY_W;
    const uint64_t TW = soa == 2 ? CTOMB_W : TOMB_W;
    int64_t n = counters[5];  /* n smuggled in; restored before return */
    int64_t ring_cap = n < wave ? n : wave;
    if (ring_cap < 1) ring_cap = 1;
    int64_t *scratch = malloc((size_t)(ring_cap * 6 + n * 2)
                              * sizeof(int64_t) + (size_t)(ring_cap * 2));
    if (!scratch) return 1;
    int64_t *ring     = scratch;
    int64_t *spare    = ring + ring_cap;
    int64_t *m_target = spare + ring_cap;
    int64_t *m_vac    = m_target + ring_cap;
    int64_t *m_start  = m_vac + ring_cap;
    int64_t *utarg    = m_start + ring_cap;
    int64_t *win_idx  = utarg + ring_cap;
    int64_t *first_vac = win_idx + n;
    uint8_t *m_match  = (uint8_t *)(first_vac + n);
    uint8_t *m_empty  = m_match + ring_cap;
    for (int64_t i = 0; i < n; i++) { win_idx[i] = 0; first_vac[i] = -1; }
    const int ish = inner_shift(inner);
    int64_t load_s = 0, store_s = 0, att = 0, succ = 0, warp = 0;
    int64_t count = 0, cursor = 0;
    while (count > 0 || cursor < n) {
        if (cursor < n && count < wave) {
            int64_t take = wave - count;
            if (take > n - cursor) take = n - cursor;
            for (int64_t t = 0; t < take; t++) ring[count + t] = cursor + t;
            count += take;
            cursor += take;
        }
        int64_t m = count;
        load_s += m * spw;
        warp += 2 * m;
        /* phase 1 -- snapshot reads before any write of this round:
         * pass A computes every window start (pure arithmetic), pass B
         * probes the table with PF_DIST-deep prefetch to hide misses */
        for (int64_t j = 0; j < m; j++) {
            int64_t i = ring[j];
            probes[i] += 1;
            m_start[j] = window_start(h1[i], step[i], win_idx[i],
                                      inner, ish, g, capacity);
        }
        for (int64_t j = 0; j < m; j++) {
            if (j + PF_DIST < m)
                slot_prefetch(soa, packed, kp, vp, m_start[j + PF_DIST]);
            int64_t i = ring[j];
            uint64_t key_w = (uint64_t)keys[i];
            int hasm = 0, hase = 0;
            int64_t mt = -1, vs = -1;
            int64_t s = m_start[j];
            for (int64_t lane = 0; lane < g; lane++) {
                uint64_t w = slot_load(soa, packed, kp, vp, s);
                if (w == EW) {
                    hase = 1;
                    if (vs < 0) vs = s;
                } else if (w == TW) {
                    if (vs < 0) vs = s;
                } else if (!hasm && (w >> 32) == key_w) {
                    hasm = 1;
                    mt = s;
                }
                s += 1;
                if (s >= capacity) s -= capacity;
            }
            m_match[j] = (uint8_t)hasm;
            m_empty[j] = (uint8_t)hase;
            m_target[j] = mt;
            m_vac[j] = vs;
        }
        /* phase 2 -- update path: submission order, last writer wins;
         * one store sector per distinct slot written (targets are hot
         * in cache from phase 1, so no prefetch needed here) */
        int64_t nupd = 0;
        for (int64_t j = 0; j < m; j++) {
            if (m_match[j]) {
                int64_t i = ring[j];
                slot_store(soa, packed, kp, vp, m_target[j], pairs[i]);
                utarg[nupd++] = m_target[j];
                status[i] = ST_UPDATED;
            }
        }
        if (nupd > 0) {
            att += nupd;
            succ += nupd;
            qsort(utarg, (size_t)nupd, sizeof(int64_t), cmp_i64);
            int64_t uniq = 1;
            for (int64_t t = 1; t < nupd; t++)
                if (utarg[t] != utarg[t - 1]) uniq++;
            store_s += uniq;
        }
        /* phase 2b -- remember the walk's first vacant slot */
        for (int64_t j = 0; j < m; j++) {
            if (!m_match[j] && m_vac[j] >= 0) {
                int64_t i = ring[j];
                if (first_vac[i] < 0) first_vac[i] = m_vac[j];
            }
        }
        /* phase 3 -- claims: first claimant in ring order leads its
         * slot; vacancy re-checked against the post-update table (the
         * winner's store IS the arbitration later claimants lose to) */
        for (int64_t j = 0; j < m; j++) {
            if (j + PF_DIST < m && !m_match[j + PF_DIST]) {
                int64_t tv2 = first_vac[ring[j + PF_DIST]];
                if (tv2 >= 0)
                    slot_prefetch(soa, packed, kp, vp, tv2);
            }
            if (m_match[j]) continue;
            int64_t i = ring[j];
            if (m_empty[j] || win_idx[i] + 1 >= max_windows) {
                int64_t tv = first_vac[i];
                if (tv < 0) {
                    status[i] = ST_FAILED;
                    continue;
                }
                att += 1;
                uint64_t w = slot_load(soa, packed, kp, vp, tv);
                if (w == EW || w == TW) {
                    slot_store(soa, packed, kp, vp, tv, pairs[i]);
                    status[i] = ST_INSERTED;
                    succ += 1;
                    store_s += 1;
                } else {
                    /* loser: CAS failed or outvoted -- restart the walk */
                    first_vac[i] = -1;
                    win_idx[i] = 0;
                    load_s += spw;
                }
            } else {
                win_idx[i] += 1;
            }
        }
        int64_t newc = 0;
        for (int64_t j = 0; j < m; j++) {
            int64_t i = ring[j];
            if (status[i] == ST_PENDING) spare[newc++] = i;
        }
        int64_t *tmp = ring; ring = spare; spare = tmp;
        count = newc;
    }
    counters[0] += load_s;
    counters[1] += store_s;
    counters[2] += att;
    counters[3] += succ;
    counters[4] += warp;
    counters[5] = 0;
    free(scratch);
    return 0;
}

int repro_query(int64_t soa, uint64_t *packed, uint32_t *kp, uint32_t *vp,
                int64_t capacity, int64_t g, int64_t inner,
                int64_t max_windows, int64_t spw,
                const uint32_t *h1, const uint32_t *step,
                const uint32_t *keys, uint32_t *values, uint8_t *found,
                int64_t *probes, int64_t *counters) {
    const uint64_t EW = soa == 2 ? CEMPTY_W : EMPTY_W;
    int64_t n = counters[5];
    int64_t cap = n > 0 ? n : 1;
    int64_t *scratch = malloc((size_t)(cap * 4) * sizeof(int64_t));
    if (!scratch) return 1;
    int64_t *ring = scratch;
    int64_t *spare = ring + cap;
    int64_t *win_idx = spare + cap;
    int64_t *m_start = win_idx + cap;
    for (int64_t i = 0; i < n; i++) { ring[i] = i; win_idx[i] = 0; }
    const int ish = inner_shift(inner);
    int64_t load_s = 0, warp = 0;
    int64_t count = n;
    while (count > 0) {
        int64_t m = count;
        load_s += m * spw;
        warp += 2 * m;
        int64_t newc = 0;
        for (int64_t j = 0; j < m; j++) {
            int64_t i = ring[j];
            probes[i] += 1;
            m_start[j] = window_start(h1[i], step[i], win_idx[i],
                                      inner, ish, g, capacity);
        }
        for (int64_t j = 0; j < m; j++) {
            if (j + PF_DIST < m)
                slot_prefetch(soa, packed, kp, vp, m_start[j + PF_DIST]);
            int64_t i = ring[j];
            uint64_t key_w = (uint64_t)keys[i];
            int hasm = 0, hase = 0;
            uint32_t val = 0;
            int64_t s = m_start[j];
            for (int64_t lane = 0; lane < g; lane++) {
                uint64_t w = slot_load(soa, packed, kp, vp, s);
                if (w == EW) {
                    hase = 1;
                } else if (!hasm && (w >> 32) == key_w) {
                    hasm = 1;
                    val = (uint32_t)(w & 0xFFFFFFFFULL);
                }
                s += 1;
                if (s >= capacity) s -= capacity;
            }
            if (hasm) {
                values[i] = val;
                found[i] = 1;
            } else if (!hase) {
                win_idx[i] += 1;
                if (win_idx[i] < max_windows) spare[newc++] = i;
            }
        }
        int64_t *tmp = ring; ring = spare; spare = tmp;
        count = newc;
    }
    counters[0] += load_s;
    counters[4] += warp;
    counters[5] = 0;
    free(scratch);
    return 0;
}

int repro_erase(int64_t soa, uint64_t *packed, uint32_t *kp, uint32_t *vp,
                int64_t capacity, int64_t g, int64_t inner,
                int64_t max_windows, int64_t spw,
                const uint32_t *h1, const uint32_t *step,
                const uint32_t *keys, uint8_t *erased,
                int64_t *probes, int64_t *counters) {
    const uint64_t EW = soa == 2 ? CEMPTY_W : EMPTY_W;
    const uint64_t TW = soa == 2 ? CTOMB_W : TOMB_W;
    int64_t n = counters[5];
    int64_t cap = n > 0 ? n : 1;
    int64_t *scratch = malloc((size_t)(cap * 4 + cap * g) * sizeof(int64_t)
                              + (size_t)cap);
    if (!scratch) return 1;
    int64_t *ring = scratch;
    int64_t *spare = ring + cap;
    int64_t *win_idx = spare + cap;
    int64_t *m_start = win_idx + cap;
    int64_t *targ = m_start + cap;
    uint8_t *m_empty = (uint8_t *)(targ + cap * g);
    for (int64_t i = 0; i < n; i++) { ring[i] = i; win_idx[i] = 0; }
    const int ish = inner_shift(inner);
    int64_t load_s = 0, store_s = 0, att = 0, succ = 0, warp = 0;
    int64_t count = n;
    while (count > 0) {
        int64_t m = count;
        load_s += m * spw;
        warp += 2 * m;
        /* snapshot reads first: duplicate keys sharing a window must
         * all observe the pre-tombstone state of this round */
        int64_t ntarg = 0, nhit = 0;
        for (int64_t j = 0; j < m; j++) {
            int64_t i = ring[j];
            probes[i] += 1;
            m_start[j] = window_start(h1[i], step[i], win_idx[i],
                                      inner, ish, g, capacity);
        }
        for (int64_t j = 0; j < m; j++) {
            if (j + PF_DIST < m)
                slot_prefetch(soa, packed, kp, vp, m_start[j + PF_DIST]);
            int64_t i = ring[j];
            uint64_t key_w = (uint64_t)keys[i];
            int hit = 0, hase = 0;
            int64_t s = m_start[j];
            for (int64_t lane = 0; lane < g; lane++) {
                uint64_t w = slot_load(soa, packed, kp, vp, s);
                if (w == EW) {
                    hase = 1;
                } else if ((w >> 32) == key_w) {
                    hit = 1;
                    targ[ntarg++] = s;
                }
                s += 1;
                if (s >= capacity) s -= capacity;
            }
            if (hit) {
                nhit += 1;
                erased[i] = 1;
            }
            m_empty[j] = (uint8_t)hase;
        }
        if (ntarg > 0) {
            /* tombstone each distinct slot once: a matched slot held a
             * real key in this round's snapshot, so reading TOMB here
             * means another lane of this pass already wrote it -- the
             * read doubles as the np.unique dedup of the fast path */
            int64_t uniq = 0;
            for (int64_t t = 0; t < ntarg; t++) {
                uint64_t w = slot_load(soa, packed, kp, vp, targ[t]);
                if (w != TW) {
                    slot_store(soa, packed, kp, vp, targ[t], TW);
                    uniq++;
                }
            }
            att += nhit;
            succ += nhit;
            store_s += uniq;
        }
        int64_t newc = 0;
        for (int64_t j = 0; j < m; j++) {
            int64_t i = ring[j];
            if (m_empty[j]) continue;
            win_idx[i] += 1;
            if (win_idx[i] < max_windows) spare[newc++] = i;
        }
        int64_t *tmp = ring; ring = spare; spare = tmp;
        count = newc;
    }
    counters[0] += load_s;
    counters[1] += store_s;
    counters[2] += att;
    counters[3] += succ;
    counters[4] += warp;
    counters[5] = 0;
    free(scratch);
    return 0;
}

/* primitives/scatter.py fused histogram + stable scatter: computes the
 * stable bin-order permutation (src), per-bin counts, and exclusive
 * offsets in one pass -- identical to a stable argsort by bin id */
int repro_counting_scatter(const int64_t *bins, int64_t n, int64_t num_bins,
                           int64_t *src, int64_t *counts, int64_t *offsets) {
    int64_t *cursor = malloc((size_t)num_bins * sizeof(int64_t));
    if (!cursor) return 1;
    memset(counts, 0, (size_t)num_bins * sizeof(int64_t));
    for (int64_t i = 0; i < n; i++) counts[bins[i]] += 1;
    int64_t acc = 0;
    for (int64_t b = 0; b < num_bins; b++) {
        offsets[b] = acc;
        cursor[b] = acc;
        acc += counts[b];
    }
    for (int64_t i = 0; i < n; i++)
        src[cursor[bins[i]]++] = i;
    free(cursor);
    return 0;
}

/* multigpu/alltoall.py reverse-gather fill: expands per-partition
 * (base, count) ranges into the flat gather indices one source GPU's
 * answers come back through -- the concatenation of m arange runs */
int repro_reverse_gather(const int64_t *counts, const int64_t *bases,
                         int64_t num_parts, int64_t *out) {
    int64_t pos = 0;
    for (int64_t p = 0; p < num_parts; p++) {
        int64_t base = bases[p];
        int64_t count = counts[p];
        for (int64_t c = 0; c < count; c++)
            out[pos++] = base + c;
    }
    return 0;
}
"""

def _sigma_sentinel_words() -> tuple[int, int]:
    """EMPTY/TOMBSTONE words as the compact key plane stores them."""
    from ..hashing.mixers import fmix32

    hi = int(fmix32(np.asarray([0xFFFFFFFF], dtype=np.uint32))[0])
    return (hi << 32) | 0xFFFFFFFF, (hi << 32) | 0xFFFFFFFE


_CEMPTY, _CTOMB = _sigma_sentinel_words()
_SOURCE = _SOURCE_TEMPLATE.replace(
    "@CEMPTY@", f"0x{_CEMPTY:016X}ULL"
).replace("@CTOMB@", f"0x{_CTOMB:016X}ULL")

_CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c11")

_U64P = np.ctypeslib.ndpointer(np.uint64, flags="C_CONTIGUOUS")
_U32P = np.ctypeslib.ndpointer(np.uint32, flags="C_CONTIGUOUS")
_U8P = np.ctypeslib.ndpointer(np.uint8, flags="C_CONTIGUOUS")
_I64P = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
_I64 = ctypes.c_int64

_LIB = None
_LIB_FAILED = False


def _compiler() -> str | None:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def compiler_available() -> bool:
    """True when a C toolchain can (or already did) build the library."""
    if _LIB is not None:
        return True
    if _LIB_FAILED:
        return False
    if _cached_so().exists():
        return True
    return _compiler() is not None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_JIT_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-jit"


def _cached_so() -> Path:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    return _cache_dir() / f"repro_kernels_{digest}.so"


def _build_so(target: Path) -> None:
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler found for the cc JIT provider")
    target.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=target.parent) as tmp:
        csrc = Path(tmp) / "repro_kernels.c"
        csrc.write_text(_SOURCE)
        tmp_so = Path(tmp) / "repro_kernels.so"
        subprocess.run(
            [cc, *_CFLAGS, str(csrc), "-o", str(tmp_so)],
            check=True,
            capture_output=True,
        )
        os.replace(tmp_so, target)  # atomic: concurrent workers race safely


def _load_library():
    global _LIB, _LIB_FAILED
    if _LIB is not None:
        return _LIB
    if _LIB_FAILED:
        raise RuntimeError("cc JIT provider previously failed to build")
    so_path = _cached_so()
    try:
        if not so_path.exists():
            _build_so(so_path)
        lib = ctypes.CDLL(str(so_path))
    except Exception:
        _LIB_FAILED = True
        raise
    common = [_I64, _U64P, _U32P, _U32P, _I64, _I64, _I64, _I64]
    lib.repro_insert.argtypes = common + [
        _I64, _I64, _U32P, _U32P, _U32P, _U64P, _U8P, _I64P, _I64P,
    ]
    lib.repro_query.argtypes = common + [
        _I64, _U32P, _U32P, _U32P, _U32P, _U8P, _I64P, _I64P,
    ]
    lib.repro_erase.argtypes = common + [
        _I64, _U32P, _U32P, _U32P, _U8P, _I64P, _I64P,
    ]
    lib.repro_counting_scatter.argtypes = [
        _I64P, _I64, _I64, _I64P, _I64P, _I64P,
    ]
    lib.repro_reverse_gather.argtypes = [_I64P, _I64P, _I64, _I64P]
    for fn in (
        lib.repro_insert,
        lib.repro_query,
        lib.repro_erase,
        lib.repro_counting_scatter,
        lib.repro_reverse_gather,
    ):
        fn.restype = ctypes.c_int
    _LIB = lib
    return lib


def _check(status: int) -> None:
    if status != 0:
        raise MemoryError("cc JIT kernel could not allocate scratch memory")


def build_loops(layout: str) -> dict:
    """An op table with the same call signature as the numba/interp loops.

    ``n`` rides in ``counters[5]`` (the wrappers allocate 5 live counter
    cells; the cc table asks for a sixth) to keep the ctypes prototypes
    uniform; the C side zeroes it before returning.
    """
    lib = _load_library()
    soa = {"aos": 0, "soa": 1, "compact": 2}[layout]
    # found/erased arrive as np.bool_ arrays; ctypes sees them as uint8
    u8 = lambda a: a.view(np.uint8)  # noqa: E731

    def insert_loop(
        packed, kp, vp, capacity, g, inner, max_windows, wave, spw,
        h1, step, keys, pairs, status, probes, counters,
    ):
        c6 = np.zeros(6, np.int64)
        c6[:5] = counters
        c6[5] = keys.shape[0]
        _check(lib.repro_insert(
            soa, packed, kp, vp, capacity, g, inner, max_windows, wave,
            spw, h1, step, keys, pairs, status, probes, c6,
        ))
        counters[:] = c6[:5]

    def query_loop(
        packed, kp, vp, capacity, g, inner, max_windows, spw,
        h1, step, keys, values, found, probes, counters,
    ):
        c6 = np.zeros(6, np.int64)
        c6[:5] = counters
        c6[5] = keys.shape[0]
        _check(lib.repro_query(
            soa, packed, kp, vp, capacity, g, inner, max_windows,
            spw, h1, step, keys, values, u8(found), probes, c6,
        ))
        counters[:] = c6[:5]

    def erase_loop(
        packed, kp, vp, capacity, g, inner, max_windows, spw,
        h1, step, keys, erased, probes, counters,
    ):
        c6 = np.zeros(6, np.int64)
        c6[:5] = counters
        c6[5] = keys.shape[0]
        _check(lib.repro_erase(
            soa, packed, kp, vp, capacity, g, inner, max_windows,
            spw, h1, step, keys, u8(erased), probes, c6,
        ))
        counters[:] = c6[:5]

    return {"insert": insert_loop, "query": query_loop, "erase": erase_loop}


def scatter_permutation_compiled(bins, n, num_bins, src, counts,
                                 offsets) -> None:
    """Fused histogram + stable bin-order permutation.

    Fills ``src`` (the stable argsort of ``bins``), ``counts``, and
    exclusive ``offsets`` in one C pass; the caller gathers values with
    ``out = arr[src]``, which keeps the path dtype-generic.
    """
    lib = _load_library()
    _check(lib.repro_counting_scatter(bins, n, num_bins, src, counts, offsets))


def reverse_gather_compiled(counts, bases, num_parts, out) -> None:
    """Expand per-partition (base, count) ranges into gather indices."""
    lib = _load_library()
    _check(lib.repro_reverse_gather(counts, bases, num_parts, out))
