"""Slot-content predicates shared by all kernels.

A slot is one packed 64-bit AoS word.  Two bit patterns are reserved:
``EMPTY_SLOT`` (never occupied) and ``TOMBSTONE_SLOT`` (deleted).  A slot
is *vacant* — insertable — when it holds either sentinel, but only an
EMPTY slot terminates a query probe: a tombstone means the key may still
live further along the probe sequence.
"""

from __future__ import annotations

import numpy as np

from ..constants import EMPTY_SLOT, KEY_BITS, TOMBSTONE_SLOT

__all__ = [
    "is_empty",
    "is_tombstone",
    "is_vacant",
    "is_live",
    "slot_keys",
    "slot_values",
    "matches_key",
]

_U64 = np.uint64


def is_empty(slots: np.ndarray) -> np.ndarray:
    """True where the slot was never occupied."""
    return np.asarray(slots, dtype=_U64) == EMPTY_SLOT


def is_tombstone(slots: np.ndarray) -> np.ndarray:
    """True where the slot held a pair that was deleted."""
    return np.asarray(slots, dtype=_U64) == TOMBSTONE_SLOT


def is_vacant(slots: np.ndarray) -> np.ndarray:
    """True where an insert may claim the slot (empty or tombstone)."""
    arr = np.asarray(slots, dtype=_U64)
    return (arr == EMPTY_SLOT) | (arr == TOMBSTONE_SLOT)


def is_live(slots: np.ndarray) -> np.ndarray:
    """True where the slot holds a stored pair."""
    return ~is_vacant(slots)


def slot_keys(slots: np.ndarray) -> np.ndarray:
    """Key halves of packed slots (sentinels decode to reserved keys)."""
    return (np.asarray(slots, dtype=_U64) >> _U64(KEY_BITS)).astype(np.uint32)


def slot_values(slots: np.ndarray) -> np.ndarray:
    """Value halves of packed slots."""
    return (np.asarray(slots, dtype=_U64) & _U64(0xFFFFFFFF)).astype(np.uint32)


def matches_key(slots: np.ndarray, key) -> np.ndarray:
    """True where a *live* slot stores ``key``.

    Sentinels can never match because legal keys exclude the two reserved
    top values (see :data:`repro.constants.MAX_KEY`).
    """
    return is_live(slots) & (slot_keys(slots) == np.uint32(key))
