"""The WarpDrive hash table — single-GPU public API.

This is the user-facing object implementing the paper's core
contribution: an open-addressing hash map probed by coalesced groups of
``|g|`` threads with the hybrid linear-window/chaotic-hop scheme of
Fig. 3.  Bulk operations run the vectorized kernels by default; the
``kernels="ref"`` path runs the faithful generator kernels under a
chosen interleaving scheduler (slow; for verification).  The old
``executor=`` spelling still works with a deprecation warning (see
:mod:`repro.options` for the unified option set).

Example
-------
>>> import numpy as np
>>> from repro.core import WarpDriveHashTable
>>> table = WarpDriveHashTable.for_load_factor(1000, 0.9, group_size=4)
>>> keys = np.arange(1000, dtype=np.uint32)
>>> report = table.insert(keys, keys * 2)
>>> values, found = table.query(keys)
>>> bool(found.all()), int(values[21])
(True, 42)
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace

import numpy as np

from ..constants import EMPTY_SLOT
from ..errors import ConfigurationError, InsertionError
from ..memory.layout import unpack_pairs
from ..obs import runtime as obs
from ..options import UNSET, reject_unknown, resolve_renamed
from ..simt.counters import TransactionCounter
from ..simt.device import Device
from ..simt.kernel import launch
from ..simt.scheduler import Scheduler, SequentialScheduler
from ..simt.warp import CoalescedGroup
from ..utils.validation import check_keys, check_same_length, check_values
from .bulk import STATUS, bulk_erase, bulk_insert, bulk_query
from .config import HashTableConfig
from .growth import GrowthPolicy
from .kernels_jit import (
    bulk_erase_compiled,
    bulk_insert_compiled,
    bulk_query_compiled,
    resolve_kernels,
    warm,
)
from .kernels_ref import erase_task, insert_task, query_task
from .probing import make_window_sequence
from .report import KernelReport
from .slots import is_vacant
from .store import make_store

__all__ = ["WarpDriveHashTable"]


class WarpDriveHashTable:
    """Fixed-capacity concurrent hash map with sub-warp probing.

    Parameters
    ----------
    capacity:
        Slot count ``c``.  Either pass this or a full ``config``.
    group_size:
        Coalesced-group width ``|g|``; the paper finds ``{2, 4, 8}``
        optimal at high load (Fig. 7).
    device:
        Optional simulated :class:`~repro.simt.device.Device`; when given,
        the slot array is allocated as VRAM (counted against the 16 GB of
        a P100) and all work is charged to the device's counter.
    config:
        Full :class:`~repro.core.config.HashTableConfig`; overrides the
        keyword shortcuts.
    engine:
        Name (or instance) of the :mod:`repro.exec` shard-execution
        backend this table will be driven under.  The table never
        instantiates the engine itself — the option only decides the
        storage: ``"process"`` (or any engine with
        ``requires_shared_slots``) backs the slot array with POSIX
        shared memory, same as ``shared=True``.
    probing:
        Window-walk policy — ``"window"`` (default), ``"double"``, or
        ``"linear"`` (:mod:`repro.core.probing`); consumed uniformly by
        the fast and ref kernels.
    layout:
        Slot storage policy — ``"aos"`` (default), ``"soa"``, or
        ``"compact"`` (quotienting sub-8-byte modelled records;
        :mod:`repro.core.store`).
    growth:
        Optional :class:`~repro.core.growth.GrowthPolicy`: the table
        grows (rehashing with the real bulk kernels) instead of raising
        :class:`~repro.errors.InsertionError` when an ingest would push
        the load past the policy's threshold.
    kernels:
        Default kernel backend for bulk operations *and* lifecycle
        rehash episodes — ``"fast"`` (default), ``"ref"``, or
        ``"compiled"``.  Per-call ``kernels=`` still overrides;
        :meth:`grow` replays live pairs through the compiled bulk insert
        when the default resolves to ``"compiled"`` (auto-fallback to
        ``"fast"`` without a JIT provider, as everywhere else).
    """

    def __init__(
        self,
        capacity: int | None = None,
        *,
        group_size: int = 4,
        p_max: int | None = None,
        config: HashTableConfig | None = None,
        device: Device | None = None,
        shared: bool = False,
        engine: object = None,
        probing: str = UNSET,
        layout: str = UNSET,
        growth: GrowthPolicy | None = UNSET,
        kernels: str = UNSET,
    ):
        if engine is not None:
            shared = shared or engine == "process" or bool(
                getattr(engine, "requires_shared_slots", False)
            )
        overrides = {}
        if probing is not UNSET:
            overrides["probing"] = probing
        if layout is not UNSET:
            overrides["layout"] = layout
        if growth is not UNSET:
            overrides["growth"] = growth
        if config is None:
            if capacity is None:
                raise ConfigurationError("pass either capacity or config")
            kwargs = {"capacity": capacity, "group_size": group_size}
            if p_max is not None:
                kwargs["p_max"] = p_max
            kwargs.update(overrides)
            config = HashTableConfig(**kwargs)
        else:
            if capacity is not None and capacity != config.capacity:
                raise ConfigurationError(
                    "capacity argument conflicts with config.capacity"
                )
            if overrides:
                config = _dc_replace(config, **overrides)
        if kernels is UNSET:
            kernels = "fast"
        if kernels not in ("fast", "ref", "compiled"):
            raise ConfigurationError(
                f"kernels must be 'fast', 'ref' or 'compiled', got {kernels!r}"
            )
        self.default_kernels = kernels
        self.config = config
        self.device = device
        self.counter = device.counter if device is not None else TransactionCounter()

        # the storage policy owns the slot memory: plain / VRAM / POSIX
        # shared memory (``shared=True`` lets the process backend mutate
        # the table zero-copy), packed or split layout, shadowed when a
        # sanitizer rides on the device — the table only ever sees the
        # packed view
        self._shared = bool(shared)
        self.store = make_store(
            config.capacity,
            layout=config.layout,
            device=device,
            shared=shared,
            sanitizer=device.sanitizer if device is not None else None,
        )

        self.seq = make_window_sequence(
            config.probing, config.family, config.group_size, config.p_max
        )
        self._size = 0
        self.rebuilds = 0
        self.grows = 0
        self.last_report: KernelReport | None = None
        self.last_rehash_report: KernelReport | None = None

    @property
    def slots(self):
        """The packed slot view (storage-policy controlled)."""
        return self.store.view

    # -- construction helpers -------------------------------------------

    @classmethod
    def for_load_factor(
        cls,
        num_pairs: int,
        load_factor: float,
        *,
        device: Device | None = None,
        **config_kwargs,
    ) -> "WarpDriveHashTable":
        """Size a table so ``num_pairs`` inserts reach ``load_factor``."""
        config = HashTableConfig.for_load_factor(
            num_pairs, load_factor, **config_kwargs
        )
        return cls(config=config, device=device)

    # -- basic properties -------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.config.capacity

    def __len__(self) -> int:
        """Number of live pairs currently stored."""
        return self._size

    @property
    def load_factor(self) -> float:
        """True load α = n/c."""
        return self._size / self.capacity

    def occupancy(self) -> float:
        """Measured fraction of non-vacant slots (cross-check for tests)."""
        return float(np.mean(~is_vacant(self.slots)))

    @property
    def table_bytes(self) -> int:
        """Modelled slot-array footprint — read off the live store.

        Identical to :attr:`HashTableConfig.table_bytes`; going through
        :attr:`SlotStore.nbytes` keeps the figure honest against the
        storage policy actually allocated (satellite of the compact
        layout: nothing downstream may assume 8 bytes per slot).
        """
        return self.store.nbytes

    # -- bulk operations --------------------------------------------------

    def insert(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        *,
        kernels: str = UNSET,
        scheduler: Scheduler | None = None,
        wave_size: int | None = None,
        **legacy,
    ) -> KernelReport:
        """Insert (or update) key-value pairs.

        ``kernels`` selects the kernel implementation — ``"fast"``
        (vectorized, default) or ``"ref"`` (faithful generator kernels
        under a scheduler).  Raises
        :class:`~repro.errors.InsertionError` if the probing scheme
        exhausts ``p_max`` windows and ``rebuild_on_failure`` is off (or
        rebuild attempts run out); otherwise transparently rebuilds with a
        translated hash family, as §II prescribes.
        """
        kernels = resolve_renamed(
            "WarpDriveHashTable", legacy,
            old="executor", new="kernels", value=kernels,
            default=self.default_kernels,
        )
        reject_unknown("WarpDriveHashTable.insert", legacy)
        k = check_keys(keys)
        v = check_values(values)
        check_same_length("keys", k, "values", v)
        # growth-policy tables resize *before* the kernel runs, so the
        # batch lands under the load ceiling (batch size is an upper
        # bound on new pairs — duplicates only leave headroom)
        self.ensure_capacity(k.shape[0])

        kernels = resolve_kernels(
            kernels, slots=self.slots, owner="WarpDriveHashTable.insert"
        )
        if kernels == "fast":
            report, status = bulk_insert(
                self.slots, self.seq, k, v, self.counter, wave_size=wave_size
            )
        elif kernels == "compiled":
            report, status = bulk_insert_compiled(
                self.slots, self.seq, k, v, self.counter, wave_size=wave_size
            )
        elif kernels == "ref":
            report, status = self._insert_ref(k, v, scheduler)
        else:
            raise ConfigurationError(f"unknown kernels {kernels!r}")
        return self._finish_insert(k, v, report, status, kernels)

    def _finish_insert(
        self,
        k: np.ndarray,
        v: np.ndarray,
        report: KernelReport,
        status: np.ndarray,
        kernels: str,
    ) -> KernelReport:
        """Post-kernel bookkeeping: size, last report, rebuild-on-failure."""
        self._size += int(np.sum(status == STATUS["inserted"]))
        self.last_report = report

        if report.failed:
            failed_mask = status == STATUS["failed"]
            if self.config.growth is not None:
                # a growth policy replaces the same-capacity rebuild: grow
                # past the threshold, then land the failed pairs in the
                # roomier table (the grow rehashed everything else)
                self.grow(
                    self.config.growth.next_capacity(
                        self.capacity, self._size + int(report.failed)
                    )
                )
                self.insert(k[failed_mask], v[failed_mask], kernels=kernels)
                return report
            if (
                not self.config.rebuild_on_failure
                or self.rebuilds >= self.config.max_rebuilds
            ):
                raise InsertionError(
                    f"{report.failed} pairs could not be placed after "
                    f"p_max={self.config.p_max} chaotic probes "
                    f"(load={self.load_factor:.3f}); rebuild budget exhausted"
                )
            self._rebuild_with(k[failed_mask], v[failed_mask], kernels=kernels)
        return report

    # -- execution-engine integration -------------------------------------

    def shm_descriptor(self):
        """Shared-memory descriptor of the slot table (None if not shared)."""
        return self.store.descriptor()

    def absorb_insert(
        self, keys: np.ndarray, values: np.ndarray, report: KernelReport,
        status: np.ndarray,
    ) -> KernelReport:
        """Account an insert kernel the execution engine ran on our slots.

        The engine runs kernels counter-less (workers may live in another
        process); charging here, in shard order, keeps counter totals
        bit-identical across serial/thread/process backends.
        """
        report.charge_to(self.counter)
        return self._finish_insert(keys, values, report, status, "fast")

    def absorb_query(self, report: KernelReport) -> KernelReport:
        report.charge_to(self.counter)
        self.last_report = report
        return report

    def absorb_erase(self, report: KernelReport) -> KernelReport:
        report.charge_to(self.counter)
        self._size -= report.store_sectors
        self.last_report = report
        return report

    def _ref_sanitizer(self):
        """The device's race sanitizer, if one is attached."""
        return self.device.sanitizer if self.device is not None else None

    def _insert_ref(
        self, k: np.ndarray, v: np.ndarray, scheduler: Scheduler | None
    ) -> tuple[KernelReport, np.ndarray]:
        sanitizer = self._ref_sanitizer()
        group = CoalescedGroup(
            self.config.group_size, self.counter, sanitizer=sanitizer
        )
        sched = scheduler or SequentialScheduler()

        def kernel(i: int):
            return insert_task(
                self.slots, self.seq, group, int(k[i]), int(v[i]), self.counter
            )

        results = launch(
            kernel, k.shape[0], scheduler=sched, counter=self.counter,
            observer=sanitizer,
        )
        status = np.array(
            [STATUS[s] for s, _ in results], dtype=np.uint8
        )
        probes = np.array([w for _, w in results], dtype=np.int64)
        report = KernelReport(
            op="insert",
            num_ops=k.shape[0],
            probe_windows=probes,
            group_size=self.config.group_size,
            failed=int(np.sum(status == STATUS["failed"])),
        )
        return report, status

    def query(
        self,
        keys: np.ndarray,
        *,
        default: int = 0,
        kernels: str = UNSET,
        scheduler: Scheduler | None = None,
        **legacy,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Retrieve values; returns (values, found-mask).

        Keys not present yield ``default`` with ``found == False``.
        """
        kernels = resolve_renamed(
            "WarpDriveHashTable", legacy,
            old="executor", new="kernels", value=kernels,
            default=self.default_kernels,
        )
        reject_unknown("WarpDriveHashTable.query", legacy)
        k = check_keys(keys)
        kernels = resolve_kernels(
            kernels, slots=self.slots, owner="WarpDriveHashTable.query"
        )
        if kernels == "fast":
            report, values, found = bulk_query(
                self.slots, self.seq, k, self.counter, default=default
            )
        elif kernels == "compiled":
            report, values, found = bulk_query_compiled(
                self.slots, self.seq, k, self.counter, default=default
            )
        elif kernels == "ref":
            sanitizer = self._ref_sanitizer()
            group = CoalescedGroup(
                self.config.group_size, self.counter, sanitizer=sanitizer
            )
            sched = scheduler or SequentialScheduler()

            def kernel(i: int):
                return query_task(
                    self.slots, self.seq, group, int(k[i]), self.counter
                )

            results = launch(
                kernel, k.shape[0], scheduler=sched, counter=self.counter,
                observer=sanitizer,
            )
            values = np.full(k.shape[0], default, dtype=np.uint32)
            found = np.zeros(k.shape[0], dtype=bool)
            probes = np.zeros(k.shape[0], dtype=np.int64)
            for i, (s, val, w) in enumerate(results):
                probes[i] = w
                if s == "found":
                    values[i] = val
                    found[i] = True
            report = KernelReport(
                op="query",
                num_ops=k.shape[0],
                probe_windows=probes,
                group_size=self.config.group_size,
                failed=int(np.sum(~found)),
            )
        else:
            raise ConfigurationError(f"unknown kernels {kernels!r}")
        self.last_report = report
        return values, found

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership mask."""
        _, found = self.query(keys)
        return found

    def get(self, key: int, default: int | None = None) -> int | None:
        """Scalar lookup convenience."""
        values, found = self.query(np.asarray([key], dtype=np.uint32))
        if not found[0]:
            return default
        return int(values[0])

    def erase(
        self,
        keys: np.ndarray,
        *,
        kernels: str = UNSET,
        scheduler: Scheduler | None = None,
        **legacy,
    ) -> np.ndarray:
        """Delete keys (tombstones); returns an erased-mask.

        Deletions form their own barrier-delimited phase, per §IV-A: "the
        described pattern ... cannot be used in combination with
        deletions.  Nevertheless, insertions and deletions can be safely
        interleaved using global barriers."
        """
        kernels = resolve_renamed(
            "WarpDriveHashTable", legacy,
            old="executor", new="kernels", value=kernels,
            default=self.default_kernels,
        )
        reject_unknown("WarpDriveHashTable.erase", legacy)
        k = check_keys(keys)
        kernels = resolve_kernels(
            kernels, slots=self.slots, owner="WarpDriveHashTable.erase"
        )
        if kernels == "fast":
            report, erased = bulk_erase(self.slots, self.seq, k, self.counter)
            # every tombstone write is one store sector in the erase report
            self._size -= report.store_sectors
        elif kernels == "compiled":
            report, erased = bulk_erase_compiled(
                self.slots, self.seq, k, self.counter
            )
            self._size -= report.store_sectors
        elif kernels == "ref":
            sanitizer = self._ref_sanitizer()
            group = CoalescedGroup(
                self.config.group_size, self.counter, sanitizer=sanitizer
            )
            sched = scheduler or SequentialScheduler()

            def kernel(i: int):
                return erase_task(self.slots, self.seq, group, int(k[i]), self.counter)

            cas_before = self.counter.cas_successes
            results = launch(
                kernel, k.shape[0], scheduler=sched, counter=self.counter,
                observer=sanitizer,
            )
            erased = np.array([s == "erased" for s, _ in results], dtype=bool)
            report = KernelReport(
                op="erase",
                num_ops=k.shape[0],
                probe_windows=np.array([w for _, w in results], dtype=np.int64),
                group_size=self.config.group_size,
                failed=int(np.sum(~erased)),
            )
            # each successful tombstone CAS removed one live slot
            self._size -= self.counter.cas_successes - cas_before
        else:
            raise ConfigurationError(f"unknown kernels {kernels!r}")
        self.last_report = report
        return erased

    # -- maintenance -------------------------------------------------------

    def export(self) -> tuple[np.ndarray, np.ndarray]:
        """All stored (keys, values), in unspecified order."""
        live = self.slots[~is_vacant(self.slots)]
        return unpack_pairs(live)

    def clear(self) -> None:
        self.store.fill(EMPTY_SLOT)
        self._size = 0

    @property
    def growth(self) -> GrowthPolicy | None:
        """The table's growth policy (None = fixed capacity)."""
        return self.config.growth

    def ensure_capacity(self, extra: int) -> KernelReport | None:
        """Grow ahead of ``extra`` incoming pairs if the policy demands.

        Returns the rehash :class:`KernelReport` when a grow happened,
        else None.  No-op without a growth policy.
        """
        policy = self.config.growth
        if policy is None:
            return None
        required = self._size + int(extra)
        if not policy.should_grow(self.capacity, required):
            return None
        return self.grow(policy.next_capacity(self.capacity, required))

    def grow(self, new_capacity: int) -> KernelReport | None:
        """Resize to ``new_capacity``, migrating live pairs by rehash.

        The migration runs the *real* bulk insert kernel against the new
        store, so its probe counts, CAS traffic, and store sectors are
        measured, charged to the device counter, and reported — tagged
        ``op="rehash"`` and kept in :attr:`last_rehash_report`.  The hash
        family is deliberately preserved: a grown table answers queries
        bit-identically to a fresh table of the new capacity (see
        ``HashTableConfig.grown``).  Returns the rehash report (None when
        the table was empty).
        """
        config = self.config.grown(new_capacity)  # validates new > old
        live_k, live_v = self.export()
        old_store = self.store
        with obs.span(
            "grow",
            "lifecycle",
            capacity_from=self.capacity,
            capacity_to=int(new_capacity),
            live=int(live_k.shape[0]),
        ) as sp:
            self.config = config
            self.seq = make_window_sequence(
                config.probing, config.family, config.group_size, config.p_max
            )
            self.store = make_store(
                config.capacity,
                layout=config.layout,
                device=self.device,
                shared=self._shared,
                sanitizer=self.device.sanitizer if self.device is not None else None,
            )
            self._size = 0
            report = None
            if live_k.shape[0]:
                # rehash episodes inherit the table's kernel backend:
                # compiled tables replay their live pairs through the
                # compiled bulk insert (warmed first, so compile time
                # stays inside a jit_compile span, not the rehash)
                kernels = resolve_kernels(
                    self.default_kernels,
                    slots=self.slots,
                    owner="WarpDriveHashTable.grow",
                )
                if kernels == "compiled":
                    warm(self.seq.name, self.config.layout)
                    report, status = bulk_insert_compiled(
                        self.slots, self.seq, live_k, live_v, self.counter
                    )
                else:
                    report, status = bulk_insert(
                        self.slots, self.seq, live_k, live_v, self.counter
                    )
                self._size = int(np.sum(status != STATUS["failed"]))
                if report.failed:  # pragma: no cover - load shrank, cannot fail
                    raise InsertionError(
                        f"{report.failed} live pairs failed to rehash into "
                        f"capacity {config.capacity}"
                    )
            self.grows += 1
            rehash = self._note_rehash(report, sp)
        old_store.free()
        return rehash

    def _note_rehash(self, report: KernelReport | None, span) -> KernelReport | None:
        """Record one lifecycle rehash: tag, expose, trace, and meter it."""
        if report is None:
            return None
        rehash = _dc_replace(report, op="rehash")
        self.last_rehash_report = rehash
        if span is not None:
            span.attrs["rehash_probe_windows"] = int(rehash.total_windows)
            span.attrs["rehash_cas_attempts"] = int(rehash.cas_attempts)
            span.attrs["rehash_store_sectors"] = int(rehash.store_sectors)
        if obs.enabled():
            obs.observe_kernel(rehash)
        return rehash

    def _rebuild_with(
        self, extra_keys: np.ndarray, extra_values: np.ndarray, *, kernels: str
    ) -> None:
        """Invalidate and reconstruct with a distinct hash function (§II)."""
        self.rebuilds += 1
        stored_k, stored_v = self.export()
        with obs.span(
            "rebuild",
            "lifecycle",
            attempt=self.rebuilds,
            capacity=self.capacity,
            live=int(stored_k.shape[0]),
            pending=int(np.asarray(extra_keys).shape[0]),
        ) as sp:
            self.config = self.config.rebuilt(self.rebuilds)
            self.seq = make_window_sequence(
                self.config.probing,
                self.config.family,
                self.config.group_size,
                self.config.p_max,
            )
            self.store.fill(EMPTY_SLOT)
            self._size = 0
            all_k = np.concatenate([stored_k, extra_keys])
            all_v = np.concatenate([stored_v, extra_values])
            report = None
            if all_k.size:
                report = self.insert(all_k, all_v, kernels=kernels)
            self._note_rehash(report, sp)

    def free(self) -> None:
        """Release simulated VRAM and any shared-memory segment."""
        self.store.free()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WarpDriveHashTable(capacity={self.capacity}, "
            f"group_size={self.config.group_size}, size={self._size}, "
            f"load={self.load_factor:.3f})"
        )
