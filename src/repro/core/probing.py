"""Probing sequences (paper §II and §IV-A).

Two layers:

* **Classic slot-granular schemes** — linear, quadratic, double-hash
  (Eqs. 1–3) — provided for the probing ablation (bench A2) and for
  the theory-facing property tests (full-cycle coverage, clustering).

* **The WarpDrive window sequence** — the hybrid scheme of Fig. 3:
  chaotic (double-hash) probing *of windows*, with simultaneous linear
  probing of ``|g|`` consecutive slots inside each window.  An outer
  attempt ``p`` re-hashes via ``hash(d, p)``; the inner loop
  ``q ∈ [0, 32/|g|)`` slides the |g|-wide window across a 32-slot span so
  the visited slot set is *independent of the group size* — "the inner
  probing loop ensures a consistent probing scheme in case that the size
  of g is varied over time".

The window walk is a constructor-level *policy* of the table
(``probing=`` in :class:`~repro.core.config.HashTableConfig`): every
sequence reduces to the affine form ``start = h1 + p·step + q·|g|``
(uint32 wraparound), published per key through :meth:`WindowSequence.
hash_cache` so the fast bulk kernels and the faithful reference kernels
consume any policy through one code path.  ``"window"`` is the paper's
hybrid above; ``"double"`` re-hashes every |g|-wide window chaotically
(no inner slide); ``"linear"`` walks consecutive windows.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..constants import WARP_SIZE
from ..errors import ConfigurationError
from ..hashing.families import DoubleHashFamily, HashFunction
from ..utils.validation import check_group_size, check_positive

__all__ = [
    "ProbeSequence",
    "LinearProbing",
    "QuadraticProbing",
    "DoubleHashProbing",
    "WindowSequence",
    "DoubleWindowSequence",
    "LinearWindowSequence",
    "WindowRef",
    "WINDOW_SEQUENCES",
    "make_window_sequence",
]

_U64 = np.uint64


class ProbeSequence(ABC):
    """Slot-granular probing: ``s(k, l)`` for attempt ``l``."""

    name: str = "abstract"

    @abstractmethod
    def position(self, keys: np.ndarray, attempt: int, capacity: int) -> np.ndarray:
        """Slot index probed at the ``attempt``-th step for each key."""

    def sequence(self, key, capacity: int, length: int) -> np.ndarray:
        """First ``length`` probe positions of a single key (test helper)."""
        key_arr = np.asarray([key], dtype=np.uint32)
        return np.array(
            [int(self.position(key_arr, l, capacity)[0]) for l in range(length)],
            dtype=np.int64,
        )


@dataclass(frozen=True)
class LinearProbing(ProbeSequence):
    """``s(k, l) = (h(k) + l) mod c`` (Eq. 1) — cache friendly, clusters."""

    h: HashFunction
    name: str = "linear"

    def position(self, keys: np.ndarray, attempt: int, capacity: int) -> np.ndarray:
        base = self.h(keys).astype(_U64)
        return ((base + _U64(attempt)) % _U64(capacity)).astype(np.int64)


@dataclass(frozen=True)
class QuadraticProbing(ProbeSequence):
    """``s(k, l) = (h(k) + l^2) mod c`` (Eq. 2) — escapes primary clusters."""

    h: HashFunction
    name: str = "quadratic"

    def position(self, keys: np.ndarray, attempt: int, capacity: int) -> np.ndarray:
        base = self.h(keys).astype(_U64)
        return ((base + _U64(attempt) * _U64(attempt)) % _U64(capacity)).astype(
            np.int64
        )


@dataclass(frozen=True)
class DoubleHashProbing(ProbeSequence):
    """``s(k, l) = (h(k) + l·g(k)) mod c`` (Eq. 3) — chaotic but reproducible."""

    family: DoubleHashFamily
    name: str = "double"

    def position(self, keys: np.ndarray, attempt: int, capacity: int) -> np.ndarray:
        base = self.family.primary(keys).astype(_U64)
        # reduce the step into [1, capacity) so it can never be a multiple
        # of the capacity (which would freeze the sequence); full-cycle
        # coverage additionally needs gcd(step, capacity) == 1 — use prime
        # or power-of-two capacities for that guarantee
        step = self.family.step(keys).astype(_U64) % _U64(capacity)
        step = np.maximum(step, _U64(1))
        return ((base + _U64(attempt) * step) % _U64(capacity)).astype(np.int64)


@dataclass(frozen=True)
class WindowRef:
    """Identity of one probing window: outer attempt ``p``, inner slide ``q``."""

    outer: int
    inner: int


class WindowSequence:
    """The WarpDrive hybrid window walk of Fig. 3.

    Parameters
    ----------
    family:
        The (h, g) double-hash pair; outer attempt ``p`` uses
        ``window_hash(k, p) = h(k) + p·g(k)``.
    group_size:
        ``|g|`` — slots probed simultaneously per window.
    p_max:
        Maximum outer attempts before the insert raises.
    """

    name = "window"

    def __init__(self, family: DoubleHashFamily, group_size: int, p_max: int):
        self.family = family
        self.group_size = check_group_size(group_size)
        self.p_max = int(check_positive("p_max", p_max))
        self.inner_count = WARP_SIZE // self.group_size

    @property
    def max_windows(self) -> int:
        """Total number of windows the walk may visit."""
        return self.p_max * self.inner_count

    def hash_cache(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-key ``(h1, step)`` of the affine walk ``h1 + p·step + q·|g|``.

        The single probing entry point both executors consume: the bulk
        kernels gather from it once per wave entry, the reference path
        derives :meth:`window_start` from it — so every policy that can
        express its walk in the affine form plugs in here and the two
        executors stay bit-identical automatically.
        """
        with np.errstate(over="ignore"):
            return self.family.primary(keys), self.family.step(keys)

    def window_ref(self, flat_index: int) -> WindowRef:
        """Decompose a flat window counter into (outer p, inner q)."""
        if flat_index < 0:
            raise ConfigurationError(f"flat_index must be >= 0, got {flat_index}")
        return WindowRef(flat_index // self.inner_count, flat_index % self.inner_count)

    def window_start(
        self, keys: np.ndarray, outer: int, inner: int, capacity: int
    ) -> np.ndarray:
        """Start slot of window (p=outer, q=inner) per key.

        Fig. 3 line 7 with rank factored out:
        ``i = (hash(d, p) + q·|g| + rank) mod |t|``.
        """
        if not 0 <= inner < self.inner_count:
            raise ConfigurationError(
                f"inner must be in [0, {self.inner_count}), got {inner}"
            )
        keys = np.asarray(keys, dtype=np.uint32)
        h1, step = self.hash_cache(keys)
        # all hash arithmetic wraps at 32 bits (uint32 kernels, Fig. 3)
        with np.errstate(over="ignore"):
            h = h1 + np.uint32(outer & 0xFFFFFFFF) * step + np.uint32(
                inner * self.group_size
            )
        return (h.astype(_U64) % _U64(capacity)).astype(np.int64)

    def window_slots(
        self, keys: np.ndarray, outer: int, inner: int, capacity: int
    ) -> np.ndarray:
        """All ``|g|`` slot indices of the window, shape (len(keys), |g|)."""
        start = self.window_start(keys, outer, inner, capacity)
        ranks = np.arange(self.group_size, dtype=np.int64)
        return (start[:, None] + ranks[None, :]) % capacity

    def walk(self, key, capacity: int) -> Iterator[tuple[WindowRef, np.ndarray]]:
        """Iterate windows of a single key in probe order (reference path)."""
        key_arr = np.asarray([key], dtype=np.uint32)
        for flat in range(self.max_windows):
            ref = self.window_ref(flat)
            yield ref, self.window_slots(key_arr, ref.outer, ref.inner, capacity)[0]

    def visited_slots(self, key, capacity: int, num_windows: int) -> np.ndarray:
        """Flattened slot indices of the first ``num_windows`` windows.

        Used by the consistency property test: for a fixed key and
        capacity, the first 32·p slots visited are identical for every
        group size (the inner loop exists precisely to guarantee this).
        """
        out = []
        for flat in range(num_windows):
            ref = self.window_ref(flat)
            key_arr = np.asarray([key], dtype=np.uint32)
            out.append(self.window_slots(key_arr, ref.outer, ref.inner, capacity)[0])
        return np.concatenate(out) if out else np.empty(0, dtype=np.int64)


class DoubleWindowSequence(WindowSequence):
    """Pure chaotic window probing: every attempt re-hashes (Eq. 3 on
    |g|-wide windows).

    No inner slide — ``inner_count == 1`` — so a walk of ``p_max``
    attempts visits ``p_max`` independent windows.  Keeps the paper's
    coalesced |g|-slot loads while trading the linear-window locality of
    the hybrid scheme for maximal cluster escape.
    """

    name = "double"

    def __init__(self, family: DoubleHashFamily, group_size: int, p_max: int):
        super().__init__(family, group_size, p_max)
        self.inner_count = 1


class LinearWindowSequence(WindowSequence):
    """Linear probing of |g|-wide windows: attempt ``p`` starts at
    ``h(k) + p·|g|`` (Eq. 1 lifted to window granularity).

    Maximally cache friendly — consecutive attempts touch adjacent
    memory — at the cost of primary clustering.  Expressed through the
    shared affine walk by publishing a constant per-key step of ``|g|``.
    """

    name = "linear"

    def __init__(self, family: DoubleHashFamily, group_size: int, p_max: int):
        super().__init__(family, group_size, p_max)
        self.inner_count = 1

    def hash_cache(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        with np.errstate(over="ignore"):
            h1 = self.family.primary(keys)
        step = np.full(h1.shape, self.group_size, dtype=np.uint32)
        return h1, step


#: the ``probing=`` option vocabulary (see :mod:`repro.options`)
WINDOW_SEQUENCES: dict[str, type[WindowSequence]] = {
    "window": WindowSequence,
    "double": DoubleWindowSequence,
    "linear": LinearWindowSequence,
}


def make_window_sequence(
    probing: str, family: DoubleHashFamily, group_size: int, p_max: int
) -> WindowSequence:
    """Build the window walk for one table (the ``probing=`` policy)."""
    try:
        cls = WINDOW_SEQUENCES[probing]
    except KeyError:
        raise ConfigurationError(
            f"unknown probing scheme {probing!r}; "
            f"choose from {sorted(WINDOW_SEQUENCES)}"
        ) from None
    return cls(family, group_size, p_max)
