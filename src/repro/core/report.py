"""Per-kernel work reports.

Every bulk operation (insert / query / erase, reference or fast kernels)
returns a :class:`KernelReport` describing exactly how much simulated
device work it performed.  The performance model consumes these to
project paper-scale throughput; the tests consume them to check executor
equivalence and probing-cost theory.  Like every report type in the
repo, it implements the :class:`repro.obs.Reportable` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.protocol import reportable_dict

__all__ = ["KernelReport"]


@dataclass
class KernelReport:
    """Work accounting for one bulk table operation.

    ``probe_windows[i]`` is the number of windows key ``i`` examined; the
    histogram of this array is the probing-length distribution that drives
    both the perf model and the Fig. 7 group-size trade-off.
    """

    #: operation label: "insert", "query", "erase"
    op: str
    #: number of key(-value) items processed
    num_ops: int = 0
    #: windows examined per item (length == num_ops)
    probe_windows: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    #: 32-byte sectors loaded / stored
    load_sectors: int = 0
    store_sectors: int = 0
    #: CAS traffic
    cas_attempts: int = 0
    cas_successes: int = 0
    #: ballots / any / shfl issued
    warp_collectives: int = 0
    #: items that failed (insert: p_max exhausted; query: key absent)
    failed: int = 0
    #: group size the kernel ran with
    group_size: int = 0
    #: sectors served from *host* memory over PCIe (out-of-core tables —
    #: Stadium hashing's host-resident table keeps only its ticket board
    #: in VRAM)
    host_load_sectors: int = 0
    host_store_sectors: int = 0

    schema_version = 1

    @classmethod
    def empty(cls, op: str, group_size: int = 0) -> "KernelReport":
        """A zero-work report for a shard that received no items."""
        return cls(op=op, num_ops=0, group_size=group_size)

    def charge_to(self, counter) -> None:
        """Add this kernel's work to a transaction counter (one launch).

        Shard engines run kernels without a counter (workers may live in
        another process) and charge the owning device afterwards — in
        shard order, so totals are identical across backends.
        """
        counter.load_sectors += self.load_sectors
        counter.store_sectors += self.store_sectors
        counter.cas_attempts += self.cas_attempts
        counter.cas_successes += self.cas_successes
        counter.warp_collectives += self.warp_collectives
        counter.window_probes += self.total_windows
        counter.kernel_launches += 1

    @property
    def total_windows(self) -> int:
        return int(self.probe_windows.sum()) if self.probe_windows.size else 0

    @property
    def mean_windows(self) -> float:
        if self.probe_windows.size == 0:
            return 0.0
        return float(self.probe_windows.mean())

    @property
    def max_windows(self) -> int:
        if self.probe_windows.size == 0:
            return 0
        return int(self.probe_windows.max())

    @property
    def total_sectors(self) -> int:
        return self.load_sectors + self.store_sectors

    @property
    def bytes_touched(self) -> int:
        from ..constants import SECTOR_BYTES

        return self.total_sectors * SECTOR_BYTES

    def window_histogram(self) -> np.ndarray:
        """Counts of items by windows probed (index = window count)."""
        if self.probe_windows.size == 0:
            return np.zeros(1, dtype=np.int64)
        return np.bincount(self.probe_windows.astype(np.int64))

    def merge(self, other: "KernelReport") -> "KernelReport":
        """Combine reports of the same op across batches or devices."""
        return KernelReport(
            op=self.op,
            num_ops=self.num_ops + other.num_ops,
            probe_windows=np.concatenate([self.probe_windows, other.probe_windows]),
            load_sectors=self.load_sectors + other.load_sectors,
            store_sectors=self.store_sectors + other.store_sectors,
            cas_attempts=self.cas_attempts + other.cas_attempts,
            cas_successes=self.cas_successes + other.cas_successes,
            warp_collectives=self.warp_collectives + other.warp_collectives,
            failed=self.failed + other.failed,
            group_size=self.group_size or other.group_size,
            host_load_sectors=self.host_load_sectors + other.host_load_sectors,
            host_store_sectors=self.host_store_sectors + other.host_store_sectors,
        )

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys)."""
        return reportable_dict(
            self,
            {
                "op": self.op,
                "num_ops": self.num_ops,
                "mean_windows": self.mean_windows,
                "max_windows": self.max_windows,
                "total_windows": self.total_windows,
                "load_sectors": self.load_sectors,
                "store_sectors": self.store_sectors,
                "cas_attempts": self.cas_attempts,
                "cas_successes": self.cas_successes,
                "warp_collectives": self.warp_collectives,
                "failed": self.failed,
                "group_size": self.group_size,
                "host_load_sectors": self.host_load_sectors,
                "host_store_sectors": self.host_store_sectors,
            },
        )

    def as_dict(self) -> dict[str, float | int | str]:
        """Deprecated alias for :meth:`to_dict` (pre-``repro.obs`` name)."""
        return self.to_dict()
