"""Compiled bulk kernels — the ``kernels="compiled"`` backend.

The fast bulk executors of :mod:`repro.core.bulk` interpret the probing
policy with vectorized NumPy passes; this module lowers the *same*
wave/round algorithm to scalar inner loops and compiles them once per
``(probing, layout)`` policy pair, WarpCore-style: specialize at compile
time, launch many times.  The compiled loops are **bit-identical** to
the fast kernels — final slot contents, per-item statuses, probe-window
arrays, and every :class:`~repro.core.report.KernelReport` counter field
(property-tested in ``tests/core/test_compiled_kernels.py`` and
``tests/exec/test_compiled_equivalence.py``).

Providers
---------
``kernels="compiled"`` is a *policy*, not one dependency.  Three
interchangeable providers implement it; the first available one wins:

``numba``
    The optional-dependency JIT path (``pip install repro[compiled]``).
    The loop bodies below are compiled with ``@njit(nogil=True)``;
    sentinel words and status codes are baked in as closure literals.

``cc``
    A ctypes fallback used when numba is absent but a C toolchain is
    present: :mod:`repro.core._jit_cc` emits the identical loops as C,
    builds a shared library once (disk-cached by source hash), and
    launches it through ctypes.  Same results, same counters.

``interp``
    The undecorated loop bodies, run by the CPython interpreter.  Never
    auto-selected (it is slower than ``"fast"``); forced via
    ``REPRO_JIT_PROVIDER=interp`` so the equivalence suite can verify
    the *algorithm* bit-for-bit on machines with no compiler at all.

``REPRO_JIT_PROVIDER`` (``numba`` | ``cc`` | ``interp`` | ``none``)
pins the ladder for tests and benchmarks.

Fallback rules
--------------
:func:`resolve_kernels` maps a requested backend to the one that can
actually run, warning once per call-site owner:

* no provider available → ``"fast"`` (the numba-less auto-fallback);
* sanitizer-instrumented slot stores → ``"fast"`` (compiled loops
  bypass the shadow instrumentation, so racecheck must keep the
  vectorized path).

Compilation is wrapped in a ``jit_compile`` observability span and
warmed explicitly (see :func:`warm`) so first-call compile time never
pollutes measured kernel rows.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from ..constants import EMPTY_SLOT, TOMBSTONE_SLOT
from ..errors import ConfigurationError
from ..memory.layout import pack_pairs
from ..obs import runtime as obs
from ..simt.counters import TransactionCounter
from ..utils.validation import check_keys, check_same_length, check_values
from .bulk import (
    STATUS,
    _merge_counter,
    _record_bytes,
    _sectors_per_window,
    default_wave_size,
)
from .probing import WindowSequence
from .report import KernelReport

__all__ = [
    "NUMBA_AVAILABLE",
    "PROVIDERS",
    "active_provider",
    "available_providers",
    "compiled_available",
    "resolve_kernels",
    "reset_fallback_warnings",
    "slot_planes",
    "warm",
    "bulk_insert_compiled",
    "bulk_query_compiled",
    "bulk_erase_compiled",
    "scatter_permutation",
]

try:  # optional dependency — the [compiled] extra
    import numba  # noqa: F401  (availability probe)
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - exercised via the fallback tests
    NUMBA_AVAILABLE = False
    _njit = None

#: provider ladder, in preference order
PROVIDERS = ("numba", "cc", "interp")

_EMPTY_W = np.uint64(EMPTY_SLOT)
_TOMB_W = np.uint64(TOMBSTONE_SLOT)
_S32 = np.uint64(32)
_M32 = np.uint64(0xFFFFFFFF)

_ST_PENDING = int(STATUS["pending"])
_ST_INSERTED = int(STATUS["inserted"])
_ST_UPDATED = int(STATUS["updated"])
_ST_FAILED = int(STATUS["failed"])

#: dummy planes for the layout that is not in use
_NO_U64 = np.empty(0, dtype=np.uint64)
_NO_U32 = np.empty(0, dtype=np.uint32)

#: compile-once/launch-many cache: (provider, probing, layout) -> op table
_LOOPS_CACHE: dict[tuple[str, str, str], dict] = {}

#: compiled counting-scatter loop per provider
_SCATTER_CACHE: dict[str, object] = {}

#: compiled reverse-gather fill loops, one per provider
_GATHER_CACHE: dict[str, object] = {}

#: cc-toolchain probe result (None = not probed yet)
_CC_STATE: dict[str, bool | None] = {"ok": None}

#: call sites that already warned about a fallback
_WARNED: set[tuple[str, str]] = set()


# -- provider resolution --------------------------------------------------


def _cc_available() -> bool:
    if _CC_STATE["ok"] is None:
        from . import _jit_cc

        _CC_STATE["ok"] = _jit_cc.compiler_available()
    return bool(_CC_STATE["ok"])


def active_provider() -> str | None:
    """The provider ``kernels="compiled"`` resolves to (None = fallback).

    ``REPRO_JIT_PROVIDER`` pins the choice; otherwise the first entry of
    :data:`PROVIDERS` that can run wins (``interp`` is opt-in only).
    """
    forced = os.environ.get("REPRO_JIT_PROVIDER", "").strip().lower()
    if forced:
        if forced in ("none", "off"):
            return None
        if forced == "numba":
            return "numba" if NUMBA_AVAILABLE else None
        if forced == "cc":
            return "cc" if _cc_available() else None
        if forced == "interp":
            return "interp"
        raise ConfigurationError(
            f"REPRO_JIT_PROVIDER must be one of {PROVIDERS + ('none',)}, "
            f"got {forced!r}"
        )
    if NUMBA_AVAILABLE:
        return "numba"
    if _cc_available():
        return "cc"
    return None


def available_providers() -> tuple[str, ...]:
    """Providers that could run on this host (ignores the env pin)."""
    out = []
    if NUMBA_AVAILABLE:
        out.append("numba")
    if _cc_available():
        out.append("cc")
    out.append("interp")
    return tuple(out)


def compiled_available() -> bool:
    """True when ``kernels="compiled"`` would not fall back."""
    return active_provider() is not None


def slot_planes(slots):
    """Raw storage planes of a slot view, or None when unsupported.

    Returns ``(layout, packed_u64, key_plane, value_plane)`` for a plain
    AoS array, an unsanitized SoA view, or an unsanitized compact view
    — whose key plane holds σ-permuted remainder words, so the wrappers
    σ-encode probe keys to match
    (:class:`~repro.core.store.CompactPackedView`).
    Sanitizer-instrumented views (``ShadowedArray``, shadowed SoA or
    compact views) return None: the compiled loops cannot record shadow
    accesses, so the caller must fall back to the instrumented fast path.
    """
    if isinstance(slots, np.ndarray):
        if slots.dtype == np.uint64 and slots.ndim == 1:
            return ("aos", slots, _NO_U32, _NO_U32)
        return None
    if getattr(slots, "sanitizer", None) is not None:
        return None
    values = getattr(slots, "_values", None)
    if values is None:
        return None
    keys = getattr(slots, "_keys", None)
    if keys is not None:
        return ("soa", _NO_U64, keys, values)
    rq = getattr(slots, "_rq", None)
    if rq is not None:
        return ("compact", _NO_U64, rq, values)
    return None


def _warn_once(key: tuple[str, str], message: str) -> None:
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def reset_fallback_warnings() -> None:
    """Forget which owners warned (test isolation)."""
    _WARNED.clear()


def resolve_kernels(kernels: str, *, slots=None, owner: str = "repro"):
    """Map a requested kernel backend to the one that can actually run.

    Anything but ``"compiled"`` passes through untouched.  A
    ``"compiled"`` request resolves to ``"compiled"`` when a provider is
    available and the slot store (if given) exposes raw planes; otherwise
    it warns **once per owner** and resolves to ``"fast"`` — reports and
    spans must record the *resolved* value, never the requested one.
    """
    if kernels != "compiled":
        return kernels
    if active_provider() is None:
        _warn_once(
            (owner, "unavailable"),
            f"{owner}: kernels='compiled' requested but no JIT provider is "
            "available (numba is not installed and no C toolchain works); "
            "falling back to kernels='fast'",
        )
        return "fast"
    if slots is not None and slot_planes(slots) is None:
        _warn_once(
            (owner, "sanitized"),
            f"{owner}: kernels='compiled' cannot run on sanitizer-"
            "instrumented slot stores (compiled loops bypass the shadow "
            "tracker); falling back to kernels='fast'",
        )
        return "fast"
    return "compiled"


# -- the loop bodies -------------------------------------------------------
#
# One source, three providers: ``decorate`` is numba's njit for the JIT
# path and the identity for the interpreted path (the cc provider emits
# the same algorithm as C).  Everything below is the *scalar* transcription
# of the wave/round algorithm of repro.core.bulk — same snapshot-read /
# update-write / claim-arbitrate phase order, same counter charges — so
# the two executors stay bit-identical by construction.


def _make_loops(layout: str, decorate) -> dict:
    if layout == "compact":
        # the compact key plane stores σ(key-half), so the loops match
        # and claim entirely in the permuted domain: the wrappers pass
        # σ-encoded probe keys/pairs, and the sentinel words here are
        # the σ-images of EMPTY/TOMBSTONE (repro.core.store).  The hash
        # walk (h1/step) still comes from the original keys.
        from ..hashing.mixers import fmix32

        perm = np.uint64(fmix32(np.asarray([0xFFFFFFFF], np.uint32))[0])
        EMPTY = (perm << _S32) | np.uint64(0xFFFFFFFF)
        TOMB = (perm << _S32) | np.uint64(0xFFFFFFFE)
    else:
        EMPTY = _EMPTY_W
        TOMB = _TOMB_W
    S32 = _S32
    M32 = _M32
    INSERTED = _ST_INSERTED
    UPDATED = _ST_UPDATED
    FAILED = _ST_FAILED
    PENDING = _ST_PENDING

    if layout == "aos":

        def load(packed, kp, vp, idx):
            return packed[idx]

        def store(packed, kp, vp, idx, word):
            packed[idx] = word

    else:

        def load(packed, kp, vp, idx):
            return (np.uint64(kp[idx]) << S32) | np.uint64(vp[idx])

        def store(packed, kp, vp, idx, word):
            kp[idx] = np.uint32((word >> S32) & M32)
            vp[idx] = np.uint32(word & M32)

    load = decorate(load)
    store = decorate(store)

    def insert_loop(
        packed, kp, vp, capacity, g, inner, max_windows, wave, spw,
        h1, step, keys, pairs, status, probes, counters,
    ):
        n = keys.shape[0]
        ring_cap = n if n < wave else wave
        if ring_cap < 1:
            ring_cap = 1
        ring = np.empty(ring_cap, np.int64)
        spare = np.empty(ring_cap, np.int64)
        win_idx = np.zeros(n, np.int64)
        first_vac = np.full(n, -1, np.int64)
        m_match = np.empty(ring_cap, np.uint8)
        m_empty = np.empty(ring_cap, np.uint8)
        m_target = np.empty(ring_cap, np.int64)
        m_vac = np.empty(ring_cap, np.int64)
        utarg = np.empty(ring_cap, np.int64)
        claims = np.empty(ring_cap, np.int64)
        load_s = 0
        store_s = 0
        att = 0
        succ = 0
        warp = 0
        count = 0
        cursor = 0
        while count > 0 or cursor < n:
            if cursor < n and count < wave:
                take = wave - count
                if take > n - cursor:
                    take = n - cursor
                for t in range(take):
                    ring[count + t] = cursor + t
                count += take
                cursor += take
            m = count
            load_s += m * spw
            warp += 2 * m
            # phase 1 — snapshot reads: every pending item scans its
            # current window before any write of this round lands
            for j in range(m):
                i = ring[j]
                probes[i] += 1
                flat = win_idx[i]
                p = flat // inner
                q = flat - p * inner
                h = (
                    np.int64(h1[i])
                    + (p & 0xFFFFFFFF) * np.int64(step[i])
                    + q * g
                ) & 0xFFFFFFFF
                start = h % capacity
                key_w = np.uint64(keys[i])
                hasm = False
                hase = False
                mt = np.int64(-1)
                vs = np.int64(-1)
                for lane in range(g):
                    s = (start + lane) % capacity
                    w = load(packed, kp, vp, s)
                    if w == EMPTY:
                        hase = True
                        if vs < 0:
                            vs = s
                    elif w == TOMB:
                        if vs < 0:
                            vs = s
                    elif (not hasm) and (w >> S32) == key_w:
                        hasm = True
                        mt = s
                m_match[j] = 1 if hasm else 0
                m_empty[j] = 1 if hase else 0
                m_target[j] = mt
                m_vac[j] = vs
            # phase 2 — update path: submission order, last writer wins;
            # one store sector per distinct slot written
            nupd = 0
            for j in range(m):
                if m_match[j] == 1:
                    i = ring[j]
                    store(packed, kp, vp, m_target[j], pairs[i])
                    utarg[nupd] = m_target[j]
                    nupd += 1
                    status[i] = UPDATED
            if nupd > 0:
                att += nupd
                succ += nupd
                su = np.sort(utarg[:nupd])
                uniq = 1
                for t in range(1, nupd):
                    if su[t] != su[t - 1]:
                        uniq += 1
                store_s += uniq
            # phase 2b — remember the walk's first vacant slot
            for j in range(m):
                if m_match[j] == 0 and m_vac[j] >= 0:
                    i = ring[j]
                    if first_vac[i] < 0:
                        first_vac[i] = m_vac[j]
            # phase 3 — claims: EMPTY reached or budget exhausted; the
            # winner per distinct slot is the lowest submission index and
            # vacancy is re-checked against the post-update table
            nclaims = 0
            for j in range(m):
                if m_match[j] == 1:
                    continue
                i = ring[j]
                if m_empty[j] == 1 or win_idx[i] + 1 >= max_windows:
                    tv = first_vac[i]
                    if tv < 0:
                        status[i] = FAILED
                    else:
                        claims[nclaims] = tv * (n + 1) + i
                        nclaims += 1
                else:
                    win_idx[i] += 1
            if nclaims > 0:
                att += nclaims
                cs = np.sort(claims[:nclaims])
                j2 = 0
                while j2 < nclaims:
                    slot = cs[j2] // (n + 1)
                    w = load(packed, kp, vp, slot)
                    if w == EMPTY or w == TOMB:
                        item = cs[j2] - slot * (n + 1)
                        store(packed, kp, vp, slot, pairs[item])
                        status[item] = INSERTED
                        succ += 1
                        store_s += 1
                        j2 += 1
                    # losers (CAS failed or outvoted) restart their walk
                    while j2 < nclaims and cs[j2] // (n + 1) == slot:
                        item = cs[j2] - slot * (n + 1)
                        first_vac[item] = -1
                        win_idx[item] = 0
                        load_s += spw
                        j2 += 1
            # compaction: survivors (still pending) stay in the ring
            newc = 0
            for j in range(m):
                i = ring[j]
                if status[i] == PENDING:
                    spare[newc] = i
                    newc += 1
            tmp = ring
            ring = spare
            spare = tmp
            count = newc
        counters[0] += load_s
        counters[1] += store_s
        counters[2] += att
        counters[3] += succ
        counters[4] += warp

    def query_loop(
        packed, kp, vp, capacity, g, inner, max_windows, spw,
        h1, step, keys, values, found, probes, counters,
    ):
        n = keys.shape[0]
        cap = n if n > 0 else 1
        ring = np.empty(cap, np.int64)
        spare = np.empty(cap, np.int64)
        for i in range(n):
            ring[i] = i
        win_idx = np.zeros(n, np.int64)
        load_s = 0
        warp = 0
        count = n
        while count > 0:
            m = count
            load_s += m * spw
            warp += 2 * m
            newc = 0
            for j in range(m):
                i = ring[j]
                probes[i] += 1
                flat = win_idx[i]
                p = flat // inner
                q = flat - p * inner
                h = (
                    np.int64(h1[i])
                    + (p & 0xFFFFFFFF) * np.int64(step[i])
                    + q * g
                ) & 0xFFFFFFFF
                start = h % capacity
                key_w = np.uint64(keys[i])
                hasm = False
                hase = False
                val = np.uint32(0)
                for lane in range(g):
                    s = (start + lane) % capacity
                    w = load(packed, kp, vp, s)
                    if w == EMPTY:
                        hase = True
                    elif (not hasm) and (w >> S32) == key_w:
                        hasm = True
                        val = np.uint32(w & M32)
                if hasm:
                    values[i] = val
                    found[i] = True
                elif not hase:
                    win_idx[i] += 1
                    if win_idx[i] < max_windows:
                        spare[newc] = i
                        newc += 1
            tmp = ring
            ring = spare
            spare = tmp
            count = newc
        counters[0] += load_s
        counters[4] += warp

    def erase_loop(
        packed, kp, vp, capacity, g, inner, max_windows, spw,
        h1, step, keys, erased, probes, counters,
    ):
        n = keys.shape[0]
        cap = n if n > 0 else 1
        ring = np.empty(cap, np.int64)
        spare = np.empty(cap, np.int64)
        for i in range(n):
            ring[i] = i
        win_idx = np.zeros(n, np.int64)
        m_empty = np.empty(cap, np.uint8)
        targ = np.empty(cap * g, np.int64)
        load_s = 0
        store_s = 0
        att = 0
        succ = 0
        warp = 0
        count = n
        while count > 0:
            m = count
            load_s += m * spw
            warp += 2 * m
            # snapshot reads first: duplicate keys sharing a window must
            # all observe the pre-tombstone state of this round
            ntarg = 0
            nhit = 0
            for j in range(m):
                i = ring[j]
                probes[i] += 1
                flat = win_idx[i]
                p = flat // inner
                q = flat - p * inner
                h = (
                    np.int64(h1[i])
                    + (p & 0xFFFFFFFF) * np.int64(step[i])
                    + q * g
                ) & 0xFFFFFFFF
                start = h % capacity
                key_w = np.uint64(keys[i])
                hit = False
                hase = False
                for lane in range(g):
                    s = (start + lane) % capacity
                    w = load(packed, kp, vp, s)
                    if w == EMPTY:
                        hase = True
                    elif (w >> S32) == key_w:
                        # tombstone every matching lane (shadowed copies)
                        hit = True
                        targ[ntarg] = s
                        ntarg += 1
                if hit:
                    nhit += 1
                    erased[i] = True
                m_empty[j] = 1 if hase else 0
            if ntarg > 0:
                st = np.sort(targ[:ntarg])
                uniq = 0
                for t in range(ntarg):
                    if t == 0 or st[t] != st[t - 1]:
                        store(packed, kp, vp, st[t], TOMB)
                        uniq += 1
                att += nhit
                succ += nhit
                store_s += uniq
            # only an EMPTY window (or budget exhaustion) ends the walk
            newc = 0
            for j in range(m):
                i = ring[j]
                if m_empty[j] == 1:
                    continue
                win_idx[i] += 1
                if win_idx[i] < max_windows:
                    spare[newc] = i
                    newc += 1
            tmp = ring
            ring = spare
            spare = tmp
            count = newc
        counters[0] += load_s
        counters[1] += store_s
        counters[2] += att
        counters[3] += succ
        counters[4] += warp

    return {
        "insert": decorate(insert_loop),
        "query": decorate(query_loop),
        "erase": decorate(erase_loop),
    }


def _identity(fn):
    return fn


def _njit_decorator():
    return _njit(cache=False, nogil=True)


def _warm_call(fns: dict, layout: str) -> None:
    """Force-compile all three ops with the production argument types."""
    if layout == "aos":
        packed = np.full(4, _EMPTY_W, np.uint64)
        kp, vp = _NO_U32, _NO_U32
    else:
        packed = _NO_U64
        kp = np.full(4, 0xFFFFFFFF, np.uint32)
        vp = np.full(4, 0xFFFFFFFF, np.uint32)
    h = np.empty(0, np.uint32)
    k = np.empty(0, np.uint32)
    i64 = np.empty(0, np.int64)
    u8 = np.empty(0, np.uint8)
    counters = np.zeros(5, np.int64)
    fns["insert"](
        packed, kp, vp, 4, 1, 1, 1, 2048, 1,
        h, h, k, np.empty(0, np.uint64), u8, i64, counters,
    )
    fns["query"](
        packed, kp, vp, 4, 1, 1, 1, 1,
        h, h, k, np.empty(0, np.uint32), np.empty(0, np.bool_), i64, counters,
    )
    fns["erase"](
        packed, kp, vp, 4, 1, 1, 1, 1,
        h, h, k, np.empty(0, np.bool_), i64, counters,
    )


def _loops_for(probing: str, layout: str) -> dict:
    """The compile-once/launch-many dispatcher cache.

    Keyed per ``(provider, probing, layout)`` policy pair: each probing
    scheme gets its own compiled instance (separate type caches and
    branch history), each layout its own slot-access path.  A cache miss
    compiles under a ``jit_compile`` span so warm-up cost is always
    attributable and never pollutes measured kernel rows.
    """
    provider = active_provider()
    if provider is None:
        raise ConfigurationError(
            "kernels='compiled' has no available provider; call "
            "resolve_kernels() first to fall back to 'fast'"
        )
    key = (provider, probing, layout)
    fns = _LOOPS_CACHE.get(key)
    if fns is None:
        with obs.span(
            "jit_compile",
            "kernel",
            kernels="compiled",
            provider=provider,
            probing=probing,
            layout=layout,
        ):
            if provider == "cc":
                from . import _jit_cc

                fns = _jit_cc.build_loops(layout)
            elif provider == "numba":
                fns = _make_loops(layout, _njit_decorator())
                _warm_call(fns, layout)
            else:
                fns = _make_loops(layout, _identity)
        _LOOPS_CACHE[key] = fns
    return fns


def warm(probing: str = "window", layout: str = "aos") -> bool:
    """Pre-compile the loops for one policy pair (once per process).

    Returns True when the compiled path is live, False when it would
    fall back — callers may warm at construction so the first measured
    launch hits a hot cache.  Workers resolve independently: the cache
    is process-local, so each worker process warms itself exactly once.
    """
    if active_provider() is None:
        return False
    _loops_for(probing, layout)
    return True


# -- compiled counting-scatter permutation --------------------------------


def _make_scatter(decorate):
    def scatter_loop(b, n, num_bins, src, counts, offsets, cursor):
        for i in range(n):
            counts[b[i]] += 1
        acc = 0
        for p in range(num_bins):
            offsets[p] = acc
            cursor[p] = acc
            acc += counts[p]
        for i in range(n):
            p = b[i]
            src[cursor[p]] = i
            cursor[p] += 1

    return decorate(scatter_loop)


def scatter_permutation(bins: np.ndarray, num_bins: int):
    """Stable bin-order permutation, compiled: ``(src, counts, offsets)``.

    Histogram → exclusive scan → stable scatter in one pass — the exact
    permutation ``np.argsort(bins, kind="stable")`` produces, plus the
    per-bin counts and exclusive offsets, without a sort.  Returns
    ``None`` when no JIT provider is available (or the provider fails),
    so :func:`repro.primitives.scatter.counting_scatter` can keep its
    vectorized path as the fallback.
    """
    provider = active_provider()
    if provider is None:
        return None
    b = np.ascontiguousarray(bins, dtype=np.int64)
    n = int(b.shape[0])
    src = np.empty(n, dtype=np.int64)
    counts = np.zeros(num_bins, dtype=np.int64)
    offsets = np.zeros(num_bins, dtype=np.int64)
    try:
        if provider == "cc":
            from . import _jit_cc

            _jit_cc.scatter_permutation_compiled(
                b, n, num_bins, src, counts, offsets
            )
        else:
            fn = _SCATTER_CACHE.get(provider)
            if fn is None:
                with obs.span(
                    "jit_compile",
                    "kernel",
                    kernels="compiled",
                    provider=provider,
                    probing="scatter",
                    layout="-",
                ):
                    decorate = (
                        _njit_decorator() if provider == "numba" else _identity
                    )
                    fn = _make_scatter(decorate)
                    if provider == "numba":
                        e = np.empty(0, np.int64)
                        fn(
                            e, 0, 1, e,
                            np.zeros(1, np.int64),
                            np.zeros(1, np.int64),
                            np.zeros(1, np.int64),
                        )
                _SCATTER_CACHE[provider] = fn
            cursor = np.zeros(num_bins, dtype=np.int64)
            fn(b, n, num_bins, src, counts, offsets, cursor)
    except Exception:  # pragma: no cover - provider build/launch failure
        return None
    return src, counts, offsets


def _make_gather(decorate):
    def gather_loop(counts, bases, num_parts, out):
        pos = 0
        for p in range(num_parts):
            base = bases[p]
            for c in range(counts[p]):
                out[pos] = base + c
                pos += 1

    return decorate(gather_loop)


def reverse_gather_fill(
    counts: np.ndarray, bases: np.ndarray, out: np.ndarray
) -> bool:
    """Compiled reverse-gather index fill for the fused exchange.

    Writes the concatenation of ``arange(bases[p], bases[p]+counts[p])``
    over all partitions into ``out`` (int64, preallocated to
    ``counts.sum()``) — the flat gather indices one source GPU's answers
    return through in
    :func:`repro.multigpu.alltoall.transpose_exchange_fast`.  Returns
    False when no JIT provider is available (or the provider fails), so
    the caller keeps its vectorized per-partition fill as the fallback.
    Both legs are property-tested identical
    (``tests/primitives/test_scatter.py``).
    """
    provider = active_provider()
    if provider is None:
        return False
    c = np.ascontiguousarray(counts, dtype=np.int64)
    b = np.ascontiguousarray(bases, dtype=np.int64)
    num_parts = int(c.shape[0])
    try:
        if provider == "cc":
            from . import _jit_cc

            _jit_cc.reverse_gather_compiled(c, b, num_parts, out)
        else:
            fn = _GATHER_CACHE.get(provider)
            if fn is None:
                with obs.span(
                    "jit_compile",
                    "kernel",
                    kernels="compiled",
                    provider=provider,
                    probing="gather",
                    layout="-",
                ):
                    decorate = (
                        _njit_decorator() if provider == "numba" else _identity
                    )
                    fn = _make_gather(decorate)
                    if provider == "numba":
                        e = np.empty(0, np.int64)
                        fn(e, e, 0, e)
                _GATHER_CACHE[provider] = fn
            fn(c, b, num_parts, out)
    except Exception:  # pragma: no cover - provider build/launch failure
        return False
    return True


# -- public kernel entry points -------------------------------------------


def _planes_or_raise(slots):
    planes = slot_planes(slots)
    if planes is None:
        raise ConfigurationError(
            "compiled kernels need a plain AoS slot array or an "
            "unsanitized SoA/compact view; resolve_kernels() falls back "
            "to 'fast' for instrumented stores"
        )
    return planes


def _probe_keys(layout: str, k: np.ndarray) -> np.ndarray:
    """Keys in the domain the slot planes store — σ-encoded for compact."""
    if layout != "compact":
        return k
    from .store import _sigma

    return np.ascontiguousarray(_sigma(k))


def bulk_insert_compiled(
    slots,
    seq: WindowSequence,
    keys: np.ndarray,
    values: np.ndarray,
    counter: TransactionCounter | None = None,
    *,
    wave_size: int | None = None,
) -> tuple[KernelReport, np.ndarray]:
    """Compiled :func:`repro.core.bulk.bulk_insert` — identical contract."""
    k = check_keys(keys)
    v = check_values(values)
    check_same_length("keys", k, "values", v)
    layout, packed, kp, vp = _planes_or_raise(slots)
    n = k.shape[0]
    capacity = slots.shape[0]
    g = seq.group_size
    wave = (
        default_wave_size(capacity)
        if wave_size is None
        else max(int(wave_size), 1)
    )
    k = np.ascontiguousarray(k)
    ek = _probe_keys(layout, k)
    pairs = pack_pairs(ek, v)
    h1, step = seq.hash_cache(k)
    status = np.zeros(n, dtype=np.uint8)
    probes = np.zeros(n, dtype=np.int64)
    counters = np.zeros(5, dtype=np.int64)
    fns = _loops_for(seq.name, layout)
    fns["insert"](
        packed, kp, vp, capacity, g, seq.inner_count, seq.max_windows,
        wave, _sectors_per_window(g, _record_bytes(slots)), h1, step,
        ek, pairs, status, probes, counters,
    )
    report = KernelReport(
        op="insert",
        num_ops=n,
        probe_windows=probes,
        load_sectors=int(counters[0]),
        store_sectors=int(counters[1]),
        cas_attempts=int(counters[2]),
        cas_successes=int(counters[3]),
        warp_collectives=int(counters[4]),
        failed=int(np.sum(status == STATUS["failed"])),
        group_size=g,
    )
    _merge_counter(counter, report)
    return report, status


def bulk_query_compiled(
    slots,
    seq: WindowSequence,
    keys: np.ndarray,
    counter: TransactionCounter | None = None,
    default: int = 0,
) -> tuple[KernelReport, np.ndarray, np.ndarray]:
    """Compiled :func:`repro.core.bulk.bulk_query` — identical contract."""
    k = check_keys(keys)
    layout, packed, kp, vp = _planes_or_raise(slots)
    n = k.shape[0]
    capacity = slots.shape[0]
    g = seq.group_size
    k = np.ascontiguousarray(k)
    ek = _probe_keys(layout, k)
    h1, step = seq.hash_cache(k)
    out_values = np.full(n, default, dtype=np.uint32)
    found = np.zeros(n, dtype=np.bool_)
    probes = np.zeros(n, dtype=np.int64)
    counters = np.zeros(5, dtype=np.int64)
    fns = _loops_for(seq.name, layout)
    fns["query"](
        packed, kp, vp, capacity, g, seq.inner_count, seq.max_windows,
        _sectors_per_window(g, _record_bytes(slots)), h1, step, ek,
        out_values, found, probes, counters,
    )
    report = KernelReport(
        op="query",
        num_ops=n,
        probe_windows=probes,
        load_sectors=int(counters[0]),
        store_sectors=int(counters[1]),
        cas_attempts=int(counters[2]),
        cas_successes=int(counters[3]),
        warp_collectives=int(counters[4]),
        failed=int(np.sum(~found)),
        group_size=g,
    )
    _merge_counter(counter, report)
    return report, out_values, found


def bulk_erase_compiled(
    slots,
    seq: WindowSequence,
    keys: np.ndarray,
    counter: TransactionCounter | None = None,
) -> tuple[KernelReport, np.ndarray]:
    """Compiled :func:`repro.core.bulk.bulk_erase` — identical contract."""
    k = check_keys(keys)
    layout, packed, kp, vp = _planes_or_raise(slots)
    n = k.shape[0]
    capacity = slots.shape[0]
    g = seq.group_size
    k = np.ascontiguousarray(k)
    ek = _probe_keys(layout, k)
    h1, step = seq.hash_cache(k)
    erased = np.zeros(n, dtype=np.bool_)
    probes = np.zeros(n, dtype=np.int64)
    counters = np.zeros(5, dtype=np.int64)
    fns = _loops_for(seq.name, layout)
    fns["erase"](
        packed, kp, vp, capacity, g, seq.inner_count, seq.max_windows,
        _sectors_per_window(g, _record_bytes(slots)), h1, step, ek,
        erased, probes, counters,
    )
    report = KernelReport(
        op="erase",
        num_ops=n,
        probe_windows=probes,
        load_sectors=int(counters[0]),
        store_sectors=int(counters[1]),
        cas_attempts=int(counters[2]),
        cas_successes=int(counters[3]),
        warp_collectives=int(counters[4]),
        failed=int(np.sum(~erased)),
        group_size=g,
    )
    _merge_counter(counter, report)
    return report, erased
