"""Partitioned high-capacity table (the paper's §VI workaround).

§V-C observes that single-GPU insertion degrades for capacities over
2 GB ("atomic CAS might degrade if lock-free instructions are issued
across several memory interfaces") and §VI proposes the fix: "the
partitioning of high capacity hash maps into several smaller hash maps
each of size ≤ 2 GB."

:class:`PartitionedWarpDriveTable` implements that: keys route to one of
``k`` sub-tables by a partition hash, each sub-table small enough that
its CAS traffic stays on one memory-interface neighbourhood.  The
functional behaviour is identical to a monolithic table; the win shows
up in the performance model (bench ``bench_ablation_partitioned.py``).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..exec.engine import ExecutionEngine, ShardKernelTask, create_engine
from ..hashing.partition import PartitionHash, hashed_partition
from ..options import UNSET, reject_unknown, resolve_renamed
from ..perfmodel import calibration as cal
from ..simt.device import Device
from ..utils.validation import check_keys, check_same_length, check_values
from .report import KernelReport
from .table import WarpDriveHashTable

__all__ = ["PartitionedWarpDriveTable"]


class PartitionedWarpDriveTable:
    """A big hash map split into ≤ ``max_partition_bytes`` sub-tables.

    Parameters
    ----------
    capacity:
        Total slot count across sub-tables.
    max_partition_bytes:
        Upper bound per sub-table footprint; defaults to the CAS
        degradation knee (2 GB).
    group_size, p_max, device, probing, layout, growth:
        Forwarded to each sub-table (see
        :class:`~repro.core.config.HashTableConfig`); with a
        :class:`~repro.core.growth.GrowthPolicy` each sub-table grows
        independently as its own load trips the threshold.
    engine, workers:
        Shard-execution backend; sub-tables are disjoint so their bulk
        kernels run concurrently under ``"thread"``/``"process"``.  The
        old ``executor=`` spelling still works with a deprecation
        warning (:mod:`repro.options`).
    kernels:
        Kernel backend for the sub-table bulk ops: ``"fast"`` (default)
        or ``"compiled"`` (JIT inner loops, bit-identical, auto-falling
        back to ``"fast"`` without a provider — see
        ``docs/compiled_backend.md``).
    """

    def __init__(
        self,
        capacity: int,
        *,
        max_partition_bytes: int | None = None,
        group_size: int = 4,
        p_max: int | None = None,
        device: Device | None = None,
        partition: PartitionHash | None = None,
        engine: str | ExecutionEngine = UNSET,
        workers: int | None = None,
        probing: str = UNSET,
        layout: str = UNSET,
        growth=UNSET,
        kernels: str = UNSET,
        **legacy,
    ):
        engine = resolve_renamed(
            "PartitionedWarpDriveTable", legacy,
            old="executor", new="engine", value=engine, default="serial",
        )
        reject_unknown("PartitionedWarpDriveTable", legacy)
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity}")
        limit = (
            max_partition_bytes
            if max_partition_bytes is not None
            else cal.CAS_DEGRADE_KNEE_BYTES
        )
        if limit < 8:
            raise ConfigurationError("max_partition_bytes must fit at least one slot")
        self.num_partitions = max(1, math.ceil(capacity * 8 / limit))
        if partition is None:
            partition = hashed_partition(self.num_partitions)
        elif partition.num_parts != self.num_partitions:
            raise ConfigurationError(
                f"partition has {partition.num_parts} parts; "
                f"{self.num_partitions} sub-tables required"
            )
        self.partition = partition
        if kernels is UNSET:
            kernels = "fast"
        if kernels not in ("fast", "compiled"):
            raise ConfigurationError(
                f"kernels must be 'fast' or 'compiled', got {kernels!r}"
            )
        self.kernels = kernels
        self.engine = create_engine(engine, workers=workers)
        self._owns_engine = not isinstance(engine, ExecutionEngine)
        sub_capacity = -(-capacity // self.num_partitions)
        kwargs = {
            "group_size": group_size,
            "shared": self.engine.requires_shared_slots,
        }
        if p_max is not None:
            kwargs["p_max"] = p_max
        for opt, val in (("probing", probing), ("layout", layout),
                         ("growth", growth)):
            if val is not UNSET:
                kwargs[opt] = val
        self.subtables = [
            WarpDriveHashTable(sub_capacity, device=device, **kwargs)
            for _ in range(self.num_partitions)
        ]
        self.last_report: KernelReport | None = None

    # -- properties --------------------------------------------------------

    @property
    def capacity(self) -> int:
        return sum(t.capacity for t in self.subtables)

    @property
    def subtable_bytes(self) -> int:
        """Per-sub-table footprint — what the CAS degradation sees."""
        return max(t.table_bytes for t in self.subtables)

    @property
    def table_bytes(self) -> int:
        return sum(t.table_bytes for t in self.subtables)

    def __len__(self) -> int:
        return sum(len(t) for t in self.subtables)

    @property
    def load_factor(self) -> float:
        return len(self) / self.capacity

    # -- operations ----------------------------------------------------------

    def _route(self, keys: np.ndarray) -> list[np.ndarray]:
        parts = self.partition(keys)
        return [np.flatnonzero(parts == p) for p in range(self.num_partitions)]

    def _run_subtable_kernels(
        self,
        op: str,
        routed: list[np.ndarray],
        keys: np.ndarray,
        values: np.ndarray | None = None,
        *,
        default: int = 0,
    ) -> list:
        """Run one kernel per non-empty sub-table through the engine.

        Results come back in sub-table order; absorbing in that order
        keeps counters and rebuild decisions identical across backends.
        """
        tasks = []
        for p, idx in enumerate(routed):
            if idx.size == 0:
                continue
            sub = self.subtables[p]
            tasks.append(
                ShardKernelTask(
                    shard=p,
                    op=op,
                    slots=sub.slots,
                    seq=sub.seq,
                    keys=keys[idx],
                    values=None if values is None else values[idx],
                    default=default,
                    shm=sub.shm_descriptor(),
                    kernels=self.kernels,
                )
            )
        return self.engine.run(tasks) if tasks else []

    def grow(self, new_capacity: int) -> list[KernelReport]:
        """Grow every sub-table so the total reaches ``new_capacity``.

        Returns the per-sub-table rehash reports (empty sub-tables
        contribute none).  Routing is untouched — the partition hash is
        independent of sub-table capacity, so grown sub-tables keep
        answering for exactly the same key set.
        """
        if new_capacity <= self.capacity:
            raise ConfigurationError(
                f"grown capacity {new_capacity} must exceed "
                f"current capacity {self.capacity}"
            )
        target = -(-int(new_capacity) // self.num_partitions)
        reports = []
        for sub in self.subtables:
            if target > sub.capacity:
                rep = sub.grow(target)
                if rep is not None:
                    reports.append(rep)
        return reports

    def insert(self, keys: np.ndarray, values: np.ndarray) -> KernelReport:
        k = check_keys(keys)
        v = check_values(values)
        check_same_length("keys", k, "values", v)
        routed = self._route(k)
        # growth-policy sub-tables resize *before* the shard tasks snapshot
        # their slot views/descriptors, so every backend (incl. process
        # workers attaching by segment name) sees the grown store
        for p, idx in enumerate(routed):
            if idx.size:
                self.subtables[p].ensure_capacity(idx.size)
        merged: KernelReport | None = None
        for res in self._run_subtable_kernels("insert", routed, k, v):
            idx = routed[res.shard]
            rep = self.subtables[res.shard].absorb_insert(
                k[idx], v[idx], res.report, res.status
            )
            merged = rep if merged is None else merged.merge(rep)
        report = merged if merged is not None else KernelReport(op="insert")
        self.last_report = report
        return report

    def query(
        self, keys: np.ndarray, *, default: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        k = check_keys(keys)
        values = np.full(k.shape[0], default, dtype=np.uint32)
        found = np.zeros(k.shape[0], dtype=bool)
        routed = self._route(k)
        merged: KernelReport | None = None
        for res in self._run_subtable_kernels("query", routed, k, default=default):
            idx = routed[res.shard]
            values[idx] = res.values
            found[idx] = res.found
            rep = self.subtables[res.shard].absorb_query(res.report)
            merged = rep if merged is None else merged.merge(rep)
        self.last_report = merged
        return values, found

    def erase(self, keys: np.ndarray) -> np.ndarray:
        k = check_keys(keys)
        erased = np.zeros(k.shape[0], dtype=bool)
        routed = self._route(k)
        for res in self._run_subtable_kernels("erase", routed, k):
            erased[routed[res.shard]] = res.erased
            self.subtables[res.shard].absorb_erase(res.report)
        return erased

    def export(self) -> tuple[np.ndarray, np.ndarray]:
        ks, vs = [], []
        for t in self.subtables:
            a, b = t.export()
            ks.append(a)
            vs.append(b)
        return np.concatenate(ks), np.concatenate(vs)

    def free(self) -> None:
        for t in self.subtables:
            t.free()
        if self._owns_engine:
            self.engine.close()
