"""Probe-length statistics and theoretical expectations.

The group-size trade-off of Fig. 7 has a clean analytic core: under an
ideal hash at true load α, a window of ``|g|`` slots is fully occupied
with probability ~``α^|g|``, so the expected number of windows an insert
examines is ``1 / (1 - α^|g|)`` (geometric).  These helpers expose both
the measured distribution (from :class:`~repro.core.report.KernelReport`)
and the theory, so tests can check the executors against the math and the
perf model can be derived from first principles.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..utils.stats import Summary, summarize
from .report import KernelReport

__all__ = [
    "expected_insert_windows",
    "expected_query_windows",
    "probe_summary",
    "probe_histogram_fractions",
]


def expected_insert_windows(load_factor: float, group_size: int) -> float:
    """E[windows probed per insert] ≈ 1 / (1 - α^|g|).

    Uses the *final* load as a pessimistic bound; inserting into an
    initially empty table averages over loads 0..α, so measured means sit
    below this value — tests assert the ordering, benches use the measured
    numbers.
    """
    if not 0 <= load_factor < 1:
        raise ConfigurationError(
            f"load_factor must be in [0, 1) for the expectation, got {load_factor}"
        )
    if group_size < 1:
        raise ConfigurationError(f"group_size must be >= 1, got {group_size}")
    blocked = load_factor**group_size
    return 1.0 / (1.0 - blocked)


def expected_query_windows(
    load_factor: float, group_size: int, hit_rate: float = 1.0
) -> float:
    """E[windows probed per query].

    A *hit* ends, on average, where the insert that placed the key ended —
    averaged over the table's fill history: ``(1/α)·∫₀^α 1/(1-x^g) dx``
    (approximated numerically).  A *miss* ends at the first window
    containing an empty slot, i.e. the same geometric as an insert at the
    current load.
    """
    if not 0 <= load_factor < 1:
        raise ConfigurationError(
            f"load_factor must be in [0, 1) for the expectation, got {load_factor}"
        )
    if not 0 <= hit_rate <= 1:
        raise ConfigurationError(f"hit_rate must be in [0, 1], got {hit_rate}")
    if load_factor == 0:
        return 1.0
    xs = np.linspace(0.0, load_factor, 256)
    hit_expectation = float(np.mean(1.0 / (1.0 - xs**group_size)))
    miss_expectation = expected_insert_windows(load_factor, group_size)
    return hit_rate * hit_expectation + (1 - hit_rate) * miss_expectation


def probe_summary(report: KernelReport) -> Summary:
    """Five-number summary of the windows-probed distribution."""
    return summarize(report.probe_windows)


def probe_histogram_fractions(report: KernelReport) -> np.ndarray:
    """Fraction of operations by windows probed (index = window count)."""
    hist = report.window_histogram().astype(np.float64)
    total = hist.sum()
    return hist / total if total else hist
