"""Reference CG kernels — a faithful transcription of the paper's Fig. 3.

These run one coalesced group per key-value pair as a Python generator
that yields at every global-memory observation point, so a
:class:`~repro.simt.scheduler.Scheduler` can interleave groups and create
genuine CAS races.  They are the semantic ground truth the vectorized
bulk executors (:mod:`repro.core.bulk`) are tested against — and they are
slow on purpose: clarity over speed, smallish inputs only.

Beyond Fig. 3 the insert kernel carries the paper's §V-B extension:
"our implementation resolves such collisions by updating an already
written value for a colliding key" — a window is first scanned for a
matching key (update path), then for vacant slots (insert path).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..constants import TOMBSTONE_SLOT
from ..memory.layout import pack_scalar
from ..simt.atomics import atomic_cas
from ..simt.counters import TransactionCounter, sectors_for_access
from ..simt.warp import CoalescedGroup
from .probing import WindowSequence
from .slots import is_empty, is_vacant, matches_key, slot_values

__all__ = ["insert_task", "query_task", "erase_task"]


def _load_window(
    slots: np.ndarray,
    rows: np.ndarray,
    counter: TransactionCounter | None,
) -> np.ndarray:
    """Coalesced load of one |g|-slot window into 'registers'.

    The compact layout charges the closed form the bulk/compiled paths
    use (``sectors_for_access(0, g * record_bytes)``): per-lane
    addressing at a sub-8-byte stride would diverge from the idealized
    contiguous-record window at some alignments, and the three backends
    must stay charge-identical per layout.  AoS/SoA windows start on
    8-byte multiples, where the per-lane and closed forms agree exactly.
    """
    if counter is not None:
        record = int(getattr(slots, "record_bytes", 8))
        if record == 8:
            counter.charge_coalesced_load(rows * 8, 8)
        else:
            counter.load_sectors += sectors_for_access(0, rows.size * record)
        counter.window_probes += 1
        counter.slot_comparisons += rows.size
    return slots[rows].copy()


def insert_task(
    slots: np.ndarray,
    seq: WindowSequence,
    group: CoalescedGroup,
    key: int,
    value: int,
    counter: TransactionCounter | None = None,
) -> Iterator[None]:
    """Insert one pair with a coalesced group; returns (status, windows).

    Status is ``"inserted"``, ``"updated"`` (existing key), or
    ``"failed"`` (``p_max`` exhausted).  Yields after every window load
    and every CAS so schedulers can interleave concurrent groups.

    Two-phase structure: the group *scans* the walk — remembering the
    first vacant slot — until it either finds the key (update in place,
    §V-B) or reaches an EMPTY slot proving the key is absent, and only
    then CAS-claims the remembered slot.  Without deletions the first
    vacant slot *is* the first EMPTY slot and this collapses to Fig. 3's
    single pass; with tombstones the extra scan prevents an insert from
    shadowing an existing copy of the key.
    """
    capacity = slots.shape[0]
    pair = pack_scalar(key, value)
    key_arr = np.asarray([key], dtype=np.uint32)
    windows = 0

    while True:  # restart wrapper: a lost claim rescans the walk
        claim_row = -1
        claim_lane = -1
        claim_expected = np.uint64(0)
        finished_scan = False

        for p in range(seq.p_max):  # outer probing loop (Fig. 3 line 4)
            for q in range(seq.inner_count):  # inner probing loop (line 6)
                rows = seq.window_slots(key_arr, p, q, capacity)[0]
                d_t = _load_window(slots, rows, counter)
                windows += 1
                yield

                while True:
                    # §V-B update path: key already lives in this window
                    match_mask = group.ballot(matches_key(d_t, key))
                    if match_mask:
                        leader = group.elect_leader(match_mask)
                        old = atomic_cas(
                            slots, int(rows[leader]), d_t[leader], pair, counter,
                            lane=leader,
                        )
                        yield
                        if old == d_t[leader]:
                            return ("updated", windows)
                        # lost a race (concurrent update); reload, retry
                        d_t = _load_window(slots, rows, counter)
                        yield
                        continue
                    break

                # remember the walk's first vacant slot (Fig. 3 line 11
                # leader election, deferred to the claim phase)
                mask = group.ballot(is_vacant(d_t))
                if claim_row < 0 and mask:
                    leader = group.elect_leader(mask)
                    claim_row = int(rows[leader])
                    claim_lane = leader
                    claim_expected = d_t[leader]
                # an EMPTY slot ends the scan: no copy can lie beyond it
                if group.any(is_empty(d_t)):
                    finished_scan = True
                    break
            if finished_scan:
                break

        if claim_row < 0:
            # p_max exhausted without a single vacancy (line 26)
            return ("failed", windows)

        old = atomic_cas(
            slots, claim_row, claim_expected, pair, counter, lane=claim_lane
        )
        yield
        if old == claim_expected:
            return ("inserted", windows)
        # the remembered slot changed under us: rescan from the top
        # against the updated table (lines 19-22's reload, generalized)


def query_task(
    slots: np.ndarray,
    seq: WindowSequence,
    group: CoalescedGroup,
    key: int,
    counter: TransactionCounter | None = None,
) -> Iterator[None]:
    """Retrieve one key; returns (status, value, windows).

    "Queries are performed in a similar way whereby the atomic swap is
    not required" (§IV-A).  An EMPTY slot inside a window proves the key
    absent (an insert would have claimed it); a tombstone does not.
    """
    capacity = slots.shape[0]
    key_arr = np.asarray([key], dtype=np.uint32)
    windows = 0

    for p in range(seq.p_max):
        for q in range(seq.inner_count):
            rows = seq.window_slots(key_arr, p, q, capacity)[0]
            d_t = _load_window(slots, rows, counter)
            windows += 1
            yield

            match_mask = group.ballot(matches_key(d_t, key))
            if match_mask:
                leader = group.elect_leader(match_mask)
                value = int(slot_values(d_t)[leader])
                return ("found", value, windows)
            if group.any(is_empty(d_t)):
                return ("absent", 0, windows)

    return ("absent", 0, windows)


def erase_task(
    slots: np.ndarray,
    seq: WindowSequence,
    group: CoalescedGroup,
    key: int,
    counter: TransactionCounter | None = None,
) -> Iterator[None]:
    """Delete one key by writing tombstones; returns (status, windows).

    The paper notes deletions must not interleave with inserts/queries
    without a global barrier; the table enforces that at the API level,
    but the kernel still CAS-guards the tombstone writes for safety under
    concurrent *erase* traffic.

    Like the bulk executor, the walk continues past a match until an
    EMPTY slot proves no shadowed duplicate copy can follow, tombstoning
    every copy it encounters (no resurrection after erase).
    """
    capacity = slots.shape[0]
    key_arr = np.asarray([key], dtype=np.uint32)
    windows = 0
    erased_any = False

    for p in range(seq.p_max):
        for q in range(seq.inner_count):
            rows = seq.window_slots(key_arr, p, q, capacity)[0]
            d_t = _load_window(slots, rows, counter)
            windows += 1
            yield

            while True:
                match_mask = group.ballot(matches_key(d_t, key))
                if match_mask:
                    leader = group.elect_leader(match_mask)
                    old = atomic_cas(
                        slots,
                        int(rows[leader]),
                        d_t[leader],
                        TOMBSTONE_SLOT,
                        counter,
                        lane=leader,
                    )
                    yield
                    if old == d_t[leader]:
                        erased_any = True
                    # reload: clear this match from the ballot and catch
                    # further copies (or races) in the same window
                    d_t = _load_window(slots, rows, counter)
                    yield
                    continue
                if group.any(is_empty(d_t)):
                    return ("erased" if erased_any else "absent", windows)
                break

    return ("erased" if erased_any else "absent", windows)
