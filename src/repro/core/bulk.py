"""Vectorized bulk executors for insert / query / erase.

Functionally equivalent to the reference kernels of
:mod:`repro.core.kernels_ref` (their final table *contents* match under a
serialized schedule; property tests enforce this) but vectorized over all
pending keys with NumPy, so paper-scale-ish workloads run in seconds.

Round structure
---------------
Each round, every pending key examines its current probing window (the
same window walk as Fig. 3): a snapshot load, a key-match scan (§V-B
update path), then a vacant-slot scan.  Conflicting slot claims inside a
round are arbitrated exactly like serialized CAS traffic would be:

* distinct keys claiming the same vacant slot — the lowest submission
  index wins, losers re-examine the *same* window next round (they would
  have lost the CAS and re-ballotted);
* several updates of the same live slot (duplicate keys) — all succeed in
  submission order, so the *highest* index's value survives, matching
  last-writer-wins on the paper's "event horizon".

Work accounting matches what the real kernel would do: one coalesced
window load per examined window, one CAS per claim attempt (failed for
losers), one 8-byte store per successful insert/update.
"""

from __future__ import annotations

import numpy as np

from ..constants import EMPTY_SLOT, TOMBSTONE_SLOT
from ..memory.layout import pack_pairs
from ..simt.counters import TransactionCounter, sectors_for_access
from ..utils.validation import check_keys, check_same_length, check_values
from .probing import WindowSequence
from .report import KernelReport
from .slots import is_vacant, slot_keys, slot_values

__all__ = ["bulk_insert", "bulk_query", "bulk_erase", "STATUS"]

_U64 = np.uint64

#: status codes shared by the bulk executors
STATUS = {
    "pending": 0,
    "inserted": 1,
    "updated": 2,
    "failed": 3,
    "found": 4,
    "absent": 5,
    "erased": 6,
}


def _window_rows(
    seq: WindowSequence, keys: np.ndarray, flat: np.ndarray, capacity: int
) -> np.ndarray:
    """Slot indices of each key's current window, shape (m, |g|).

    ``flat`` is the per-key flat window counter; outer attempt
    ``p = flat // inner`` re-hashes, inner slide ``q = flat % inner``
    shifts by ``q·|g|`` (Fig. 3 line 7, vectorized over keys with
    *different* (p, q) positions).

    All hash arithmetic wraps at 32 bits, exactly like the scalar
    :meth:`WindowSequence.window_hash` path and the paper's ``uint32``
    kernels — the two executors must visit identical windows.
    """
    ranks = np.arange(seq.group_size, dtype=np.int64)
    h1, step = _hash_cache(seq, keys)
    return _cached_window_rows(
        h1, step, flat, seq.inner_count, seq.group_size, ranks, capacity
    )


def _hash_cache(seq: WindowSequence, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-key (h1, step) hashes, computed once per wave entry.

    A key's hashes never change across rounds, so the round loop gathers
    from this cache instead of re-running the mixers over the pending
    set every round.  Delegating to :meth:`WindowSequence.hash_cache`
    makes the probing scheme a policy: every sequence publishes its walk
    in the affine ``h1 + p·step + q·|g|`` form the cached arithmetic of
    :func:`_cached_window_rows` evaluates bit for bit.
    """
    return seq.hash_cache(keys)


def _cached_window_rows(
    h1: np.ndarray,
    step: np.ndarray,
    flat: np.ndarray,
    inner: int,
    group_size: int,
    ranks: np.ndarray,
    capacity: int,
) -> np.ndarray:
    """:func:`_window_rows` on pre-hashed keys (`h1`/`step` gathered)."""
    p = flat // inner
    q = flat % inner
    with np.errstate(over="ignore"):
        h = h1 + (p & 0xFFFFFFFF).astype(np.uint32) * step
        start = (h + (q * group_size).astype(np.uint32)).astype(_U64) % _U64(
            capacity
        )
    return (start.astype(np.int64)[:, None] + ranks[None, :]) % capacity


def _any_rows(mask: np.ndarray) -> np.ndarray:
    """Row-wise ``mask.any(axis=1)`` for the narrow (m, |g|) round masks.

    NumPy's axis-1 boolean reduce goes through the pairwise buffering
    machinery and is ~7x slower than |g|-1 column ORs at |g| <= 8 (the
    paper-optimal group sizes), which makes it the hottest line of the
    round loop.  Wide groups keep the builtin reduce.
    """
    g = mask.shape[1]
    if g == 1:
        return mask[:, 0]
    if g > 8:
        return mask.any(axis=1)
    out = mask[:, 0].copy()
    for lane in range(1, g):
        np.bitwise_or(out, mask[:, lane], out=out)
    return out


def _sectors_per_window(group_size: int, record_bytes: int = 8) -> int:
    """Sectors per aligned coalesced window load of |g| slot records.

    ``record_bytes`` is the layout's modelled record width — 8 for
    ``aos``/``soa``, the quotiented sub-8-byte width for ``compact``
    (:func:`repro.core.store.slot_record_bytes`); the compact window is
    a contiguous run of narrower records, so it can span fewer sectors.
    """
    return sectors_for_access(0, group_size * record_bytes)


def _record_bytes(slots) -> int:
    """Modelled bytes per slot record of the view the kernel runs on."""
    return int(getattr(slots, "record_bytes", 8))


def default_wave_size(capacity: int) -> int:
    """Concurrency window of the bulk executor.

    A real GPU keeps only ~10^5 threads resident, so at any instant the
    in-flight keys are a small fraction of the table; racing *all* n keys
    at once would wildly overstate CAS contention at high loads.  Waves
    bound the in-flight set to a few percent of the capacity (floor 2048
    to keep the vectorized rounds wide).
    """
    return max(2048, capacity // 32)


def bulk_insert(
    slots: np.ndarray,
    seq: WindowSequence,
    keys: np.ndarray,
    values: np.ndarray,
    counter: TransactionCounter | None = None,
    *,
    wave_size: int | None = None,
) -> tuple[KernelReport, np.ndarray]:
    """Insert all pairs; returns (report, per-item status codes).

    Per-item status is ``STATUS['inserted']``, ``['updated']``, or
    ``['failed']``.  The caller (the table) decides how to react to
    failures — transparently rebuild, or raise.  ``wave_size`` bounds the
    number of concurrently racing keys (see :func:`default_wave_size`).
    """
    k = check_keys(keys)
    v = check_values(values)
    check_same_length("keys", k, "values", v)
    n = k.shape[0]
    capacity = slots.shape[0]
    g = seq.group_size
    wave = default_wave_size(capacity) if wave_size is None else max(int(wave_size), 1)

    pairs = pack_pairs(k, v)
    status = np.zeros(n, dtype=np.uint8)
    win_idx = np.zeros(n, dtype=np.int64)
    probes = np.zeros(n, dtype=np.int64)
    # first vacant slot seen along each item's walk (-1 = none yet).
    # Tombstones force a two-phase insert: the walk must reach an EMPTY
    # slot (proving the key is not stored further along) before the
    # remembered first-vacant slot may be claimed — otherwise an insert
    # after deletions could shadow an existing copy of the key.
    first_vac = np.full(n, -1, dtype=np.int64)

    report = KernelReport(op="insert", num_ops=n, group_size=g)
    sectors_per_window = _sectors_per_window(g, _record_bytes(slots))
    max_windows = seq.max_windows
    inner = seq.inner_count
    ranks = np.arange(g, dtype=np.int64)
    # per-wave hash cache: filled chunk-by-chunk as items enter the wave
    h1 = np.empty(n, dtype=np.uint32)
    hstep = np.empty(n, dtype=np.uint32)
    all_idx = np.arange(n, dtype=np.int64)

    # the pending set lives in a preallocated ring of index buffers:
    # survivors compact into the spare buffer each round, new items are
    # appended at the tail — no per-round np.concatenate
    ring_cap = max(min(wave, n), 1)
    ring, spare = np.empty(ring_cap, np.int64), np.empty(ring_cap, np.int64)
    count = 0  # live entries in ring[:count]
    cursor = 0  # next unlaunched item; items enter as wave slots free up
    while count or cursor < n:
        if cursor < n and count < wave:
            take = min(wave - count, n - cursor)
            ring[count : count + take] = all_idx[cursor : cursor + take]
            h1[cursor : cursor + take], hstep[cursor : cursor + take] = _hash_cache(
                seq, k[cursor : cursor + take]
            )
            count += take
            cursor += take
        pending = ring[:count]
        m = count
        cur_keys = k[pending]
        rows = _cached_window_rows(
            h1[pending], hstep[pending], win_idx[pending], inner, g, ranks, capacity
        )
        window = slots[rows]  # snapshot (m, g)
        probes[pending] += 1
        report.load_sectors += m * sectors_per_window

        wkeys = slot_keys(window)
        is_emp = window == EMPTY_SLOT
        vac = is_emp | (window == TOMBSTONE_SLOT)
        # sentinel key halves decode above MAX_KEY, so a raw key-half
        # comparison cannot match a vacant slot — no live-mask needed
        match = wkeys == cur_keys[:, None]
        has_match = _any_rows(match)
        empty_here = _any_rows(is_emp)

        # ---- update path: key already stored in this window ----------
        upd = np.flatnonzero(has_match)
        if upd.size:
            lanes = np.argmax(match[upd], axis=1)
            target = rows[upd, lanes]
            items = pending[upd]
            # serialize same-slot updates in submission order: sort by
            # (slot, item); the last of each slot group is the survivor
            order = np.lexsort((items, target))
            t_sorted = target[order]
            i_sorted = items[order]
            last_of_group = np.ones(order.size, dtype=bool)
            last_of_group[:-1] = t_sorted[1:] != t_sorted[:-1]
            slots[t_sorted[last_of_group]] = pairs[i_sorted[last_of_group]]
            report.cas_attempts += upd.size
            report.cas_successes += upd.size
            report.store_sectors += int(last_of_group.sum())
            status[items] = STATUS["updated"]

        # ---- scan path: remember the walk's first vacant slot ---------
        # (argmax only over the items that actually record this round)
        record = (first_vac[pending] < 0) & _any_rows(vac) & ~has_match
        rec = np.flatnonzero(record)
        if rec.size:
            first_lane = np.argmax(vac[rec], axis=1)
            first_vac[pending[rec]] = rows[rec, first_lane]

        # ---- claim path: EMPTY reached (or budget exhausted) ----------
        at_end = ~has_match & empty_here
        exhausted_now = ~has_match & ~empty_here & (
            win_idx[pending] + 1 >= max_windows
        )
        resolved_this_round = at_end | exhausted_now
        resolve = np.flatnonzero(resolved_this_round)
        if resolve.size:
            items = pending[resolve]
            targets = first_vac[items]
            cant = targets < 0  # exhausted the budget with no vacancy
            status[items[cant]] = STATUS["failed"]
            claim_items = items[~cant]
            claim_slots = targets[~cant]
            if claim_items.size:
                # winner per distinct slot = lowest submission index
                order = np.lexsort((claim_items, claim_slots))
                t_sorted = claim_slots[order]
                i_sorted = claim_items[order]
                first_of_group = np.ones(order.size, dtype=bool)
                first_of_group[1:] = t_sorted[1:] != t_sorted[:-1]
                # a slot may have been taken by an earlier wave's winner
                # after this item recorded it: those CAS attempts fail too
                still_vacant = is_vacant(slots[t_sorted])
                commit = first_of_group & still_vacant
                winners = i_sorted[commit]
                slots[t_sorted[commit]] = pairs[winners]
                status[winners] = STATUS["inserted"]
                report.cas_attempts += claim_items.size
                report.cas_successes += winners.size
                report.store_sectors += winners.size
                # losers restart their walk against the updated table
                losers = i_sorted[~commit]
                first_vac[losers] = -1
                win_idx[losers] = 0
                report.load_sectors += losers.size * sectors_per_window

        # ---- bookkeeping: advance the still-scanning items -------------
        # (resolved items — done, failed, or restarted losers — skip the
        # advance; losers restart their walk at window 0)
        advance = pending[~has_match & ~resolved_this_round]
        win_idx[advance] += 1

        report.warp_collectives += 2 * m  # match ballot + vacancy ballot

        still = status[pending] == STATUS["pending"]
        count = int(np.count_nonzero(still))
        np.compress(still, pending, out=spare[:count])
        ring, spare = spare, ring

    report.probe_windows = probes
    report.failed = int(np.sum(status == STATUS["failed"]))
    _merge_counter(counter, report)
    return report, status


def _merge_counter(counter: TransactionCounter | None, report: KernelReport) -> None:
    if counter is not None:
        report.charge_to(counter)


def bulk_query(
    slots: np.ndarray,
    seq: WindowSequence,
    keys: np.ndarray,
    counter: TransactionCounter | None = None,
    default: int = 0,
) -> tuple[KernelReport, np.ndarray, np.ndarray]:
    """Retrieve all keys; returns (report, values, found-mask).

    Missing keys yield ``default`` and ``found == False``; the report's
    ``failed`` field counts them.
    """
    k = check_keys(keys)
    n = k.shape[0]
    capacity = slots.shape[0]
    g = seq.group_size

    out_values = np.full(n, default, dtype=np.uint32)
    found = np.zeros(n, dtype=bool)
    done = np.zeros(n, dtype=bool)
    win_idx = np.zeros(n, dtype=np.int64)
    probes = np.zeros(n, dtype=np.int64)

    report = KernelReport(op="query", num_ops=n, group_size=g)
    sectors_per_window = _sectors_per_window(g, _record_bytes(slots))
    max_windows = seq.max_windows
    inner = seq.inner_count
    ranks = np.arange(g, dtype=np.int64)
    h1, hstep = _hash_cache(seq, k)

    ring, spare = np.arange(n, dtype=np.int64), np.empty(n, dtype=np.int64)
    count = n
    while count:
        pending = ring[:count]
        m = count
        cur_keys = k[pending]
        rows = _cached_window_rows(
            h1[pending], hstep[pending], win_idx[pending], inner, g, ranks, capacity
        )
        window = slots[rows]
        probes[pending] += 1
        report.load_sectors += m * sectors_per_window
        report.warp_collectives += 2 * m

        wkeys = slot_keys(window)
        match = wkeys == cur_keys[:, None]
        has_match = _any_rows(match)
        empty_in_window = _any_rows(window == EMPTY_SLOT)

        hit = np.flatnonzero(has_match)
        if hit.size:
            lanes = np.argmax(match[hit], axis=1)
            items = pending[hit]
            out_values[items] = slot_values(window[hit, lanes])
            found[items] = True
            done[items] = True

        miss = pending[~has_match & empty_in_window]
        done[miss] = True

        advance = pending[~has_match & ~empty_in_window]
        win_idx[advance] += 1
        done[advance[win_idx[advance] >= max_windows]] = True

        still = ~done[pending]
        count = int(np.count_nonzero(still))
        np.compress(still, pending, out=spare[:count])
        ring, spare = spare, ring

    report.probe_windows = probes
    report.failed = int(np.sum(~found))
    _merge_counter(counter, report)
    return report, out_values, found


def bulk_erase(
    slots: np.ndarray,
    seq: WindowSequence,
    keys: np.ndarray,
    counter: TransactionCounter | None = None,
) -> tuple[KernelReport, np.ndarray]:
    """Tombstone all present keys; returns (report, erased-mask).

    The paper allows deletions only between global barriers; this bulk
    call *is* such a barrier-delimited phase.

    The probe does **not** stop at the first match: an insert that
    claimed an early tombstone can shadow an older copy of the same key
    further along the walk, and stopping early would let the shadowed
    copy *resurrect* after the erase.  Erase therefore walks until an
    EMPTY window proves no further copy can exist, tombstoning every
    match it passes.
    """
    k = check_keys(keys)
    n = k.shape[0]
    capacity = slots.shape[0]
    g = seq.group_size

    erased = np.zeros(n, dtype=bool)
    done = np.zeros(n, dtype=bool)
    win_idx = np.zeros(n, dtype=np.int64)
    probes = np.zeros(n, dtype=np.int64)

    report = KernelReport(op="erase", num_ops=n, group_size=g)
    sectors_per_window = _sectors_per_window(g, _record_bytes(slots))
    max_windows = seq.max_windows
    inner = seq.inner_count
    ranks = np.arange(g, dtype=np.int64)
    h1, hstep = _hash_cache(seq, k)

    ring, spare = np.arange(n, dtype=np.int64), np.empty(n, dtype=np.int64)
    count = n
    while count:
        pending = ring[:count]
        m = count
        cur_keys = k[pending]
        rows = _cached_window_rows(
            h1[pending], hstep[pending], win_idx[pending], inner, g, ranks, capacity
        )
        window = slots[rows]
        probes[pending] += 1
        report.load_sectors += m * sectors_per_window
        report.warp_collectives += 2 * m

        wkeys = slot_keys(window)
        match = wkeys == cur_keys[:, None]
        has_match = _any_rows(match)
        empty_in_window = _any_rows(window == EMPTY_SLOT)

        hit = np.flatnonzero(has_match)
        if hit.size:
            # tombstone every matching lane in the window (duplicate
            # copies of a key can share one window after shadowing)
            targets = np.unique(rows[hit][match[hit]])
            slots[targets] = TOMBSTONE_SLOT
            report.cas_attempts += hit.size
            report.cas_successes += hit.size
            report.store_sectors += int(targets.size)
            erased[pending[hit]] = True

        # only an EMPTY slot (or budget exhaustion) ends the walk — a
        # match does not, because further shadowed copies may follow
        finished = pending[empty_in_window]
        done[finished] = True

        advance = pending[~empty_in_window]
        win_idx[advance] += 1
        done[advance[win_idx[advance] >= max_windows]] = True

        still = ~done[pending]
        count = int(np.count_nonzero(still))
        np.compress(still, pending, out=spare[:count])
        ring, spare = spare, ring

    report.probe_windows = probes
    report.failed = int(np.sum(~erased))
    _merge_counter(counter, report)
    return report, erased
