"""WarpDrive core: the sub-warp-probed open-addressing hash table."""

from .bulk import STATUS, bulk_erase, bulk_insert, bulk_query
from .config import HashTableConfig
from .growth import GrowthPolicy
from .kernels_ref import erase_task, insert_task, query_task
from .probing import (
    WINDOW_SEQUENCES,
    DoubleHashProbing,
    DoubleWindowSequence,
    LinearProbing,
    LinearWindowSequence,
    ProbeSequence,
    QuadraticProbing,
    WindowRef,
    WindowSequence,
    make_window_sequence,
)
from .report import KernelReport
from .store import (
    STORE_LAYOUTS,
    SlotStore,
    SoAPackedView,
    make_store,
)
from .slots import (
    is_empty,
    is_live,
    is_tombstone,
    is_vacant,
    matches_key,
    slot_keys,
    slot_values,
)
from .stats import (
    expected_insert_windows,
    expected_query_windows,
    probe_histogram_fractions,
    probe_summary,
)
from .adaptive import AdaptiveWarpDriveTable
from .counting import CountingHashTable
from .multivalue import MultiValueHashTable
from .partitioned import PartitionedWarpDriveTable
from .table import WarpDriveHashTable

__all__ = [
    "WarpDriveHashTable",
    "AdaptiveWarpDriveTable",
    "PartitionedWarpDriveTable",
    "MultiValueHashTable",
    "CountingHashTable",
    "HashTableConfig",
    "GrowthPolicy",
    "KernelReport",
    "SlotStore",
    "SoAPackedView",
    "STORE_LAYOUTS",
    "make_store",
    "WindowSequence",
    "DoubleWindowSequence",
    "LinearWindowSequence",
    "WINDOW_SEQUENCES",
    "make_window_sequence",
    "WindowRef",
    "ProbeSequence",
    "LinearProbing",
    "QuadraticProbing",
    "DoubleHashProbing",
    "bulk_insert",
    "bulk_query",
    "bulk_erase",
    "STATUS",
    "insert_task",
    "query_task",
    "erase_task",
    "is_empty",
    "is_tombstone",
    "is_vacant",
    "is_live",
    "slot_keys",
    "slot_values",
    "matches_key",
    "expected_insert_windows",
    "expected_query_windows",
    "probe_summary",
    "probe_histogram_fractions",
]
