"""Slot storage policy — the memory layout behind a WarpDrive table.

WarpCore (Jünger et al.) shows the WarpDrive design decomposes into
orthogonal policies, storage layout being one of them.  This module is
that seam for the reproduction: a :class:`SlotStore` owns the slot
memory of one table and exposes it as a *packed view* — an
ndarray-like object over ``uint64`` packed pairs — which is the only
handle the kernels (:mod:`repro.core.bulk`,
:mod:`repro.core.kernels_ref`), the execution engine, the serializer,
and the sanitizer ever touch.  No module outside the store knows how
the bits are arranged.

Three layouts ship:

``aos`` (default)
    Packed array-of-structures: one ``uint64`` per slot, key in the
    high 32 bits — the paper's layout.  The packed view *is* the raw
    array (zero overhead).

``soa``
    Structure-of-arrays: two ``uint32`` planes (keys, values).  The
    :class:`SoAPackedView` packs/unpacks on access, bit-exactly — the
    sentinel encodings round-trip because the planes store the literal
    high/low halves of ``EMPTY_SLOT`` / ``TOMBSTONE_SLOT`` (both have
    key half ``0xFFFFFFFF``; they differ in the value half).

``compact``
    Quotienting layout (*Compact Parallel Hash Tables on the GPU*,
    PAPERS.md): a remainder+fingerprint plane plus a value plane.  The
    probe position already pins ``floor(log2 capacity)`` key bits (the
    quotient), so the modelled slot record only needs the remaining
    ``32 - floor(log2 c)`` remainder bits plus a
    :data:`FINGERPRINT_BITS`-bit fingerprint next to the 32-bit value —
    :func:`compact_slot_bits` / :func:`slot_record_bytes` give the
    modelled width, which drops below 8 bytes once the quotient pins
    more bits than the fingerprint adds (capacity ≥ 2^16).  Physically
    the plane stores ``σ(key-half)`` where σ is a fixed bijective
    32-bit mixer (:func:`repro.hashing.mixers.fmix32`): bijective means
    no information is lost — queries reconstruct the exact key half, so
    compact tables are *bit-exact*, not probabilistic, and the reserved
    key half ``0xFFFFFFFF`` maps to a reserved σ-image no legal key can
    produce, keeping the EMPTY/TOMBSTONE sentinel protocol intact
    (sentinels share the key half and differ in the value half, exactly
    as in ``soa``).  See ``docs/compact_layout.md``.

Either layout can live in plain memory, simulated VRAM
(:class:`~repro.memory.buffer.DeviceBuffer`), or POSIX shared memory
(:mod:`repro.exec.shm`) for the process execution backend; a device
sanitizer shadow-instruments the view in every combination.
"""

from __future__ import annotations

import numpy as np

from ..constants import EMPTY_SLOT
from ..errors import ConfigurationError

# NOTE: repro.sanitize imports repro.core (racecheck builds tables), so the
# shadow-instrumentation helpers are imported lazily at the few points a
# sanitizer is actually attached — never at module import.

__all__ = [
    "STORE_LAYOUTS",
    "FINGERPRINT_BITS",
    "SoAPackedView",
    "CompactPackedView",
    "SlotStore",
    "PackedSlotStore",
    "SplitSlotStore",
    "CompactSlotStore",
    "compact_slot_bits",
    "slot_record_bytes",
    "make_store",
    "attach_view",
]

_U64 = np.uint64
_U32 = np.uint32
_LOW_MASK = _U64(0xFFFFFFFF)
_SHIFT = _U64(32)

#: layouts :func:`make_store` accepts (the ``layout=`` option vocabulary)
STORE_LAYOUTS = ("aos", "soa", "compact")

#: fingerprint bits the compact record keeps next to the key remainder
FINGERPRINT_BITS = 8


def compact_slot_bits(capacity: int) -> int:
    """Modelled bits per slot of the compact layout at ``capacity``.

    The probe position pins ``floor(log2 capacity)`` quotient bits, so
    the record stores ``32 - floor(log2 c)`` remainder bits plus a
    :data:`FINGERPRINT_BITS` fingerprint (clamped to the 32-bit plane)
    next to the 32-bit value.
    """
    capacity = max(int(capacity), 1)
    quotient_bits = capacity.bit_length() - 1
    rq_bits = min(32, max(FINGERPRINT_BITS, 32 - quotient_bits + FINGERPRINT_BITS))
    return rq_bits + 32


def slot_record_bytes(layout: str, capacity: int) -> int:
    """Modelled bytes per slot record for ``layout`` at ``capacity``.

    ``aos``/``soa`` spend the full packed 8 bytes; ``compact`` spends
    ``ceil(compact_slot_bits / 8)`` — 7 bytes at 2^16 slots down to the
    5-byte floor at 2^32.  This is the figure the perf model, the
    exchange accounting, and :attr:`SlotStore.nbytes` all derive from.
    """
    if layout != "compact":
        return 8
    return -(-compact_slot_bits(capacity) // 8)


def _halves(value: int) -> tuple[int, int]:
    """(high, low) 32-bit halves of one packed slot word."""
    value = int(value)
    return (value >> 32) & 0xFFFFFFFF, value & 0xFFFFFFFF


def _sigma(keys32):
    """The fixed bijective key-half permutation of the compact layout."""
    from ..hashing.mixers import fmix32

    return fmix32(np.asarray(keys32, dtype=_U32))


def _sigma_inv(rq):
    """Inverse permutation: stored plane words back to true key halves."""
    from ..hashing.mixers import fmix32_inverse

    return fmix32_inverse(np.asarray(rq, dtype=_U32))


def _sigma_scalar(key_half: int) -> int:
    return int(_sigma(np.asarray([key_half], dtype=_U32))[0])


class SoAPackedView:
    """ndarray-like packed ``uint64`` facade over split key/value planes.

    Supports exactly the access grammar the kernels use on a raw slot
    array — ``shape``/``dtype``/``len``, scalar and fancy ``[]`` get/set,
    ``fill``, and ``__array__`` (so :func:`repro.core.slots.is_vacant`
    and friends work unchanged).  Plain accesses report to an attached
    sanitizer with the same lane-attribution rules as
    :class:`~repro.sanitize.shadow.ShadowedArray`, against *logical slot
    indices* — races are a property of the slot, not of the plane.
    """

    def __init__(self, keys: np.ndarray, values: np.ndarray, sanitizer=None,
                 name: str = "slots"):
        if keys.shape != values.shape:
            raise ConfigurationError("key/value planes must have equal shape")
        self._keys = keys
        self._values = values
        self.sanitizer = sanitizer
        self.shadow_name = name

    # -- ndarray protocol surface ----------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self._keys.shape

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.uint64)

    def __len__(self) -> int:
        return int(self._keys.shape[0])

    def __array__(self, dtype=None, copy=None):
        packed = (self._keys.astype(_U64) << _SHIFT) | self._values.astype(
            _U64
        )
        return packed if dtype is None else packed.astype(dtype)

    def _record(self, index, kind: str) -> None:
        sanitizer = self.sanitizer
        if sanitizer is not None and sanitizer.plain_enabled:
            from ..sanitize.shadow import AccessKind, _index_rows

            lane_attributed = isinstance(index, np.ndarray) and index.ndim == 1
            sanitizer.record_plain(
                self.shadow_name,
                _index_rows(self.shape[0], index),
                AccessKind.READ if kind == "read" else AccessKind.WRITE,
                lanes_positional=lane_attributed,
            )

    def __getitem__(self, index):
        self._record(index, "read")
        k = self._keys[index]
        v = self._values[index]
        if isinstance(k, np.ndarray):
            return (k.astype(_U64) << _SHIFT) | v.astype(_U64)
        return _U64((int(k) << 32) | int(v))

    def __setitem__(self, index, value) -> None:
        self._record(index, "write")
        packed = np.asarray(value, dtype=_U64)
        self._keys[index] = (packed >> _SHIFT).astype(_U32)
        self._values[index] = (packed & _LOW_MASK).astype(_U32)

    def fill(self, value) -> None:
        hi, lo = _halves(value)
        self._keys.fill(_U32(hi))
        self._values.fill(_U32(lo))

    # comparisons pack first, so ``view == TOMBSTONE_SLOT`` scans work
    # exactly like on a raw packed array (no sanitizer traffic: the
    # packed copy is register state, same as a window snapshot)
    def __eq__(self, other):
        return np.asarray(self) == other

    def __ne__(self, other):
        return np.asarray(self) != other

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SoAPackedView(capacity={len(self)})"


class CompactPackedView:
    """Packed ``uint64`` facade over the compact remainder/value planes.

    Same access grammar as :class:`SoAPackedView`; the key half is
    stored σ-permuted in the ``_rq`` plane and reconstructed through the
    inverse permutation on every read, so kernels see exact packed
    words.  ``record_bytes`` carries the modelled record width for the
    kernels' transaction charging.
    """

    def __init__(self, rq: np.ndarray, values: np.ndarray, sanitizer=None,
                 name: str = "slots"):
        if rq.shape != values.shape:
            raise ConfigurationError(
                "remainder/value planes must have equal shape"
            )
        self._rq = rq
        self._values = values
        self.sanitizer = sanitizer
        self.shadow_name = name
        self.record_bytes = slot_record_bytes("compact", rq.shape[0])

    # -- ndarray protocol surface ----------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self._rq.shape

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.uint64)

    def __len__(self) -> int:
        return int(self._rq.shape[0])

    def __array__(self, dtype=None, copy=None):
        packed = (_sigma_inv(self._rq).astype(_U64) << _SHIFT) | (
            self._values.astype(_U64)
        )
        return packed if dtype is None else packed.astype(dtype)

    def _record(self, index, kind: str) -> None:
        sanitizer = self.sanitizer
        if sanitizer is not None and sanitizer.plain_enabled:
            from ..sanitize.shadow import AccessKind, _index_rows

            lane_attributed = isinstance(index, np.ndarray) and index.ndim == 1
            sanitizer.record_plain(
                self.shadow_name,
                _index_rows(self.shape[0], index),
                AccessKind.READ if kind == "read" else AccessKind.WRITE,
                lanes_positional=lane_attributed,
            )

    def __getitem__(self, index):
        self._record(index, "read")
        rq = self._rq[index]
        v = self._values[index]
        if isinstance(rq, np.ndarray):
            return (_sigma_inv(rq).astype(_U64) << _SHIFT) | v.astype(_U64)
        key_half = int(_sigma_inv(np.asarray([rq], dtype=_U32))[0])
        return _U64((key_half << 32) | int(v))

    def __setitem__(self, index, value) -> None:
        self._record(index, "write")
        packed = np.asarray(value, dtype=_U64)
        self._rq[index] = _sigma((packed >> _SHIFT).astype(_U32))
        self._values[index] = (packed & _LOW_MASK).astype(_U32)

    def fill(self, value) -> None:
        hi, lo = _halves(value)
        self._rq.fill(_U32(_sigma_scalar(hi)))
        self._values.fill(_U32(lo))

    def __eq__(self, other):
        return np.asarray(self) == other

    def __ne__(self, other):
        return np.asarray(self) != other

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactPackedView(capacity={len(self)}, "
            f"record_bytes={self.record_bytes})"
        )


class SlotStore:
    """Owner of one table's slot memory, behind a packed view.

    Concrete stores provide ``_allocate``/``_release`` and the packed
    ``view`` construction; everything else — descriptor plumbing,
    fill/clear, packed import/export — is layout-independent here.
    """

    layout: str = "abstract"

    def __init__(self, capacity: int, *, device=None, shared: bool = False,
                 sanitizer=None):
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.device = device
        self.sanitizer = sanitizer
        self.shm = None
        self._buffers: list = []
        self._view = None
        self._allocate(shared)

    # -- subclass hooks ---------------------------------------------------

    def _allocate(self, shared: bool) -> None:
        raise NotImplementedError

    def packed(self) -> np.ndarray:
        """The slot contents as one packed ``uint64`` array."""
        raise NotImplementedError

    def load_packed(self, packed: np.ndarray) -> None:
        """Overwrite the slot contents from a packed ``uint64`` array."""
        raise NotImplementedError

    # -- shared surface ---------------------------------------------------

    @property
    def view(self):
        """The packed slot view every kernel operates on."""
        return self._view

    @property
    def nbytes(self) -> int:
        """Modelled slot memory footprint, derived from the layout.

        ``capacity * slot_record_bytes(layout, capacity)`` — 8 bytes per
        slot for ``aos``/``soa``, the quotiented sub-8-byte record for
        ``compact``.  The perf model reads this (via
        ``HashTableConfig.table_bytes`` / ``WarpDriveHashTable.table_bytes``)
        rather than assuming a constant.
        """
        return self.capacity * slot_record_bytes(self.layout, self.capacity)

    @property
    def record_bytes(self) -> int:
        """Modelled bytes per slot record (see :func:`slot_record_bytes`)."""
        return slot_record_bytes(self.layout, self.capacity)

    def descriptor(self):
        """Shared-memory descriptor for worker attach (None if private)."""
        return self.shm.descriptor() if self.shm is not None else None

    def fill(self, value=EMPTY_SLOT) -> None:
        self._view.fill(value)

    def free(self) -> None:
        """Release VRAM reservations and any shared-memory segment."""
        for buf in self._buffers:
            buf.free()
        self._buffers = []
        if self.shm is not None:
            self.shm.close()
            self.shm = None
        self._release()

    def _release(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"layout={self.layout!r})"
        )


class PackedSlotStore(SlotStore):
    """The paper's layout: one packed ``uint64`` word per slot."""

    layout = "aos"

    def _wrap(self, raw: np.ndarray):
        if self.sanitizer is None:
            return raw
        from ..sanitize.shadow import ShadowedArray

        return ShadowedArray(raw, self.sanitizer)

    def _allocate(self, shared: bool) -> None:
        from ..memory.buffer import DeviceBuffer

        if shared:
            from ..exec.shm import SharedSlots

            self.shm = SharedSlots(self.capacity, fill=EMPTY_SLOT)
            self._raw = self.shm.array
            if self.device is not None:
                self._buffers.append(
                    DeviceBuffer.from_array(self.device, self._raw)
                )
        elif self.device is not None:
            buf = DeviceBuffer.full(
                self.device, self.capacity, EMPTY_SLOT, dtype=np.uint64
            )
            self._buffers.append(buf)
            self._raw = buf.array
        else:
            self._raw = np.full(self.capacity, EMPTY_SLOT, dtype=np.uint64)
        self._view = self._wrap(self._raw)

    def packed(self) -> np.ndarray:
        return self._raw

    def load_packed(self, packed: np.ndarray) -> None:
        self._raw[:] = np.asarray(packed, dtype=np.uint64)

    def _release(self) -> None:
        self._raw = np.empty(0, dtype=np.uint64)
        self._view = self._wrap(self._raw)


class SplitSlotStore(SlotStore):
    """Structure-of-arrays layout: separate key and value planes."""

    layout = "soa"

    def _allocate(self, shared: bool) -> None:
        from ..memory.buffer import DeviceBuffer

        hi, lo = _halves(EMPTY_SLOT)
        if shared:
            from ..exec.shm import SharedSlots

            self.shm = SharedSlots(self.capacity, layout="soa")
            self._k, self._v = self.shm.keys, self.shm.values
            if self.device is not None:
                self._buffers.append(
                    DeviceBuffer.from_array(self.device, self._k)
                )
                self._buffers.append(
                    DeviceBuffer.from_array(self.device, self._v)
                )
        elif self.device is not None:
            kbuf = DeviceBuffer.full(
                self.device, self.capacity, hi, dtype=np.uint32
            )
            vbuf = DeviceBuffer.full(
                self.device, self.capacity, lo, dtype=np.uint32
            )
            self._buffers.extend([kbuf, vbuf])
            self._k, self._v = kbuf.array, vbuf.array
        else:
            self._k = np.full(self.capacity, hi, dtype=np.uint32)
            self._v = np.full(self.capacity, lo, dtype=np.uint32)
        self._view = SoAPackedView(self._k, self._v, sanitizer=self.sanitizer)

    def packed(self) -> np.ndarray:
        return np.asarray(self._view, dtype=np.uint64)

    def load_packed(self, packed: np.ndarray) -> None:
        packed = np.asarray(packed, dtype=np.uint64)
        self._k[:] = (packed >> _SHIFT).astype(np.uint32)
        self._v[:] = (packed & _LOW_MASK).astype(np.uint32)

    def _release(self) -> None:
        self._k = np.empty(0, dtype=np.uint32)
        self._v = np.empty(0, dtype=np.uint32)
        self._view = SoAPackedView(self._k, self._v, sanitizer=self.sanitizer)


class CompactSlotStore(SlotStore):
    """Quotienting layout: σ-permuted remainder plane + value plane.

    Physically the planes are two ``uint32`` arrays (same shapes as
    ``soa``), but the *modelled* footprint registered against simulated
    VRAM is ``capacity * slot_record_bytes("compact", capacity)`` — the
    remainder+fingerprint plane only owes its quotiented width.
    """

    layout = "compact"

    def _plane_bytes(self) -> tuple[int, int]:
        """Modelled (rq-plane, value-plane) VRAM bytes."""
        record = slot_record_bytes("compact", self.capacity)
        return self.capacity * (record - 4), self.capacity * 4

    def _allocate(self, shared: bool) -> None:
        from ..memory.buffer import DeviceBuffer

        hi, lo = _halves(EMPTY_SLOT)
        rq_fill = _sigma_scalar(hi)
        rq_bytes, v_bytes = self._plane_bytes()
        if shared:
            from ..exec.shm import SharedSlots

            self.shm = SharedSlots(self.capacity, layout="compact")
            self._rq, self._v = self.shm.keys, self.shm.values
            if self.device is not None:
                self._buffers.append(
                    DeviceBuffer.from_array(self.device, self._rq, nbytes=rq_bytes)
                )
                self._buffers.append(
                    DeviceBuffer.from_array(self.device, self._v, nbytes=v_bytes)
                )
        elif self.device is not None:
            rqbuf = DeviceBuffer.full(
                self.device, self.capacity, rq_fill, dtype=np.uint32,
                nbytes=rq_bytes,
            )
            vbuf = DeviceBuffer.full(
                self.device, self.capacity, lo, dtype=np.uint32, nbytes=v_bytes
            )
            self._buffers.extend([rqbuf, vbuf])
            self._rq, self._v = rqbuf.array, vbuf.array
        else:
            self._rq = np.full(self.capacity, rq_fill, dtype=np.uint32)
            self._v = np.full(self.capacity, lo, dtype=np.uint32)
        self._view = CompactPackedView(
            self._rq, self._v, sanitizer=self.sanitizer
        )

    def packed(self) -> np.ndarray:
        return np.asarray(self._view, dtype=np.uint64)

    def load_packed(self, packed: np.ndarray) -> None:
        packed = np.asarray(packed, dtype=np.uint64)
        self._rq[:] = _sigma((packed >> _SHIFT).astype(np.uint32))
        self._v[:] = (packed & _LOW_MASK).astype(np.uint32)

    def _release(self) -> None:
        self._rq = np.empty(0, dtype=np.uint32)
        self._v = np.empty(0, dtype=np.uint32)
        self._view = CompactPackedView(
            self._rq, self._v, sanitizer=self.sanitizer
        )


_STORES = {
    "aos": PackedSlotStore,
    "soa": SplitSlotStore,
    "compact": CompactSlotStore,
}


def make_store(
    capacity: int,
    *,
    layout: str = "aos",
    device=None,
    shared: bool = False,
    sanitizer=None,
) -> SlotStore:
    """Build the slot store for one table (the ``layout=`` policy)."""
    try:
        cls = _STORES[layout]
    except KeyError:
        raise ConfigurationError(
            f"unknown slot layout {layout!r}; choose from {STORE_LAYOUTS}"
        ) from None
    return cls(capacity, device=device, shared=shared, sanitizer=sanitizer)


def attach_view(descriptor):
    """Worker-side attach: packed view over a shared store + segment handle.

    Layout-aware counterpart of :func:`repro.exec.shm.attach_slots` —
    process-pool workers receive a :class:`~repro.exec.shm.SlotsDescriptor`
    and must reconstruct the same packed view the parent's kernels use,
    whatever the layout.  The caller keeps the returned segment handle
    referenced for as long as the view is alive.
    """
    from multiprocessing import shared_memory

    if descriptor.dtype != "uint64":
        raise ConfigurationError(f"unsupported slot dtype {descriptor.dtype!r}")
    shm = shared_memory.SharedMemory(name=descriptor.name)
    if descriptor.layout in ("soa", "compact"):
        keys = np.ndarray((descriptor.capacity,), dtype=np.uint32, buffer=shm.buf)
        values = np.ndarray(
            (descriptor.capacity,),
            dtype=np.uint32,
            buffer=shm.buf,
            offset=descriptor.capacity * 4,
        )
        if descriptor.layout == "compact":
            return CompactPackedView(keys, values), shm
        return SoAPackedView(keys, values), shm
    if descriptor.layout != "aos":
        raise ConfigurationError(
            f"unknown slot layout {descriptor.layout!r} in descriptor"
        )
    array = np.ndarray((descriptor.capacity,), dtype=np.uint64, buffer=shm.buf)
    return array, shm
