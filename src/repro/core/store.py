"""Slot storage policy — the memory layout behind a WarpDrive table.

WarpCore (Jünger et al.) shows the WarpDrive design decomposes into
orthogonal policies, storage layout being one of them.  This module is
that seam for the reproduction: a :class:`SlotStore` owns the slot
memory of one table and exposes it as a *packed view* — an
ndarray-like object over ``uint64`` packed pairs — which is the only
handle the kernels (:mod:`repro.core.bulk`,
:mod:`repro.core.kernels_ref`), the execution engine, the serializer,
and the sanitizer ever touch.  No module outside the store knows how
the bits are arranged.

Two layouts ship:

``aos`` (default)
    Packed array-of-structures: one ``uint64`` per slot, key in the
    high 32 bits — the paper's layout.  The packed view *is* the raw
    array (zero overhead).

``soa``
    Structure-of-arrays: two ``uint32`` planes (keys, values).  The
    :class:`SoAPackedView` packs/unpacks on access, bit-exactly — the
    sentinel encodings round-trip because the planes store the literal
    high/low halves of ``EMPTY_SLOT`` / ``TOMBSTONE_SLOT`` (both have
    key half ``0xFFFFFFFF``; they differ in the value half).

Either layout can live in plain memory, simulated VRAM
(:class:`~repro.memory.buffer.DeviceBuffer`), or POSIX shared memory
(:mod:`repro.exec.shm`) for the process execution backend; a device
sanitizer shadow-instruments the view in every combination.
"""

from __future__ import annotations

import numpy as np

from ..constants import EMPTY_SLOT
from ..errors import ConfigurationError

# NOTE: repro.sanitize imports repro.core (racecheck builds tables), so the
# shadow-instrumentation helpers are imported lazily at the few points a
# sanitizer is actually attached — never at module import.

__all__ = [
    "STORE_LAYOUTS",
    "SoAPackedView",
    "SlotStore",
    "PackedSlotStore",
    "SplitSlotStore",
    "make_store",
    "attach_view",
]

_U64 = np.uint64
_U32 = np.uint32
_LOW_MASK = _U64(0xFFFFFFFF)
_SHIFT = _U64(32)

#: layouts :func:`make_store` accepts (the ``layout=`` option vocabulary)
STORE_LAYOUTS = ("aos", "soa")


def _halves(value: int) -> tuple[int, int]:
    """(high, low) 32-bit halves of one packed slot word."""
    value = int(value)
    return (value >> 32) & 0xFFFFFFFF, value & 0xFFFFFFFF


class SoAPackedView:
    """ndarray-like packed ``uint64`` facade over split key/value planes.

    Supports exactly the access grammar the kernels use on a raw slot
    array — ``shape``/``dtype``/``len``, scalar and fancy ``[]`` get/set,
    ``fill``, and ``__array__`` (so :func:`repro.core.slots.is_vacant`
    and friends work unchanged).  Plain accesses report to an attached
    sanitizer with the same lane-attribution rules as
    :class:`~repro.sanitize.shadow.ShadowedArray`, against *logical slot
    indices* — races are a property of the slot, not of the plane.
    """

    def __init__(self, keys: np.ndarray, values: np.ndarray, sanitizer=None,
                 name: str = "slots"):
        if keys.shape != values.shape:
            raise ConfigurationError("key/value planes must have equal shape")
        self._keys = keys
        self._values = values
        self.sanitizer = sanitizer
        self.shadow_name = name

    # -- ndarray protocol surface ----------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self._keys.shape

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.uint64)

    def __len__(self) -> int:
        return int(self._keys.shape[0])

    def __array__(self, dtype=None, copy=None):
        packed = (self._keys.astype(_U64) << _SHIFT) | self._values.astype(
            _U64
        )
        return packed if dtype is None else packed.astype(dtype)

    def _record(self, index, kind: str) -> None:
        sanitizer = self.sanitizer
        if sanitizer is not None and sanitizer.plain_enabled:
            from ..sanitize.shadow import AccessKind, _index_rows

            lane_attributed = isinstance(index, np.ndarray) and index.ndim == 1
            sanitizer.record_plain(
                self.shadow_name,
                _index_rows(self.shape[0], index),
                AccessKind.READ if kind == "read" else AccessKind.WRITE,
                lanes_positional=lane_attributed,
            )

    def __getitem__(self, index):
        self._record(index, "read")
        k = self._keys[index]
        v = self._values[index]
        if isinstance(k, np.ndarray):
            return (k.astype(_U64) << _SHIFT) | v.astype(_U64)
        return _U64((int(k) << 32) | int(v))

    def __setitem__(self, index, value) -> None:
        self._record(index, "write")
        packed = np.asarray(value, dtype=_U64)
        self._keys[index] = (packed >> _SHIFT).astype(_U32)
        self._values[index] = (packed & _LOW_MASK).astype(_U32)

    def fill(self, value) -> None:
        hi, lo = _halves(value)
        self._keys.fill(_U32(hi))
        self._values.fill(_U32(lo))

    # comparisons pack first, so ``view == TOMBSTONE_SLOT`` scans work
    # exactly like on a raw packed array (no sanitizer traffic: the
    # packed copy is register state, same as a window snapshot)
    def __eq__(self, other):
        return np.asarray(self) == other

    def __ne__(self, other):
        return np.asarray(self) != other

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SoAPackedView(capacity={len(self)})"


class SlotStore:
    """Owner of one table's slot memory, behind a packed view.

    Concrete stores provide ``_allocate``/``_release`` and the packed
    ``view`` construction; everything else — descriptor plumbing,
    fill/clear, packed import/export — is layout-independent here.
    """

    layout: str = "abstract"

    def __init__(self, capacity: int, *, device=None, shared: bool = False,
                 sanitizer=None):
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.device = device
        self.sanitizer = sanitizer
        self.shm = None
        self._buffers: list = []
        self._view = None
        self._allocate(shared)

    # -- subclass hooks ---------------------------------------------------

    def _allocate(self, shared: bool) -> None:
        raise NotImplementedError

    def packed(self) -> np.ndarray:
        """The slot contents as one packed ``uint64`` array."""
        raise NotImplementedError

    def load_packed(self, packed: np.ndarray) -> None:
        """Overwrite the slot contents from a packed ``uint64`` array."""
        raise NotImplementedError

    # -- shared surface ---------------------------------------------------

    @property
    def view(self):
        """The packed slot view every kernel operates on."""
        return self._view

    @property
    def nbytes(self) -> int:
        """Slot memory footprint (8 bytes per slot in either layout)."""
        return self.capacity * 8

    def descriptor(self):
        """Shared-memory descriptor for worker attach (None if private)."""
        return self.shm.descriptor() if self.shm is not None else None

    def fill(self, value=EMPTY_SLOT) -> None:
        self._view.fill(value)

    def free(self) -> None:
        """Release VRAM reservations and any shared-memory segment."""
        for buf in self._buffers:
            buf.free()
        self._buffers = []
        if self.shm is not None:
            self.shm.close()
            self.shm = None
        self._release()

    def _release(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"layout={self.layout!r})"
        )


class PackedSlotStore(SlotStore):
    """The paper's layout: one packed ``uint64`` word per slot."""

    layout = "aos"

    def _wrap(self, raw: np.ndarray):
        if self.sanitizer is None:
            return raw
        from ..sanitize.shadow import ShadowedArray

        return ShadowedArray(raw, self.sanitizer)

    def _allocate(self, shared: bool) -> None:
        from ..memory.buffer import DeviceBuffer

        if shared:
            from ..exec.shm import SharedSlots

            self.shm = SharedSlots(self.capacity, fill=EMPTY_SLOT)
            self._raw = self.shm.array
            if self.device is not None:
                self._buffers.append(
                    DeviceBuffer.from_array(self.device, self._raw)
                )
        elif self.device is not None:
            buf = DeviceBuffer.full(
                self.device, self.capacity, EMPTY_SLOT, dtype=np.uint64
            )
            self._buffers.append(buf)
            self._raw = buf.array
        else:
            self._raw = np.full(self.capacity, EMPTY_SLOT, dtype=np.uint64)
        self._view = self._wrap(self._raw)

    def packed(self) -> np.ndarray:
        return self._raw

    def load_packed(self, packed: np.ndarray) -> None:
        self._raw[:] = np.asarray(packed, dtype=np.uint64)

    def _release(self) -> None:
        self._raw = np.empty(0, dtype=np.uint64)
        self._view = self._wrap(self._raw)


class SplitSlotStore(SlotStore):
    """Structure-of-arrays layout: separate key and value planes."""

    layout = "soa"

    def _allocate(self, shared: bool) -> None:
        from ..memory.buffer import DeviceBuffer

        hi, lo = _halves(EMPTY_SLOT)
        if shared:
            from ..exec.shm import SharedSlots

            self.shm = SharedSlots(self.capacity, layout="soa")
            self._k, self._v = self.shm.keys, self.shm.values
            if self.device is not None:
                self._buffers.append(
                    DeviceBuffer.from_array(self.device, self._k)
                )
                self._buffers.append(
                    DeviceBuffer.from_array(self.device, self._v)
                )
        elif self.device is not None:
            kbuf = DeviceBuffer.full(
                self.device, self.capacity, hi, dtype=np.uint32
            )
            vbuf = DeviceBuffer.full(
                self.device, self.capacity, lo, dtype=np.uint32
            )
            self._buffers.extend([kbuf, vbuf])
            self._k, self._v = kbuf.array, vbuf.array
        else:
            self._k = np.full(self.capacity, hi, dtype=np.uint32)
            self._v = np.full(self.capacity, lo, dtype=np.uint32)
        self._view = SoAPackedView(self._k, self._v, sanitizer=self.sanitizer)

    def packed(self) -> np.ndarray:
        return np.asarray(self._view, dtype=np.uint64)

    def load_packed(self, packed: np.ndarray) -> None:
        packed = np.asarray(packed, dtype=np.uint64)
        self._k[:] = (packed >> _SHIFT).astype(np.uint32)
        self._v[:] = (packed & _LOW_MASK).astype(np.uint32)

    def _release(self) -> None:
        self._k = np.empty(0, dtype=np.uint32)
        self._v = np.empty(0, dtype=np.uint32)
        self._view = SoAPackedView(self._k, self._v, sanitizer=self.sanitizer)


_STORES = {"aos": PackedSlotStore, "soa": SplitSlotStore}


def make_store(
    capacity: int,
    *,
    layout: str = "aos",
    device=None,
    shared: bool = False,
    sanitizer=None,
) -> SlotStore:
    """Build the slot store for one table (the ``layout=`` policy)."""
    try:
        cls = _STORES[layout]
    except KeyError:
        raise ConfigurationError(
            f"unknown slot layout {layout!r}; choose from {STORE_LAYOUTS}"
        ) from None
    return cls(capacity, device=device, shared=shared, sanitizer=sanitizer)


def attach_view(descriptor):
    """Worker-side attach: packed view over a shared store + segment handle.

    Layout-aware counterpart of :func:`repro.exec.shm.attach_slots` —
    process-pool workers receive a :class:`~repro.exec.shm.SlotsDescriptor`
    and must reconstruct the same packed view the parent's kernels use,
    whatever the layout.  The caller keeps the returned segment handle
    referenced for as long as the view is alive.
    """
    from multiprocessing import shared_memory

    if descriptor.dtype != "uint64":
        raise ConfigurationError(f"unsupported slot dtype {descriptor.dtype!r}")
    shm = shared_memory.SharedMemory(name=descriptor.name)
    if descriptor.layout == "soa":
        keys = np.ndarray((descriptor.capacity,), dtype=np.uint32, buffer=shm.buf)
        values = np.ndarray(
            (descriptor.capacity,),
            dtype=np.uint32,
            buffer=shm.buf,
            offset=descriptor.capacity * 4,
        )
        return SoAPackedView(keys, values), shm
    if descriptor.layout != "aos":
        raise ConfigurationError(
            f"unknown slot layout {descriptor.layout!r} in descriptor"
        )
    array = np.ndarray((descriptor.capacity,), dtype=np.uint64, buffer=shm.buf)
    return array, shm
