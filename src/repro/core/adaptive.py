"""Adaptive group-size table (the paper's §VI future-work heuristic).

"A possible direction for future research could be design of a heuristic
which dynamically scales the group size |g| with the current load
factor."  This table does exactly that: before every bulk operation it
re-evaluates the analytic optimum |g| for the *current* load
(:func:`repro.perfmodel.hashperf.best_group_size`) and switches the
window sequence.

Switching is safe because of the design invariant the paper built into
Fig. 3's inner loop — the slots visited during one outer attempt are the
same 32, in the same order of preference, for every |g| ("the inner
probing loop ensures a consistent probing scheme in case that the size
of g is varied over time").  A pair inserted at |g| = 8 is found by a
|g| = 2 query; the property tests in ``tests/core/test_adaptive.py``
exercise every such combination.
"""

from __future__ import annotations

import numpy as np

from ..perfmodel.hashperf import best_group_size
from ..perfmodel.specs import P100
from ..simt.device import GPUSpec
from .probing import WindowSequence
from .report import KernelReport
from .table import WarpDriveHashTable

__all__ = ["AdaptiveWarpDriveTable"]


class AdaptiveWarpDriveTable(WarpDriveHashTable):
    """WarpDrive table that re-tunes |g| to the current load factor.

    Parameters are those of :class:`WarpDriveHashTable` plus ``spec`` —
    the GPU the heuristic optimizes for (default: the paper's P100).
    The initial ``group_size`` is only a starting point.
    """

    def __init__(self, *args, spec: GPUSpec = P100, **kwargs):
        super().__init__(*args, **kwargs)
        self.spec = spec
        #: history of (load_factor, chosen |g|) — one entry per retune
        self.tuning_history: list[tuple[float, int]] = []

    def _retune(self, op: str, extra_items: int = 0) -> None:
        """Swap the window sequence for the heuristic-optimal |g|.

        For inserts the relevant load is the one *after* the batch
        lands — tuning for where the probe lengths will be, not where
        they were.
        """
        projected = min((len(self) + extra_items) / self.capacity, 0.99)
        g = best_group_size(
            projected,
            self.spec,
            op=op,
            table_bytes=self.table_bytes,
            record_bytes=self.store.record_bytes,
        )
        if g != self.seq.group_size:
            self.seq = WindowSequence(self.config.family, g, self.config.p_max)
            self.tuning_history.append((projected, g))

    @property
    def current_group_size(self) -> int:
        return self.seq.group_size

    def insert(self, keys: np.ndarray, values: np.ndarray, **kwargs) -> KernelReport:
        self._retune("insert", extra_items=np.asarray(keys).shape[0])
        return super().insert(keys, values, **kwargs)

    def query(self, keys: np.ndarray, **kwargs):
        self._retune("query")
        return super().query(keys, **kwargs)

    def erase(self, keys: np.ndarray, **kwargs):
        self._retune("query")  # erase probes like a query
        return super().erase(keys, **kwargs)
