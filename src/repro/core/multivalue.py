"""Multi-value WarpDrive table.

§II: "open addressing hash maps can be extended to multi-value hash maps
in a straightforward manner" — and §V-B notes CUDPP needs exactly such a
table to handle key collisions.  The extension: insertion always claims
a fresh slot (no update-in-place), so a key's values accumulate along
its probe walk; retrieval collects *every* matching slot until an EMPTY
window proves the walk complete.

The probe walk, window structure, and accounting are shared with the
single-value table — only the match policy differs.
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import DEFAULT_P_MAX
from ..errors import ConfigurationError, InsertionError
from ..hashing.families import DoubleHashFamily, make_double_family
from ..memory.layout import pack_pairs
from ..options import UNSET, reject_unknown, resolve_renamed
from ..simt.counters import TransactionCounter
from ..utils.validation import check_group_size, check_keys, check_same_length, check_values
from .bulk import _sectors_per_window, _window_rows, default_wave_size
from .probing import make_window_sequence
from .report import KernelReport
from .slots import is_empty, is_vacant, slot_keys, slot_values
from .store import make_store

__all__ = ["MultiValueHashTable"]


class MultiValueHashTable:
    """Open-addressing multi-map: one key, many values.

    Takes the unified option vocabulary of :mod:`repro.options`:
    ``engine=`` (decides shared-memory slot backing, exactly like the
    single-value table), ``probing=`` and ``layout=`` (the probing and
    storage policies of :mod:`repro.core.probing` /
    :mod:`repro.core.store`), and ``kernels=`` on the bulk methods.
    The deprecated ``executor=`` spelling still resolves through the
    warn-once shim.
    """

    def __init__(
        self,
        capacity: int,
        *,
        group_size: int = 4,
        p_max: int = DEFAULT_P_MAX,
        family: DoubleHashFamily | None = None,
        probing: str = "window",
        layout: str = "aos",
        engine: object = UNSET,
        shared: bool = False,
        **legacy,
    ):
        engine = resolve_renamed(
            "MultiValueHashTable", legacy,
            old="executor", new="engine", value=engine, default=None,
        )
        reject_unknown("MultiValueHashTable", legacy)
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity}")
        check_group_size(group_size)
        if engine is not None:
            shared = shared or engine == "process" or bool(
                getattr(engine, "requires_shared_slots", False)
            )
        self.capacity = capacity
        self.family = family if family is not None else make_double_family()
        self.seq = make_window_sequence(probing, self.family, group_size, p_max)
        self.store = make_store(capacity, layout=layout, shared=shared)
        self.counter = TransactionCounter()
        self._size = 0
        self.last_report: KernelReport | None = None

    @property
    def slots(self):
        """The packed slot view (storage-policy controlled)."""
        return self.store.view

    def shm_descriptor(self):
        """Shared-memory descriptor of the slot table (None if not shared)."""
        return self.store.descriptor()

    def free(self) -> None:
        """Release the slot storage."""
        self.store.free()

    @staticmethod
    def _resolve_kernels(method: str, kernels, legacy) -> None:
        """Bulk-method ``kernels=`` resolution: only ``"fast"`` exists here."""
        kernels = resolve_renamed(
            "MultiValueHashTable", legacy,
            old="executor", new="kernels", value=kernels, default="fast",
        )
        reject_unknown(f"MultiValueHashTable.{method}", legacy)
        if kernels != "fast":
            raise ConfigurationError(
                f"MultiValueHashTable.{method} supports kernels='fast' only "
                f"(no reference multi-value kernels); got {kernels!r}"
            )

    @classmethod
    def for_load_factor(cls, num_pairs: int, load_factor: float, **kwargs):
        if not 0 < load_factor <= 1:
            raise ConfigurationError(f"load factor must be in (0, 1], got {load_factor}")
        capacity = max(int(math.ceil(num_pairs / load_factor)), 1)
        return cls(capacity, **kwargs)

    def __len__(self) -> int:
        """Number of stored (key, value) pairs — duplicates included."""
        return self._size

    @property
    def load_factor(self) -> float:
        return self._size / self.capacity

    # -- insert ---------------------------------------------------------------

    def insert(
        self, keys: np.ndarray, values: np.ndarray, *, kernels: str = UNSET,
        **legacy,
    ) -> KernelReport:
        """Append (key, value) pairs; every pair claims its own slot."""
        self._resolve_kernels("insert", kernels, legacy)
        k = check_keys(keys)
        v = check_values(values)
        check_same_length("keys", k, "values", v)
        n = k.shape[0]
        g = self.seq.group_size
        pairs = pack_pairs(k, v)
        report = KernelReport(op="insert", num_ops=n, group_size=g)
        sectors_per_window = _sectors_per_window(g)
        max_windows = self.seq.max_windows
        wave = default_wave_size(self.capacity)

        status = np.zeros(n, dtype=np.uint8)  # 0 pending, 1 placed, 3 failed
        win_idx = np.zeros(n, dtype=np.int64)
        probes = np.zeros(n, dtype=np.int64)
        cursor = 0
        pending = np.empty(0, dtype=np.int64)

        while pending.size or cursor < n:
            if cursor < n and pending.size < wave:
                take = min(wave - pending.size, n - cursor)
                pending = np.concatenate(
                    [pending, np.arange(cursor, cursor + take, dtype=np.int64)]
                )
                cursor += take

            rows = _window_rows(self.seq, k[pending], win_idx[pending], self.capacity)
            window = self.slots[rows]
            probes[pending] += 1
            report.load_sectors += pending.size * sectors_per_window
            report.warp_collectives += pending.size

            vac = is_vacant(window)
            has_vac = vac.any(axis=1)
            claim_sel = np.flatnonzero(has_vac)
            if claim_sel.size:
                lanes = np.argmax(vac[claim_sel], axis=1)
                target = rows[claim_sel, lanes]
                items = pending[claim_sel]
                order = np.lexsort((items, target))
                t_sorted = target[order]
                i_sorted = items[order]
                first = np.ones(order.size, dtype=bool)
                first[1:] = t_sorted[1:] != t_sorted[:-1]
                winners = i_sorted[first]
                self.slots[t_sorted[first]] = pairs[winners]
                status[winners] = 1
                report.cas_attempts += claim_sel.size
                report.cas_successes += winners.size
                report.store_sectors += winners.size

            advance = pending[~has_vac]
            win_idx[advance] += 1
            status[advance[win_idx[advance] >= max_windows]] = 3

            pending = pending[status[pending] == 0]

        report.probe_windows = probes
        report.failed = int(np.sum(status == 3))
        placed = int(np.sum(status == 1))
        self._size += placed
        self.counter.load_sectors += report.load_sectors
        self.counter.store_sectors += report.store_sectors
        self.counter.cas_attempts += report.cas_attempts
        self.counter.cas_successes += report.cas_successes
        self.last_report = report
        if report.failed:
            raise InsertionError(
                f"{report.failed} pairs could not be placed "
                f"(load={self.load_factor:.3f}); multi-value tables do not "
                f"rebuild transparently — size for the full multiplicity"
            )
        return report

    # -- retrieval --------------------------------------------------------------

    def count(
        self, keys: np.ndarray, *, kernels: str = UNSET, **legacy
    ) -> np.ndarray:
        """Number of values stored under each key (vectorized).

        Distinct chaotic attempts may revisit a slot (the window walk is
        not injective for arbitrary capacities), so matches are
        deduplicated by slot index before counting — the GPU kernel's
        equivalent is a revisit check against the probe history.
        """
        self._resolve_kernels("count", kernels, legacy)
        k = check_keys(keys)
        n = k.shape[0]
        win_idx = np.zeros(n, dtype=np.int64)
        pending = np.arange(n, dtype=np.int64)
        g = self.seq.group_size
        report = KernelReport(op="count", num_ops=n, group_size=g)
        probes = np.zeros(n, dtype=np.int64)
        sectors_per_window = _sectors_per_window(g)
        max_windows = self.seq.max_windows
        hit_items: list[np.ndarray] = []
        hit_slots: list[np.ndarray] = []

        while pending.size:
            rows = _window_rows(self.seq, k[pending], win_idx[pending], self.capacity)
            window = self.slots[rows]
            probes[pending] += 1
            report.load_sectors += pending.size * sectors_per_window
            live = ~is_vacant(window)
            match = live & (slot_keys(window) == k[pending][:, None])
            if match.any():
                per_row = match.sum(axis=1)
                hit_items.append(np.repeat(pending, per_row))
                hit_slots.append(rows[match])
            empty_here = is_empty(window).any(axis=1)
            done = empty_here.copy()
            win_idx[pending[~done]] += 1
            over = win_idx[pending] >= max_windows
            pending = pending[~done & ~over]

        counts = np.zeros(n, dtype=np.int64)
        if hit_items:
            items = np.concatenate(hit_items)
            slots_hit = np.concatenate(hit_slots)
            uniq = np.unique(np.stack([items, slots_hit], axis=1), axis=0)
            counts += np.bincount(uniq[:, 0], minlength=n)
        report.probe_windows = probes
        self.last_report = report
        return counts

    def query_multi(self, key: int) -> np.ndarray:
        """All values stored under ``key``, in insertion-walk order.

        Revisited slots (non-injective walks) are reported once.
        """
        k = np.asarray([key], dtype=np.uint32)
        check_keys(k)
        out: list[int] = []
        seen: set[int] = set()
        for flat in range(self.seq.max_windows):
            ref = self.seq.window_ref(flat)
            rows = self.seq.window_slots(k, ref.outer, ref.inner, self.capacity)[0]
            window = self.slots[rows]
            live = ~is_vacant(window)
            match = live & (slot_keys(window) == np.uint32(key))
            for slot, value in zip(rows[match], slot_values(window[match])):
                if int(slot) not in seen:
                    seen.add(int(slot))
                    out.append(int(value))
            if is_empty(window).any():
                break
        return np.array(out, dtype=np.uint32)

    def contains(self, keys: np.ndarray) -> np.ndarray:
        return self.count(keys) > 0
