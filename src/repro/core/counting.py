"""Counting hash table: key → occurrence count with add semantics.

The practical answer to the multi-value hot-key cost quantified in bench
A8: counting workloads (k-mer indexing [4,5], bag-of-words [1], patch
deduplication) should *aggregate into the value* instead of storing
duplicates.  On a real GPU this is ``atomicAdd`` on the value half of
the packed pair; here a batch pre-aggregates duplicate keys (the
moral equivalent of warp-aggregated counting [23]) and then performs one
update per distinct key.

Counts saturate at the 32-bit value limit instead of wrapping.
"""

from __future__ import annotations

import numpy as np

from ..constants import MAX_VALUE
from ..errors import ConfigurationError
from ..options import UNSET, reject_unknown, resolve_renamed
from ..simt.device import Device
from ..utils.validation import check_keys
from .report import KernelReport
from .table import WarpDriveHashTable

__all__ = ["CountingHashTable"]


class CountingHashTable:
    """A multiset of keys backed by a WarpDrive table.

    Parameters mirror :class:`WarpDriveHashTable` — including the
    unified option vocabulary (``engine=``, ``probing=``, ``layout=``,
    ``growth=``; :mod:`repro.options`), all forwarded to the backing
    table, with ``executor=`` resolving through the warn-once shim.
    The stored value is the saturating occurrence count.
    """

    def __init__(
        self,
        capacity: int,
        *,
        group_size: int = 4,
        p_max: int | None = None,
        device: Device | None = None,
        engine: object = UNSET,
        probing: str = UNSET,
        layout: str = UNSET,
        growth=UNSET,
        **legacy,
    ):
        engine = resolve_renamed(
            "CountingHashTable", legacy,
            old="executor", new="engine", value=engine, default=None,
        )
        reject_unknown("CountingHashTable", legacy)
        kwargs = {"group_size": group_size, "engine": engine}
        if p_max is not None:
            kwargs["p_max"] = p_max
        for opt, val in (("probing", probing), ("layout", layout),
                         ("growth", growth)):
            if val is not UNSET:
                kwargs[opt] = val
        self.table = WarpDriveHashTable(capacity, device=device, **kwargs)
        self.last_report: KernelReport | None = None

    @classmethod
    def for_load_factor(cls, num_keys: int, load_factor: float, **kwargs):
        if not 0 < load_factor <= 1:
            raise ConfigurationError(f"load factor must be in (0, 1], got {load_factor}")
        capacity = max(int(np.ceil(num_keys / load_factor)), 1)
        return cls(capacity, **kwargs)

    def __len__(self) -> int:
        """Number of distinct keys."""
        return len(self.table)

    @property
    def capacity(self) -> int:
        return self.table.capacity

    def total(self) -> int:
        """Sum of all counts (total observations, absent saturation)."""
        _, values = self.table.export()
        return int(values.astype(np.uint64).sum())

    def add(
        self,
        keys: np.ndarray,
        amounts: np.ndarray | int = 1,
        *,
        kernels: str = UNSET,
        **legacy,
    ) -> KernelReport:
        """Count occurrences: ``table[key] += amount`` per observation.

        Duplicate keys inside one batch pre-aggregate before touching the
        table — one update per distinct key, like a warp-aggregated
        ``atomicAdd`` — so hot keys cost O(1) table traffic instead of
        the multi-value table's O(M²/|g|) walk.  ``kernels=`` picks the
        backing table's kernel implementation (``"fast"``/``"ref"``).
        """
        kernels = resolve_renamed(
            "CountingHashTable", legacy,
            old="executor", new="kernels", value=kernels, default="fast",
        )
        reject_unknown("CountingHashTable.add", legacy)
        k = check_keys(keys)
        if np.isscalar(amounts):
            weights = np.full(k.shape[0], int(amounts), dtype=np.int64)
        else:
            weights = np.asarray(amounts, dtype=np.int64)
            if weights.shape != k.shape:
                raise ConfigurationError("amounts must match keys in length")
        if np.any(weights < 0):
            raise ConfigurationError("amounts must be non-negative")

        uniq, inverse = np.unique(k, return_inverse=True)
        sums = np.bincount(inverse, weights=weights.astype(np.float64))
        sums = sums.astype(np.uint64)

        current, _ = self.table.query(uniq, default=0, kernels=kernels)
        new = np.minimum(
            current.astype(np.uint64) + sums, np.uint64(MAX_VALUE)
        ).astype(np.uint32)
        report = self.table.insert(uniq, new, kernels=kernels)
        self.last_report = report
        return report

    def count(
        self, keys: np.ndarray, *, kernels: str = UNSET, **legacy
    ) -> np.ndarray:
        """Occurrence count per key (0 for unseen keys)."""
        kernels = resolve_renamed(
            "CountingHashTable", legacy,
            old="executor", new="kernels", value=kernels, default="fast",
        )
        reject_unknown("CountingHashTable.count", legacy)
        values, found = self.table.query(
            check_keys(keys), default=0, kernels=kernels
        )
        values = values.copy()
        values[~found] = 0
        return values.astype(np.int64)

    def most_common(self, n: int = 10) -> list[tuple[int, int]]:
        """The ``n`` hottest (key, count) pairs, Counter-style."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        keys, values = self.table.export()
        order = np.argsort(values)[::-1][:n]
        return [(int(keys[i]), int(values[i])) for i in order]

    def remove(self, keys: np.ndarray) -> np.ndarray:
        """Drop keys entirely (all their counts); returns removed-mask."""
        return self.table.erase(check_keys(keys))
