"""Hash-table configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..constants import DEFAULT_P_MAX
from ..errors import ConfigurationError
from ..hashing.families import DoubleHashFamily, make_double_family
from ..utils.validation import check_group_size, check_load_factor, check_positive
from .growth import GrowthPolicy
from .probing import WINDOW_SEQUENCES
from .store import STORE_LAYOUTS, slot_record_bytes

__all__ = ["HashTableConfig"]


@dataclass(frozen=True)
class HashTableConfig:
    """Static parameters of a :class:`~repro.core.table.WarpDriveHashTable`.

    Attributes
    ----------
    capacity:
        Number of slots ``c``; fixed for the table's lifetime (paper §II:
        no on-demand resizing in the parallel setting — a full table is
        rebuilt instead).
    group_size:
        Coalesced-group width ``|g| ∈ {1,2,4,8,16,32}``.
    p_max:
        Maximum chaotic (outer) probing attempts before
        :class:`~repro.errors.InsertionError`.
    family:
        The (h, g) hash pair driving the window sequence.
    rebuild_on_failure:
        When True the table transparently invalidates and reinserts with a
        translated hash family after an insertion failure (§II).
    max_rebuilds:
        Upper bound on transparent rebuild attempts.
    probing:
        Window-walk policy: ``"window"`` (the paper's hybrid, default),
        ``"double"``, or ``"linear"`` (:mod:`repro.core.probing`).
    layout:
        Slot storage policy: ``"aos"`` (packed, default), ``"soa"``, or
        ``"compact"`` (quotienting sub-8-byte records;
        :mod:`repro.core.store`).
    growth:
        Optional :class:`~repro.core.growth.GrowthPolicy`; when set the
        table resizes instead of failing (``None`` keeps the paper's
        fixed-capacity semantics).
    """

    capacity: int
    group_size: int = 4
    p_max: int = DEFAULT_P_MAX
    family: DoubleHashFamily = field(default_factory=make_double_family)
    rebuild_on_failure: bool = True
    max_rebuilds: int = 4
    probing: str = "window"
    layout: str = "aos"
    growth: GrowthPolicy | None = None

    def __post_init__(self):
        check_positive("capacity", self.capacity)
        check_group_size(self.group_size)
        check_positive("p_max", self.p_max)
        if self.max_rebuilds < 0:
            raise ConfigurationError(
                f"max_rebuilds must be >= 0, got {self.max_rebuilds}"
            )
        if self.probing not in WINDOW_SEQUENCES:
            raise ConfigurationError(
                f"unknown probing scheme {self.probing!r}; "
                f"choose from {sorted(WINDOW_SEQUENCES)}"
            )
        if self.layout not in STORE_LAYOUTS:
            raise ConfigurationError(
                f"unknown slot layout {self.layout!r}; "
                f"choose from {STORE_LAYOUTS}"
            )
        if self.growth is not None and not isinstance(self.growth, GrowthPolicy):
            raise ConfigurationError(
                f"growth must be a GrowthPolicy or None, got {self.growth!r}"
            )

    @classmethod
    def for_load_factor(
        cls, num_pairs: int, load_factor: float, **kwargs
    ) -> "HashTableConfig":
        """Size the table so inserting ``num_pairs`` reaches ``load_factor``.

        This mirrors the experiments' "target load factor": the capacity is
        ``ceil(n / α)`` — for unique keys the target coincides with the
        true occupancy (§V-A).
        """
        check_positive("num_pairs", num_pairs)
        check_load_factor(load_factor)
        capacity = max(int(math.ceil(num_pairs / load_factor)), 1)
        return cls(capacity=capacity, **kwargs)

    @property
    def table_bytes(self) -> int:
        """Modelled VRAM footprint of the slot array, layout-derived.

        ``capacity * slot_record_bytes(layout, capacity)`` — the same
        figure :attr:`repro.core.store.SlotStore.nbytes` reports; the
        perf model prices CAS degradation and shard footprints off this,
        never off a hard-coded 8 bytes per slot.
        """
        return self.capacity * slot_record_bytes(self.layout, self.capacity)

    def rebuilt(self, salt: int) -> "HashTableConfig":
        """Config for the reconstruction attempt after an insert failure."""
        return replace(self, family=self.family.rebuilt(salt))

    def grown(self, new_capacity: int) -> "HashTableConfig":
        """Config after a resize — same hash family, larger table.

        Growth deliberately keeps the family: a grown table is
        *query-equivalent* to a fresh table of the new capacity built
        with the same family (property-tested in
        ``tests/core/test_growth_equivalence.py``).
        """
        check_positive("new_capacity", new_capacity)
        if new_capacity <= self.capacity:
            raise ConfigurationError(
                f"grown capacity {new_capacity} must exceed "
                f"current capacity {self.capacity}"
            )
        return replace(self, capacity=int(new_capacity))
