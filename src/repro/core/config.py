"""Hash-table configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..constants import DEFAULT_P_MAX
from ..errors import ConfigurationError
from ..hashing.families import DoubleHashFamily, make_double_family
from ..utils.validation import check_group_size, check_load_factor, check_positive

__all__ = ["HashTableConfig"]


@dataclass(frozen=True)
class HashTableConfig:
    """Static parameters of a :class:`~repro.core.table.WarpDriveHashTable`.

    Attributes
    ----------
    capacity:
        Number of slots ``c``; fixed for the table's lifetime (paper §II:
        no on-demand resizing in the parallel setting — a full table is
        rebuilt instead).
    group_size:
        Coalesced-group width ``|g| ∈ {1,2,4,8,16,32}``.
    p_max:
        Maximum chaotic (outer) probing attempts before
        :class:`~repro.errors.InsertionError`.
    family:
        The (h, g) hash pair driving the window sequence.
    rebuild_on_failure:
        When True the table transparently invalidates and reinserts with a
        translated hash family after an insertion failure (§II).
    max_rebuilds:
        Upper bound on transparent rebuild attempts.
    """

    capacity: int
    group_size: int = 4
    p_max: int = DEFAULT_P_MAX
    family: DoubleHashFamily = field(default_factory=make_double_family)
    rebuild_on_failure: bool = True
    max_rebuilds: int = 4

    def __post_init__(self):
        check_positive("capacity", self.capacity)
        check_group_size(self.group_size)
        check_positive("p_max", self.p_max)
        if self.max_rebuilds < 0:
            raise ConfigurationError(
                f"max_rebuilds must be >= 0, got {self.max_rebuilds}"
            )

    @classmethod
    def for_load_factor(
        cls, num_pairs: int, load_factor: float, **kwargs
    ) -> "HashTableConfig":
        """Size the table so inserting ``num_pairs`` reaches ``load_factor``.

        This mirrors the experiments' "target load factor": the capacity is
        ``ceil(n / α)`` — for unique keys the target coincides with the
        true occupancy (§V-A).
        """
        check_positive("num_pairs", num_pairs)
        check_load_factor(load_factor)
        capacity = max(int(math.ceil(num_pairs / load_factor)), 1)
        return cls(capacity=capacity, **kwargs)

    @property
    def table_bytes(self) -> int:
        """VRAM footprint of the slot array (8 bytes per slot)."""
        return self.capacity * 8

    def rebuilt(self, salt: int) -> "HashTableConfig":
        """Config for the reconstruction attempt after an insert failure."""
        return replace(self, family=self.family.rebuilt(salt))
