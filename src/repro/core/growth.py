"""Dynamic growth policy for WarpDrive tables.

WarpSpeed (McCoy & Pandey) identifies missing resizing as the key
functionality gap keeping GPU hash tables out of large-scale data
processing: a fixed-capacity table either over-provisions wildly or dies
with an :class:`~repro.errors.InsertionError` mid-ingest.  A
:class:`GrowthPolicy` closes that gap — it decides *when* a table must
grow (the load threshold an incoming batch may not push past) and *how
far* (a geometric factor, floored so the post-growth load lands back
under the threshold).

The policy is pure arithmetic; the actual rehash — re-inserting every
live pair with the real bulk kernels, so the probe/CAS work of the
migration is measured, charged, and traced — lives in
:meth:`repro.core.table.WarpDriveHashTable.grow`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["GrowthPolicy", "DEFAULT_MAX_LOAD", "DEFAULT_GROWTH_FACTOR"]

DEFAULT_MAX_LOAD = 0.9
DEFAULT_GROWTH_FACTOR = 2.0


@dataclass(frozen=True)
class GrowthPolicy:
    """When and how far a table resizes.

    Attributes
    ----------
    max_load:
        Load factor the table may not exceed; an insert that would push
        ``n / c`` past this triggers a grow *before* the kernel runs.
    factor:
        Geometric capacity multiplier per grow step.  The target
        capacity is additionally floored at ``required / max_load`` so
        one grow always suffices for the batch that triggered it.
    """

    max_load: float = DEFAULT_MAX_LOAD
    factor: float = DEFAULT_GROWTH_FACTOR

    def __post_init__(self):
        if not 0 < self.max_load <= 1:
            raise ConfigurationError(
                f"max_load must be in (0, 1], got {self.max_load}"
            )
        if self.factor <= 1:
            raise ConfigurationError(
                f"growth factor must be > 1, got {self.factor}"
            )

    def max_pairs(self, capacity: int) -> int:
        """Most pairs ``capacity`` may hold without tripping the policy."""
        return int(math.floor(capacity * self.max_load))

    def should_grow(self, capacity: int, required: int) -> bool:
        """True when ``required`` pairs exceed the load threshold."""
        return required > self.max_pairs(capacity)

    def next_capacity(self, capacity: int, required: int) -> int:
        """Smallest policy-conforming capacity for ``required`` pairs.

        Grows geometrically (``factor`` per step) but never returns a
        capacity whose load for ``required`` pairs would still exceed
        ``max_load`` — a single grow always absorbs the triggering batch.
        """
        floor = int(math.ceil(required / self.max_load))
        target = max(int(math.ceil(capacity * self.factor)), capacity + 1)
        while target < floor:
            target = max(int(math.ceil(target * self.factor)), target + 1)
        return target
