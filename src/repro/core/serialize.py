"""Table serialization.

A fixed-capacity open-addressing table is fully determined by its slot
array plus the hash family that laid it out, so snapshots are cheap: we
store the raw slots, the family's mixer names and translations, and the
config scalars.  Loading restores a byte-identical table — same probe
walks, same placements — without re-inserting anything.

Format: NumPy ``.npz`` with a JSON header (schema-versioned).  Version 2
adds the policy fields of the decomposed table core — ``probing``,
``layout``, and ``growth`` — and always stores the slots in *packed*
form regardless of the in-memory layout, so an ``soa`` table snapshot
loads into an ``aos`` build bit-identically (and vice versa).  Version 1
snapshots load with the default policies.

Version 3 records ``bytes_per_slot`` — the *modelled* record width of
the layout that wrote the snapshot
(:func:`repro.core.store.slot_record_bytes`); the on-disk slots stay
packed ``uint64`` words, so a ``compact`` snapshot still loads into any
layout bit-identically.  The field is informational (the loader derives
the live width from the restored config) but must match it, which
pins snapshots against silent record-width drift.  Versions 1 and 2
remain readable.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from ..errors import ConfigurationError
from ..hashing.families import DoubleHashFamily, make_hash
from .config import HashTableConfig
from .growth import GrowthPolicy
from .store import slot_record_bytes
from .table import WarpDriveHashTable

__all__ = ["save_table", "load_table", "FORMAT_VERSION"]

FORMAT_VERSION = 3
#: versions :func:`load_table` understands
READABLE_VERSIONS = frozenset({1, 2, 3})


def _family_meta(family: DoubleHashFamily) -> dict:
    return {
        "h_name": family.h.name,
        "h_translation": int(family.h.translation),
        "g_name": family.g.name,
        "g_translation": int(family.g.translation),
    }


def _family_from_meta(meta: dict) -> DoubleHashFamily:
    return DoubleHashFamily(
        h=make_hash(meta["h_name"], translation=meta["h_translation"]),
        g=make_hash(meta["g_name"], translation=meta["g_translation"]),
    )


def _growth_meta(growth: GrowthPolicy | None) -> dict | None:
    if growth is None:
        return None
    return {"max_load": growth.max_load, "factor": growth.factor}


def _growth_from_meta(meta: dict | None) -> GrowthPolicy | None:
    if meta is None:
        return None
    return GrowthPolicy(max_load=meta["max_load"], factor=meta["factor"])


def save_table(table: WarpDriveHashTable, path: str | pathlib.Path) -> None:
    """Snapshot a table to ``path`` (``.npz``)."""
    header = {
        "format_version": FORMAT_VERSION,
        "capacity": table.capacity,
        "group_size": table.config.group_size,
        "p_max": table.config.p_max,
        "size": len(table),
        "rebuilds": table.rebuilds,
        "grows": table.grows,
        "family": _family_meta(table.config.family),
        "rebuild_on_failure": table.config.rebuild_on_failure,
        "max_rebuilds": table.config.max_rebuilds,
        "probing": table.config.probing,
        "layout": table.config.layout,
        "growth": _growth_meta(table.config.growth),
        "bytes_per_slot": slot_record_bytes(
            table.config.layout, table.capacity
        ),
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        # always packed on disk: layout is an in-memory policy, not a format
        slots=np.asarray(table.slots, dtype=np.uint64),
    )


def load_table(path: str | pathlib.Path) -> WarpDriveHashTable:
    """Restore a table snapshot written by :func:`save_table`."""
    with np.load(path) as archive:
        if "header" not in archive or "slots" not in archive:
            raise ConfigurationError(f"{path}: not a WarpDrive table snapshot")
        header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
        slots = archive["slots"]

    version = header.get("format_version")
    if version not in READABLE_VERSIONS:
        raise ConfigurationError(
            f"{path}: unsupported snapshot version {version!r} "
            f"(this build reads {sorted(READABLE_VERSIONS)})"
        )
    if slots.shape[0] != header["capacity"]:
        raise ConfigurationError(
            f"{path}: slot array length {slots.shape[0]} does not match "
            f"declared capacity {header['capacity']}"
        )

    config = HashTableConfig(
        capacity=header["capacity"],
        group_size=header["group_size"],
        p_max=header["p_max"],
        family=_family_from_meta(header["family"]),
        rebuild_on_failure=header["rebuild_on_failure"],
        max_rebuilds=header["max_rebuilds"],
        # v1 snapshots predate the policy fields: default policies
        probing=header.get("probing", "window"),
        layout=header.get("layout", "aos"),
        growth=_growth_from_meta(header.get("growth")),
    )
    declared = header.get("bytes_per_slot")
    derived = slot_record_bytes(config.layout, config.capacity)
    if declared is not None and int(declared) != derived:
        raise ConfigurationError(
            f"{path}: snapshot declares {declared} bytes per slot but "
            f"layout {config.layout!r} at capacity {config.capacity} "
            f"models {derived} — record-width rules drifted"
        )
    table = WarpDriveHashTable(config=config)
    table.store.load_packed(slots.astype(np.uint64))
    table._size = int(header["size"])
    table.rebuilds = int(header["rebuilds"])
    table.grows = int(header.get("grows", 0))
    return table
