"""Small statistics helpers for probe-length and throughput summaries."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "geometric_mean", "harmonic_mean", "cdf_points"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample used in reports and tests."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(sample: np.ndarray) -> Summary:
    """Summarize a 1-D numeric sample (empty samples yield all-zero stats)."""
    arr = np.asarray(sample, dtype=np.float64).ravel()
    if arr.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    p50, p95, p99 = np.percentile(arr, [50, 95, 99])
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        maximum=float(arr.max()),
    )


def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean of positive values (speedup aggregation)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sample")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def harmonic_mean(values: np.ndarray) -> float:
    """Harmonic mean of positive values (rate aggregation)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("harmonic_mean of empty sample")
    if np.any(arr <= 0):
        raise ValueError("harmonic_mean requires strictly positive values")
    return float(arr.size / np.sum(1.0 / arr))


def cdf_points(sample: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative fractions)."""
    arr = np.sort(np.asarray(sample, dtype=np.float64).ravel())
    if arr.size == 0:
        return arr, arr
    fractions = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, fractions
