"""Bit-level helpers shared across the SIMT simulator and the hash core.

These provide the handful of hardware intrinsics the paper's kernel relies
on (``__ffs``, ``__popc``, ballots as packed integers) in both scalar and
vectorized (NumPy) forms.  All operate on Python ints or ``uint64`` arrays;
masks are plain non-negative integers with bit ``i`` describing lane ``i``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ffs",
    "popcount",
    "ffs_array",
    "popcount_array",
    "mask_from_bools",
    "bools_from_mask",
    "clear_lowest_bit",
    "is_power_of_two",
    "next_power_of_two",
    "bit_length",
]


def ffs(mask: int) -> int:
    """Find-first-set: 1-based index of the least significant set bit.

    Matches CUDA ``__ffs``: returns 0 when ``mask`` is 0.  The paper's
    kernel (Fig. 3, line 11) elects the CG leader as ``__ffs(mask)``.
    """
    if mask == 0:
        return 0
    return (mask & -mask).bit_length()


def popcount(mask: int) -> int:
    """Number of set bits (CUDA ``__popc``)."""
    return int(mask).bit_count()


def ffs_array(masks: np.ndarray) -> np.ndarray:
    """Vectorized :func:`ffs` over an integer array (0 where mask == 0)."""
    m = masks.astype(np.uint64, copy=False)
    isolated = m & (np.uint64(0) - m)  # two's complement trick: m & -m
    out = np.zeros(m.shape, dtype=np.int64)
    nz = isolated != 0
    # bit_length of an isolated bit == log2 + 1
    out[nz] = np.log2(isolated[nz].astype(np.float64)).astype(np.int64) + 1
    return out


def popcount_array(masks: np.ndarray) -> np.ndarray:
    """Vectorized popcount over an unsigned integer array."""
    return np.bitwise_count(masks.astype(np.uint64, copy=False)).astype(np.int64)


def mask_from_bools(flags: np.ndarray) -> int:
    """Pack a boolean lane-predicate vector into a ballot mask.

    Lane ``i``'s flag becomes bit ``i`` — the packed ``|g|``-bit integer the
    paper broadcasts with ``__ballot`` (Fig. 3, line 9).
    """
    flags = np.asarray(flags, dtype=bool)
    if flags.size > 64:
        raise ValueError(f"ballot masks support at most 64 lanes, got {flags.size}")
    weights = np.uint64(1) << np.arange(flags.size, dtype=np.uint64)
    return int(np.sum(weights[flags], dtype=np.uint64))


def bools_from_mask(mask: int, width: int) -> np.ndarray:
    """Unpack a ballot mask into a boolean vector of ``width`` lanes."""
    if width < 0 or width > 64:
        raise ValueError(f"width must be in [0, 64], got {width}")
    bits = (np.uint64(mask) >> np.arange(width, dtype=np.uint64)) & np.uint64(1)
    return bits.astype(bool)


def clear_lowest_bit(mask: int) -> int:
    """Clear the least significant set bit (advance the ballot scan)."""
    return mask & (mask - 1)


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (n >= 1)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def bit_length(n: int) -> int:
    """Number of bits needed to represent ``n`` (0 -> 0)."""
    return int(n).bit_length()
