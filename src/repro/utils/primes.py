"""Prime capacity helpers.

Double-hashing probe sequences only visit all slots when the step size is
coprime with the capacity.  Forcing the step odd suffices for power-of-two
capacities; arbitrary capacities (Stadium hashing, classic textbook double
hashing) instead round up to a prime so *every* nonzero step generates a
full cycle.
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["is_prime", "next_prime"]


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin, exact for all 64-bit integers."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # these witnesses are exact for n < 3.3e24
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime >= n."""
    if n < 2:
        return 2
    if n > (1 << 62):
        raise ConfigurationError(f"next_prime argument too large: {n}")
    candidate = n if n % 2 else n + 1
    if n == 2:
        return 2
    while not is_prime(candidate):
        candidate += 2
    return candidate
