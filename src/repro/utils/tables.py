"""ASCII table and series rendering for the benchmark harness.

The paper reports results as figures (rate-vs-load curves, scaling
efficiency curves, runtime decompositions).  The bench targets print the
same information as aligned text tables and simple series blocks so the
reproduction can be inspected without plotting.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_series", "format_kv", "sparkline"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _fmt_cell(value: object, ndigits: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{ndigits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    ndigits: int = 3,
) -> str:
    """Render rows as a fixed-width, right-aligned ASCII table."""
    str_rows = [[_fmt_cell(c, ndigits) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    x_label: str = "x",
    y_label: str = "y",
    ndigits: int = 3,
) -> str:
    """Render one named (x, y) series with a sparkline, figure-style."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: len(xs)={len(xs)} != len(ys)={len(ys)}")
    rows = [(x, y) for x, y in zip(xs, ys)]
    table = format_table([x_label, y_label], rows, ndigits=ndigits)
    return f"{name}  {sparkline(ys)}\n{table}"


def format_kv(pairs: dict[str, object], *, title: str | None = None, ndigits: int = 3) -> str:
    """Render key/value pairs one per line, aligned on the colon."""
    if not pairs:
        return title or ""
    width = max(len(k) for k in pairs)
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)} : {_fmt_cell(value, ndigits)}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a numeric series (empty string for no data)."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_CHARS[3] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)
