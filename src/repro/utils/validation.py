"""Argument-validation helpers used by public constructors.

Centralizing the checks keeps error messages consistent and the
constructors readable.  All raise :class:`repro.errors.ConfigurationError`.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..constants import MAX_KEY, MAX_VALUE, VALID_GROUP_SIZES
from ..errors import ConfigurationError

__all__ = [
    "check_group_size",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_load_factor",
    "check_probability",
    "check_keys",
    "check_values",
    "check_same_length",
    "check_choice",
]


def check_group_size(g: int) -> int:
    """Validate a coalesced-group size |g| (paper: divisors of the warp)."""
    if g not in VALID_GROUP_SIZES:
        raise ConfigurationError(
            f"group size must be one of {VALID_GROUP_SIZES}, got {g!r}"
        )
    return int(g)


def check_positive(name: str, value: float | int) -> float | int:
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float | int) -> float | int:
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str, value: float, lo: float, hi: float, *, inclusive: bool = True
) -> float:
    ok = lo <= value <= hi if inclusive else lo < value < hi
    if not ok:
        bounds = f"[{lo}, {hi}]" if inclusive else f"({lo}, {hi})"
        raise ConfigurationError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_load_factor(alpha: float) -> float:
    """Target load factor α = n/c must lie in (0, 1]."""
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"load factor must be in (0, 1], got {alpha!r}")
    return float(alpha)


def check_probability(name: str, p: float) -> float:
    return float(check_in_range(name, p, 0.0, 1.0))


def check_keys(keys: np.ndarray) -> np.ndarray:
    """Validate and canonicalize a key array to uint32 within [0, MAX_KEY]."""
    arr = np.asarray(keys)
    if arr.ndim != 1:
        raise ConfigurationError(f"keys must be 1-D, got shape {arr.shape}")
    if arr.size and (
        not np.issubdtype(arr.dtype, np.integer)
        or int(arr.min(initial=0)) < 0
        or int(arr.max(initial=0)) > MAX_KEY
    ):
        raise ConfigurationError(
            f"keys must be integers in [0, {MAX_KEY}] (two top values are "
            f"reserved for EMPTY/TOMBSTONE sentinels)"
        )
    return arr.astype(np.uint32, copy=False)


def check_values(values: np.ndarray) -> np.ndarray:
    """Validate and canonicalize a value array to uint32."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ConfigurationError(f"values must be 1-D, got shape {arr.shape}")
    if arr.size and (
        not np.issubdtype(arr.dtype, np.integer)
        or int(arr.min(initial=0)) < 0
        or int(arr.max(initial=0)) > MAX_VALUE
    ):
        raise ConfigurationError(f"values must be integers in [0, {MAX_VALUE}]")
    return arr.astype(np.uint32, copy=False)


def check_same_length(a_name: str, a: Sequence | np.ndarray, b_name: str, b) -> None:
    if len(a) != len(b):
        raise ConfigurationError(
            f"{a_name} and {b_name} must have equal length "
            f"({len(a)} != {len(b)})"
        )


def check_choice(name: str, value: Any, choices: Sequence[Any]) -> Any:
    if value not in choices:
        raise ConfigurationError(f"{name} must be one of {tuple(choices)}, got {value!r}")
    return value
