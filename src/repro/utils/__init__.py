"""Shared utilities: bit intrinsics, validation, statistics, reporting."""

from .bitops import (
    bools_from_mask,
    clear_lowest_bit,
    ffs,
    ffs_array,
    is_power_of_two,
    mask_from_bools,
    next_power_of_two,
    popcount,
    popcount_array,
)
from .stats import Summary, cdf_points, geometric_mean, harmonic_mean, summarize
from .tables import format_kv, format_series, format_table, sparkline
from .validation import (
    check_group_size,
    check_in_range,
    check_keys,
    check_load_factor,
    check_non_negative,
    check_positive,
    check_same_length,
    check_values,
)

__all__ = [
    "ffs",
    "popcount",
    "ffs_array",
    "popcount_array",
    "mask_from_bools",
    "bools_from_mask",
    "clear_lowest_bit",
    "is_power_of_two",
    "next_power_of_two",
    "Summary",
    "summarize",
    "geometric_mean",
    "harmonic_mean",
    "cdf_points",
    "format_table",
    "format_series",
    "format_kv",
    "sparkline",
    "check_group_size",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_load_factor",
    "check_keys",
    "check_values",
    "check_same_length",
]
