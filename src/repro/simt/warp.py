"""Coalesced-group collectives (§IV-A).

The paper targets both pre-Volta lock-step warps and (post-)Volta
independent thread scheduling, and restricts itself to collectives that
synchronize the group implicitly: ``ballot``, ``any``, plus ``__ffs`` for
leader election and ``shfl`` for broadcast.  This module implements a
:class:`CoalescedGroup` whose lanes are vectors of NumPy values; every
collective charges :attr:`TransactionCounter.warp_collectives` on the
owning device so the perf model can account instruction overhead.

Lanes inside one group execute in lock-step here (collectives are the
only cross-lane communication, exactly as in the paper's kernel), while
*cross-group* interleaving — where real races live — is handled by
:mod:`repro.simt.scheduler`.
"""

from __future__ import annotations

import numpy as np

from ..constants import VALID_GROUP_SIZES, WARP_SIZE
from ..errors import ConfigurationError
from ..utils.bitops import ffs, mask_from_bools
from .counters import TransactionCounter

__all__ = ["CoalescedGroup"]


class CoalescedGroup:
    """|g| consecutive threads cooperating on one key-value pair.

    Parameters
    ----------
    size:
        Group size ``|g| ∈ {1, 2, 4, 8, 16, 32}``.
    counter:
        Device counter charged for each collective; optional so the group
        can be used standalone in tests.
    sanitizer:
        Optional race sanitizer (:mod:`repro.sanitize.racecheck`).  Every
        collective is an implicit intra-group synchronization point, so
        each one closes the running group's instruction-epoch interval.
    """

    def __init__(
        self,
        size: int,
        counter: TransactionCounter | None = None,
        *,
        sanitizer=None,
    ):
        if size not in VALID_GROUP_SIZES:
            raise ConfigurationError(
                f"group size must be one of {VALID_GROUP_SIZES}, got {size}"
            )
        self.size = size
        self.counter = counter
        self.sanitizer = sanitizer

    @property
    def thread_rank(self) -> np.ndarray:
        """Per-lane rank 0..|g|-1 (``g.thread_rank`` in Fig. 3)."""
        return np.arange(self.size, dtype=np.int64)

    @property
    def groups_per_warp(self) -> int:
        """How many such groups tile one 32-thread warp."""
        return WARP_SIZE // self.size

    def _charge(self) -> None:
        if self.counter is not None:
            self.counter.warp_collectives += 1
        if self.sanitizer is not None:
            self.sanitizer.on_sync()

    def ballot(self, predicate: np.ndarray) -> int:
        """Packed |g|-bit mask of per-lane predicates (implicitly syncs).

        Lane ``i``'s predicate becomes bit ``i`` — the mask the insert
        kernel scans with ``__ffs`` (Fig. 3, lines 9-11).
        """
        pred = np.asarray(predicate, dtype=bool)
        if pred.shape != (self.size,):
            raise ConfigurationError(
                f"predicate must have shape ({self.size},), got {pred.shape}"
            )
        self._charge()
        return mask_from_bools(pred)

    def any(self, predicate: np.ndarray) -> bool:
        """True when any lane's predicate holds (implicitly syncs)."""
        pred = np.asarray(predicate, dtype=bool)
        if pred.shape != (self.size,):
            raise ConfigurationError(
                f"predicate must have shape ({self.size},), got {pred.shape}"
            )
        self._charge()
        return bool(pred.any())

    def all(self, predicate: np.ndarray) -> bool:
        """True when every lane's predicate holds (implicitly syncs)."""
        pred = np.asarray(predicate, dtype=bool)
        if pred.shape != (self.size,):
            raise ConfigurationError(
                f"predicate must have shape ({self.size},), got {pred.shape}"
            )
        self._charge()
        return bool(pred.all())

    def shfl(self, values: np.ndarray, src_lane: int) -> np.ndarray:
        """Broadcast lane ``src_lane``'s value to all lanes."""
        vals = np.asarray(values)
        if vals.shape[0] != self.size:
            raise ConfigurationError(
                f"values must have {self.size} lanes, got {vals.shape}"
            )
        if not 0 <= src_lane < self.size:
            raise ConfigurationError(
                f"src_lane must be in [0, {self.size}), got {src_lane}"
            )
        self._charge()
        return np.broadcast_to(vals[src_lane], vals.shape).copy()

    def elect_leader(self, mask: int) -> int:
        """Leftmost active lane of a ballot mask, or -1 when mask == 0.

        ``leader ← __ffs(mask)`` in Fig. 3 line 11 (converted to 0-based).
        """
        pos = ffs(mask)
        return pos - 1 if pos else -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoalescedGroup(size={self.size})"
