"""Atomic operations on simulated device memory.

CUDA devices expose 64-bit atomics; the paper's insert guards every slot
write with ``CAS(t + i, d_t, d)`` (Fig. 3, line 13).  Here atomicity is
trivially provided by the single simulation thread, but we preserve the
exact *semantics*: CAS returns the old value, succeeds only on an exact
match, and every attempt (successful or not) is charged to the counter so
contention shows up in the performance model.

Sanitizer hook
--------------
When the target array is a :class:`~repro.sanitize.shadow.ShadowedArray`
the access is recorded as *atomic* shadow traffic (with the issuing lane,
when the kernel annotates it via ``lane=``) and the plain ``__getitem__``
/ ``__setitem__`` the implementation performs underneath are suppressed —
exactly mirroring how ``compute-sanitizer`` treats hardware atomics as
single indivisible accesses.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .counters import TransactionCounter

__all__ = ["atomic_cas", "atomic_exch", "atomic_add", "warp_aggregated_add"]


def _check_index(array: np.ndarray, index: int) -> None:
    if not 0 <= index < array.shape[0]:
        raise ConfigurationError(
            f"atomic index {index} out of range [0, {array.shape[0]})"
        )


def _shadow(array: np.ndarray):
    """The attached sanitizer when ``array`` is shadow-instrumented."""
    return getattr(array, "sanitizer", None)


def atomic_cas(
    array: np.ndarray,
    index: int,
    expected: np.uint64,
    desired: np.uint64,
    counter: TransactionCounter | None = None,
    *,
    lane: int = -1,
) -> np.uint64:
    """Compare-and-swap: write ``desired`` iff slot equals ``expected``.

    Returns the *old* slot contents, mirroring CUDA ``atomicCAS``: the
    caller tests ``old == expected`` to detect success (Fig. 3, line 13).
    ``lane`` optionally names the issuing group lane for the sanitizer.
    """
    _check_index(array, index)
    sanitizer = _shadow(array)
    if sanitizer is not None:
        sanitizer.record_atomic(
            getattr(array, "shadow_name", "slots"), index, lane=lane
        )
        with sanitizer.suppress_plain():
            return _cas_body(array, index, expected, desired, counter)
    return _cas_body(array, index, expected, desired, counter)


def _cas_body(array, index, expected, desired, counter):
    old = array[index]
    success = old == expected
    if success:
        array[index] = desired
    if counter is not None:
        counter.charge_cas(attempts=1, successes=int(success))
    return old


def atomic_exch(
    array: np.ndarray,
    index: int,
    desired: np.uint64,
    counter: TransactionCounter | None = None,
    *,
    lane: int = -1,
) -> np.uint64:
    """Unconditional atomic exchange; returns the old value.

    Used by the cuckoo baseline, whose eviction loop swaps rather than
    compares.
    """
    _check_index(array, index)
    sanitizer = _shadow(array)
    if sanitizer is not None:
        sanitizer.record_atomic(
            getattr(array, "shadow_name", "slots"), index, lane=lane
        )
        with sanitizer.suppress_plain():
            return _exch_body(array, index, desired, counter)
    return _exch_body(array, index, desired, counter)


def _exch_body(array, index, desired, counter):
    old = array[index]
    array[index] = desired
    if counter is not None:
        counter.charge_cas(attempts=1, successes=1)
    return old


def atomic_add(
    array: np.ndarray,
    index: int,
    amount: int,
    counter: TransactionCounter | None = None,
    *,
    lane: int = -1,
) -> int:
    """Atomic fetch-and-add; returns the pre-add value."""
    _check_index(array, index)
    sanitizer = _shadow(array)
    if sanitizer is not None:
        sanitizer.record_atomic(
            getattr(array, "shadow_name", "slots"), index, lane=lane
        )
        with sanitizer.suppress_plain():
            return _add_body(array, index, amount, counter)
    return _add_body(array, index, amount, counter)


def _add_body(array, index, amount, counter):
    old = int(array[index])
    array[index] = array.dtype.type(old + amount)
    if counter is not None:
        counter.atomic_adds += 1
    return old


def warp_aggregated_add(
    array: np.ndarray,
    index: int,
    lane_participates: np.ndarray,
    counter: TransactionCounter | None = None,
) -> np.ndarray:
    """Warp-aggregated atomic counter increment (Adinetz's technique [23]).

    All participating lanes of a coalesced group reserve consecutive
    positions with a *single* atomic add of the participant count; each
    lane's return value is the base offset plus its rank among
    participants.  This is the primitive our multisplit's compaction step
    uses, and the reason its atomic traffic is ~1/|g| of the naive scheme.

    Returns an int64 array with one reserved position per lane
    (-1 for lanes that do not participate).
    """
    flags = np.asarray(lane_participates, dtype=bool)
    n = int(flags.sum())
    out = np.full(flags.shape, -1, dtype=np.int64)
    if n == 0:
        return out
    base = atomic_add(array, index, n, counter)
    if counter is not None:
        counter.warp_collectives += 1  # the intra-warp rank computation
    out[flags] = base + np.arange(n, dtype=np.int64)
    return out
