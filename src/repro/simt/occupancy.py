"""Streaming-multiprocessor occupancy model.

§V-B explains the group-size trade-off partly through occupancy: "small
groups may probe multiple windows at a higher group occupancy rate on
the Streaming Multiprocessors."  This module is a faithful CUDA
occupancy calculator for Pascal-class SMs: resident blocks per SM are
limited by threads, registers, shared memory, and the block-slot cap;
the winner determines how many warps (and hence coalesced groups) are in
flight to hide memory latency.

The perf model's ``TRANSACTION_ISSUE_RATE`` is a chip-level summary of
this machinery; the calculator exposes the underlying arithmetic so the
calibration is auditable (see ``tests/simt/test_occupancy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import WARP_SIZE
from ..errors import ConfigurationError

__all__ = ["SMResources", "KernelResources", "OccupancyResult", "occupancy", "PASCAL_SM"]


@dataclass(frozen=True)
class SMResources:
    """Per-SM hardware limits."""

    max_threads: int = 2048
    max_blocks: int = 32
    max_warps: int = 64
    registers: int = 65536
    shared_memory: int = 65536  # bytes
    register_allocation_unit: int = 256
    shared_allocation_unit: int = 256


#: GP100 (Tesla P100) streaming multiprocessor
PASCAL_SM = SMResources()


@dataclass(frozen=True)
class KernelResources:
    """What one thread block of a kernel consumes."""

    block_threads: int = 256
    registers_per_thread: int = 32
    shared_per_block: int = 0

    def __post_init__(self):
        if self.block_threads < 1 or self.block_threads % WARP_SIZE:
            raise ConfigurationError(
                f"block_threads must be a positive multiple of {WARP_SIZE}"
            )
        if self.registers_per_thread < 1:
            raise ConfigurationError("registers_per_thread must be >= 1")
        if self.shared_per_block < 0:
            raise ConfigurationError("shared_per_block must be >= 0")


@dataclass(frozen=True)
class OccupancyResult:
    """Resident blocks/warps per SM and what limited them."""

    blocks_per_sm: int
    warps_per_sm: int
    limiter: str  # "threads" | "blocks" | "registers" | "shared_memory"
    occupancy: float  # resident warps / max warps

    def resident_groups(self, group_size: int) -> int:
        """Concurrent coalesced groups per SM at a given |g|."""
        if group_size < 1:
            raise ConfigurationError("group_size must be >= 1")
        return self.warps_per_sm * (WARP_SIZE // group_size)


def _round_up(value: int, unit: int) -> int:
    return ((value + unit - 1) // unit) * unit


def occupancy(kernel: KernelResources, sm: SMResources = PASCAL_SM) -> OccupancyResult:
    """Resident blocks per SM for a kernel, CUDA-calculator style."""
    limits: dict[str, int] = {}
    limits["threads"] = sm.max_threads // kernel.block_threads
    limits["blocks"] = sm.max_blocks

    regs_per_block = _round_up(
        kernel.registers_per_thread * kernel.block_threads,
        sm.register_allocation_unit,
    )
    limits["registers"] = sm.registers // regs_per_block if regs_per_block else sm.max_blocks

    if kernel.shared_per_block:
        shared = _round_up(kernel.shared_per_block, sm.shared_allocation_unit)
        limits["shared_memory"] = sm.shared_memory // shared
    else:
        limits["shared_memory"] = sm.max_blocks

    blocks = min(limits.values())
    # report the binding constraint (ties resolve in a fixed order)
    limiter = min(limits, key=lambda k: (limits[k], k))
    warps = min(blocks * kernel.block_threads // WARP_SIZE, sm.max_warps)
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        limiter=limiter,
        occupancy=warps / sm.max_warps,
    )
