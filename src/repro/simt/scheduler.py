"""Cross-group interleaving schedulers.

§IV-A: "with the introduction of the Volta generation and CUDA 9,
consecutive threads within a warp can be scheduled independently".  Races
in the insert kernel happen *between* coalesced groups: two groups may
load overlapping windows, both see an empty slot, and only one CAS wins.

The reference kernels are written as Python generators that ``yield`` at
every global-memory observation point (window load, CAS attempt).  A
scheduler drains a set of such group-tasks in some order:

* :class:`SequentialScheduler` — each group runs to completion (the
  contention-free baseline ordering).
* :class:`RoundRobinScheduler` — lock-step rotation, maximizing window
  staleness ("the copies of the keys in registers might have already been
  deprecated").
* :class:`RandomScheduler` — seeded adversarial interleaving, the moral
  equivalent of independent thread scheduling.

Correctness tests assert the table invariants hold under *all* schedules.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Generator, Iterable

from ..errors import ConfigurationError

__all__ = [
    "Scheduler",
    "SequentialScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "ALL_SCHEDULERS",
]

GroupTask = Generator[None, None, object]


class Scheduler(ABC):
    """Drains a collection of group-task generators to completion."""

    #: safety valve: one task may not yield more than this many times
    MAX_STEPS_PER_TASK = 1_000_000

    @abstractmethod
    def run(self, tasks: Iterable[GroupTask]) -> list[object]:
        """Drive all tasks; returns their return values in input order."""

    @staticmethod
    def _finish(task: GroupTask) -> object:
        """Run a generator to completion, returning its StopIteration value."""
        steps = 0
        while True:
            try:
                next(task)
            except StopIteration as stop:
                return stop.value
            steps += 1
            if steps > Scheduler.MAX_STEPS_PER_TASK:
                raise ConfigurationError(
                    "group task exceeded step budget; kernel likely stuck"
                )


class SequentialScheduler(Scheduler):
    """Each group runs to completion before the next starts."""

    def run(self, tasks: Iterable[GroupTask]) -> list[object]:
        return [self._finish(task) for task in tasks]


class RoundRobinScheduler(Scheduler):
    """Advance each live task by one step in rotation."""

    def run(self, tasks: Iterable[GroupTask]) -> list[object]:
        live: list[tuple[int, GroupTask]] = list(enumerate(tasks))
        results: dict[int, object] = {}
        steps = 0
        while live:
            still_live: list[tuple[int, GroupTask]] = []
            for idx, task in live:
                try:
                    next(task)
                    still_live.append((idx, task))
                except StopIteration as stop:
                    results[idx] = stop.value
            live = still_live
            steps += 1
            if steps > self.MAX_STEPS_PER_TASK:
                raise ConfigurationError(
                    "round-robin schedule exceeded step budget; kernel likely stuck"
                )
        return [results[i] for i in range(len(results))]


class RandomScheduler(Scheduler):
    """Advance a uniformly random live task each step (seeded)."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self.seed = seed

    def run(self, tasks: Iterable[GroupTask]) -> list[object]:
        live: list[tuple[int, GroupTask]] = list(enumerate(tasks))
        results: dict[int, object] = {}
        total = len(live)
        steps = 0
        while live:
            pick = self._rng.randrange(len(live))
            idx, task = live[pick]
            try:
                next(task)
            except StopIteration as stop:
                results[idx] = stop.value
                live.pop(pick)
            steps += 1
            if steps > self.MAX_STEPS_PER_TASK * max(total, 1):
                raise ConfigurationError(
                    "random schedule exceeded step budget; kernel likely stuck"
                )
        return [results[i] for i in range(total)]


#: Factories for parametrized correctness tests across all schedules.
ALL_SCHEDULERS = {
    "sequential": SequentialScheduler,
    "round_robin": RoundRobinScheduler,
    "random": lambda: RandomScheduler(seed=1234),
}
