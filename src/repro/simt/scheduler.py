"""Cross-group interleaving schedulers.

§IV-A: "with the introduction of the Volta generation and CUDA 9,
consecutive threads within a warp can be scheduled independently".  Races
in the insert kernel happen *between* coalesced groups: two groups may
load overlapping windows, both see an empty slot, and only one CAS wins.

The reference kernels are written as Python generators that ``yield`` at
every global-memory observation point (window load, CAS attempt).  A
scheduler drains a set of such group-tasks in some order:

* :class:`SequentialScheduler` — each group runs to completion (the
  contention-free baseline ordering).
* :class:`RoundRobinScheduler` — lock-step rotation, maximizing window
  staleness ("the copies of the keys in registers might have already been
  deprecated").
* :class:`RandomScheduler` — seeded adversarial interleaving, the moral
  equivalent of independent thread scheduling.

Correctness tests assert the table invariants hold under *all* schedules.

Reproducibility
---------------
Every interleaving is a pure function of the scheduler's ``seed`` and the
zero-based ``launch`` ordinal (:class:`RandomScheduler` re-derives a fresh
RNG per :meth:`~Scheduler.run`, so the k-th launch on a reused scheduler
does not depend on how long earlier launches ran).  ``describe()`` gives
the exact expression to replay the interleaving of the *last* launch — the
string the sanitizer and fuzz harness print in failure messages.

Observers
---------
``run(tasks, observer=...)`` accepts a :class:`ScheduleObserver`; the
scheduler reports which task is about to step and when each task retires.
This is the hook the race sanitizer (:mod:`repro.sanitize.racecheck`) uses
to attribute memory accesses to coalesced groups.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Generator, Iterable

from ..errors import ConfigurationError

__all__ = [
    "Scheduler",
    "ScheduleObserver",
    "SequentialScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "ALL_SCHEDULERS",
]

GroupTask = Generator[None, None, object]


class ScheduleObserver:
    """Callback protocol for schedule-aware instrumentation.

    All hooks default to no-ops so observers override only what they
    need.  ``on_task_step(idx)`` fires *before* the scheduler advances
    task ``idx`` by one yield interval; ``on_task_done(idx)`` fires when
    the task's generator returns.
    """

    def on_launch(self, num_tasks: int, description: str) -> None:
        """A scheduler is about to drain ``num_tasks`` group-tasks."""

    def on_task_step(self, idx: int) -> None:
        """Task ``idx`` is about to execute its next interval."""

    def on_task_done(self, idx: int) -> None:
        """Task ``idx`` ran to completion."""


class Scheduler(ABC):
    """Drains a collection of group-task generators to completion."""

    #: safety valve: one task may not yield more than this many times
    MAX_STEPS_PER_TASK = 1_000_000

    #: zero-based ordinal of the next ``run`` call (for reproducibility)
    launches: int = 0

    @abstractmethod
    def run(
        self, tasks: Iterable[GroupTask], observer: ScheduleObserver | None = None
    ) -> list[object]:
        """Drive all tasks; returns their return values in input order."""

    def describe(self) -> str:
        """Replay expression for the most recent launch's interleaving."""
        return f"{type(self).__name__}()"

    @staticmethod
    def _finish(
        task: GroupTask, idx: int, observer: ScheduleObserver | None
    ) -> object:
        """Run a generator to completion, returning its StopIteration value."""
        steps = 0
        while True:
            try:
                if observer is not None:
                    observer.on_task_step(idx)
                next(task)
            except StopIteration as stop:
                if observer is not None:
                    observer.on_task_done(idx)
                return stop.value
            steps += 1
            if steps > Scheduler.MAX_STEPS_PER_TASK:
                raise ConfigurationError(
                    "group task exceeded step budget; kernel likely stuck"
                )


class SequentialScheduler(Scheduler):
    """Each group runs to completion before the next starts."""

    def run(
        self, tasks: Iterable[GroupTask], observer: ScheduleObserver | None = None
    ) -> list[object]:
        tasks = list(tasks)
        self.launches += 1
        if observer is not None:
            observer.on_launch(len(tasks), self.describe())
        return [
            self._finish(task, idx, observer) for idx, task in enumerate(tasks)
        ]


class RoundRobinScheduler(Scheduler):
    """Advance each live task by one step in rotation (lock-step)."""

    def run(
        self, tasks: Iterable[GroupTask], observer: ScheduleObserver | None = None
    ) -> list[object]:
        live: list[tuple[int, GroupTask]] = list(enumerate(tasks))
        self.launches += 1
        if observer is not None:
            observer.on_launch(len(live), self.describe())
        results: dict[int, object] = {}
        steps = 0
        while live:
            still_live: list[tuple[int, GroupTask]] = []
            for idx, task in live:
                try:
                    if observer is not None:
                        observer.on_task_step(idx)
                    next(task)
                    still_live.append((idx, task))
                except StopIteration as stop:
                    results[idx] = stop.value
                    if observer is not None:
                        observer.on_task_done(idx)
            live = still_live
            steps += 1
            if steps > self.MAX_STEPS_PER_TASK:
                raise ConfigurationError(
                    "round-robin schedule exceeded step budget; kernel likely stuck"
                )
        return [results[i] for i in range(len(results))]


class RandomScheduler(Scheduler):
    """Advance a uniformly random live task each step (seeded).

    The interleaving of the k-th :meth:`run` call is a pure function of
    ``(seed, k)``: each launch derives a fresh ``random.Random`` so a
    reused scheduler instance stays reproducible launch by launch.  The
    exact replay expression for the last launch is :meth:`describe`.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.launches = 0

    def describe(self) -> str:
        last = max(self.launches - 1, 0)
        return f"RandomScheduler(seed={self.seed}) [launch #{last}]"

    def _launch_rng(self) -> random.Random:
        # mix (seed, launch ordinal) into one int — stable across
        # processes, and distinct launches never share a stream
        return random.Random(self.seed * 1_000_003 + self.launches)

    def run(
        self, tasks: Iterable[GroupTask], observer: ScheduleObserver | None = None
    ) -> list[object]:
        live: list[tuple[int, GroupTask]] = list(enumerate(tasks))
        rng = self._launch_rng()
        self.launches += 1
        if observer is not None:
            observer.on_launch(len(live), self.describe())
        results: dict[int, object] = {}
        total = len(live)
        steps = 0
        while live:
            pick = rng.randrange(len(live))
            idx, task = live[pick]
            try:
                if observer is not None:
                    observer.on_task_step(idx)
                next(task)
            except StopIteration as stop:
                results[idx] = stop.value
                live.pop(pick)
                if observer is not None:
                    observer.on_task_done(idx)
            steps += 1
            if steps > self.MAX_STEPS_PER_TASK * max(total, 1):
                raise ConfigurationError(
                    "random schedule exceeded step budget; kernel likely stuck"
                )
        return [results[i] for i in range(total)]


#: Factories for parametrized correctness tests across all schedules.
ALL_SCHEDULERS = {
    "sequential": SequentialScheduler,
    "round_robin": RoundRobinScheduler,
    "random": lambda: RandomScheduler(seed=1234),
}
