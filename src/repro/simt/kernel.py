"""Kernel launch abstraction.

A "kernel" in the reference path is a factory producing one generator per
coalesced group (see :mod:`repro.simt.scheduler`).  :func:`launch` wires
the grid together: it builds one task per work item, hands them to the
chosen scheduler, bumps the launch counter, and returns per-item results.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..constants import WARP_SIZE
from ..errors import ConfigurationError
from ..obs import runtime as obs
from .counters import TransactionCounter
from .scheduler import GroupTask, ScheduleObserver, Scheduler, SequentialScheduler

__all__ = ["LaunchConfig", "launch"]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid geometry for occupancy accounting.

    The simulator does not time-slice blocks, but the perf model needs
    the geometry: a group size of ``|g|`` packs ``32/|g|`` groups per warp,
    which is the occupancy lever behind Fig. 7's group-size trade-off.
    """

    group_size: int
    block_threads: int = 256

    def __post_init__(self):
        if self.block_threads % WARP_SIZE != 0:
            raise ConfigurationError(
                f"block_threads must be a multiple of {WARP_SIZE}, "
                f"got {self.block_threads}"
            )
        if self.group_size > self.block_threads:
            raise ConfigurationError("group_size cannot exceed block_threads")

    @property
    def groups_per_block(self) -> int:
        return self.block_threads // self.group_size

    @property
    def groups_per_warp(self) -> int:
        return WARP_SIZE // self.group_size

    def blocks_for(self, num_items: int) -> int:
        """Number of thread blocks covering ``num_items`` work items."""
        per_block = self.groups_per_block
        return (num_items + per_block - 1) // per_block


def launch(
    kernel: Callable[[int], GroupTask],
    num_items: int,
    *,
    scheduler: Scheduler | None = None,
    counter: TransactionCounter | None = None,
    observer: ScheduleObserver | None = None,
) -> Sequence[object]:
    """Launch ``num_items`` group-tasks of ``kernel`` under a scheduler.

    ``kernel(item_index)`` must return a generator that yields at memory
    observation points and returns the item's result.  ``observer``
    receives task-step attribution callbacks (used by the race
    sanitizer).
    """
    if num_items < 0:
        raise ConfigurationError(f"num_items must be >= 0, got {num_items}")
    sched = scheduler if scheduler is not None else SequentialScheduler()
    if counter is not None:
        counter.kernel_launches += 1
    tasks = [kernel(i) for i in range(num_items)]
    if not obs.enabled():
        return sched.run(tasks, observer)
    with obs.span(
        "kernel launch", "launch",
        items=num_items, scheduler=type(sched).__name__,
    ):
        return sched.run(tasks, observer)
