"""Memory-transaction and atomic-operation accounting.

The reproduction's central trick: the *algorithms* run for real (probe
sequences, CAS retries, multisplit passes, all-to-all sends), and every
global-memory touch is charged to a :class:`TransactionCounter` in units
of 32-byte sectors — the granularity real Pascal GPUs use.  The
performance model then converts counts into seconds using device specs,
so who-wins/crossover shapes derive from measured algorithmic work.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from ..constants import SECTOR_BYTES

__all__ = ["TransactionCounter", "sectors_for_access", "sectors_for_lanes"]


def sectors_for_access(start_byte: int, nbytes: int) -> int:
    """Number of 32-byte sectors a contiguous access of ``nbytes`` touches."""
    if nbytes <= 0:
        return 0
    first = start_byte // SECTOR_BYTES
    last = (start_byte + nbytes - 1) // SECTOR_BYTES
    return int(last - first + 1)


def sectors_for_lanes(byte_addresses: np.ndarray, word_bytes: int) -> int:
    """Sectors touched by one warp-wide access at per-lane byte addresses.

    Coalescing rule: lanes hitting the same 32-byte sector share one
    transaction.  A fully coalesced CG window of ``|g|`` 8-byte slots costs
    ``ceil(|g|*8/32)`` sectors (when aligned); a scattered per-thread
    access pattern costs up to one sector per lane — exactly the asymmetry
    the paper's probing scheme exploits.
    """
    addrs = np.asarray(byte_addresses, dtype=np.int64)
    if addrs.size == 0:
        return 0
    first = addrs // SECTOR_BYTES
    last = (addrs + word_bytes - 1) // SECTOR_BYTES
    # most accesses here are single-sector words; handle straddlers too
    sectors = np.unique(np.concatenate([first, last]))
    return int(sectors.size)


@dataclass
class TransactionCounter:
    """Mutable tally of simulated device work.

    All counts are cumulative; use :meth:`snapshot` + :meth:`delta` to
    bracket a phase, or :meth:`reset` between experiments.
    """

    #: 32-byte sectors read from global memory
    load_sectors: int = 0
    #: 32-byte sectors written to global memory
    store_sectors: int = 0
    #: atomic compare-and-swap attempts (successful or not)
    cas_attempts: int = 0
    #: CAS attempts that succeeded
    cas_successes: int = 0
    #: other atomics (warp-aggregated adds in multisplit, etc.)
    atomic_adds: int = 0
    #: warp-collective operations (ballot / any / shfl)
    warp_collectives: int = 0
    #: probing windows examined (outer*inner loop iterations that loaded a window)
    window_probes: int = 0
    #: kernel launches issued
    kernel_launches: int = 0
    #: slot comparisons performed (per-lane key checks)
    slot_comparisons: int = 0

    def charge_load(self, sectors: int) -> None:
        self.load_sectors += int(sectors)

    def charge_store(self, sectors: int) -> None:
        self.store_sectors += int(sectors)

    def charge_coalesced_load(self, byte_addresses: np.ndarray, word_bytes: int) -> None:
        self.load_sectors += sectors_for_lanes(byte_addresses, word_bytes)

    def charge_coalesced_store(self, byte_addresses: np.ndarray, word_bytes: int) -> None:
        self.store_sectors += sectors_for_lanes(byte_addresses, word_bytes)

    def charge_cas(self, attempts: int = 1, successes: int = 0) -> None:
        self.cas_attempts += int(attempts)
        self.cas_successes += int(successes)

    @property
    def bytes_loaded(self) -> int:
        return self.load_sectors * SECTOR_BYTES

    @property
    def bytes_stored(self) -> int:
        return self.store_sectors * SECTOR_BYTES

    @property
    def total_sectors(self) -> int:
        return self.load_sectors + self.store_sectors

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta(self, earlier: dict[str, int]) -> dict[str, int]:
        """Per-field difference since an earlier :meth:`snapshot`."""
        return {k: getattr(self, k) - v for k, v in earlier.items()}

    def merge(self, other: "TransactionCounter") -> None:
        """Accumulate another counter into this one (multi-GPU roll-up)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __add__(self, other: "TransactionCounter") -> "TransactionCounter":
        out = TransactionCounter()
        out.merge(self)
        out.merge(other)
        return out
