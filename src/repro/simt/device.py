"""Simulated GPU devices.

A :class:`GPUSpec` captures the hardware constants the performance model
needs (the paper's testbed is the Tesla P100; see
:mod:`repro.perfmodel.specs` for named configurations).  A :class:`Device`
is the runtime object kernels run against: it owns a transaction counter
and tracks VRAM usage.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import AllocationError, ConfigurationError
from .counters import TransactionCounter

__all__ = ["GPUSpec", "Device"]

_GIB = 1 << 30


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"Tesla P100"``.
    vram_bytes:
        Global memory capacity.
    mem_bandwidth:
        Peak global-memory bandwidth in bytes/second (P100 HBM2: 720 GB/s).
    random_access_efficiency:
        Fraction of peak bandwidth attainable under hash-random sector
        traffic (§IV-B: "we can only saturate a fraction of the overall
        bandwidth due to the random nature of hashing").
    atomic_cas_rate:
        Sustainable CAS operations/second across the chip.
    num_mem_interfaces:
        HBM2 stacks/interfaces; drives the >2 GB CAS degradation artifact
        observed in Fig. 10.
    sm_count, clock_hz:
        Streaming-multiprocessor count and boost clock; used by the
        occupancy/latency model.
    """

    name: str
    vram_bytes: int
    mem_bandwidth: float
    random_access_efficiency: float = 0.45
    atomic_cas_rate: float = 2.2e9
    num_mem_interfaces: int = 8
    sm_count: int = 56
    clock_hz: float = 1.48e9

    def __post_init__(self):
        if self.vram_bytes <= 0:
            raise ConfigurationError("vram_bytes must be > 0")
        if self.mem_bandwidth <= 0:
            raise ConfigurationError("mem_bandwidth must be > 0")
        if not 0 < self.random_access_efficiency <= 1:
            raise ConfigurationError("random_access_efficiency must be in (0, 1]")

    @property
    def vram_gib(self) -> float:
        return self.vram_bytes / _GIB

    @property
    def effective_random_bandwidth(self) -> float:
        """Bytes/second sustainable for hash-random traffic."""
        return self.mem_bandwidth * self.random_access_efficiency


class Device:
    """A runtime GPU: identity + counters + VRAM bookkeeping.

    Buffers register their footprint through :meth:`allocate` /
    :meth:`free`; kernels charge work to :attr:`counter`.

    A race sanitizer (:mod:`repro.sanitize.racecheck`) can be attached
    with :meth:`attach_sanitizer`; tables constructed on the device then
    shadow-instrument their slot arrays and reference-kernel launches so
    every global-memory access is attributed to (group, lane, epoch).
    """

    def __init__(self, device_id: int, spec: GPUSpec):
        if device_id < 0:
            raise ConfigurationError(f"device_id must be >= 0, got {device_id}")
        self.device_id = device_id
        self.spec = spec
        self.counter = TransactionCounter()
        self.allocated_bytes = 0
        self.peak_allocated_bytes = 0
        self.sanitizer = None
        # Staging buffers may be registered from a pipeline stager thread
        # while the committer thread frees the previous wave's buffers.
        self._alloc_lock = threading.Lock()

    def attach_sanitizer(self, sanitizer) -> None:
        """Shadow-instrument future allocations/launches on this device."""
        self.sanitizer = sanitizer

    def detach_sanitizer(self) -> None:
        self.sanitizer = None

    def allocate(self, nbytes: int) -> None:
        """Reserve VRAM; raises :class:`AllocationError` when exhausted."""
        if nbytes < 0:
            raise ConfigurationError(f"allocation size must be >= 0, got {nbytes}")
        with self._alloc_lock:
            if self.allocated_bytes + nbytes > self.spec.vram_bytes:
                raise AllocationError(
                    f"device {self.device_id} ({self.spec.name}): requested "
                    f"{nbytes} B with {self.allocated_bytes} B in use exceeds "
                    f"{self.spec.vram_bytes} B VRAM"
                )
            self.allocated_bytes += nbytes
            self.peak_allocated_bytes = max(
                self.peak_allocated_bytes, self.allocated_bytes
            )

    def free(self, nbytes: int) -> None:
        with self._alloc_lock:
            if nbytes < 0 or nbytes > self.allocated_bytes:
                raise ConfigurationError(
                    f"free({nbytes}) invalid with {self.allocated_bytes} B allocated"
                )
            self.allocated_bytes -= nbytes

    @property
    def free_bytes(self) -> int:
        return self.spec.vram_bytes - self.allocated_bytes

    def reset_counters(self) -> None:
        self.counter.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Device(id={self.device_id}, spec={self.spec.name!r}, "
            f"allocated={self.allocated_bytes}/{self.spec.vram_bytes})"
        )
