"""SIMT execution substrate: devices, warps, atomics, schedulers, counters."""

from .atomics import atomic_add, atomic_cas, atomic_exch, warp_aggregated_add
from .counters import TransactionCounter, sectors_for_access, sectors_for_lanes
from .device import Device, GPUSpec
from .kernel import LaunchConfig, launch
from .scheduler import (
    ALL_SCHEDULERS,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    SequentialScheduler,
)
from .warp import CoalescedGroup

__all__ = [
    "TransactionCounter",
    "sectors_for_access",
    "sectors_for_lanes",
    "Device",
    "GPUSpec",
    "CoalescedGroup",
    "atomic_cas",
    "atomic_exch",
    "atomic_add",
    "warp_aggregated_add",
    "Scheduler",
    "SequentialScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "ALL_SCHEDULERS",
    "LaunchConfig",
    "launch",
]
