"""Measured wall-clock comparison of the two distribution paths.

Times the host-side cost of the retrieval cascade's distribution phases
— multisplit, transposition, reverse transposition — under both the
``reference`` implementation (m binary-split sweeps, per-element
provenance, m² mask reversal) and the ``fused`` one (single-pass
counting scatter, index-routed exchange, precomputed inverse
permutation).  Both produce bit-identical outputs and modelled
accounting (property-tested in ``tests/multigpu``); this suite measures
the real seconds the fusion saves, written to ``BENCH_distribution.json``
with the host CPU count, like ``BENCH_wallclock.json``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..hashing.partition import hashed_partition
from ..memory.layout import pack_pairs
from ..multigpu.alltoall import (
    reverse_exchange,
    reverse_exchange_fast,
    transpose_exchange,
    transpose_exchange_fast,
)
from ..multigpu.multisplit import multisplit, multisplit_fast
from ..multigpu.partition_table import PartitionTable
from ..multigpu.topology import p100_nvlink_node
from ..multigpu.topology import topology as build_topology
from ..workloads import random_values, unique_keys

__all__ = [
    "DistributionRecord",
    "run_distribution_suite",
    "format_distribution_records",
    "distribution_speedup",
]

PHASES = ("multisplit", "transpose", "reverse", "total")


@dataclass
class DistributionRecord:
    """One measured phase (the ``BENCH_distribution.json`` row schema)."""

    bench: str  # phase: multisplit | transpose | reverse | total
    n: int
    m: int
    path: str  # "reference" | "fused"
    seconds: float
    ops_per_s: float
    #: host cores the run had (records stay interpretable across boxes)
    cpus: int = 0
    #: scatter backend the fused multisplit resolved ("compiled" when a
    #: JIT provider serviced counting_scatter, else "fast")
    kernels: str = "fast"
    #: slot storage policy of the cascade the phases fed ("aos" | "soa"
    #: | "compact") — the host distribution phases move packed pairs
    #: either way, but rows stay mergeable with ``BENCH_wallclock.json``
    layout: str = "aos"

    schema_version = 2

    def __post_init__(self):
        if not self.cpus:
            self.cpus = os.cpu_count() or 1

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys)."""
        from ..obs.protocol import reportable_dict

        return reportable_dict(
            self,
            {
                "bench": self.bench,
                "n": self.n,
                "m": self.m,
                "path": self.path,
                "seconds": self.seconds,
                "ops_per_s": self.ops_per_s,
                "cpus": self.cpus,
                "kernels": self.kernels,
                "layout": self.layout,
            },
        )


def _time_path(path: str, packed_chunks, partition, topology):
    """One end-to-end distribution pass; returns per-phase seconds."""
    fused = path == "fused"
    split_fn = multisplit_fast if fused else multisplit

    t0 = time.perf_counter()
    splits = [split_fn(chunk, partition) for chunk in packed_chunks]
    t_split = time.perf_counter() - t0

    table = PartitionTable(np.stack([ms.counts for ms in splits]))
    pairs = [ms.pairs for ms in splits]
    offsets = [ms.offsets for ms in splits]
    t0 = time.perf_counter()
    if fused:
        exchange = transpose_exchange_fast(pairs, offsets, table, topology)
    else:
        exchange = transpose_exchange(pairs, offsets, table, topology)
    t_transpose = time.perf_counter() - t0

    # query-shaped answers: one 8-byte word per received element
    answers = [
        (buf >> np.uint64(32)) + np.uint64(1) for buf in exchange.received
    ]
    chunk_sizes = [chunk.shape[0] for chunk in packed_chunks]
    t0 = time.perf_counter()
    if fused:
        rev = reverse_exchange_fast(answers, exchange.routing, topology)
    else:
        rev = reverse_exchange(
            answers, exchange.provenance, chunk_sizes, topology
        )
    t_reverse = time.perf_counter() - t0
    return (t_split, t_transpose, t_reverse), rev.outputs


def run_distribution_suite(
    n: int = 1 << 18,
    *,
    m: int | None = None,
    topology=None,
    seed: int = 11,
    repeats: int = 5,
    layout: str = "aos",
) -> list[DistributionRecord]:
    """Both paths on identical chunks; best-of-``repeats`` per phase.

    Cross-checks that the two paths route identical answers before
    reporting any number — a benchmark of a wrong result is worthless.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    if topology is not None:
        if m is not None:
            raise ConfigurationError(
                "got both m= and topology=; the topology spec already "
                "fixes the GPU count (see repro.options)"
            )
        topology = build_topology(topology)
    else:
        topology = p100_nvlink_node(4 if m is None else m)
    m = topology.num_devices
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    partition = hashed_partition(m)
    bounds = np.linspace(0, n, m + 1).astype(np.int64)
    packed_chunks = [
        pack_pairs(keys[bounds[i] : bounds[i + 1]], values[bounds[i] : bounds[i + 1]])
        for i in range(m)
    ]

    best: dict[tuple[str, str], float] = {}
    outputs: dict[str, list[np.ndarray]] = {}
    for _ in range(repeats):
        for path in ("reference", "fused"):
            (t_split, t_transpose, t_reverse), routed = _time_path(
                path, packed_chunks, partition, topology
            )
            outputs[path] = routed
            for phase, seconds in (
                ("multisplit", t_split),
                ("transpose", t_transpose),
                ("reverse", t_reverse),
                ("total", t_split + t_transpose + t_reverse),
            ):
                key = (phase, path)
                best[key] = min(best.get(key, float("inf")), seconds)

    for ref_out, fused_out in zip(outputs["reference"], outputs["fused"]):
        if ref_out.shape != fused_out.shape or not (ref_out == fused_out).all():
            raise AssertionError(
                "fused and reference paths routed different answers"
            )

    from ..core.kernels_jit import compiled_available

    kernels = "compiled" if compiled_available() else "fast"
    return [
        DistributionRecord(
            bench=phase,
            n=n,
            m=m,
            path=path,
            seconds=best[(phase, path)],
            ops_per_s=n / best[(phase, path)] if best[(phase, path)] > 0 else 0.0,
            kernels=kernels,
            layout=layout,
        )
        for phase in PHASES
        for path in ("reference", "fused")
    ]


def distribution_speedup(
    records: list[DistributionRecord], phase: str = "total"
) -> float:
    """reference/fused wall-clock ratio for one phase (0.0 if missing)."""
    by_path = {r.path: r.seconds for r in records if r.bench == phase}
    ref, fused = by_path.get("reference", 0.0), by_path.get("fused", 0.0)
    return ref / fused if fused > 0 else 0.0


def format_distribution_records(records: list[DistributionRecord]) -> str:
    """Fixed-width table with per-phase fused-vs-reference speedups."""
    reference = {
        (r.bench, r.n, r.m): r.seconds
        for r in records
        if r.path == "reference"
    }
    lines = [
        f"{'phase':<12} {'n':>9} {'m':>2} {'path':<10} "
        f"{'seconds':>10} {'Mops/s':>8} {'vs reference':>12}"
    ]
    for r in records:
        base = reference.get((r.bench, r.n, r.m))
        speedup = (
            f"{base / r.seconds:>11.2f}x" if base and r.seconds else f"{'-':>12}"
        )
        lines.append(
            f"{r.bench:<12} {r.n:>9} {r.m:>2} {r.path:<10} "
            f"{r.seconds:>10.5f} {r.ops_per_s / 1e6:>8.2f} {speedup}"
        )
    if records:
        lines.append(f"(host cpus: {records[0].cpus})")
    return "\n".join(lines)
