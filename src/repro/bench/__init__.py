"""Experiment harness regenerating every figure and in-text claim.

One ``run_*`` function per paper artifact; each returns a result object
with a ``format()`` method printing the paper-style rows/series.  The
``benchmarks/`` tree wraps these in pytest-benchmark targets.
"""

from .ablations import (
    GroupSizeAblation,
    LayoutAblation,
    ProbingAblation,
    run_groupsize_ablation,
    run_layout_ablation,
    run_probing_ablation,
    run_strategy_ablation,
)
from .experiments_multi import (
    BandwidthResult,
    CapacityResult,
    OverlapResult,
    ScalingResult,
    run_bandwidths,
    run_capacity_sweep,
    run_overlap,
    run_scaling,
)
from .scorecard import (
    PAPER_CLAIMS,
    Claim,
    ClaimResult,
    evaluate_claims,
    format_scorecard,
)
from .experiments_single import (
    SingleGpuSweep,
    run_single_gpu_sweep,
    run_speedup_table,
)
from .cluster import (
    ClusterScaleRecord,
    cluster_scaling_efficiency,
    format_cluster_records,
    run_cluster_suite,
)
from .distribution import (
    DistributionRecord,
    distribution_speedup,
    format_distribution_records,
    run_distribution_suite,
)
from .wallclock import (
    WallClockRecord,
    bench_pipeline_depth,
    bench_single_shard,
    format_records,
    run_wallclock_suite,
    write_results,
)
from .serving import (
    ServingRecord,
    format_serving_records,
    run_hit_rate_sweep,
    run_serving_suite,
)

__all__ = [
    "run_single_gpu_sweep",
    "run_speedup_table",
    "SingleGpuSweep",
    "run_scaling",
    "ScalingResult",
    "run_capacity_sweep",
    "CapacityResult",
    "run_overlap",
    "OverlapResult",
    "run_bandwidths",
    "BandwidthResult",
    "run_groupsize_ablation",
    "GroupSizeAblation",
    "run_probing_ablation",
    "ProbingAblation",
    "run_strategy_ablation",
    "run_layout_ablation",
    "PAPER_CLAIMS",
    "Claim",
    "ClaimResult",
    "evaluate_claims",
    "format_scorecard",
    "LayoutAblation",
    "WallClockRecord",
    "bench_pipeline_depth",
    "bench_single_shard",
    "run_wallclock_suite",
    "write_results",
    "format_records",
    "DistributionRecord",
    "run_distribution_suite",
    "ClusterScaleRecord",
    "run_cluster_suite",
    "format_cluster_records",
    "cluster_scaling_efficiency",
    "format_distribution_records",
    "distribution_speedup",
    "ServingRecord",
    "run_serving_suite",
    "run_hit_rate_sweep",
    "format_serving_records",
]
