"""Measured serving-layer benchmarks: Zipf clients vs the cache tier.

The acceptance experiment for the KV front-end: ``clients`` concurrent
:class:`~repro.serve.client.KVClient` threads replay the same Zipf(s)
query traffic against one :class:`~repro.serve.server.KVServer`, once
with the hot-key cache tier off (every key is a cascade) and once with
it on (hot keys answered at the front).  Rows record measured wall
clock, served queries/s, client-observed p50/p95 latency, and the
server's hit/miss counters — merged into ``BENCH_wallclock.json``
alongside the engine rows.

Both runs answer every query from the same prefilled universe, and the
harness cross-checks the returned values against the prefill ground
truth — the speedup is only meaningful at equal correctness.

``run_hit_rate_sweep`` drives the EXPERIMENTS.md curve: measured cache
hit rate as the skew exponent s sweeps from uniform (0) past classical
Zipf (1.0) — the cache tier's win grows exactly as fast as the traffic
concentrates.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ExecutionError
from ..multigpu.distributed_table import DistributedHashTable
from ..multigpu.topology import p100_nvlink_node
from ..obs.protocol import reportable_dict
from ..serve import KVClient, KVServer
from ..workloads.serving import serving_zipf_keys, universe_key_map
from ..workloads.distributions import random_values

__all__ = [
    "ServingRecord",
    "run_serving_suite",
    "run_hit_rate_sweep",
    "format_serving_records",
]


@dataclass
class ServingRecord:
    """One measured serving data point (``BENCH_wallclock.json`` row)."""

    bench: str
    n: int  #: total queries served across all clients
    m: int  #: simulated GPUs behind the server
    clients: int
    s: float  #: Zipf skew exponent of the traffic
    cache: str  #: "on" | "off"
    ops_per_s: float
    seconds: float
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    hit_rate: float = 0.0
    cpus: int = 0

    schema_version = 1

    def __post_init__(self):
        if not self.cpus:
            self.cpus = os.cpu_count() or 1

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys)."""
        return reportable_dict(
            self,
            {
                "bench": self.bench,
                "n": self.n,
                "m": self.m,
                "clients": self.clients,
                "s": self.s,
                "cache": self.cache,
                "ops_per_s": self.ops_per_s,
                "seconds": self.seconds,
                "p50_ms": self.p50_ms,
                "p95_ms": self.p95_ms,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "hit_rate": self.hit_rate,
                "cpus": self.cpus,
            },
        )


def _client_worker(
    address,
    name: str,
    warmup: list[tuple[np.ndarray, np.ndarray]],
    batches: list[tuple[np.ndarray, np.ndarray]],
    latencies: list[float],
    errors: list[BaseException],
    barrier: threading.Barrier,
) -> None:
    """One bench client: replay query batches, record per-call latency.

    Each batch arrives as ``(keys, expected_values)`` with the ground
    truth precomputed, so the timed loop is purely protocol + a memcmp
    — the harness stays off the clock's critical path.  ``warmup``
    batches run before the start barrier (cache fill + allocator warm)
    and are excluded from the measurement.  Presplit is off: the
    server coalesces and shards anyway, so the client-side sort would
    only add identical overhead to both the on and off rows.
    """
    try:
        with KVClient(
            address, name=name, presplit=False, retry_overloaded=8
        ) as client:
            for keys, _want in warmup:
                client.query(keys)
            barrier.wait()
            for keys, want in batches:
                t0 = time.perf_counter()
                values, found = client.query(keys)
                latencies.append(time.perf_counter() - t0)
                if not found.all():
                    raise ExecutionError(
                        f"{name}: {int((~found).sum())} prefilled keys "
                        "reported missing"
                    )
                if not np.array_equal(values, want):
                    bad = int((values != want).sum())
                    raise ExecutionError(
                        f"{name}: {bad} keys answered with wrong values"
                    )
    except BaseException as exc:  # surfaced by the coordinator
        errors.append(exc)
        try:
            barrier.abort()
        except threading.BrokenBarrierError:  # pragma: no cover
            pass


def _run_serving_once(
    *,
    cache: bool,
    num_gpus: int,
    capacity: int,
    clients: int,
    batches_per_client: int,
    batch_size: int,
    s: float,
    universe: int,
    cache_size: int,
    seed: int,
    warmup_batches: int = 2,
) -> ServingRecord:
    table = DistributedHashTable(capacity, topology=p100_nvlink_node(num_gpus))
    server = KVServer(
        table,
        own_table=True,
        cache=cache,
        cache_size=cache_size,
        batch_window=0.001,
        # let one coalesced cascade hold every client's in-flight batch —
        # the cascade's fixed cost is what coalescing exists to amortize
        max_batch=max(1 << 15, clients * batch_size),
    ).start()
    try:
        prefill_keys = universe_key_map(universe, seed=seed)
        prefill_values = random_values(universe, seed=seed ^ 0xBEEF)
        with KVClient(server.address, name="prefill") as loader:
            loader.insert(prefill_keys, prefill_values)
        key_order = np.argsort(prefill_keys)
        expected_keys = prefill_keys[key_order]
        expected_values = prefill_values[key_order]

        def make_batch(c: int, b: int) -> tuple[np.ndarray, np.ndarray]:
            keys = serving_zipf_keys(
                batch_size,
                s,
                universe=universe,
                seed=seed + 7919 * (c * 131 + b + 1),
                map_seed=seed,
            )
            want = expected_values[np.searchsorted(expected_keys, keys)]
            return keys, want

        rounds = warmup_batches + batches_per_client
        per_client = [
            [make_batch(c, b) for b in range(rounds)] for c in range(clients)
        ]
        latencies: list[float] = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(clients + 1)
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(
                    server.address,
                    f"bench-{c}",
                    per_client[c][:warmup_batches],
                    per_client[c][warmup_batches:],
                    latencies,
                    errors,
                    barrier,
                ),
                daemon=True,
            )
            for c in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        before = server.stats.snapshot()
        t0 = time.perf_counter()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - t0
        if errors:
            raise errors[0]
        counters = server.stats.snapshot()

        def delta(name: str) -> int:
            return int(counters.get(name, 0)) - int(before.get(name, 0))

        hits = delta("serve.cache.hits")
        misses = delta("serve.cache.misses")
        total = clients * batches_per_client * batch_size
        quantiles = (
            np.quantile(np.asarray(latencies), [0.5, 0.95]) * 1e3
            if latencies
            else np.zeros(2)
        )
        return ServingRecord(
            bench="serving_query",
            n=total,
            m=num_gpus,
            clients=clients,
            s=s,
            cache="on" if cache else "off",
            ops_per_s=total / seconds if seconds > 0 else 0.0,
            seconds=seconds,
            p50_ms=float(quantiles[0]),
            p95_ms=float(quantiles[1]),
            cache_hits=hits,
            cache_misses=misses,
            hit_rate=hits / (hits + misses) if hits + misses else 0.0,
        )
    finally:
        server.close()


def run_serving_suite(
    *,
    num_gpus: int = 4,
    clients: int = 4,
    batches_per_client: int = 16,
    batch_size: int = 32768,
    s: float = 1.0,
    universe: int = 4096,
    cache_size: int | None = None,
    seed: int = 11,
) -> list[ServingRecord]:
    """Cache-off vs cache-on rows for the same Zipf(s) client traffic.

    The cache-off run is the control: identical clients, batches, and
    correctness checks, every query a cascade.  The default cache holds
    three quarters of the universe — comfortably the Zipf(1.0) head,
    but never the full key set — so the on-row's speedup is the tier
    absorbing hot traffic, not mirroring the table.
    """
    capacity = max(universe * 2, 1 << 12)
    if cache_size is None:
        cache_size = max(universe * 3 // 4, 1)
    records = []
    for cache in (False, True):
        records.append(
            _run_serving_once(
                cache=cache,
                num_gpus=num_gpus,
                capacity=capacity,
                clients=clients,
                batches_per_client=batches_per_client,
                batch_size=batch_size,
                s=s,
                universe=universe,
                cache_size=cache_size,
                seed=seed,
            )
        )
    return records


def run_hit_rate_sweep(
    *,
    s_values: Sequence[float] = (0.0, 0.5, 0.8, 1.0, 1.2, 1.5),
    num_gpus: int = 4,
    clients: int = 2,
    batches_per_client: int = 8,
    batch_size: int = 16384,
    universe: int = 4096,
    cache_size: int | None = None,
    seed: int = 11,
) -> list[ServingRecord]:
    """Measured hit rate vs skew: the EXPERIMENTS.md curve rows."""
    if cache_size is None:
        cache_size = max(universe * 3 // 4, 1)
    records = []
    for s in s_values:
        record = _run_serving_once(
            cache=True,
            num_gpus=num_gpus,
            capacity=max(universe * 2, 1 << 12),
            clients=clients,
            batches_per_client=batches_per_client,
            batch_size=batch_size,
            s=s,
            universe=universe,
            cache_size=cache_size,
            seed=seed,
        )
        record.bench = "serving_hitrate"
        records.append(record)
    return records


def format_serving_records(records: list[ServingRecord]) -> str:
    """Fixed-width rows with the cache-on speedup vs the off control."""
    off = {
        (r.bench, r.n, r.clients, r.s): r.seconds
        for r in records
        if r.cache == "off"
    }
    lines = [
        f"{'bench':<16} {'n':>8} {'cl':>3} {'s':>5} {'cache':<6} "
        f"{'seconds':>8} {'Mops/s':>7} {'p50 ms':>7} {'p95 ms':>7} "
        f"{'hit rate':>8} {'vs off':>7}"
    ]
    for r in records:
        base = off.get((r.bench, r.n, r.clients, r.s))
        speedup = (
            f"{base / r.seconds:>6.2f}x"
            if base and r.seconds and r.cache == "on"
            else f"{'-':>7}"
        )
        lines.append(
            f"{r.bench:<16} {r.n:>8} {r.clients:>3} {r.s:>5.2f} "
            f"{r.cache:<6} {r.seconds:>8.3f} {r.ops_per_s / 1e6:>7.3f} "
            f"{r.p50_ms:>7.2f} {r.p95_ms:>7.2f} {r.hit_rate:>8.2f} "
            f"{speedup}"
        )
    if records:
        lines.append(f"(host cpus: {records[0].cpus})")
    return "\n".join(lines)
