"""Ablation experiments (DESIGN.md A1–A4).

These probe the design choices the paper calls out rather than its
headline figures: the §VI group-size heuristic, the §II probing-scheme
trade-offs, the §IV-B distribution-strategy ranking, and the Fig. 1
AoS-vs-SoA layout argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import SECTOR_BYTES, VALID_GROUP_SIZES
from ..core.probing import DoubleHashProbing, LinearProbing, ProbeSequence, QuadraticProbing
from ..core.table import WarpDriveHashTable
from ..errors import ConfigurationError
from ..hashing.families import make_double_family, make_hash
from ..memory.layout import SoALayout
from ..multigpu.strategies import StrategyCost, compare_strategies
from ..multigpu.topology import p100_nvlink_node
from ..perfmodel.hashperf import best_group_size
from ..perfmodel.memmodel import projected_seconds, throughput
from ..perfmodel.specs import P100
from ..simt.counters import sectors_for_access
from ..utils.primes import next_prime
from ..utils.tables import format_table
from ..workloads.distributions import make_distribution, random_values

__all__ = [
    "GroupSizeAblation",
    "run_groupsize_ablation",
    "ProbingAblation",
    "run_probing_ablation",
    "run_strategy_ablation",
    "LayoutAblation",
    "run_layout_ablation",
]


# ---------------------------------------------------------------- A1 ----


@dataclass
class GroupSizeAblation:
    """Measured-vs-heuristic optimal |g| per load (the §VI heuristic)."""

    loads: tuple[float, ...]
    measured_best: list[int]
    heuristic_best: list[int]
    measured_rates: list[dict[int, float]]

    def agreement(self) -> float:
        """Fraction of loads where heuristic |g| is within one legal step
        of the measured optimum (adjacent group sizes trade within noise)."""
        hits = 0
        for m, h in zip(self.measured_best, self.heuristic_best):
            mi = VALID_GROUP_SIZES.index(m)
            hi = VALID_GROUP_SIZES.index(h)
            hits += abs(mi - hi) <= 1
        return hits / len(self.measured_best)

    def format(self) -> str:
        rows = []
        for i, load in enumerate(self.loads):
            rates = self.measured_rates[i]
            rows.append(
                [
                    f"{load:.2f}",
                    self.measured_best[i],
                    self.heuristic_best[i],
                    f"{rates[self.measured_best[i]] / 1e9:.2f}",
                    f"{rates[self.heuristic_best[i]] / 1e9:.2f}",
                ]
            )
        return format_table(
            ["load", "best |g| (measured)", "best |g| (heuristic)",
             "rate@measured", "rate@heuristic"],
            rows,
            title=(
                "A1 — dynamic group-size heuristic (§VI future work), "
                f"agreement {self.agreement() * 100:.0f}%"
            ),
        )


def run_groupsize_ablation(
    *,
    n: int = 1 << 15,
    loads: tuple[float, ...] = (0.5, 0.7, 0.8, 0.9, 0.95, 0.99),
    op: str = "insert",
    seed: int = 19,
) -> GroupSizeAblation:
    """Compare the analytic heuristic against measured optima."""
    keys = make_distribution("unique", n, seed=seed)
    values = random_values(n, seed + 1)
    measured_best, heuristic_best, all_rates = [], [], []
    for load in loads:
        capacity = max(int(math.ceil(n / load)), 1)
        paper_bytes = int(math.ceil((1 << 27) / load)) * 8
        rates: dict[int, float] = {}
        for g in VALID_GROUP_SIZES:
            table = WarpDriveHashTable(capacity, group_size=g, p_max=4096)
            rep = table.insert(keys, values)
            if op == "query":
                table.query(keys)
                rep = table.last_report
            secs = projected_seconds(
                rep, P100, table_bytes=paper_bytes, scale=(1 << 27) / n
            )
            rates[g] = throughput(1 << 27, secs)
        measured_best.append(max(rates, key=rates.get))
        heuristic_best.append(
            best_group_size(load, P100, op=op if op != "retrieve" else "query",
                            table_bytes=paper_bytes)
        )
        all_rates.append(rates)
    return GroupSizeAblation(
        loads=tuple(loads),
        measured_best=measured_best,
        heuristic_best=heuristic_best,
        measured_rates=all_rates,
    )


# ---------------------------------------------------------------- A2 ----


@dataclass
class ProbingAblation:
    """Probe-length statistics of the classic schemes (Eqs. 1-3)."""

    loads: tuple[float, ...]
    #: scheme -> (mean probes, p99 probes, est. sectors/op) per load
    stats: dict[str, list[tuple[float, float, float]]]

    def format(self) -> str:
        headers = ["load"]
        for scheme in self.stats:
            headers += [f"{scheme} mean", f"{scheme} p99", f"{scheme} B/op"]
        rows = []
        for i, load in enumerate(self.loads):
            row: list[object] = [f"{load:.2f}"]
            for scheme in self.stats:
                mean, p99, sect = self.stats[scheme][i]
                row += [f"{mean:.2f}", f"{p99:.0f}", f"{sect * SECTOR_BYTES:.0f}"]
            rows.append(row)
        return format_table(
            headers, rows,
            title="A2 — probing schemes: insert probe lengths and bytes/op",
        )


def _probe_insert(
    scheme: ProbeSequence, keys: np.ndarray, capacity: int, max_probes: int = 4096
) -> np.ndarray:
    """Slot-granular open-addressing insert; returns probes per key."""
    occupied = np.zeros(capacity, dtype=bool)
    n = keys.shape[0]
    probes = np.zeros(n, dtype=np.int64)
    pending = np.arange(n, dtype=np.int64)
    attempt = np.zeros(n, dtype=np.int64)
    while pending.size:
        # one attempt per key per round; first claimant of a slot wins
        pos = np.empty(pending.shape[0], dtype=np.int64)
        for a in np.unique(attempt[pending]):
            sel = attempt[pending] == a
            pos[sel] = scheme.position(keys[pending][sel], int(a), capacity)
        probes[pending] += 1
        free = ~occupied[pos]
        claim = np.flatnonzero(free)
        done = np.zeros(pending.shape[0], dtype=bool)
        if claim.size:
            target = pos[claim]
            order = np.argsort(target, kind="stable")
            t_sorted = target[order]
            first = np.ones(order.size, dtype=bool)
            first[1:] = t_sorted[1:] != t_sorted[:-1]
            winners = claim[order[first]]
            occupied[pos[winners]] = True
            done[winners] = True
        attempt[pending[~done & ~free]] += 1
        if np.any(attempt[pending] >= max_probes):
            raise ConfigurationError("probing ablation exceeded its budget")
        pending = pending[~done]
    return probes


def run_probing_ablation(
    *,
    n: int = 1 << 14,
    loads: tuple[float, ...] = (0.5, 0.7, 0.9, 0.95),
    seed: int = 29,
) -> ProbingAblation:
    """Linear vs quadratic vs double hashing: clustering in action.

    Linear probing's primary clustering inflates the p99 badly at high
    load while staying cache-friendly (≤1 sector per few probes);
    chaotic schemes flatten the tail at one random sector per probe —
    the §II trade-off WarpDrive's hybrid windows are built to resolve.
    """
    h = make_hash("fmix32")
    schemes: dict[str, ProbeSequence] = {
        "linear": LinearProbing(h),
        "quadratic": QuadraticProbing(h),
        "double": DoubleHashProbing(make_double_family()),
    }
    keys = make_distribution("unique", n, seed=seed)
    stats: dict[str, list[tuple[float, float, float]]] = {k: [] for k in schemes}
    for load in loads:
        # prime capacity: quadratic probing only guarantees coverage for
        # prime table sizes, and double hashing needs coprime steps
        capacity = next_prime(max(int(math.ceil(n / load)), 2))
        for name, scheme in schemes.items():
            probes = _probe_insert(scheme, keys, capacity)
            mean = float(probes.mean())
            p99 = float(np.percentile(probes, 99))
            if name == "linear":
                # consecutive probes share sectors (4 slots per sector)
                sectors = float(np.mean(1 + (probes - 1) // 4))
            else:
                sectors = mean  # every probe is a fresh random sector
            stats[name].append((mean, p99, sectors))
    return ProbingAblation(loads=tuple(loads), stats=stats)


# ---------------------------------------------------------------- A3 ----


def run_strategy_ablation(
    *,
    n: int = 1 << 15,
    num_gpus: int = 4,
    seed: int = 41,
) -> dict[str, StrategyCost]:
    """The §IV-B strategy ranking (delegates to multigpu.strategies)."""
    node = p100_nvlink_node(num_gpus)
    keys = make_distribution("unique", n, seed=seed)
    values = random_values(n, seed + 1)
    return compare_strategies(node, keys, values, load_factor=0.9)


# ---------------------------------------------------------------- A4 ----


@dataclass
class LayoutAblation:
    """AoS vs SoA query traffic (Fig. 1)."""

    group_sizes: tuple[int, ...]
    aos_sectors_per_window: list[int]
    soa_sectors_per_window: list[int]

    def format(self) -> str:
        rows = []
        for i, g in enumerate(self.group_sizes):
            aos = self.aos_sectors_per_window[i]
            soa = self.soa_sectors_per_window[i]
            rows.append([g, aos, soa, f"{soa / aos:.2f}x"])
        return format_table(
            ["|g|", "AoS sectors/window", "SoA sectors/window", "SoA cost"],
            rows,
            title="A4 — memory layout: query transactions per probed window",
        )


def run_layout_ablation(
    *, group_sizes: tuple[int, ...] = VALID_GROUP_SIZES
) -> LayoutAblation:
    """Quantify Fig. 1's caching argument.

    AoS loads one contiguous run of packed pairs per window; SoA needs
    two runs (key array + value array), doubling transactions for small
    windows — "inferior caching" exactly as the paper argues.
    """
    aos, soa = [], []
    for g in group_sizes:
        aos.append(sectors_for_access(0, g * 8))
        layout = SoALayout.empty(1024)
        soa.append(layout.query_transactions(1, g))
    return LayoutAblation(
        group_sizes=tuple(group_sizes),
        aos_sectors_per_window=aos,
        soa_sectors_per_window=soa,
    )
