"""Measured wall-clock benchmarks for the shard-execution engine.

Unlike the rest of :mod:`repro.bench` — which *models* P100 seconds
from counted work — this suite times the simulation itself with a
monotonic clock, comparing the ``serial``/``thread``/``process``
execution backends on identical workloads:

* ``single_shard_insert`` / ``single_shard_query`` — one bulk kernel on
  one shard (engine dispatch overhead + kernel time);
* ``cascade_insert`` — the full m = 4 device-sided insertion cascade,
  where the per-shard kernels are the parallelizable phase;
* ``growth_insert`` — the same cascade started at a quarter of the
  final capacity under a ``GrowthPolicy``, so the measured seconds
  include the coordinated shard growth + rehash episodes;
* ``pipeline_insert`` — the batched streaming ingest through
  :class:`~repro.pipeline.driver.AsyncCascadeDriver` at ``depth`` 1 /
  2 / 4 under modelled device pacing, where the recorded seconds are
  the driver's *measured* makespan — the ``depth >= 2`` rows beat
  ``depth=1`` exactly by the host-staging time the pipeline hides
  behind the paced kernel occupancy (``docs/streaming_pipeline.md``).

Results carry the host's CPU count: on a single-core box the parallel
backends cannot beat serial (see ``docs/execution.md``), and the
recorded ``cpus`` field keeps such numbers interpretable.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..core.config import HashTableConfig
from ..core.growth import GrowthPolicy
from ..core.kernels_jit import slot_planes, warm
from ..core.table import WarpDriveHashTable
from ..errors import ConfigurationError
from ..exec.engine import ShardKernelTask, available_backends, create_engine
from ..multigpu.distributed_table import DistributedHashTable
from ..multigpu.topology import p100_nvlink_node
from ..multigpu.topology import topology as build_topology
from ..obs.protocol import reportable_dict
from ..workloads import random_values, unique_keys

__all__ = [
    "WallClockRecord",
    "bench_single_shard",
    "bench_cascade",
    "bench_growth",
    "bench_pipeline_depth",
    "run_wallclock_suite",
    "write_results",
    "format_records",
]


@dataclass
class WallClockRecord:
    """One measured data point (the ``BENCH_wallclock.json`` row schema)."""

    bench: str
    n: int
    m: int
    engine: str
    ops_per_s: float
    seconds: float
    #: host cores the run had — parallel backends need > 1 to win
    cpus: int = 0
    #: kernel backend that actually ran (post-fallback): "fast" | "ref"
    #: | "compiled" — compiled-vs-fast runs must stay distinguishable
    kernels: str = "fast"
    #: in-flight batch depth of the streaming pipeline (1 everywhere
    #: except the ``pipeline_insert`` sweep rows)
    depth: int = 1
    #: slot storage policy the timed tables ran ("aos" | "soa" |
    #: "compact") — compact-vs-aos rows must stay distinguishable just
    #: like compiled-vs-fast ones
    layout: str = "aos"

    schema_version = 3

    def __post_init__(self):
        if not self.cpus:
            self.cpus = os.cpu_count() or 1

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys)."""
        return reportable_dict(
            self,
            {
                "bench": self.bench,
                "n": self.n,
                "m": self.m,
                "engine": self.engine,
                "ops_per_s": self.ops_per_s,
                "seconds": self.seconds,
                "cpus": self.cpus,
                "kernels": self.kernels,
                "depth": self.depth,
                "layout": self.layout,
            },
        )


def _warm_compiled(table) -> None:
    """Warm the in-process JIT cache so compile time stays off the clock.

    The compiled path attributes compilation to a ``jit_compile`` span;
    warming here keeps that span out of the measured rows for in-process
    engines (serial/thread).  Process workers warm themselves on first
    task, which then *is* on the clock — cold-start rows say so via the
    engine column.
    """
    planes = slot_planes(table.slots)
    if planes is not None:
        warm(table.seq.name, planes[0])


def bench_single_shard(
    engine: str,
    n: int,
    *,
    group_size: int = 4,
    load_factor: float = 0.95,
    workers: int | None = None,
    seed: int = 11,
    kernels: str = "fast",
    layout: str = "aos",
) -> list[WallClockRecord]:
    """Time one bulk insert + query kernel dispatched through the engine.

    ``kernels="ref"`` times the faithful generator kernels through the
    table API instead of the engine (the ref path is a per-operation
    verification schedule, not an engine-dispatchable bulk kernel) —
    expect it to be orders of magnitude slower; use a small ``n``.
    """
    if kernels not in ("fast", "ref", "compiled"):
        raise ConfigurationError(
            f"kernels must be 'fast', 'ref', or 'compiled', got {kernels!r}"
        )
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    config = HashTableConfig.for_load_factor(
        n, load_factor, group_size=group_size, layout=layout
    )
    records = []
    if kernels == "ref":
        table = WarpDriveHashTable(config=config)
        try:
            for op in ("insert", "query"):
                t0 = time.perf_counter()
                if op == "insert":
                    table.insert(keys, values, kernels="ref")
                else:
                    table.query(keys, kernels="ref")
                seconds = time.perf_counter() - t0
                records.append(
                    WallClockRecord(
                        bench=f"single_shard_{op}",
                        n=n,
                        m=1,
                        engine=engine,
                        ops_per_s=n / seconds if seconds > 0 else 0.0,
                        seconds=seconds,
                        kernels="ref",
                        layout=layout,
                    )
                )
        finally:
            table.free()
        return records
    with create_engine(engine, workers=workers) as eng:
        table = WarpDriveHashTable(
            config=config, shared=eng.requires_shared_slots
        )
        try:
            if kernels == "compiled":
                _warm_compiled(table)
            for op, payload in (("insert", values), ("query", None)):
                task = ShardKernelTask(
                    shard=0,
                    op=op,
                    slots=table.slots,
                    seq=table.seq,
                    keys=keys,
                    values=payload,
                    shm=table.shm_descriptor(),
                    kernels=kernels,
                )
                t0 = time.perf_counter()
                res = eng.run([task])[0]
                seconds = time.perf_counter() - t0
                if op == "insert":
                    table.absorb_insert(keys, values, res.report, res.status)
                else:
                    table.absorb_query(res.report)
                records.append(
                    WallClockRecord(
                        bench=f"single_shard_{op}",
                        n=n,
                        m=1,
                        engine=engine,
                        ops_per_s=n / seconds if seconds > 0 else 0.0,
                        seconds=seconds,
                        kernels=res.kernels,
                        layout=layout,
                    )
                )
        finally:
            table.free()
    return records



def _bench_topology(m, topology):
    """Resolve a bench's topology from ``m`` or a ``topology=`` spec.

    The two are mutually exclusive — the spec already fixes the GPU
    count (see :mod:`repro.options`).  Specs are re-resolved per call so
    every bench run starts on fresh simulated devices.
    """
    if topology is not None:
        if m is not None:
            raise ConfigurationError(
                "got both m= and topology=; the topology spec already "
                "fixes the GPU count (see repro.options)"
            )
        return build_topology(topology)
    return p100_nvlink_node(4 if m is None else m)


def bench_cascade(
    engine: str,
    n: int,
    *,
    m: int | None = None,
    topology=None,
    group_size: int = 4,
    load_factor: float = 0.95,
    workers: int | None = None,
    seed: int = 11,
    kernels: str = "fast",
    layout: str = "aos",
) -> list[WallClockRecord]:
    """Time the full device-sided distributed insertion cascade."""
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    topology = _bench_topology(m, topology)
    m = topology.num_devices
    table = DistributedHashTable.for_workload(
        topology,
        keys,
        load_factor,
        group_size=group_size,
        engine=engine,
        workers=workers,
        kernels=kernels,
        layout=layout,
    )
    try:
        if kernels == "compiled":
            _warm_compiled(table.shards[0])
        t0 = time.perf_counter()
        report = table.insert(keys, values, source="device")
        seconds = time.perf_counter() - t0
    finally:
        table.free()
    return [
        WallClockRecord(
            bench="cascade_insert",
            n=n,
            m=m,
            engine=engine,
            ops_per_s=n / seconds if seconds > 0 else 0.0,
            seconds=seconds,
            kernels=report.kernels,
            layout=layout,
        )
    ]


def bench_growth(
    engine: str,
    n: int,
    *,
    m: int | None = None,
    topology=None,
    group_size: int = 4,
    max_load: float = 0.9,
    chunks: int = 8,
    workers: int | None = None,
    seed: int = 11,
    kernels: str = "fast",
    layout: str = "aos",
) -> list[WallClockRecord]:
    """Time a chunked cascade ingest that starts at a quarter of the
    final capacity, so the clock includes every coordinated shard-growth
    and rehash episode the :class:`~repro.core.growth.GrowthPolicy`
    triggers on the way up."""
    import numpy as np

    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    topology = _bench_topology(m, topology)
    m = topology.num_devices
    start_capacity = max(m * 64, n // 4)
    table = DistributedHashTable(
        start_capacity,
        topology=topology,
        group_size=group_size,
        engine=engine,
        workers=workers,
        growth=GrowthPolicy(max_load=max_load),
        kernels=kernels,
        layout=layout,
    )
    try:
        if kernels == "compiled":
            _warm_compiled(table.shards[0])
        batches = list(
            zip(np.array_split(keys, chunks), np.array_split(values, chunks))
        )
        t0 = time.perf_counter()
        report = None
        for chunk_keys, chunk_values in batches:
            report = table.insert(chunk_keys, chunk_values, source="device")
        seconds = time.perf_counter() - t0
        if not any(shard.grows for shard in table.shards):
            raise RuntimeError("growth bench never grew — workload too small")
    finally:
        table.free()
    return [
        WallClockRecord(
            bench="growth_insert",
            n=n,
            m=m,
            engine=engine,
            ops_per_s=n / seconds if seconds > 0 else 0.0,
            seconds=seconds,
            kernels=report.kernels if report is not None else kernels,
            layout=layout,
        )
    ]


def bench_pipeline_depth(
    n: int,
    *,
    m: int | None = None,
    topology=None,
    depths: tuple[int, ...] = (1, 2, 4),
    num_batches: int = 8,
    scale: float = 500.0,
    group_size: int = 4,
    seed: int = 11,
) -> list[WallClockRecord]:
    """Sweep the streaming pipeline's in-flight ``depth`` on one stream.

    Every depth ingests the same ``num_batches``-way batched keyspace
    through :class:`~repro.pipeline.driver.AsyncCascadeDriver` with
    ``pace="modelled"`` and ``measure=True``; the recorded seconds are
    the driver's measured makespan, so the ``depth >= 2`` rows isolate
    the real overlap win (host staging hidden behind the paced modelled
    kernel occupancy) rather than any modelled number.  ``scale``
    stretches the modelled occupancy so it stays comparable to the host
    staging time at bench sizes — the same factor at every depth, so
    the depth-1 row pays exactly the same paced seconds.
    """
    import numpy as np

    from ..pipeline.driver import AsyncCascadeDriver

    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    batches = list(
        zip(np.array_split(keys, num_batches), np.array_split(values, num_batches))
    )
    records = []
    for depth in depths:
        topo = _bench_topology(m, topology)
        table = DistributedHashTable(
            n * 2, topology=topo, group_size=group_size
        )
        try:
            driver = AsyncCascadeDriver(
                table, depth=depth, pace="modelled", measure=True, scale=scale
            )
            res = driver.insert_stream(iter(batches))
        finally:
            table.free()
        seconds = res.measured_makespan or 0.0
        records.append(
            WallClockRecord(
                bench="pipeline_insert",
                n=n,
                m=topo.num_devices,
                engine="serial",
                ops_per_s=n / seconds if seconds > 0 else 0.0,
                seconds=seconds,
                depth=depth,
            )
        )
    return records


def run_wallclock_suite(
    n: int = 1 << 18,
    *,
    m: int | None = None,
    topology=None,
    engines: tuple[str, ...] | None = None,
    workers: int | None = None,
    seed: int = 11,
    kernels: str = "fast",
    layout: str = "aos",
) -> list[WallClockRecord]:
    """All benches × all backends on the same keys (same seed).

    ``kernels="ref"`` runs only the single-shard benches — the ref
    kernels are a per-operation verification schedule and have no
    cascade-level dispatch.
    """
    records: list[WallClockRecord] = []
    for engine in engines or available_backends():
        records.extend(
            bench_single_shard(
                engine, n, workers=workers, seed=seed, kernels=kernels,
                layout=layout,
            )
        )
        if kernels == "ref":
            continue
        records.extend(
            bench_cascade(
                engine, n, m=m, topology=topology, workers=workers,
                seed=seed, kernels=kernels, layout=layout,
            )
        )
        records.extend(
            bench_growth(
                engine, n, m=m, topology=topology, workers=workers,
                seed=seed, kernels=kernels, layout=layout,
            )
        )
    return records


def write_results(records: list[WallClockRecord], path: str | Path) -> Path:
    """Persist records as a JSON array of row objects."""
    path = Path(path)
    path.write_text(json.dumps([r.to_dict() for r in records], indent=2) + "\n")
    return path


def format_records(records: list[WallClockRecord]) -> str:
    """Fixed-width table, one row per record, with vs-baseline speedups.

    The baseline is the serial row of the same bench/kernels — and for
    the ``pipeline_insert`` sweep, its ``depth=1`` row, so the speedup
    column reads off the measured overlap win directly.
    """
    serial = {
        (r.bench, r.n, r.m, r.kernels, r.depth, r.layout): r.seconds
        for r in records
        if r.engine == "serial"
    }
    lines = [
        f"{'bench':<20} {'n':>9} {'m':>2} {'d':>2} {'engine':<9} "
        f"{'kernels':<9} {'layout':<8} {'seconds':>9} {'Mops/s':>8} "
        f"{'vs serial':>9}"
    ]
    for r in records:
        base_depth = 1 if r.bench == "pipeline_insert" else r.depth
        base = serial.get(
            (r.bench, r.n, r.m, r.kernels, base_depth, r.layout)
        )
        speedup = f"{base / r.seconds:>8.2f}x" if base and r.seconds else f"{'-':>9}"
        lines.append(
            f"{r.bench:<20} {r.n:>9} {r.m:>2} {r.depth:>2} {r.engine:<9} "
            f"{r.kernels:<9} {r.layout:<8} {r.seconds:>9.4f} "
            f"{r.ops_per_s / 1e6:>8.2f} {speedup}"
        )
    if records:
        lines.append(f"(host cpus: {records[0].cpus})")
    return "\n".join(lines)
