"""The reproduction scorecard: every quantitative paper claim, checked.

Runs the experiment harness once and grades each of the paper's
checkable claims against its measured value.  This is EXPERIMENTS.md as
executable code — ``python -m repro scorecard`` prints the table.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from ..utils.tables import format_table
from .experiments_multi import run_bandwidths, run_capacity_sweep, run_overlap, run_scaling
from .experiments_single import run_single_gpu_sweep, run_speedup_table

__all__ = ["Claim", "ClaimResult", "evaluate_claims", "format_scorecard", "PAPER_CLAIMS"]


@dataclass(frozen=True)
class Claim:
    """One checkable quantitative statement from the paper."""

    id: str
    source: str  # where the paper states it
    statement: str
    paper_value: float
    tolerance: float  # relative tolerance for a PASS
    extract: Callable[[dict], float]  # measured value from the context

    def grade(self, context: dict) -> "ClaimResult":
        measured = self.extract(context)
        if self.paper_value == 0:
            ok = measured == 0
            deviation = math.inf if measured else 0.0
        else:
            deviation = abs(measured - self.paper_value) / abs(self.paper_value)
            ok = deviation <= self.tolerance
        return ClaimResult(claim=self, measured=measured, deviation=deviation, ok=ok)


@dataclass(frozen=True)
class ClaimResult:
    claim: Claim
    measured: float
    deviation: float
    ok: bool


def _build_context(*, quick: bool = True, seed: int = 42) -> dict:
    """Run the experiments once and collect every result object."""
    n1 = 1 << 13 if quick else 1 << 16
    nm = 1 << 12 if quick else 1 << 14
    ctx: dict = {}
    ctx["fig7"] = run_single_gpu_sweep(
        n=n1, loads=(0.5, 0.8, 0.9, 0.95), distribution="unique", seed=seed
    )
    ctx["speedups"] = run_speedup_table(n=n1, seed=seed)
    ctx["scaling"] = run_scaling(n_sim=nm, paper_exponents=(28, 29))
    ctx["capacity"] = run_capacity_sweep(
        n_sim=nm, paper_exponents=(28, 30, 32), distributions=("unique",)
    )
    ctx["overlap"] = run_overlap(num_batches=12, batch_sim=nm)
    ctx["bandwidths"] = run_bandwidths(n_sim=nm, num_batches=12)
    return ctx


def _best_insert(sweep, load: float) -> float:
    i = sweep.loads.index(load)
    return max(
        v[i] for k, v in sweep.insert_rates.items() if k.startswith("WD")
    )


PAPER_CLAIMS: tuple[Claim, ...] = (
    Claim(
        id="headline-insert",
        source="abstract",
        statement="1.4 G insertions/s single-GPU at load 0.95",
        paper_value=1.4e9,
        tolerance=0.20,
        extract=lambda c: _best_insert(c["fig7"], 0.95),
    ),
    Claim(
        id="speedup-ins-0.95",
        source="§V-B",
        statement="2.84x insertion speedup over CUDPP at load 0.95",
        paper_value=2.84,
        tolerance=0.20,
        extract=lambda c: c["speedups"].insert_speedups[2],
    ),
    Claim(
        id="speedup-ins-0.9",
        source="§V-B",
        statement="2.18x insertion speedup over CUDPP at load 0.9",
        paper_value=2.18,
        tolerance=0.20,
        extract=lambda c: c["speedups"].insert_speedups[1],
    ),
    Claim(
        id="speedup-ins-0.8",
        source="§V-B",
        statement="1.79x insertion speedup over CUDPP at load 0.8",
        paper_value=1.79,
        tolerance=0.20,
        extract=lambda c: c["speedups"].insert_speedups[0],
    ),
    Claim(
        id="speedup-ret-0.9",
        source="§V-B",
        statement="1.34x retrieval speedup over CUDPP at load 0.9",
        paper_value=1.34,
        tolerance=0.25,
        extract=lambda c: c["speedups"].retrieve_speedups[1],
    ),
    Claim(
        id="overlap-insert",
        source="§V-C",
        statement="36% wall-time reduction for overlapped insertion",
        paper_value=0.36,
        tolerance=0.25,
        extract=lambda c: dict(
            zip(c["overlap"].labels, c["overlap"].reductions)
        )["Ins4"],
    ),
    Claim(
        id="overlap-retrieve",
        source="§V-C",
        statement="45% wall-time reduction for overlapped retrieval",
        paper_value=0.45,
        tolerance=0.25,
        extract=lambda c: dict(
            zip(c["overlap"].labels, c["overlap"].reductions)
        )["Ret4"],
    ),
    Claim(
        id="multisplit-bandwidth",
        source="§V-C",
        statement="multisplit ~210 GB/s accumulated",
        paper_value=210e9,
        tolerance=0.15,
        extract=lambda c: c["bandwidths"].multisplit_accumulated,
    ),
    Claim(
        id="alltoall-bandwidth",
        source="§V-C",
        statement="all-to-all transposition ~192 GB/s",
        paper_value=192e9,
        tolerance=0.15,
        extract=lambda c: c["bandwidths"].alltoall_accumulated,
    ),
    Claim(
        id="weak-scaling-flat",
        source="§V-C",
        statement="weak efficiency constant for m >= 2 (max/min over tail)",
        paper_value=1.0,
        tolerance=0.25,
        extract=lambda c: (
            max(c["scaling"].weak["Insert 2^28"][1:])
            / min(c["scaling"].weak["Insert 2^28"][1:])
        ),
    ),
    Claim(
        id="retrieval-flat-vs-capacity",
        source="§V-C",
        statement="device retrieval constant across capacities (max/min)",
        paper_value=1.0,
        tolerance=0.30,
        extract=lambda c: (
            max(c["capacity"].device_retrieve["unique"])
            / min(c["capacity"].device_retrieve["unique"])
        ),
    ),
    Claim(
        id="insert-drop-past-2-30",
        source="§V-C",
        statement="device insertion drops for n > 2^30 (rate ratio last/first)",
        paper_value=0.55,
        tolerance=0.45,
        extract=lambda c: (
            c["capacity"].device_insert["unique"][-1]
            / c["capacity"].device_insert["unique"][0]
        ),
    ),
)


def evaluate_claims(*, quick: bool = True, seed: int = 42) -> list[ClaimResult]:
    """Run the experiments and grade every claim."""
    context = _build_context(quick=quick, seed=seed)
    return [claim.grade(context) for claim in PAPER_CLAIMS]


def format_scorecard(results: list[ClaimResult]) -> str:
    rows = []
    for r in results:
        paper = r.claim.paper_value
        fmt = (
            (lambda v: f"{v / 1e9:.2f}G") if paper > 1e6 else (lambda v: f"{v:.2f}")
        )
        rows.append(
            [
                "PASS" if r.ok else "MISS",
                r.claim.id,
                r.claim.source,
                fmt(paper),
                fmt(r.measured),
                f"{r.deviation * 100:.0f}%",
            ]
        )
    passed = sum(r.ok for r in results)
    return format_table(
        ["", "claim", "where", "paper", "ours", "dev"],
        rows,
        title=f"Reproduction scorecard — {passed}/{len(results)} claims within tolerance",
    )
