"""One-call regeneration of every paper figure (shared by the CLI and
``examples/paper_figures.py``)."""

from __future__ import annotations

import time

from ..utils.tables import format_table
from .ablations import (
    run_groupsize_ablation,
    run_layout_ablation,
    run_probing_ablation,
    run_strategy_ablation,
)
from .experiments_multi import run_bandwidths, run_capacity_sweep, run_overlap, run_scaling
from .experiments_single import run_single_gpu_sweep, run_speedup_table

__all__ = ["print_all_figures"]


def _banner(title: str) -> None:
    print(f"\n{'=' * 74}\n{title}\n{'=' * 74}")


def print_all_figures(*, full: bool = False) -> None:
    """Run the experiment harness and print every figure's tables.

    ``full=True`` uses benchmark-suite sizes (slower, smoother curves);
    the default quick scale finishes in well under a minute.
    """
    n1 = 1 << 16 if full else 1 << 13  # single-GPU experiments
    nm = 1 << 14 if full else 1 << 12  # multi-GPU experiments
    t0 = time.time()

    _banner("Fig. 7 — single-GPU rates, unique keys")
    loads = (0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.97, 0.99)
    print(run_single_gpu_sweep(n=n1, loads=loads, distribution="unique").format())

    _banner("Fig. 8 — single-GPU rates, Zipf keys")
    print(run_single_gpu_sweep(n=n1, loads=loads[:-1], distribution="zipf").format())

    _banner("In-text speedups over CUDPP (§V-B)")
    print(run_speedup_table(n=n1).format())

    _banner("Fig. 9 — strong/weak scaling, 1-4 GPUs")
    print(run_scaling(n_sim=nm).format())

    _banner("Fig. 10 — rates vs capacity, 4 GPUs")
    print(run_capacity_sweep(n_sim=nm).format())

    _banner("Fig. 11 — asynchronous cascade overlap")
    print(run_overlap(num_batches=16, batch_sim=nm).format())

    _banner("In-text bandwidth anchors (§V-C)")
    print(run_bandwidths(n_sim=nm, num_batches=12).format())

    _banner("Ablations A1-A4")
    print(run_groupsize_ablation(n=nm).format())
    print()
    print(run_probing_ablation(n=nm // 2).format())
    print()
    strategies = run_strategy_ablation(n=nm)
    rows = [
        [name, f"{c.insert_seconds * 1e3:.3f}", f"{c.query_seconds * 1e3:.3f}"]
        for name, c in sorted(strategies.items(), key=lambda kv: kv[1].total)
    ]
    print(
        format_table(
            ["strategy", "insert ms", "query ms"],
            rows,
            title="A3 — §IV-B distribution strategies",
        )
    )
    print()
    print(run_layout_ablation().format())

    print(f"\nall experiments regenerated in {time.time() - t0:.0f}s")
