"""Multi-GPU experiments: Fig. 9 (scaling), Fig. 10 (capacity sweep),
Fig. 11 (asynchronous overlap) and the in-text bandwidth numbers.

All cascades run for real on the simulated node (multisplit, partition
table, all-to-all, shard kernels); timings come from the perf model and
are projected to the paper's problem sizes — including the paper-scale
per-shard footprint so the >2 GB CAS degradation (§V-C) fires where the
real hardware's did.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.table import WarpDriveHashTable
from ..errors import ConfigurationError
from ..multigpu.distributed_table import DistributedHashTable
from ..multigpu.topology import p100_nvlink_node
from ..perfmodel.cascade import time_cascade
from ..perfmodel.memmodel import projected_seconds, throughput
from ..pipeline.schedule import schedule_batches
from ..pipeline.stages import insert_stages, query_stages
from ..utils.tables import format_table
from ..workloads.distributions import make_distribution, random_values

__all__ = [
    "ScalingResult",
    "run_scaling",
    "CapacityResult",
    "run_capacity_sweep",
    "OverlapResult",
    "run_overlap",
    "BandwidthResult",
    "run_bandwidths",
]

LOAD = 0.95  # §V-C: "a target load factor of 95%"
GROUP = 4  # §V-C: "a coalesced group size of |g| = 4"


def _paper_shard_bytes(paper_n: int, m: int, load: float = LOAD) -> int:
    return int(math.ceil(paper_n / load / m)) * 8


def _device_cascade_seconds(
    n_sim: int,
    m: int,
    paper_n: int,
    *,
    op: str,
    seed: int = 0,
) -> float:
    """Modelled device-sided cascade seconds at paper scale.

    For m = 1 the paper's baseline is the plain single-GPU path (no
    multisplit/communication — that is exactly why efficiency drops from
    m = 1 to m = 2).
    """
    keys = make_distribution("unique", n_sim, seed=seed)
    values = random_values(n_sim, seed + 1)
    scale = paper_n / n_sim
    shard_bytes = _paper_shard_bytes(paper_n, m)

    if m == 1:
        table = WarpDriveHashTable.for_load_factor(n_sim, LOAD, group_size=GROUP)
        ins = table.insert(keys, values)
        if op == "insert":
            return projected_seconds(
                ins, p100_nvlink_node(1).devices[0].spec,
                table_bytes=shard_bytes, scale=scale,
            )
        table.query(keys)
        return projected_seconds(
            table.last_report, p100_nvlink_node(1).devices[0].spec,
            table_bytes=shard_bytes, scale=scale,
        )

    node = p100_nvlink_node(m)
    table = DistributedHashTable.for_workload(node, keys, LOAD, group_size=GROUP)
    ins_rep = table.insert(keys, values, source="device")
    if op == "insert":
        timing = time_cascade(
            ins_rep, table, node, shard_table_bytes=shard_bytes, scale=scale
        )
        return timing.device_only
    _, _, qry_rep = table.query(keys, source="device")
    timing = time_cascade(
        qry_rep, table, node, shard_table_bytes=shard_bytes, scale=scale
    )
    return timing.device_only


@dataclass
class ScalingResult:
    """Fig. 9: strong and weak scaling efficiencies."""

    gpu_counts: tuple[int, ...]
    #: label -> efficiencies per m; labels like "Insert 2^28"
    strong: dict[str, list[float]] = field(default_factory=dict)
    weak: dict[str, list[float]] = field(default_factory=dict)

    def format(self) -> str:
        def tbl(data: dict[str, list[float]], title: str) -> str:
            headers = ["m"] + list(data.keys())
            rows = []
            for i, m in enumerate(self.gpu_counts):
                rows.append([m] + [f"{data[k][i]:.3f}" for k in data])
            return format_table(headers, rows, title=title)

        return "\n\n".join(
            [
                "Fig. 9 — scaling efficiency (device-sided cascades, α=0.95, |g|=4)",
                tbl(self.strong, "STRONG  E_s(n,m) = τ(n,1)/(m·τ(n,m))"),
                tbl(self.weak, "WEAK    E_w(n,m) = τ(n,1)/τ(m·n,m)"),
            ]
        )


def run_scaling(
    *,
    n_sim: int = 1 << 14,
    gpu_counts: tuple[int, ...] = (1, 2, 3, 4),
    paper_exponents: tuple[int, ...] = (28, 29),
    seed: int = 17,
) -> ScalingResult:
    """Reproduce Fig. 9's four curves for insert and retrieval."""
    if gpu_counts[0] != 1:
        raise ConfigurationError("gpu_counts must start at 1")
    result = ScalingResult(gpu_counts=tuple(gpu_counts))
    for op in ("insert", "retrieve"):
        op_key = "insert" if op == "insert" else "query"
        for exp in paper_exponents:
            paper_n = 1 << exp
            label = f"{op.capitalize()} 2^{exp}"
            # strong: fixed total work
            tau = [
                _device_cascade_seconds(
                    n_sim, m, paper_n, op="insert" if op == "insert" else "query",
                    seed=seed + exp,
                )
                for m in gpu_counts
            ]
            result.strong[label] = [
                tau[0] / (m * t) for m, t in zip(gpu_counts, tau)
            ]
            # weak: per-GPU work fixed -> total scales with m
            tau_w = [
                _device_cascade_seconds(
                    min(n_sim * m, n_sim * 4), m, paper_n * m,
                    op="insert" if op == "insert" else "query",
                    seed=seed + exp,
                )
                for m in gpu_counts
            ]
            result.weak[label] = [tau_w[0] / t for t in tau_w]
    return result


@dataclass
class CapacityResult:
    """Fig. 10: insertion/retrieval rates vs capacity, 3 distributions."""

    paper_ns: tuple[int, ...]
    #: series label -> G ops/s per capacity point
    device_insert: dict[str, list[float]] = field(default_factory=dict)
    device_retrieve: dict[str, list[float]] = field(default_factory=dict)
    host_insert: dict[str, list[float]] = field(default_factory=dict)
    host_retrieve: dict[str, list[float]] = field(default_factory=dict)

    def _tbl(self, data: dict[str, list[float]], title: str) -> str:
        headers = ["n"] + list(data.keys())
        rows = []
        for i, n in enumerate(self.paper_ns):
            rows.append(
                [f"2^{int(math.log2(n))}"]
                + [f"{data[k][i] / 1e9:.2f}" for k in data]
            )
        return format_table(headers, rows, title=title)

    def format(self) -> str:
        return "\n\n".join(
            [
                "Fig. 10 — multi-GPU rates vs capacity (m=4, α=0.95, |g|=4), G ops/s",
                self._tbl(self.device_insert, "DEVICE-SIDED INSERT"),
                self._tbl(self.device_retrieve, "DEVICE-SIDED RETRIEVE"),
                self._tbl(self.host_insert, "HOST-SIDED INSERT (incl. PCIe)"),
                self._tbl(self.host_retrieve, "HOST-SIDED RETRIEVE (incl. 2x PCIe)"),
            ]
        )


def run_capacity_sweep(
    *,
    paper_exponents: tuple[int, ...] = (28, 29, 30, 31, 32),
    distributions: tuple[str, ...] = ("unique", "uniform", "zipf"),
    n_sim: int = 1 << 16,
    num_gpus: int = 4,
    seed: int = 23,
) -> CapacityResult:
    """Reproduce Fig. 10's eight panels as tables."""
    result = CapacityResult(paper_ns=tuple(1 << e for e in paper_exponents))
    for dist in distributions:
        for store in (result.device_insert, result.device_retrieve,
                      result.host_insert, result.host_retrieve):
            store[dist] = []

    for exp in paper_exponents:
        paper_n = 1 << exp
        scale = paper_n / n_sim
        shard_bytes = _paper_shard_bytes(paper_n, num_gpus)
        for dist in distributions:
            if dist == "zipf":
                keys = make_distribution(
                    "zipf", n_sim, seed=seed + exp, s=1.0 + 1e-6, universe=n_sim
                )
            else:
                keys = make_distribution(dist, n_sim, seed=seed + exp)
            values = random_values(n_sim, seed + exp + 1)
            unique_count = int(np.unique(keys).shape[0])

            node = p100_nvlink_node(num_gpus)
            table = DistributedHashTable.for_workload(
                node, keys, LOAD, group_size=GROUP
            )
            ins_rep = table.insert(keys, values, source="host")
            timing = time_cascade(
                ins_rep, table, node, shard_table_bytes=shard_bytes, scale=scale
            )
            result.device_insert[dist].append(throughput(paper_n, timing.device_only))
            result.host_insert[dist].append(throughput(paper_n, timing.total))

            _, _, qry_rep = table.query(keys, source="host")
            qtiming = time_cascade(
                qry_rep, table, node, shard_table_bytes=shard_bytes, scale=scale
            )
            result.device_retrieve[dist].append(
                throughput(paper_n, qtiming.device_only)
            )
            result.host_retrieve[dist].append(throughput(paper_n, qtiming.total))
            table.free()
    return result


@dataclass
class OverlapResult:
    """Fig. 11: runtime decomposition of overlapped cascades."""

    labels: list[str]
    makespans: list[float]
    reductions: list[float]
    stage_totals: list[dict[str, float]]
    mst_fraction: float

    def format(self) -> str:
        rows = []
        for label, span, red, stages in zip(
            self.labels, self.makespans, self.reductions, self.stage_totals
        ):
            rows.append(
                [
                    label,
                    f"{span:.3f}",
                    f"{red * 100:.1f}%",
                    " ".join(f"{k}:{v:.2f}" for k, v in stages.items()),
                ]
            )
        return format_table(
            ["cascade", "makespan (s)", "reduction", "stage seconds"],
            rows,
            title=(
                "Fig. 11 — overlapped insertion/retrieval cascades, 32 GB over "
                f"PCIe (MST fraction {self.mst_fraction * 100:.1f}% of total)"
            ),
        )


def run_overlap(
    *,
    num_batches: int = 16,
    batch_sim: int = 1 << 14,
    paper_batch: int = 1 << 24,
    threads: tuple[int, ...] = (1, 2, 4),
    seed: int = 31,
) -> OverlapResult:
    """Reproduce Fig. 11: Ins1/Ins2/Ins4 and Ret1/Ret2/Ret4.

    The paper streams 2^32 pairs (32 GB) in 2^24-element batches; we
    stream ``num_batches`` scaled batches and project each batch timing
    to paper batch size.  Reductions are scale-free.
    """
    node = p100_nvlink_node(4)
    total = batch_sim * num_batches
    scale = paper_batch / batch_sim
    shard_bytes = _paper_shard_bytes(paper_batch * num_batches, 4)

    all_keys = make_distribution("unique", total, seed=seed)
    table = DistributedHashTable.for_workload(node, all_keys, LOAD, group_size=GROUP)
    ins_batches = []
    for b in range(num_batches):
        keys = all_keys[b * batch_sim : (b + 1) * batch_sim]
        values = random_values(batch_sim, seed + b)
        rep = table.insert(keys, values, source="host")
        timing = time_cascade(
            rep, table, node, shard_table_bytes=shard_bytes, scale=scale
        )
        ins_batches.append(insert_stages(timing))

    qry_batches = []
    for b in range(num_batches):
        keys = all_keys[b * batch_sim : (b + 1) * batch_sim]
        _, _, rep = table.query(keys, source="host")
        timing = time_cascade(
            rep, table, node, shard_table_bytes=shard_bytes, scale=scale
        )
        qry_batches.append(query_stages(timing))

    labels, makespans, reductions, stage_totals = [], [], [], []
    base = {"Ins": None, "Ret": None}
    for prefix, batches in (("Ins", ins_batches), ("Ret", qry_batches)):
        for t in threads:
            tl = schedule_batches(batches, t)
            labels.append(f"{prefix}{t}")
            makespans.append(tl.makespan)
            if base[prefix] is None:
                base[prefix] = tl.makespan
            reductions.append(1.0 - tl.makespan / base[prefix])
            stage_totals.append(tl.stage_totals())

    ins_seq = stage_totals[0]
    mst_fraction = ins_seq.get("MST", 0.0) / sum(ins_seq.values())
    return OverlapResult(
        labels=labels,
        makespans=makespans,
        reductions=reductions,
        stage_totals=stage_totals,
        mst_fraction=mst_fraction,
    )


@dataclass
class BandwidthResult:
    """In-text bandwidth claims (§V-C / conclusion)."""

    multisplit_accumulated: float  # bytes/s over all GPUs
    alltoall_accumulated: float
    host_insert_rate: float  # ops/s including PCIe
    host_insert_pcie_fraction: float  # achieved / theoretical PCIe bound
    paper_multisplit: float = 210e9
    paper_alltoall: float = 192e9
    paper_pcie_fraction: float = 0.84

    def format(self) -> str:
        rows = [
            [
                "multisplit GB/s (accumulated)",
                f"{self.multisplit_accumulated / 1e9:.0f}",
                f"{self.paper_multisplit / 1e9:.0f}",
            ],
            [
                "all-to-all GB/s (accumulated)",
                f"{self.alltoall_accumulated / 1e9:.0f}",
                f"{self.paper_alltoall / 1e9:.0f}",
            ],
            [
                "host insert, % of PCIe bound",
                f"{self.host_insert_pcie_fraction * 100:.0f}%",
                f"{self.paper_pcie_fraction * 100:.0f}%",
            ],
        ]
        return format_table(
            ["metric", "ours", "paper"], rows, title="In-text bandwidth anchors"
        )


def run_bandwidths(
    *,
    n_sim: int = 1 << 16,
    paper_batch: int = 1 << 24,
    num_batches: int = 8,
    seed: int = 37,
) -> BandwidthResult:
    """Measure the §V-C bandwidth anchors on a 4-GPU cascade.

    Multisplit/all-to-all bandwidths are computed at paper batch scale so
    per-launch constants vanish; the PCIe fraction uses the *overlapped*
    pipeline (the paper's peak host-sided rates are the async-mode ones).
    """
    node = p100_nvlink_node(4)
    scale = paper_batch / n_sim
    total = n_sim * num_batches
    all_keys = make_distribution("unique", total, seed=seed)
    table = DistributedHashTable.for_workload(node, all_keys, LOAD, group_size=GROUP)

    batch_stage_lists = []
    ms_bw = a2a_bw = 0.0
    for b in range(num_batches):
        keys = all_keys[b * n_sim : (b + 1) * n_sim]
        values = random_values(n_sim, seed + b + 1)
        rep = table.insert(keys, values, source="host")
        timing = time_cascade(rep, table, node, scale=scale)
        batch_stage_lists.append(insert_stages(timing))
        ms_bytes = sum(r.num_ops * 16 for r in rep.multisplit_reports) * scale
        if timing.multisplit > 0:
            ms_bw = max(ms_bw, ms_bytes / timing.multisplit)
        if timing.alltoall > 0:
            a2a_bw = max(a2a_bw, rep.alltoall_bytes * scale / timing.alltoall)

    overlapped = schedule_batches(batch_stage_lists, 4)
    host_rate = throughput(int(total * scale), overlapped.makespan)
    pcie_bound = (
        node.num_switches * node.pcie_switch_bandwidth * (24.0 / 22.0) / 8.0
    )  # theoretical 24 GB/s node aggregate, 8 bytes per pair
    return BandwidthResult(
        multisplit_accumulated=ms_bw,
        alltoall_accumulated=a2a_bw,
        host_insert_rate=host_rate,
        host_insert_pcie_fraction=host_rate / pcie_bound,
    )
