"""Single-GPU experiments: Fig. 7, Fig. 8, and the in-text speedup table.

Protocol (paper §V-B): insert 2^27 (4+4)-byte pairs residing in video
memory, then retrieve all of them, for load factors 0.40–0.99, group
sizes |g| ∈ {1, 2, 4, 8, 16, 32}, against the CUDPP cuckoo baseline
(capped at load 0.97).  We run a scaled-down instance (default 2^16
pairs — probe statistics at a fixed load factor are size-invariant) and
project rates to paper scale through the perf model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..baselines.cudpp_cuckoo import CudppCuckooTable
from ..constants import VALID_GROUP_SIZES
from ..core.table import WarpDriveHashTable
from ..errors import ConfigurationError
from ..perfmodel.memmodel import projected_seconds, throughput
from ..perfmodel.specs import P100
from ..simt.device import GPUSpec
from ..utils.tables import format_table
from ..workloads.distributions import make_distribution, random_values

__all__ = ["SingleGpuSweep", "run_single_gpu_sweep", "run_speedup_table"]

#: the paper inserts 2^27 pairs; projections use this as the reference n
PAPER_N = 1 << 27

DEFAULT_LOADS = (0.40, 0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95, 0.97, 0.99)


@dataclass
class SingleGpuSweep:
    """Insert/retrieve rates (G ops/s) per series over the load axis."""

    distribution: str
    loads: tuple[float, ...]
    insert_rates: dict[str, list[float]] = field(default_factory=dict)
    retrieve_rates: dict[str, list[float]] = field(default_factory=dict)
    sim_n: int = 0
    paper_n: int = PAPER_N

    def series_labels(self) -> list[str]:
        return list(self.insert_rates.keys())

    def best_group(self, load_index: int, *, op: str = "insert") -> str:
        """Label of the fastest WarpDrive series at one load point."""
        rates = self.insert_rates if op == "insert" else self.retrieve_rates
        wd = {k: v[load_index] for k, v in rates.items() if k.startswith("WD")}
        return max(wd, key=wd.get)

    def speedup_over_cudpp(self, load: float, *, op: str = "insert") -> float:
        """Best-WarpDrive / CUDPP rate ratio at the given load."""
        if load not in self.loads:
            raise ConfigurationError(f"load {load} not in sweep {self.loads}")
        i = self.loads.index(load)
        rates = self.insert_rates if op == "insert" else self.retrieve_rates
        if "CUDPP" not in rates or math.isnan(rates["CUDPP"][i]):
            raise ConfigurationError(f"no CUDPP data at load {load}")
        best = max(v[i] for k, v in rates.items() if k.startswith("WD"))
        return best / rates["CUDPP"][i]

    def _table(self, rates: dict[str, list[float]], title: str) -> str:
        headers = ["load"] + list(rates.keys())
        rows = []
        for i, load in enumerate(self.loads):
            row: list[object] = [f"{load:.2f}"]
            for label in rates:
                v = rates[label][i]
                row.append("-" if math.isnan(v) else f"{v / 1e9:.3f}")
            rows.append(row)
        return format_table(headers, rows, title=title)

    def format(self) -> str:
        head = (
            f"[{self.distribution}] single-GPU rates, G ops/s "
            f"(simulated n=2^{int(math.log2(self.sim_n))}, projected to "
            f"n=2^{int(math.log2(self.paper_n))} on a {P100.name})"
        )
        return "\n\n".join(
            [
                head,
                self._table(self.insert_rates, "INSERTION"),
                self._table(self.retrieve_rates, "RETRIEVAL"),
            ]
        )


def _prepare_keys(distribution: str, n: int, seed: int) -> np.ndarray:
    if distribution == "zipf":
        return make_distribution("zipf", n, seed=seed, s=1.0 + 1e-6, universe=n)
    return make_distribution(distribution, n, seed=seed)


def run_single_gpu_sweep(
    *,
    n: int = 1 << 16,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    group_sizes: tuple[int, ...] = VALID_GROUP_SIZES,
    distribution: str = "unique",
    include_cudpp: bool = True,
    seed: int = 42,
    spec: GPUSpec = P100,
    paper_n: int = PAPER_N,
) -> SingleGpuSweep:
    """Reproduce Fig. 7 (unique) or Fig. 8 (zipf) as a data sweep."""
    for g in group_sizes:
        if g not in VALID_GROUP_SIZES:
            raise ConfigurationError(f"invalid group size {g}")
    scale = paper_n / n
    result = SingleGpuSweep(
        distribution=distribution, loads=tuple(loads), sim_n=n, paper_n=paper_n
    )
    labels = [f"WD|g|={g}" for g in group_sizes]
    for label in labels:
        result.insert_rates[label] = []
        result.retrieve_rates[label] = []
    if include_cudpp:
        result.insert_rates["CUDPP"] = []
        result.retrieve_rates["CUDPP"] = []

    keys = _prepare_keys(distribution, n, seed)
    values = random_values(n, seed + 1)
    unique_count = int(np.unique(keys).shape[0])

    for load in loads:
        # Zipf: "the specified loads refers to the actual occupancy of
        # table slots after inserting all elements" (§V-B)
        capacity = max(int(math.ceil(unique_count / load)), 1)
        paper_capacity_bytes = int(math.ceil(paper_n / load)) * 8

        for g, label in zip(group_sizes, labels):
            table = WarpDriveHashTable(capacity, group_size=g, p_max=4096)
            ins = table.insert(keys, values)
            ins_s = projected_seconds(
                ins, spec, table_bytes=paper_capacity_bytes, scale=scale
            )
            result.insert_rates[label].append(throughput(paper_n, ins_s))

            table.query(keys)
            qry = table.last_report
            qry_s = projected_seconds(
                qry, spec, table_bytes=paper_capacity_bytes, scale=scale
            )
            result.retrieve_rates[label].append(throughput(paper_n, qry_s))

        if include_cudpp:
            if load <= CudppCuckooTable.MAX_LOAD and distribution != "zipf":
                cuckoo = CudppCuckooTable(capacity, seed=seed)
                ins = cuckoo.insert(keys, values)
                ins_s = projected_seconds(
                    ins, spec, table_bytes=paper_capacity_bytes, scale=scale
                )
                result.insert_rates["CUDPP"].append(throughput(paper_n, ins_s))
                cuckoo.query(keys)
                qry_s = projected_seconds(
                    cuckoo.last_report,
                    spec,
                    table_bytes=paper_capacity_bytes,
                    scale=scale,
                )
                result.retrieve_rates["CUDPP"].append(throughput(paper_n, qry_s))
            else:
                # CUDPP cannot run: load cap 0.97, no duplicate-key support
                result.insert_rates["CUDPP"].append(float("nan"))
                result.retrieve_rates["CUDPP"].append(float("nan"))
    return result


@dataclass
class SpeedupTable:
    """WarpDrive-vs-CUDPP speedups at the paper's three anchor loads."""

    loads: tuple[float, ...]
    insert_speedups: list[float]
    retrieve_speedups: list[float]
    #: the paper's reported values for side-by-side comparison
    paper_insert: tuple[float, ...] = (1.79, 2.18, 2.84)
    paper_retrieve: tuple[float, ...] = (1.30, 1.34, 1.30)

    def format(self) -> str:
        rows = []
        for i, load in enumerate(self.loads):
            rows.append(
                [
                    f"{load:.2f}",
                    f"{self.insert_speedups[i]:.2f}",
                    f"{self.paper_insert[i]:.2f}",
                    f"{self.retrieve_speedups[i]:.2f}",
                    f"{self.paper_retrieve[i]:.2f}",
                ]
            )
        return format_table(
            ["load", "ins ×(ours)", "ins ×(paper)", "ret ×(ours)", "ret ×(paper)"],
            rows,
            title="WarpDrive speedup over CUDPP cuckoo (best |g| per point)",
        )


def run_speedup_table(
    *,
    n: int = 1 << 16,
    loads: tuple[float, ...] = (0.80, 0.90, 0.95),
    seed: int = 42,
) -> SpeedupTable:
    """The §V-B in-text numbers: speedups 1.79/2.18/2.84 and 1.3/1.34/1.3."""
    sweep = run_single_gpu_sweep(
        n=n, loads=loads, distribution="unique", include_cudpp=True, seed=seed
    )
    return SpeedupTable(
        loads=tuple(loads),
        insert_speedups=[sweep.speedup_over_cudpp(l, op="insert") for l in loads],
        retrieve_speedups=[sweep.speedup_over_cudpp(l, op="retrieve") for l in loads],
    )
