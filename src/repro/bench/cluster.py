"""Modelled scale-out benches: cluster cascades at fixed total keys.

Strong-scaling sweep of the hierarchical cascade: the same keyspace is
inserted and queried through ``cluster:Nx<g>`` topologies (see
:mod:`repro.multigpu.topology`) and each cascade is priced with
:func:`repro.perfmodel.time_cascade`, so the rows read off how much of
the node-local NVLink win survives once the all-to-all has to cross a
NIC.  A second sweep holds the cluster shape fixed and varies the NIC
bandwidth — the sensitivity rows that show when the inter-node level
(``alltoall_inter_seconds``) overtakes the intra-node one.

Rows land in ``BENCH_distribution.json`` next to the fused-vs-reference
distribution rows (the two suites share the file; see
``benchmarks/bench_cluster.py`` for the merge discipline).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..multigpu.distributed_table import DistributedHashTable
from ..multigpu.topology import DEFAULT_NIC_BANDWIDTH, TopologySpec
from ..obs.protocol import reportable_dict
from ..perfmodel.cascade import time_cascade
from ..workloads import random_values, unique_keys

__all__ = [
    "ClusterScaleRecord",
    "run_cluster_suite",
    "format_cluster_records",
    "cluster_scaling_efficiency",
]

#: NIC bandwidths (bytes/s) for the sensitivity sweep: a 25 Gb/s
#: ethernet-class link, the EDR-IB default, and a 400 Gb/s NDR link.
NIC_SENSITIVITY_BANDWIDTHS = (
    DEFAULT_NIC_BANDWIDTH / 4,
    DEFAULT_NIC_BANDWIDTH,
    DEFAULT_NIC_BANDWIDTH * 4,
)


@dataclass
class ClusterScaleRecord:
    """One modelled cluster cascade (the ``BENCH_distribution.json``
    cluster row schema)."""

    bench: str  # cluster_insert | cluster_query | cluster_nic
    n: int  # total keys — fixed across the node sweep
    num_nodes: int
    gpus_per_node: int
    m: int  # total GPUs = num_nodes * gpus_per_node
    nic_bandwidth: float  # bytes/s
    seconds: float  # modelled device-sided cascade wall time
    ops_per_s: float
    alltoall_intra_seconds: float
    alltoall_inter_seconds: float
    alltoall_inter_bytes: int
    #: host cores the run had (records stay interpretable across boxes)
    cpus: int = 0

    schema_version = 1

    def __post_init__(self):
        if not self.cpus:
            self.cpus = os.cpu_count() or 1

    def to_dict(self) -> dict:
        """:class:`repro.obs.Reportable` serialization (stable keys)."""
        return reportable_dict(
            self,
            {
                "bench": self.bench,
                "n": self.n,
                "num_nodes": self.num_nodes,
                "gpus_per_node": self.gpus_per_node,
                "m": self.m,
                "nic_bandwidth": self.nic_bandwidth,
                "seconds": self.seconds,
                "ops_per_s": self.ops_per_s,
                "alltoall_intra_seconds": self.alltoall_intra_seconds,
                "alltoall_inter_seconds": self.alltoall_inter_seconds,
                "alltoall_inter_bytes": self.alltoall_inter_bytes,
                "cpus": self.cpus,
            },
        )


def _run_shape(
    bench_prefix: str,
    n: int,
    num_nodes: int,
    gpus_per_node: int,
    nic_bandwidth: float,
    *,
    seed: int,
    group_size: int,
    ops: tuple[str, ...] = ("insert", "query"),
) -> list[ClusterScaleRecord]:
    """Insert + query the fixed keyspace through one cluster shape."""
    spec = TopologySpec(
        preset="p100",
        gpus_per_node=gpus_per_node,
        num_nodes=num_nodes,
        nic_bandwidth=nic_bandwidth,
        force_cluster=num_nodes > 1,
    )
    topology = spec.build()
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    table = DistributedHashTable.for_workload(
        topology, keys, 0.95, group_size=group_size
    )
    records: list[ClusterScaleRecord] = []
    try:
        reports = {}
        reports["insert"] = table.insert(keys, values, source="device")
        if "query" in ops:
            _, found, qreport = table.query(keys, source="device")
            if not bool(found.all()):
                raise AssertionError(
                    f"cluster {num_nodes}x{gpus_per_node}: inserted keys "
                    "went missing — bench aborted"
                )
            reports["query"] = qreport
        for op in ops:
            report = reports[op]
            timing = time_cascade(report, table, topology)
            seconds = timing.device_only
            records.append(
                ClusterScaleRecord(
                    bench=f"{bench_prefix}{op}",
                    n=n,
                    num_nodes=num_nodes,
                    gpus_per_node=gpus_per_node,
                    m=topology.num_devices,
                    nic_bandwidth=nic_bandwidth,
                    seconds=seconds,
                    ops_per_s=n / seconds if seconds > 0 else 0.0,
                    alltoall_intra_seconds=report.alltoall_intra_seconds,
                    alltoall_inter_seconds=report.alltoall_inter_seconds,
                    alltoall_inter_bytes=report.alltoall_inter_bytes,
                )
            )
    finally:
        table.free()
    return records


def run_cluster_suite(
    n: int = 1 << 17,
    *,
    gpus_per_node: int = 4,
    node_counts: tuple[int, ...] = (1, 2, 4),
    nic_bandwidths: tuple[float, ...] = NIC_SENSITIVITY_BANDWIDTHS,
    seed: int = 11,
    group_size: int = 4,
) -> list[ClusterScaleRecord]:
    """Strong-scaling node sweep plus a NIC-bandwidth sensitivity sweep.

    Every shape ingests the *same* ``n`` keys (fixed total work — the
    paper's Fig. 9 discipline), so ``ops_per_s`` across ``node_counts``
    is the strong-scaling curve.  The sensitivity rows re-run the
    largest shape at each bandwidth in ``nic_bandwidths``.
    """
    if not node_counts:
        raise ConfigurationError("node_counts must be non-empty")
    if any(c < 1 for c in node_counts):
        raise ConfigurationError(f"node_counts must be >= 1, got {node_counts}")
    records: list[ClusterScaleRecord] = []
    for num_nodes in node_counts:
        records.extend(
            _run_shape(
                "cluster_",
                n,
                num_nodes,
                gpus_per_node,
                DEFAULT_NIC_BANDWIDTH,
                seed=seed,
                group_size=group_size,
            )
        )
    largest = max(node_counts)
    if largest > 1:
        for bw in nic_bandwidths:
            if bw == DEFAULT_NIC_BANDWIDTH:
                continue  # already covered by the scaling sweep
            records.extend(
                _run_shape(
                    "cluster_nic_",
                    n,
                    largest,
                    gpus_per_node,
                    bw,
                    seed=seed,
                    group_size=group_size,
                    ops=("insert",),
                )
            )
    return records


def cluster_scaling_efficiency(
    records: list[ClusterScaleRecord], op: str = "insert"
) -> float:
    """Largest-shape throughput relative to perfect scaling from 1 node.

    1.0 means the NIC is free; realistic NICs land well below the
    node-local curve and this ratio quantifies the gap (0.0 if the sweep
    is missing either endpoint).
    """
    rows = {
        r.num_nodes: r
        for r in records
        if r.bench == f"cluster_{op}" and r.nic_bandwidth == DEFAULT_NIC_BANDWIDTH
    }
    if len(rows) < 2:
        return 0.0
    base = rows[min(rows)]
    peak = rows[max(rows)]
    perfect = base.ops_per_s * (peak.num_nodes / base.num_nodes)
    return peak.ops_per_s / perfect if perfect > 0 else 0.0


def format_cluster_records(records: list[ClusterScaleRecord]) -> str:
    """Fixed-width table: one row per shape, with the inter-node share."""
    lines = [
        f"{'bench':<20} {'n':>9} {'nodes':>5} {'gpus':>4} "
        f"{'NIC GB/s':>8} {'seconds':>10} {'Mops/s':>8} {'inter %':>7}"
    ]
    for r in records:
        alltoall = max(r.alltoall_intra_seconds, r.alltoall_inter_seconds)
        share = (
            r.alltoall_inter_seconds / alltoall * 100 if alltoall > 0 else 0.0
        )
        lines.append(
            f"{r.bench:<20} {r.n:>9} {r.num_nodes:>5} {r.m:>4} "
            f"{r.nic_bandwidth / 1e9:>8.2f} {r.seconds:>10.6f} "
            f"{r.ops_per_s / 1e6:>8.1f} {share:>6.1f}%"
        )
    return "\n".join(lines)
