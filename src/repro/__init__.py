"""WarpDrive reproduction — massively parallel hashing on multi-GPU nodes.

A production-quality Python reproduction of Jünger, Hundt & Schmidt,
*WarpDrive: Massively Parallel Hashing on Multi-GPU Nodes* (IPDPS 2018),
built on a functional SIMT simulator plus an analytic GPU performance
model (no CUDA hardware required).

Top-level convenience re-exports cover the common entry points; the
subpackages hold the full API:

* :mod:`repro.core` — the WarpDrive hash table and its probing scheme
* :mod:`repro.multigpu` — distributed multisplit-transposition tables
* :mod:`repro.baselines` — CUDPP-style cuckoo and other comparators
* :mod:`repro.simt`, :mod:`repro.memory` — the simulated GPU substrate
* :mod:`repro.perfmodel` — counts → seconds projection (P100-calibrated)
* :mod:`repro.workloads` — key distributions from the paper's §V-A
* :mod:`repro.pipeline` — asynchronous cascade overlap (Fig. 5 / 11)
* :mod:`repro.bench` — experiment harness regenerating every figure
* :mod:`repro.obs` — the trace/metrics spine behind ``repro trace``

All table constructors and drivers share one option vocabulary —
``engine=`` / ``workers=`` / ``distribution=`` / ``kernels=`` /
``measure=`` / ``topology=`` — documented in :mod:`repro.options`.
"""

from . import obs
from .core.adaptive import AdaptiveWarpDriveTable
from .core.config import HashTableConfig
from .core.counting import CountingHashTable
from .core.multivalue import MultiValueHashTable
from .core.partitioned import PartitionedWarpDriveTable
from .core.table import WarpDriveHashTable
from .errors import (
    CapacityError,
    ConfigurationError,
    InsertionError,
    ReproError,
)
from .multigpu.distributed_table import CascadeReport, DistributedHashTable
from .multigpu.topology import (
    ClusterTopology,
    NodeTopology,
    Topology,
    TopologySpec,
    dgx1v_node,
    p100_nvlink_node,
    pcie_only_node,
    topology,
)
from .pipeline.driver import AsyncCascadeDriver, StreamResult

__version__ = "1.0.0"

__all__ = [
    "WarpDriveHashTable",
    "AdaptiveWarpDriveTable",
    "PartitionedWarpDriveTable",
    "MultiValueHashTable",
    "CountingHashTable",
    "HashTableConfig",
    "DistributedHashTable",
    "CascadeReport",
    "Topology",
    "NodeTopology",
    "ClusterTopology",
    "TopologySpec",
    "topology",
    "p100_nvlink_node",
    "dgx1v_node",
    "pcie_only_node",
    "AsyncCascadeDriver",
    "StreamResult",
    "obs",
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "InsertionError",
    "__version__",
]
