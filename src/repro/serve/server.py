"""The KV server: request coalescing, admission control, cache tier.

One :class:`KVServer` fronts one
:class:`~repro.multigpu.distributed_table.DistributedHashTable`:

* an **acceptor** thread takes socket connections (unix or TCP);
* a **reader** thread per connection validates frames and performs
  *admission*: each data frame's payload bytes are charged against a
  :class:`~repro.pipeline.staging.StagingBudget` (the same primitive
  that bounds the streaming pipeline) — when the budget is saturated
  the frame is rejected with a typed ``OVERLOADED`` error instead of
  queueing unboundedly, and ``serve.rejected`` counts it;
* a single **coalescer** thread drains admitted requests and merges
  runs of same-op frames — across clients — into one cascade, bounded
  by a batch window (seconds) and a max-batch key count.  All table
  access happens on this thread, so the executed-batch sequence is a
  total order: the op log it appends to replays serially to a
  bit-identical table (the soak-test contract).

Retrieval batches consult the :class:`~repro.serve.cache.HotKeyCache`
**on the coalescer thread**, once per merged batch: a single vectorized
lookup over the whole coalesced key set, then one cascade covering only
the missed keys.  Keeping lookups off the reader threads matters twice
over — the merged lookup runs uncontended (per-request lookups on N
reader threads fight each other for the interpreter), and every cache
operation (lookup, admission, invalidation) now happens in the same
total order as the cascades, so coherence is sequential by
construction.  The cascade's
:class:`~repro.multigpu.distributed_table.CascadeReport` records the
batch's ``cache_hits``/``cache_misses`` split.  Each key in a batched
query linearizes individually at its read point inside the batch —
batched gets are N independent reads, not a snapshot.  Inserts and
erases invalidate the touched keys *before* their replies are sent, so
no client can observe a stale cached value after any acknowledged
mutation.

A malformed *header* desynchronizes the byte stream, so the server
answers with a typed error frame and closes that connection; a
malformed *payload* inside a well-framed message is answered and the
connection survives.  Neither path reaches the table.
"""

from __future__ import annotations

import json
import queue
import socket
import struct
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError, ReproError
from ..multigpu.distributed_table import DistributedHashTable
from ..multigpu.topology import p100_nvlink_node
from ..obs import runtime as obs
from ..pipeline.staging import StagingBudget
from .cache import HotKeyCache
from .protocol import (
    ErrorCode,
    Frame,
    FrameType,
    ProtocolError,
    decode_erase,
    decode_hello,
    decode_insert,
    decode_query,
    encode_erase_reply,
    encode_error,
    encode_hello_reply,
    encode_insert_reply,
    encode_query_reply,
    read_frame,
    write_frame,
)

__all__ = ["ServerStats", "KVServer"]

#: ops that carry data through the admission queue
_DATA_OPS = {FrameType.INSERT: "insert", FrameType.QUERY: "query",
             FrameType.ERASE: "erase"}


class ServerStats:
    """Thread-safe ``serve.*`` counters, mirrored into :mod:`repro.obs`.

    The server keeps its own registry so its counters exist whether or
    not the process-global obs switch is on; when it *is* on, every
    increment is teed into the active
    :class:`~repro.obs.metrics.MetricsRegistry` under the same names.
    """

    def __init__(self):
        self._counters: dict[str, float] = {}
        self._lock = threading.Lock()

    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value
        if obs.enabled():
            metrics = obs.get_metrics()
            if metrics is not None:
                metrics.inc(name, value)

    def get(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(sorted(self._counters.items()))


class _Conn:
    """One accepted connection: socket + send lock + client identity."""

    def __init__(self, sock: socket.socket, conn_id: int):
        self.sock = sock
        self.conn_id = conn_id
        self.name = f"conn{conn_id}"
        self.send_lock = threading.Lock()
        self.alive = True

    def send(self, frame: Frame) -> bool:
        """Best-effort framed send; a dead peer is not an error."""
        try:
            with self.send_lock:
                write_frame(self.sock, frame)
            return True
        except OSError:
            self.alive = False
            return False


@dataclass
class _Pending:
    """One admitted data frame waiting for the coalescer."""

    conn: _Conn
    op: str
    request_id: int
    keys: np.ndarray
    values: np.ndarray | None
    default: int
    nbytes: int
    enqueued_at: float = field(default_factory=time.perf_counter)


class KVServer:
    """Socket front-end over a distributed hash table.

    Parameters
    ----------
    table:
        The :class:`DistributedHashTable` to serve.  The server owns all
        access to it (single coalescer thread); pass ``own_table=True``
        to have :meth:`close` free it.
    address:
        ``None`` (default) binds a fresh unix socket under a temp
        directory; a ``str`` binds that unix path; an ``(host, port)``
        tuple binds TCP (port 0 picks a free port).
    cache:
        ``False`` disables the hot-key tier (the bench suite's control).
    cache_size, promote_after:
        Forwarded to :class:`HotKeyCache`.
    batch_window:
        Seconds the coalescer waits for same-op follow-up frames before
        a partially filled batch executes.
    max_batch:
        Key ceiling per coalesced cascade (admission control's unit of
        work; also bounds a cascade's staging footprint).
    admission_bytes:
        The :class:`StagingBudget` ceiling for admitted-but-unexecuted
        request bytes.  Saturation rejects with ``OVERLOADED``.
    oplog:
        Record every executed mutation batch (op, keys, values) in
        execution order — the soak test's serial-replay source.
    """

    def __init__(
        self,
        table: DistributedHashTable,
        *,
        address=None,
        own_table: bool = False,
        cache: bool = True,
        cache_size: int = 4096,
        promote_after: int = 2,
        batch_window: float = 0.002,
        max_batch: int = 1 << 15,
        admission_bytes: int = 64 << 20,
        oplog: bool = False,
    ):
        if batch_window < 0:
            raise ConfigurationError(
                f"batch_window must be >= 0, got {batch_window}"
            )
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        self.table = table
        self._own_table = own_table
        self.cache: HotKeyCache | None = (
            HotKeyCache(cache_size, promote_after=promote_after)
            if cache
            else None
        )
        self.batch_window = float(batch_window)
        self.max_batch = int(max_batch)
        self.budget = StagingBudget(admission_bytes)
        self.stats = ServerStats()
        self.oplog: list[tuple[str, np.ndarray, np.ndarray | None]] | None = (
            [] if oplog else None
        )
        self._address = address
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._listener: socket.socket | None = None
        self._queue: queue.Queue[_Pending] = queue.Queue()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._conns: dict[int, _Conn] = {}
        self._conn_lock = threading.Lock()
        self._next_conn = 0
        self._seen_clients: set[str] = set()
        self._started = False
        self._closed = threading.Event()

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def create(
        cls,
        *,
        num_gpus: int = 4,
        capacity: int = 1 << 16,
        engine="serial",
        kernels: str = "fast",
        **kwargs,
    ) -> "KVServer":
        """Build a server plus its own table (the CLI entry point)."""
        table = DistributedHashTable(
            capacity,
            topology=p100_nvlink_node(num_gpus),
            engine=engine,
            kernels=kernels,
        )
        return cls(table, own_table=True, **kwargs)

    def start(self) -> "KVServer":
        """Bind, listen, and spin up acceptor + coalescer threads."""
        if self._started:
            raise ConfigurationError("server already started")
        addr = self._address
        if addr is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            addr = str(
                Path(self._tmpdir.name) / f"kv-{uuid.uuid4().hex[:8]}.sock"
            )
        if isinstance(addr, str):
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(addr)
            self._address = addr
        else:
            host, port = addr
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, int(port)))
            self._address = self._listener.getsockname()
        self._listener.listen(64)
        # a blocked accept() does not wake when another thread closes the
        # listener fd, so poll with a timeout to notice the stop flag
        self._listener.settimeout(0.2)
        self._started = True
        self._closed.clear()
        for target, name in (
            (self._accept_loop, "serve-accept"),
            (self._coalesce_loop, "serve-coalesce"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    @property
    def address(self):
        """The bound address (unix path or ``(host, port)``)."""
        return self._address

    def close(self) -> None:
        """Drain, stop every thread, close sockets, free owned state."""
        if not self._started:
            return
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass
        with self._conn_lock:
            conns = list(self._conns.values())
        for conn in conns:
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._drain_queue(ErrorCode.SHUTTING_DOWN, "server closed")
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
        if self._own_table:
            self.table.free()
        self._started = False
        self._closed.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until :meth:`close` completes (the CLI's serve loop).

        A SHUTDOWN frame from any client also triggers close, so this
        is how ``repro serve`` parks its main thread.  Returns ``True``
        once closed, ``False`` on timeout.
        """
        return self._closed.wait(timeout)

    def __enter__(self) -> "KVServer":
        return self.start() if not self._started else self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accept + read --------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                sock, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed by close()
            with self._conn_lock:
                conn = _Conn(sock, self._next_conn)
                self._conns[self._next_conn] = conn
                self._next_conn += 1
            self.stats.inc("serve.connections")
            thread = threading.Thread(
                target=self._read_loop,
                args=(conn,),
                name=f"serve-read-{conn.conn_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _read_loop(self, conn: _Conn) -> None:
        # runs until the peer hangs up or close() shuts the socket: while
        # draining (_stop set, sockets still open) data ops are answered
        # with typed SHUTTING_DOWN rejections rather than a silent hangup
        try:
            while True:
                try:
                    frame = read_frame(conn.sock)
                except ProtocolError as exc:
                    self._on_stream_error(conn, exc)
                    return
                except OSError:
                    self.stats.inc("serve.disconnect")
                    return
                if not self._dispatch(conn, frame):
                    return
        finally:
            with self._conn_lock:
                self._conns.pop(conn.conn_id, None)
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass

    def _on_stream_error(self, conn: _Conn, exc: ProtocolError) -> None:
        """A broken byte stream: typed error if the peer is still there."""
        message = str(exc)
        if message == "connection closed":
            self.stats.inc("serve.disconnect")
            return
        if "truncated frame" in message:
            # the peer died mid-frame — nobody is listening for an error
            self.stats.inc("serve.disconnect")
            self.stats.inc("serve.truncated")
            return
        # parseable garbage (bad magic/version/type/length): reject loudly,
        # then drop the connection — the stream offset is unrecoverable
        self.stats.inc("serve.rejected")
        self.stats.inc("serve.rejected.malformed")
        conn.send(Frame(FrameType.ERROR, 0, encode_error(exc.code, message)))

    def _dispatch(self, conn: _Conn, frame: Frame) -> bool:
        """Handle one well-framed message; ``False`` ends the reader."""
        if frame.type == FrameType.HELLO:
            try:
                name = decode_hello(frame.payload)
            except ProtocolError as exc:
                self._reject(conn, frame.request_id, exc.code, str(exc))
                return True
            if name in self._seen_clients:
                self.stats.inc("serve.reconnect")
            else:
                self._seen_clients.add(name)
            conn.name = name
            conn.send(
                Frame(
                    FrameType.HELLO_REPLY,
                    frame.request_id,
                    encode_hello_reply(
                        self.table.num_gpus,
                        cache_enabled=self.cache is not None,
                    ),
                )
            )
            return True
        if frame.type == FrameType.STATS:
            payload = json.dumps(self.snapshot()).encode("utf-8")
            conn.send(Frame(FrameType.STATS_REPLY, frame.request_id, payload))
            return True
        if frame.type == FrameType.SHUTDOWN:
            conn.send(Frame(FrameType.SHUTDOWN, frame.request_id))
            threading.Thread(target=self.close, daemon=True).start()
            return False
        op = _DATA_OPS.get(frame.type)
        if op is None:
            self._reject(
                conn,
                frame.request_id,
                ErrorCode.BAD_TYPE,
                f"server does not accept {frame.type.name} frames",
            )
            return True
        return self._admit(conn, op, frame)

    def _admit(self, conn: _Conn, op: str, frame: Frame) -> bool:
        try:
            if op == "insert":
                keys, values = decode_insert(frame.payload)
                default = 0
            elif op == "query":
                keys, default = decode_query(frame.payload)
                values = None
            else:
                keys = decode_erase(frame.payload)
                values, default = None, 0
        except ProtocolError as exc:
            # well-framed but unparseable payload: the stream is still in
            # sync, so answer and keep the connection
            self.stats.inc("serve.rejected")
            self.stats.inc("serve.rejected.malformed")
            self._reject(conn, frame.request_id, exc.code, str(exc))
            return True
        nbytes = len(frame.payload)
        if keys.size == 0:
            # empty batches short-circuit: legal, but no cascade to join
            self._send_reply(
                _Pending(conn, op, frame.request_id, keys, values, default, 0),
                np.empty(0, dtype=np.uint32),
                np.empty(0, dtype=bool),
            )
            return True
        if self._stop.is_set():
            self._reject(
                conn, frame.request_id, ErrorCode.SHUTTING_DOWN,
                "server is draining",
            )
            return True
        if not self.budget.try_acquire(nbytes):
            self.stats.inc("serve.rejected")
            self.stats.inc("serve.rejected.overloaded")
            self._reject(
                conn,
                frame.request_id,
                ErrorCode.OVERLOADED,
                f"admission budget full "
                f"({self.budget.in_flight_bytes} B in flight)",
            )
            return True
        self._queue.put(
            _Pending(conn, op, frame.request_id, keys, values, default, nbytes)
        )
        return True

    def _reject(
        self, conn: _Conn, request_id: int, code: ErrorCode, message: str
    ) -> None:
        conn.send(
            Frame(FrameType.ERROR, request_id, encode_error(code, message))
        )

    # -- coalesce + execute ---------------------------------------------------

    def _coalesce_loop(self) -> None:
        holdover: _Pending | None = None
        while True:
            item = holdover
            holdover = None
            if item is None:
                try:
                    item = self._queue.get(timeout=0.05)
                except queue.Empty:
                    if self._stop.is_set():
                        return
                    continue
            group = [item]
            total = int(item.keys.size)
            deadline = time.perf_counter() + self.batch_window
            while total < self.max_batch:
                timeout = deadline - time.perf_counter()
                if timeout <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=timeout)
                except queue.Empty:
                    break
                if (
                    nxt.op != item.op
                    or total + nxt.keys.size > self.max_batch
                ):
                    holdover = nxt
                    break
                group.append(nxt)
                total += int(nxt.keys.size)
            self._execute(group)

    def _execute(self, group: list[_Pending]) -> None:
        op = group[0].op
        total = sum(int(p.keys.size) for p in group)
        clients = sorted({p.conn.name for p in group})
        try:
            with obs.span(
                "serve.batch",
                "serve",
                op=op,
                requests=len(group),
                num_ops=total,
                clients=len(clients),
            ):
                if op == "insert":
                    self._execute_insert(group)
                elif op == "query":
                    self._execute_query(group)
                else:
                    self._execute_erase(group)
            self.stats.inc("serve.batches")
            self.stats.inc(f"serve.ops.{op}", total)
            self.stats.inc("serve.coalesced_requests", len(group))
            for pending in group:
                self.stats.inc(
                    f"serve.client.{pending.conn.name}.ops",
                    int(pending.keys.size),
                )
        except ReproError as exc:
            # typed reply per caller; the cascade entry points validate
            # before mutating, so the table stays consistent
            self.stats.inc("serve.errors")
            for pending in group:
                self._reject(
                    pending.conn,
                    pending.request_id,
                    ErrorCode.INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                )
        finally:
            for pending in group:
                if pending.nbytes:
                    self.budget.release(pending.nbytes)

    def _execute_insert(self, group: list[_Pending]) -> None:
        keys = np.concatenate([p.keys for p in group])
        values = np.concatenate([p.values for p in group])
        self.table.insert(keys, values, source="host")
        if self.cache is not None:
            self.cache.invalidate(keys)
        if self.oplog is not None:
            self.oplog.append(("insert", keys, values))
        for pending in group:
            pending.conn.send(
                Frame(
                    FrameType.INSERT_REPLY,
                    pending.request_id,
                    encode_insert_reply(int(pending.keys.size)),
                )
            )

    def _execute_erase(self, group: list[_Pending]) -> None:
        keys = np.concatenate([p.keys for p in group])
        erased, _report = self.table.erase(keys, source="host")
        if self.cache is not None:
            self.cache.invalidate(keys)
        if self.oplog is not None:
            self.oplog.append(("erase", keys, None))
        offset = 0
        for pending in group:
            n = int(pending.keys.size)
            pending.conn.send(
                Frame(
                    FrameType.ERASE_REPLY,
                    pending.request_id,
                    encode_erase_reply(erased[offset : offset + n]),
                )
            )
            offset += n

    def _execute_query(self, group: list[_Pending]) -> None:
        keys = np.concatenate([p.keys for p in group])
        defaults = np.concatenate(
            [np.full(p.keys.size, p.default, dtype=np.uint32) for p in group]
        )
        if self.cache is not None:
            # one vectorized lookup over the whole coalesced batch, then
            # a cascade covering only the missed keys
            values, hit_mask = self.cache.lookup(keys)
            nhits = int(hit_mask.sum())
            self.stats.inc("serve.cache.hits", nhits)
            self.stats.inc("serve.cache.misses", int(keys.size) - nhits)
            if nhits == keys.size:
                found = hit_mask
            else:
                miss = ~hit_mask
                miss_keys = keys[miss]
                miss_values, miss_found = self._query_table(
                    miss_keys, defaults[miss], cache_hits=nhits
                )
                if miss_found.any():
                    self.cache.admit(
                        miss_keys[miss_found], miss_values[miss_found]
                    )
                values[miss] = miss_values
                found = hit_mask
                found[miss] = miss_found
        else:
            values, found = self._query_table(keys, defaults)
        offset = 0
        for pending in group:
            n = int(pending.keys.size)
            pending.conn.send(
                Frame(
                    FrameType.QUERY_REPLY,
                    pending.request_id,
                    encode_query_reply(
                        values[offset : offset + n],
                        found[offset : offset + n],
                    ),
                )
            )
            offset += n

    def _query_table(
        self,
        keys: np.ndarray,
        defaults: np.ndarray,
        *,
        cache_hits: int = 0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One retrieval cascade, stamped with the batch's cache split."""
        values, found, report = self.table.query(keys, source="host")
        report.cache_hits = cache_hits
        report.cache_misses = int(keys.size)
        miss = ~found
        if miss.any():
            values = values.copy()
            values[miss] = defaults[miss]
        return values, found

    def _send_reply(
        self, pending: _Pending, values: np.ndarray, found: np.ndarray
    ) -> None:
        """Reply to a zero-key frame without entering the coalescer."""
        if pending.op == "insert":
            payload = encode_insert_reply(0)
            ftype = FrameType.INSERT_REPLY
        elif pending.op == "query":
            payload = encode_query_reply(values, found)
            ftype = FrameType.QUERY_REPLY
        else:
            payload = encode_erase_reply(found)
            ftype = FrameType.ERASE_REPLY
        pending.conn.send(Frame(ftype, pending.request_id, payload))

    def _drain_queue(self, code: ErrorCode, message: str) -> None:
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                return
            if pending.nbytes:
                self.budget.release(pending.nbytes)
            self._reject(pending.conn, pending.request_id, code, message)

    # -- reporting ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready stats: counters, cache tier, table occupancy."""
        data = {
            "counters": self.stats.snapshot(),
            "table": {
                "size": len(self.table),
                "capacity": self.table.total_capacity,
                "num_gpus": self.table.num_gpus,
            },
            "admission": {
                "budget_bytes": self.budget.total_bytes,
                "in_flight_bytes": self.budget.in_flight_bytes,
                "peak_bytes": self.budget.peak_bytes,
            },
        }
        if self.cache is not None:
            data["cache"] = self.cache.stats().to_dict()
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KVServer(address={self._address!r}, "
            f"cache={'on' if self.cache is not None else 'off'}, "
            f"table={self.table!r})"
        )
