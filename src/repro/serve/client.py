"""Partition-aware KV client for the serving layer.

A :class:`KVClient` speaks the :mod:`repro.serve.protocol` framing over
a unix or TCP socket.  At HELLO time it learns the server's GPU count
and reconstructs the same deterministic
:func:`~repro.hashing.partition.hashed_partition` the table uses — so a
batch can be **pre-split by shard** before it ever hits the wire.  Each
shard-run then arrives at the server as its own frame, and the server's
coalescer can merge same-shard runs from many clients into cascades
whose multisplit phase finds mostly-presorted input (the client does
the multisplit's work early, exactly like DGL's partition-book clients
pushing to the owning server).  Results are re-assembled into the
caller's original order via the inverse permutation, so pre-splitting
is invisible to correctness.

Replies are matched by ``request_id``, *not* arrival order: the server
rejects over-budget frames immediately from the reader thread while
accepted frames answer later from the coalescer, so replies can
legitimately overtake each other on one connection.  A typed ERROR
frame surfaces as :class:`~repro.serve.protocol.ServeError` carrying
the server's :class:`~repro.serve.protocol.ErrorCode`; ``OVERLOADED``
can optionally be retried with exponential backoff
(``retry_overloaded``).
"""

from __future__ import annotations

import itertools
import json
import socket
import time

import numpy as np

from ..errors import ConfigurationError
from ..hashing.partition import hashed_partition
from ..utils.validation import check_keys, check_same_length, check_values
from .protocol import (
    ErrorCode,
    Frame,
    FrameType,
    MAX_BATCH,
    ProtocolError,
    ServeError,
    decode_erase_reply,
    decode_error,
    decode_hello_reply,
    decode_insert_reply,
    decode_query_reply,
    encode_erase,
    encode_hello,
    encode_insert,
    encode_query,
    read_frame,
    write_frame,
)

__all__ = ["KVClient"]

_client_counter = itertools.count()


class KVClient:
    """One connection to a :class:`~repro.serve.server.KVServer`.

    Parameters
    ----------
    address:
        Unix socket path (``str``) or ``(host, port)`` tuple.
    name:
        Client identity sent in HELLO; re-HELLOs under the same name
        count as ``serve.reconnect`` on the server.  Auto-generated
        when omitted.
    presplit:
        Split batches into per-shard frames using the server's
        partition policy (default).  ``False`` sends one frame per
        ``MAX_BATCH`` chunk in caller order — the protocol works either
        way; pre-splitting just feeds the coalescer shard-pure runs.
    retry_overloaded:
        How many times to retry a frame the server rejected with
        ``OVERLOADED``, with exponential backoff starting at
        ``backoff``.  ``0`` (default) surfaces the rejection as
        :class:`ServeError` — what the fault-injection tests assert.
    timeout:
        Socket timeout in seconds for connect and replies.
    """

    def __init__(
        self,
        address,
        *,
        name: str | None = None,
        presplit: bool = True,
        retry_overloaded: int = 0,
        backoff: float = 0.005,
        timeout: float = 30.0,
    ):
        if retry_overloaded < 0:
            raise ConfigurationError(
                f"retry_overloaded must be >= 0, got {retry_overloaded}"
            )
        self.address = address
        self.name = (
            name
            if name is not None
            else f"client-{next(_client_counter)}"
        )
        self.presplit = bool(presplit)
        self.retry_overloaded = int(retry_overloaded)
        self.backoff = float(backoff)
        self.timeout = float(timeout)
        self._sock: socket.socket | None = None
        self._request_ids = itertools.count(1)
        self.num_gpus = 0
        self.server_cache_enabled = False
        self._partition = None
        self.connects = 0
        self._connect()

    # -- connection -----------------------------------------------------------

    def _connect(self) -> None:
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(
            self.address
            if isinstance(self.address, str)
            else tuple(self.address)
        )
        self._sock = sock
        self.connects += 1
        reply = self._roundtrip_one(
            Frame(
                FrameType.HELLO,
                next(self._request_ids),
                encode_hello(self.name),
            )
        )
        if reply.type != FrameType.HELLO_REPLY:
            raise ProtocolError(
                f"expected HELLO_REPLY, got {reply.type.name}"
            )
        self.num_gpus, self.server_cache_enabled = decode_hello_reply(
            reply.payload
        )
        self._partition = hashed_partition(self.num_gpus)

    def reconnect(self) -> None:
        """Tear down the socket and re-HELLO (the fault-recovery path)."""
        self.close()
        self._connect()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass
            self._sock = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def __enter__(self) -> "KVClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- framing --------------------------------------------------------------

    def _require_sock(self) -> socket.socket:
        if self._sock is None:
            raise ConfigurationError(
                "client is closed; call reconnect() first"
            )
        return self._sock

    def _roundtrip_one(self, frame: Frame) -> Frame:
        sock = self._require_sock()
        write_frame(sock, frame)
        while True:
            reply = read_frame(sock)
            if reply.request_id == frame.request_id:
                return reply
            # a stale reply from an earlier (abandoned) request — skip

    def _roundtrip_batch(
        self, frames: list[Frame], reply_type: FrameType
    ) -> dict[int, Frame]:
        """Send every frame, then collect all replies by request id.

        ``OVERLOADED`` errors are retried (same request id, fresh
        frame) up to ``retry_overloaded`` times; every other ERROR
        raises :class:`ServeError` immediately.
        """
        sock = self._require_sock()
        outstanding: dict[int, Frame] = {}
        for frame in frames:
            write_frame(sock, frame)
            outstanding[frame.request_id] = frame
        retries: dict[int, int] = {}
        replies: dict[int, Frame] = {}
        while outstanding:
            reply = read_frame(sock)
            sent = outstanding.pop(reply.request_id, None)
            if sent is None:
                continue  # stale reply from a prior call
            if reply.type == FrameType.ERROR:
                code, message = decode_error(reply.payload)
                attempt = retries.get(reply.request_id, 0)
                if (
                    code == ErrorCode.OVERLOADED
                    and attempt < self.retry_overloaded
                ):
                    retries[reply.request_id] = attempt + 1
                    time.sleep(self.backoff * (2 ** attempt))
                    write_frame(sock, sent)
                    outstanding[sent.request_id] = sent
                    continue
                raise ServeError(code, message)
            if reply.type != reply_type:
                raise ProtocolError(
                    f"expected {reply_type.name}, got {reply.type.name}"
                )
            replies[reply.request_id] = reply
        return replies

    # -- batch splitting ------------------------------------------------------

    def _split(self, keys: np.ndarray) -> list[np.ndarray]:
        """Index arrays, one per wire frame, covering ``keys`` exactly.

        With ``presplit`` the batch is stably grouped by owning shard
        (so each frame is shard-pure); either way no frame exceeds
        ``MAX_BATCH`` keys.
        """
        n = int(keys.shape[0])
        if n == 0:
            return [np.empty(0, dtype=np.int64)]
        if self.presplit and self.num_gpus > 1:
            parts = self._partition(keys)
            order = np.argsort(parts, kind="stable")
            boundaries = np.searchsorted(
                parts[order], np.arange(1, self.num_gpus)
            )
            runs = [
                run
                for run in np.split(order, boundaries)
                if run.size
            ]
        else:
            runs = [np.arange(n, dtype=np.int64)]
        chunks: list[np.ndarray] = []
        for run in runs:
            for start in range(0, run.size, MAX_BATCH):
                chunks.append(run[start : start + MAX_BATCH])
        return chunks

    # -- operations -----------------------------------------------------------

    def insert(self, keys: np.ndarray, values: np.ndarray) -> int:
        """Batched insert; returns the number of pairs acknowledged."""
        k = check_keys(keys)
        v = check_values(values)
        check_same_length("keys", k, "values", v)
        frames = [
            Frame(
                FrameType.INSERT,
                next(self._request_ids),
                encode_insert(k[idx], v[idx]),
            )
            for idx in self._split(k)
        ]
        replies = self._roundtrip_batch(frames, FrameType.INSERT_REPLY)
        return sum(
            decode_insert_reply(reply.payload) for reply in replies.values()
        )

    def query(
        self, keys: np.ndarray, *, default: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched retrieval; returns ``(values, found)`` in input order."""
        k = check_keys(keys)
        splits = self._split(k)
        frames = [
            Frame(
                FrameType.QUERY,
                next(self._request_ids),
                encode_query(k[idx], default=default),
            )
            for idx in splits
        ]
        replies = self._roundtrip_batch(frames, FrameType.QUERY_REPLY)
        values = np.full(k.shape[0], default, dtype=np.uint32)
        found = np.zeros(k.shape[0], dtype=bool)
        for frame, idx in zip(frames, splits):
            part_values, part_found = decode_query_reply(
                replies[frame.request_id].payload
            )
            values[idx] = part_values
            found[idx] = part_found
        return values, found

    def erase(self, keys: np.ndarray) -> np.ndarray:
        """Batched deletion; returns the erased mask in input order."""
        k = check_keys(keys)
        splits = self._split(k)
        frames = [
            Frame(
                FrameType.ERASE,
                next(self._request_ids),
                encode_erase(k[idx]),
            )
            for idx in splits
        ]
        replies = self._roundtrip_batch(frames, FrameType.ERASE_REPLY)
        erased = np.zeros(k.shape[0], dtype=bool)
        for frame, idx in zip(frames, splits):
            erased[idx] = decode_erase_reply(
                replies[frame.request_id].payload
            )
        return erased

    def stats(self) -> dict:
        """The server's live counter/cache/table snapshot."""
        reply = self._roundtrip_one(
            Frame(FrameType.STATS, next(self._request_ids))
        )
        if reply.type != FrameType.STATS_REPLY:
            raise ProtocolError(
                f"expected STATS_REPLY, got {reply.type.name}"
            )
        return json.loads(reply.payload.decode("utf-8"))

    def shutdown_server(self) -> None:
        """Ask the server to drain and exit (used by the CLI pair)."""
        sock = self._require_sock()
        write_frame(
            sock, Frame(FrameType.SHUTDOWN, next(self._request_ids))
        )
        try:
            read_frame(sock)  # ack, best-effort
        except (ProtocolError, OSError):
            pass
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self.connected else "closed"
        return f"KVClient(name={self.name!r}, {state})"
