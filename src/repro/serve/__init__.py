"""Distributed KV serving layer: a socket front-end for the cascade.

The ROADMAP's "millions of users" north star needs more than a
well-behaved single caller: this package puts a network-facing (unix- or
TCP-socket) server in front of a
:class:`~repro.multigpu.distributed_table.DistributedHashTable`, speaking
a length-prefixed binary protocol (:mod:`repro.serve.protocol`) with
batched insert/query/erase frames.  The server coalesces concurrent
client requests into whole cascades under a batch window + admission
budget (:mod:`repro.serve.server`), and a skew-aware hot-key cache tier
(:mod:`repro.serve.cache`) absorbs Zipfian read traffic before it ever
reaches a shard.  Clients (:mod:`repro.serve.client`) know the server's
partition policy and pre-split batches by shard.

``repro serve`` / ``repro client`` expose the pair on the CLI;
``repro serve --smoke`` is the CI gate; ``docs/serving.md`` documents
the frame formats, the cache tier, and the backpressure semantics.
"""

from .cache import CacheStats, HotKeyCache
from .client import KVClient
from .protocol import (
    ErrorCode,
    Frame,
    FrameType,
    MAX_BATCH,
    ProtocolError,
    ServeError,
    decode_erase,
    decode_error,
    decode_header,
    decode_insert,
    decode_query,
    encode_erase,
    encode_error,
    encode_frame,
    encode_insert,
    encode_query,
    read_frame,
    write_frame,
)
from .server import KVServer, ServerStats

__all__ = [
    "HotKeyCache",
    "CacheStats",
    "KVClient",
    "KVServer",
    "ServerStats",
    "Frame",
    "FrameType",
    "ErrorCode",
    "ProtocolError",
    "ServeError",
    "MAX_BATCH",
    "encode_frame",
    "decode_header",
    "encode_insert",
    "decode_insert",
    "encode_query",
    "decode_query",
    "encode_erase",
    "decode_erase",
    "encode_error",
    "decode_error",
    "read_frame",
    "write_frame",
]
