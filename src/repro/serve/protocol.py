"""Length-prefixed binary wire protocol for the KV serving layer.

Every message is one *frame*::

    +--------+---------+------+------------+-------------+=========+
    | magic  | version | type | request id | payload len | payload |
    | u16    | u8      | u8   | u32        | u32         | ...     |
    +--------+---------+------+------------+-------------+=========+

All integers are little-endian.  The 12-byte header is validated before
a single payload byte is read: a bad magic, unknown version, unknown
frame type, or a payload length beyond :data:`MAX_PAYLOAD` raises
:class:`ProtocolError` — the server answers with a typed
:data:`FrameType.ERROR` frame and closes the connection, so a malformed
client can never reach the table.

Batched operations ship their keys/values as raw ``uint32`` arrays
(the table's native dtype) prefixed by a count; a frame carries at most
:data:`MAX_BATCH` keys so one client cannot monopolize the admission
budget with a single giant frame.  Empty batches are legal and
round-trip to empty replies.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..errors import ReproError

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER_BYTES",
    "MAX_BATCH",
    "MAX_PAYLOAD",
    "FrameType",
    "ErrorCode",
    "ProtocolError",
    "ServeError",
    "Frame",
    "encode_frame",
    "decode_header",
    "encode_hello",
    "decode_hello",
    "encode_hello_reply",
    "decode_hello_reply",
    "encode_insert",
    "decode_insert",
    "encode_insert_reply",
    "decode_insert_reply",
    "encode_query",
    "decode_query",
    "encode_query_reply",
    "decode_query_reply",
    "encode_erase",
    "decode_erase",
    "encode_erase_reply",
    "decode_erase_reply",
    "encode_error",
    "decode_error",
    "recv_exact",
    "read_frame",
    "write_frame",
]

#: wire magic ("WD" little-endian) — rejects line noise before anything else
MAGIC: int = 0x4457
VERSION: int = 1
#: header layout: magic u16, version u8, type u8, request_id u32, len u32
_HEADER = struct.Struct("<HBBII")
HEADER_BYTES: int = _HEADER.size

#: hard per-frame key ceiling — admission control is per-batch, so one
#: frame must stay a bounded unit of work
MAX_BATCH: int = 1 << 16
#: insert is the fattest op: count + default + 2 u32 arrays + slack
MAX_PAYLOAD: int = 16 + MAX_BATCH * 8


class ProtocolError(ReproError):
    """A frame violated the wire contract (bad header, short payload)."""

    def __init__(self, message: str, *, code: "ErrorCode | None" = None):
        super().__init__(message)
        self.code = code if code is not None else ErrorCode.MALFORMED


class ServeError(ReproError):
    """The server answered with a typed :data:`FrameType.ERROR` frame."""

    def __init__(self, code: "ErrorCode", message: str):
        super().__init__(f"[{code.name}] {message}")
        self.code = code


class FrameType(IntEnum):
    HELLO = 1
    HELLO_REPLY = 2
    INSERT = 3
    INSERT_REPLY = 4
    QUERY = 5
    QUERY_REPLY = 6
    ERASE = 7
    ERASE_REPLY = 8
    STATS = 9
    STATS_REPLY = 10
    ERROR = 11
    SHUTDOWN = 12


class ErrorCode(IntEnum):
    MALFORMED = 1      #: unparseable header or payload
    TOO_LARGE = 2      #: batch over MAX_BATCH / payload over MAX_PAYLOAD
    OVERLOADED = 3     #: admission budget full — retry later
    BAD_TYPE = 4       #: frame type the server does not accept
    INTERNAL = 5       #: table-side failure (capacity, probing)
    SHUTTING_DOWN = 6  #: server is draining


@dataclass(frozen=True)
class Frame:
    """One decoded frame: type, correlation id, raw payload bytes."""

    type: FrameType
    request_id: int
    payload: bytes = b""


def encode_frame(frame: Frame) -> bytes:
    if len(frame.payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(frame.payload)} B exceeds {MAX_PAYLOAD} B",
            code=ErrorCode.TOO_LARGE,
        )
    header = _HEADER.pack(
        MAGIC, VERSION, int(frame.type), frame.request_id, len(frame.payload)
    )
    return header + frame.payload


def decode_header(data: bytes) -> tuple[FrameType, int, int]:
    """Validate a 12-byte header → ``(type, request_id, payload_len)``."""
    if len(data) != HEADER_BYTES:
        raise ProtocolError(
            f"header is {len(data)} B, expected {HEADER_BYTES} B"
        )
    magic, version, ftype, request_id, length = _HEADER.unpack(data)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:04x}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    try:
        ftype = FrameType(ftype)
    except ValueError:
        raise ProtocolError(f"unknown frame type {ftype}") from None
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload length {length} exceeds {MAX_PAYLOAD} B",
            code=ErrorCode.TOO_LARGE,
        )
    return ftype, request_id, length


# -- payload codecs -----------------------------------------------------------


def _check_count(count: int) -> int:
    if count > MAX_BATCH:
        raise ProtocolError(
            f"batch of {count} keys exceeds MAX_BATCH={MAX_BATCH}",
            code=ErrorCode.TOO_LARGE,
        )
    return count


def _u32_array(payload: bytes, offset: int, count: int, what: str) -> np.ndarray:
    end = offset + 4 * count
    if end > len(payload):
        raise ProtocolError(
            f"{what}: payload truncated at {len(payload)} B, "
            f"needed {end} B"
        )
    return np.frombuffer(payload, dtype="<u4", count=count, offset=offset).astype(
        np.uint32, copy=False
    )


def _keys_values(keys: np.ndarray, values: np.ndarray | None) -> bytes:
    k = np.ascontiguousarray(keys, dtype="<u4")
    out = [k.tobytes()]
    if values is not None:
        v = np.ascontiguousarray(values, dtype="<u4")
        if v.shape != k.shape:
            raise ProtocolError(
                f"keys/values length mismatch ({k.size} != {v.size})"
            )
        out.append(v.tobytes())
    return b"".join(out)


def encode_hello(name: str) -> bytes:
    return name.encode("utf-8")


def decode_hello(payload: bytes) -> str:
    try:
        return payload.decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("hello: client name is not utf-8") from None


def encode_hello_reply(num_gpus: int, *, cache_enabled: bool) -> bytes:
    return struct.pack("<IB", num_gpus, int(bool(cache_enabled)))


def decode_hello_reply(payload: bytes) -> tuple[int, bool]:
    if len(payload) != 5:
        raise ProtocolError(f"hello reply is {len(payload)} B, expected 5 B")
    num_gpus, cached = struct.unpack("<IB", payload)
    return num_gpus, bool(cached)


def encode_insert(keys: np.ndarray, values: np.ndarray) -> bytes:
    _check_count(len(keys))
    return struct.pack("<I", len(keys)) + _keys_values(keys, values)


def decode_insert(payload: bytes) -> tuple[np.ndarray, np.ndarray]:
    if len(payload) < 4:
        raise ProtocolError("insert: missing count word")
    count = _check_count(struct.unpack_from("<I", payload)[0])
    keys = _u32_array(payload, 4, count, "insert keys")
    values = _u32_array(payload, 4 + 4 * count, count, "insert values")
    return keys, values


def encode_insert_reply(count: int) -> bytes:
    return struct.pack("<I", count)


def decode_insert_reply(payload: bytes) -> int:
    if len(payload) != 4:
        raise ProtocolError(f"insert reply is {len(payload)} B, expected 4 B")
    return struct.unpack("<I", payload)[0]


def encode_query(keys: np.ndarray, *, default: int = 0) -> bytes:
    _check_count(len(keys))
    return (
        struct.pack("<II", len(keys), default) + _keys_values(keys, None)
    )


def decode_query(payload: bytes) -> tuple[np.ndarray, int]:
    if len(payload) < 8:
        raise ProtocolError("query: missing count/default words")
    count, default = struct.unpack_from("<II", payload)
    _check_count(count)
    return _u32_array(payload, 8, count, "query keys"), default


def encode_query_reply(values: np.ndarray, found: np.ndarray) -> bytes:
    v = np.ascontiguousarray(values, dtype="<u4")
    f = np.ascontiguousarray(found, dtype=np.uint8)
    if v.shape != f.shape:
        raise ProtocolError(
            f"values/found length mismatch ({v.size} != {f.size})"
        )
    return struct.pack("<I", v.size) + v.tobytes() + f.tobytes()


def decode_query_reply(payload: bytes) -> tuple[np.ndarray, np.ndarray]:
    if len(payload) < 4:
        raise ProtocolError("query reply: missing count word")
    count = _check_count(struct.unpack_from("<I", payload)[0])
    values = _u32_array(payload, 4, count, "query reply values")
    off = 4 + 4 * count
    if off + count > len(payload):
        raise ProtocolError("query reply: found mask truncated")
    found = np.frombuffer(payload, dtype=np.uint8, count=count, offset=off)
    return values, found.astype(bool)


def encode_erase(keys: np.ndarray) -> bytes:
    _check_count(len(keys))
    return struct.pack("<I", len(keys)) + _keys_values(keys, None)


def decode_erase(payload: bytes) -> np.ndarray:
    if len(payload) < 4:
        raise ProtocolError("erase: missing count word")
    count = _check_count(struct.unpack_from("<I", payload)[0])
    return _u32_array(payload, 4, count, "erase keys")


def encode_erase_reply(erased: np.ndarray) -> bytes:
    e = np.ascontiguousarray(erased, dtype=np.uint8)
    return struct.pack("<I", e.size) + e.tobytes()


def decode_erase_reply(payload: bytes) -> np.ndarray:
    if len(payload) < 4:
        raise ProtocolError("erase reply: missing count word")
    count = _check_count(struct.unpack_from("<I", payload)[0])
    if 4 + count > len(payload):
        raise ProtocolError("erase reply: mask truncated")
    mask = np.frombuffer(payload, dtype=np.uint8, count=count, offset=4)
    return mask.astype(bool)


def encode_error(code: ErrorCode, message: str) -> bytes:
    return struct.pack("<H", int(code)) + message.encode("utf-8")


def decode_error(payload: bytes) -> tuple[ErrorCode, str]:
    if len(payload) < 2:
        raise ProtocolError("error frame: missing code word")
    raw = struct.unpack_from("<H", payload)[0]
    try:
        code = ErrorCode(raw)
    except ValueError:
        code = ErrorCode.INTERNAL
    return code, payload[2:].decode("utf-8", errors="replace")


# -- socket transport ---------------------------------------------------------


def recv_exact(sock, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ProtocolError`.

    A clean EOF at a frame boundary (``n`` requested, zero received on
    the first recv) raises with ``"connection closed"`` so callers can
    distinguish an orderly hangup from a frame truncated mid-flight.
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                raise ProtocolError("connection closed")
            raise ProtocolError(
                f"truncated frame: got {got} of {n} B before EOF"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock) -> Frame:
    """Read one validated frame off a socket."""
    ftype, request_id, length = decode_header(recv_exact(sock, HEADER_BYTES))
    payload = recv_exact(sock, length) if length else b""
    return Frame(ftype, request_id, payload)


def write_frame(sock, frame: Frame) -> None:
    sock.sendall(encode_frame(frame))
