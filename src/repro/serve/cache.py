"""Skew-aware hot-key cache tier: set-associative slots, TinyLFU admission.

Zipfian "millions of users" traffic concentrates on a small set of hot
keys; serving those straight from the front-end keeps them from
hammering the cascade (ROADMAP item 1, cf. WarpCore's batched-lookup
emphasis in PAPERS.md).  The tier must beat the (vectorized) cascade on
wall clock, so every operation is a handful of flat numpy passes — no
per-key Python, no sorted-array rebuilds, no binary searches:

* **2-way set-associative residency**: a key hashes to one set and may
  live in either of its two ways.  A batch lookup is a multiply-shift
  hash, four gathers, and a compare — a few ns/key, an order of
  magnitude cheaper than ``searchsorted`` into a sorted residency map,
  and the whole structure stays small enough to sit in L2.
* a **count-min sketch** estimating per-key touch frequency in O(1)
  space.  Every lookup counts a 1-in-``sketch_sample`` systematic
  sample of its keys (hits *and* misses — a resident key must keep
  accruing frequency or it would eventually lose its slot to warm tail
  keys), and the whole sketch halves once enough touches accumulate,
  so estimates track the recent traffic mix instead of all history.
* **TinyLFU admission**: a missed key becomes a *candidate* once its
  sketch estimate reaches ``promote_after``.  A candidate takes an
  empty way if its set has one; otherwise it duels the set's
  lower-frequency occupant and displaces it only on a strictly higher
  estimate — one-hit-wonder tail keys can never churn out a genuinely
  hot resident.

Coherence contract: the server invalidates (:meth:`HotKeyCache
.invalidate`) every key touched by an insert or erase *before* the
mutation's reply is sent, and only admits values read from the table in
the same coalesced batch — so a cached hit can never be staler than the
latest committed mutation (property-tested against a reference
simulator in ``tests/serve/test_cache_properties.py``).

Only *found* keys are cached: negative caching would have to be
invalidated on insert of a previously-missing key, which the sketch
cannot see; the miss path stays a cascade.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..obs.protocol import reportable_dict

__all__ = ["CacheStats", "HotKeyCache"]

#: odd multipliers for the sketch's row hashes (splitmix-derived)
_ROW_SALTS = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F)

_MASK32 = np.uint64(0xFFFFFFFF)


@dataclass
class CacheStats:
    """Point-in-time accounting snapshot of one cache tier."""

    hits: int = 0
    misses: int = 0
    admitted: int = 0
    evicted: int = 0
    invalidated: int = 0
    size: int = 0
    capacity: int = 0

    schema_version = 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return reportable_dict(
            self,
            {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
                "admitted": self.admitted,
                "evicted": self.evicted,
                "invalidated": self.invalidated,
                "size": self.size,
                "capacity": self.capacity,
            },
        )


class HotKeyCache:
    """Bounded key → value cache with frequency-gated admission.

    Parameters
    ----------
    capacity:
        Maximum resident entries.  Rounded down to a multiple of the
        associativity (2) so the slot grid is rectangular; a capacity
        of 1 degenerates to a single direct-mapped slot.
    promote_after:
        Sketch-estimated touches a key needs before it becomes an
        admission candidate.  ``1`` admits on first sight; the default
        ``2`` keeps single-shot keys from even being considered.
        Estimates count *sampled* touches (see ``sketch_sample``).
    sketch_width, sketch_depth:
        Count-min sketch geometry.  The default 4×4096 over-counts by
        <1 for the serving workloads in the bench suite.
    sketch_sample:
        Count every ``sketch_sample``-th key of each lookup batch into
        the sketch (systematic sampling).  Relative frequencies — all
        admission ever compares — are preserved, at 1/sample the
        counting cost.  Pass ``1`` for exact counting (the property
        tests do).
    """

    def __init__(
        self,
        capacity: int,
        *,
        promote_after: int = 2,
        sketch_width: int = 4096,
        sketch_depth: int = 4,
        sketch_sample: int = 8,
    ):
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        if promote_after < 1:
            raise ConfigurationError(
                f"promote_after must be >= 1, got {promote_after}"
            )
        if sketch_depth < 1 or sketch_depth > len(_ROW_SALTS):
            raise ConfigurationError(
                f"sketch_depth must be in [1, {len(_ROW_SALTS)}], "
                f"got {sketch_depth}"
            )
        if sketch_width < 1:
            raise ConfigurationError(
                f"sketch_width must be >= 1, got {sketch_width}"
            )
        if sketch_sample < 1:
            raise ConfigurationError(
                f"sketch_sample must be >= 1, got {sketch_sample}"
            )
        self._ways = 1 if capacity < 2 else 2
        self._sets = max(1, int(capacity) // self._ways)
        self.capacity = self._ways * self._sets
        self.promote_after = int(promote_after)
        self._width = int(sketch_width)
        self._depth = int(sketch_depth)
        self._sample = int(sketch_sample)
        self._sketch = np.zeros((self._depth, self._width), dtype=np.uint32)
        #: slot grid, shape (ways, sets); a slot is live where _occ is set
        self._keys = np.zeros((self._ways, self._sets), dtype=np.uint32)
        self._vals = np.zeros((self._ways, self._sets), dtype=np.uint32)
        self._occ = np.zeros((self._ways, self._sets), dtype=bool)
        #: sampled touches between sketch halvings (frequency aging)
        self._touches = 0
        self._reset_every = max(32 * self.capacity, 4 * self._width)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.admitted = 0
        self.evicted = 0
        self.invalidated = 0

    def __len__(self) -> int:
        return int(self._occ.sum())

    # -- hashing --------------------------------------------------------------

    @staticmethod
    def _mix(keys: np.ndarray) -> np.ndarray:
        """32-bit multiplicative mix, uniform enough for slot spreading."""
        x = keys.astype(np.uint64) * np.uint64(_ROW_SALTS[0])
        x &= _MASK32
        x ^= x >> np.uint64(15)
        return x

    def _set_of(self, keys: np.ndarray) -> np.ndarray:
        """Home set per key via fixed-point range scaling (no modulo)."""
        return (
            (self._mix(keys) * np.uint64(self._sets)) >> np.uint64(32)
        ).astype(np.intp)

    def _cols(self, keys: np.ndarray) -> np.ndarray:
        """Per-row sketch columns for a key batch, shape (depth, n)."""
        k = keys.astype(np.uint64, copy=False)
        cols = np.empty((self._depth, k.shape[0]), dtype=np.intp)
        for d in range(self._depth):
            mixed = (k * np.uint64(_ROW_SALTS[d])) & _MASK32
            mixed ^= mixed >> np.uint64(15)
            cols[d] = (mixed % np.uint64(self._width)).astype(np.intp)
        return cols

    # -- sketch ---------------------------------------------------------------

    def _touch_sketch(self, keys: np.ndarray) -> None:
        """Count a systematic sample of the batch (one C pass per row)."""
        sampled = keys[:: self._sample]
        if sampled.size == 0:
            return
        cols = self._cols(sampled)
        for d in range(self._depth):
            self._sketch[d] += np.bincount(
                cols[d], minlength=self._width
            ).astype(np.uint32)
        self._touches += int(sampled.size)
        if self._touches >= self._reset_every:
            # aging: halve everything so estimates follow recent traffic
            self._sketch >>= 1
            self._touches = 0

    def _estimates(self, keys: np.ndarray) -> np.ndarray:
        """Count-min estimates (min over rows), shape (n,)."""
        cols = self._cols(keys)
        est = self._sketch[0, cols[0]].copy()
        for d in range(1, self._depth):
            np.minimum(est, self._sketch[d, cols[d]], out=est)
        return est

    # -- lookups --------------------------------------------------------------

    def lookup(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Serve a key batch from the resident tier.

        Returns ``(values, hit)``: ``values[i]`` is valid where
        ``hit[i]``; missed positions are zero.  Every lookup feeds the
        frequency sketch (sampled), hits included — residency is
        defended by frequency, so hot keys must keep counting.
        """
        n = int(len(keys))
        if n == 0:
            return np.zeros(0, dtype=np.uint32), np.zeros(0, dtype=bool)
        keys = np.asarray(keys, dtype=np.uint32)
        with self._lock:
            s = self._set_of(keys)
            hit0 = self._occ[0, s] & (self._keys[0, s] == keys)
            values = np.where(hit0, self._vals[0, s], 0).astype(np.uint32)
            hit = hit0
            for w in range(1, self._ways):
                hitw = self._occ[w, s] & (self._keys[w, s] == keys)
                values = np.where(hitw, self._vals[w, s], values)
                hit = hit | hitw
            self._touch_sketch(keys)
            nhits = int(hit.sum())
            self.hits += nhits
            self.misses += n - nhits
        return values, hit

    # -- maintenance ----------------------------------------------------------

    def admit(self, keys: np.ndarray, values: np.ndarray) -> int:
        """Offer table-read ``(key, value)`` pairs for residency.

        Keys whose sketch estimate reaches ``promote_after`` become
        candidates.  A candidate takes an empty way in its home set
        when one exists; against a full set it duels the occupant with
        the lower estimate and wins only on a strictly greater one
        (TinyLFU).  Duplicate keys in the batch collapse to the last
        occurrence.  Returns the number of slots (re)filled.
        """
        n = int(len(keys))
        if n == 0:
            return 0
        keys = np.asarray(keys, dtype=np.uint32)
        values = np.asarray(values, dtype=np.uint32)
        with self._lock:
            cand_est = self._estimates(keys)
            eligible = cand_est >= self.promote_after
            if not eligible.any():
                return 0
            keys = keys[eligible]
            values = values[eligible]
            cand_est = cand_est[eligible]
            s = self._set_of(keys)
            if self._ways == 1:
                way = np.zeros(keys.size, dtype=np.intp)
                occupied = self._occ[0, s]
                occ_est = np.where(
                    occupied, self._estimates(self._keys[0, s]), 0
                )
            else:
                occ0 = self._occ[0, s]
                occ1 = self._occ[1, s]
                est0 = np.where(occ0, self._estimates(self._keys[0, s]), 0)
                est1 = np.where(occ1, self._estimates(self._keys[1, s]), 0)
                # empty way first, else the weaker occupant is the victim
                way = np.where(
                    ~occ0, 0, np.where(~occ1, 1, np.where(est1 < est0, 1, 0))
                ).astype(np.intp)
                occupied = occ0 & occ1
                occ_est = np.where(way == 0, est0, est1)
            # refreshing an already-resident key is always allowed
            refresh = self._keys[way, s] == keys
            take = refresh | ~occupied | (cand_est > occ_est)
            if not take.any():
                return 0
            w = way[take]
            i = s[take]
            displaced = int(
                (self._occ[w, i] & ~refresh[take]).sum()
            )
            self._keys[w, i] = keys[take]
            self._vals[w, i] = values[take]
            self._occ[w, i] = True
            placed = int(take.sum())
            self.admitted += placed
            self.evicted += displaced
            return placed

    def invalidate(self, keys: np.ndarray) -> int:
        """Drop every listed key from residency (insert/erase coherence)."""
        keys = np.asarray(keys, dtype=np.uint32)
        if keys.size == 0:
            return 0
        with self._lock:
            s = self._set_of(keys)
            dropped = 0
            for w in range(self._ways):
                gone = self._occ[w, s] & (self._keys[w, s] == keys)
                if gone.any():
                    self._occ[w, s[gone]] = False
                    dropped += int(gone.sum())
            self.invalidated += dropped
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._occ[:] = False
            self._sketch[:] = 0
            self._touches = 0

    # -- reporting ------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                admitted=self.admitted,
                evicted=self.evicted,
                invalidated=self.invalidated,
                size=int(self._occ.sum()),
                capacity=self.capacity,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HotKeyCache(size={int(self._occ.sum())}/{self.capacity}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
