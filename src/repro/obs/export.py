"""Exporters: Perfetto ``trace_event`` JSON, flat metrics JSON, ASCII.

Three ways out of the observability spine:

* :func:`to_perfetto` / :func:`write_trace` — the Chrome/Perfetto
  ``trace_event`` format (open ``chrome://tracing`` or
  https://ui.perfetto.dev and load the ``.trace.json``);
* :func:`metrics_rows` / :func:`write_metrics` — a flat JSON array of
  row objects in the same shape as ``BENCH_wallclock.json`` /
  ``BENCH_distribution.json``;
* :func:`render_rows` / :func:`render_trace` — the ASCII Gantt renderer
  behind :meth:`repro.pipeline.timeline.Timeline.render` and
  :meth:`repro.exec.metrics.MeasuredTimeline.render`, generalized to any
  labelled span rows.

:func:`validate_trace` is the exporter contract the tests and the
``repro trace`` CLI both enforce: parseable events, non-negative
monotonic timestamps, non-negative durations, resolvable parent links.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Sequence

from .metrics import MetricsRegistry
from .trace import SpanRecord, TraceRecorder

__all__ = [
    "to_perfetto",
    "write_trace",
    "validate_trace",
    "metrics_rows",
    "write_metrics",
    "render_rows",
    "render_trace",
]

#: canonical track order for ASCII rendering (unknown categories follow)
CATEGORY_ORDER = (
    "stream",
    "batch",
    "cascade",
    "transfer",
    "distribution",
    "engine",
    "kernel",
    "launch",
)


# -- Perfetto trace_event ----------------------------------------------------


def _event_tid(span: SpanRecord) -> int:
    shard = span.attrs.get("shard")
    if isinstance(shard, int) and shard >= 0:
        return shard + 1
    return 0


def to_perfetto(
    recorder: TraceRecorder, metrics: MetricsRegistry | None = None
) -> dict[str, Any]:
    """Render the recorder as a Chrome/Perfetto ``trace_event`` object."""
    spans = sorted(recorder.spans, key=lambda s: (s.start, s.span_id))
    events: list[dict[str, Any]] = []
    for pid in sorted({s.pid for s in spans}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro trace {recorder.trace_id} pid {pid}"},
            }
        )
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                # trace_event timestamps are microseconds
                "ts": round(span.start * 1e6, 3),
                "dur": round(max(span.duration, 0.0) * 1e6, 3),
                "pid": span.pid,
                "tid": _event_tid(span),
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "kind": span.kind,
                    **{k: v for k, v in span.attrs.items() if k != "shard"},
                },
            }
        )
    out: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": recorder.trace_id,
            "schema_version": SpanRecord.schema_version,
        },
    }
    if metrics is not None:
        out["metrics"] = metrics.snapshot()
    return out


def write_trace(
    path: str | Path,
    recorder: TraceRecorder,
    metrics: MetricsRegistry | None = None,
) -> Path:
    """Write the Perfetto JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(to_perfetto(recorder, metrics), indent=2) + "\n")
    return path


def validate_trace(data: Any) -> list[str]:
    """Check a ``trace_event`` object; returns a list of problems (empty = ok).

    Enforced invariants: a ``traceEvents`` list of dict events; every
    duration event has a name, a category, a numeric non-negative ``ts``
    and ``dur``; ``ts`` values are monotonically non-decreasing in file
    order; ``args.parent_id`` references resolve to an exported span.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"trace must be a JSON object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no 'traceEvents' list"]

    span_ids: set[int] = set()
    duration_events = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"event {i}: unsupported phase {ph!r}")
            continue
        if ph == "M":
            continue
        duration_events.append((i, ev))
        if not ev.get("name"):
            problems.append(f"event {i}: missing name")
        if not ev.get("cat"):
            problems.append(f"event {i}: missing category")
        for field in ("ts", "dur"):
            value = ev.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"event {i}: {field}={value!r} must be >= 0")
        args = ev.get("args") or {}
        if isinstance(args.get("span_id"), int):
            span_ids.add(args["span_id"])

    last_ts = 0.0
    for i, ev in duration_events:
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            if ts < last_ts:
                problems.append(
                    f"event {i}: ts {ts} not monotonic (previous {last_ts})"
                )
            last_ts = max(last_ts, float(ts))
        args = ev.get("args") or {}
        parent = args.get("parent_id")
        if parent is not None and parent not in span_ids:
            problems.append(f"event {i}: parent_id {parent} unresolved")
    return problems


# -- flat metrics JSON -------------------------------------------------------


def metrics_rows(
    metrics: MetricsRegistry, **context: Any
) -> list[dict[str, Any]]:
    """One row object per metric, ``BENCH_*.json`` style.

    ``context`` keys (e.g. ``bench=``, ``n=``, ``trace_id=``) repeat on
    every row so files stay self-describing, exactly like the ``cpus``
    column of the wall-clock suites.
    """
    base = {"cpus": os.cpu_count() or 1, **context}
    return [
        {"metric": name, "value": value, **base}
        for name, value in metrics.snapshot().items()
    ]


def write_metrics(
    path: str | Path, metrics: MetricsRegistry, **context: Any
) -> Path:
    path = Path(path)
    path.write_text(json.dumps(metrics_rows(metrics, **context), indent=2) + "\n")
    return path


# -- ASCII timeline ----------------------------------------------------------


def render_rows(
    rows: Sequence[tuple[str, Sequence[tuple[float, float, str]]]],
    *,
    width: int = 72,
    makespan: float | None = None,
    label_width: int | None = None,
    empty_message: str = "(empty timeline)",
) -> str:
    """ASCII Gantt chart from ``(label, [(start, end, mark), ...])`` rows.

    The shared renderer behind every timeline in the repo: marks are
    scaled into ``width`` columns against the overall makespan, one text
    row per input row.
    """
    span = makespan
    if span is None:
        span = max(
            (end for _, marks in rows for _, end, _ in marks), default=0.0
        )
    if span <= 0:
        return empty_message
    if label_width is None:
        label_width = max((len(label) for label, _ in rows), default=0)
    lines = []
    for label, marks in rows:
        row = [" "] * width
        for start, end, mark in marks:
            lo = int(start / span * (width - 1))
            hi = max(lo + 1, int(end / span * (width - 1)))
            for i in range(lo, min(hi, width)):
                row[i] = mark
        lines.append(f"{label:>{label_width}} |{''.join(row)}|")
    return "\n".join(lines)


def _trace_mark(span: SpanRecord) -> str:
    shard = span.attrs.get("shard")
    if isinstance(shard, int) and shard >= 0:
        return str(shard % 10)
    return "="


def render_trace(recorder: TraceRecorder, *, width: int = 72) -> str:
    """One ASCII row per category, in taxonomy order (Fig. 5 style)."""
    categories = sorted(
        recorder.categories(),
        key=lambda c: (
            CATEGORY_ORDER.index(c) if c in CATEGORY_ORDER else len(CATEGORY_ORDER),
            c,
        ),
    )
    rows = [
        (
            cat,
            [
                (s.start, s.end, _trace_mark(s))
                for s in recorder.by_category(cat)
            ],
        )
        for cat in categories
    ]
    return render_rows(
        rows,
        width=width,
        makespan=recorder.makespan,
        empty_message="(empty trace)",
    )
