"""Named counters and gauges fed by the library's report streams.

A :class:`MetricsRegistry` rolls the per-operation report objects —
:class:`~repro.core.report.KernelReport` probing/CAS work,
:class:`~repro.multigpu.distributed_table.CascadeReport` traffic,
:class:`~repro.memory.transfer.TransferRecord` byte streams — into a
flat name → value map, the numeric complement of the span timeline in
:mod:`repro.obs.trace`.  Counters accumulate monotonically (bytes,
retries, probe windows); gauges hold last-observed values (queue depth,
load imbalance).  ``snapshot()`` is the flat JSON the exporters write
next to ``BENCH_*.json``.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from .protocol import reportable_dict, to_jsonable

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Thread-safe registry of named counters and gauges."""

    schema_version = 1

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._lock = threading.Lock()

    # -- primitives ----------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def gauge(self, name: str) -> float:
        return self.gauges.get(name, 0)

    # -- report-stream observers --------------------------------------------

    def observe_kernel(self, report) -> None:
        """Fold one :class:`KernelReport` into the kernel counters."""
        op = report.op
        self.inc(f"kernel.{op}.ops", report.num_ops)
        self.inc(f"kernel.{op}.probe_windows", report.total_windows)
        self.inc(f"kernel.{op}.load_sectors", report.load_sectors)
        self.inc(f"kernel.{op}.store_sectors", report.store_sectors)
        self.inc(f"kernel.{op}.cas_attempts", report.cas_attempts)
        self.inc(f"kernel.{op}.cas_successes", report.cas_successes)
        self.inc(
            f"kernel.{op}.cas_retries",
            max(report.cas_attempts - report.cas_successes, 0),
        )
        self.inc(f"kernel.{op}.warp_collectives", report.warp_collectives)
        self.inc(f"kernel.{op}.failed", report.failed)
        if report.num_ops:
            self.set_gauge(f"kernel.{op}.mean_windows", report.mean_windows)

    def observe_cascade(self, report) -> None:
        """Fold one :class:`CascadeReport` into the cascade counters."""
        op = report.op
        self.inc(f"cascade.{op}.count")
        self.inc(f"cascade.{op}.ops", report.num_ops)
        self.inc(f"cascade.{op}.h2d_bytes", report.h2d_bytes)
        self.inc(f"cascade.{op}.d2h_bytes", report.d2h_bytes)
        self.inc(f"cascade.{op}.alltoall_bytes", report.alltoall_bytes)
        self.inc(f"cascade.{op}.reverse_bytes", report.reverse_bytes)
        self.inc(
            f"cascade.{op}.distribution_wall_seconds",
            report.distribution_wall_seconds,
        )
        self.inc(f"cascade.{op}.kernel_wall_seconds", report.kernel_wall_seconds)
        self.set_gauge(f"cascade.{op}.load_imbalance", report.load_imbalance)
        cache_hits = getattr(report, "cache_hits", 0)
        cache_misses = getattr(report, "cache_misses", 0)
        if cache_hits or cache_misses:
            self.inc(f"cascade.{op}.cache_hits", cache_hits)
            self.inc(f"cascade.{op}.cache_misses", cache_misses)
        for rep in report.kernel_reports:
            self.observe_kernel(rep)
        for rep in report.multisplit_reports:
            self.observe_kernel(rep)
        grow_reports = getattr(report, "grow_reports", [])
        if grow_reports:
            self.inc(f"cascade.{op}.grows", len(grow_reports))
            self.inc(
                f"cascade.{op}.grow_wall_seconds",
                getattr(report, "grow_wall_seconds", 0.0),
            )
            for rep in grow_reports:
                self.observe_kernel(rep)

    def observe_transfers(self, records: Iterable) -> None:
        """Fold :class:`TransferRecord` streams into per-link byte counters."""
        for rec in records:
            kind = getattr(rec.kind, "name", str(rec.kind)).lower()
            self.inc(f"transfer.{kind}.bytes", rec.nbytes)
            self.inc(f"transfer.{kind}.count")
            if rec.src_device is not None and rec.dst_device is not None:
                self.inc(
                    f"transfer.link.{rec.src_device}_to_{rec.dst_device}.bytes",
                    rec.nbytes,
                )

    def observe_queue_depth(self, name: str, depth: int) -> None:
        """Track a queue's instantaneous depth and its high-water mark."""
        self.set_gauge(f"queue.{name}.depth", depth)
        with self._lock:
            key = f"queue.{name}.peak_depth"
            self.gauges[key] = max(self.gauges.get(key, 0), depth)

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Flat, sorted, JSON-ready name → value map."""
        with self._lock:
            merged = {f"counter.{k}": v for k, v in self.counters.items()}
            merged.update({f"gauge.{k}": v for k, v in self.gauges.items()})
        return {k: to_jsonable(v) for k, v in sorted(merged.items())}

    def to_dict(self) -> dict[str, Any]:
        return reportable_dict(self, {"metrics": self.snapshot()})

    def clear(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)})"
        )
