"""The ``Reportable`` protocol: one serialization contract for reports.

Every report type the library produces — :class:`~repro.core.report.KernelReport`,
:class:`~repro.multigpu.distributed_table.CascadeReport`,
:class:`~repro.pipeline.driver.StreamResult`,
:class:`~repro.exec.metrics.ShardSpan`,
:class:`~repro.memory.transfer.TransferRecord`,
:class:`~repro.bench.wallclock.WallClockRecord`,
:class:`~repro.bench.distribution.DistributionRecord`,
:class:`~repro.sanitize.racecheck.RacecheckReport`, and the
:mod:`repro.obs` span/metric records themselves — implements this
protocol: a ``to_dict()`` returning a JSON-serializable dict with stable
snake_case keys and a ``schema_version`` field, so benchmark writers,
the fuzz corpus, and the trace exporters all serialize through one path
instead of hand-rolled ``asdict`` calls.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["SCHEMA_VERSION", "Reportable", "to_jsonable", "reportable_dict"]

#: version stamped into every ``to_dict()`` payload; bump on any
#: backwards-incompatible field rename or semantic change
SCHEMA_VERSION = 1


@runtime_checkable
class Reportable(Protocol):
    """Anything that can serialize itself into the common report schema.

    ``to_dict()`` must return plain-JSON data (no NumPy scalars, no NaN
    or infinities — use ``None``), keyed by stable snake_case names, and
    include a ``schema_version`` entry equal to the class attribute.
    """

    schema_version: int

    def to_dict(self) -> dict[str, Any]: ...


def to_jsonable(value: Any) -> Any:
    """Recursively coerce ``value`` into plain-JSON data.

    NumPy scalars become Python numbers, arrays become lists, enums
    collapse to their values, nested :class:`Reportable` objects recurse
    through their own ``to_dict()``, and non-finite floats become
    ``None`` (JSON has no NaN; a NaN in a report is a missing value).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return to_jsonable(float(value))
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, Reportable):
        return value.to_dict()
    raise TypeError(f"cannot serialize {type(value).__name__!r} into a report")


def reportable_dict(obj: Any, fields: dict[str, Any]) -> dict[str, Any]:
    """Assemble a ``to_dict()`` payload: schema stamp + coerced fields."""
    out: dict[str, Any] = {
        "schema_version": int(getattr(obj, "schema_version", SCHEMA_VERSION))
    }
    for key, value in fields.items():
        out[key] = to_jsonable(value)
    return out
