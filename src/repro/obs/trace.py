"""Hierarchical trace recording: the spine every layer emits into.

A :class:`TraceRecorder` collects :class:`SpanRecord`\\ s — named,
categorized intervals with ``trace_id``/``span_id``/``parent_id``
lineage — from every instrumented layer: cascade phases in
:mod:`repro.multigpu`, engine dispatch in :mod:`repro.exec`, batch
streams in :mod:`repro.pipeline`, and reference-kernel launches in
:mod:`repro.simt`.  Spans carry a ``kind`` distinguishing *measured*
wall-clock seconds from *modelled* perf-model seconds, so both can live
on one timeline (the paper's Fig. 5/11 overlap claims are exactly such
mixed timelines).

The recorder is thread-safe (the ``thread`` engine times shards
concurrently) and process-safe by construction for the ``process``
engine: workers never touch the recorder — their
:class:`~repro.exec.metrics.ShardSpan` measurements travel back pickled
inside :class:`~repro.exec.engine.ShardKernelResult` and are merged on
the parent via :meth:`TraceRecorder.record_shard_spans`, keeping each
worker's ``pid`` for provenance.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from .protocol import reportable_dict

__all__ = ["SpanRecord", "TraceRecorder"]

#: span kinds: real seconds from a monotonic clock vs perf-model output
MEASURED = "measured"
MODELLED = "modelled"


@dataclass
class SpanRecord:
    """One interval on the trace: a phase, kernel, transfer, or batch."""

    trace_id: str
    span_id: int
    parent_id: int | None
    name: str
    category: str
    #: seconds relative to the recorder's epoch (t = 0 at recorder birth)
    start: float
    end: float
    kind: str = MEASURED
    pid: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    schema_version = 1

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return reportable_dict(
            self,
            {
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "name": self.name,
                "category": self.category,
                "start": self.start,
                "end": self.end,
                "kind": self.kind,
                "pid": self.pid,
                "attrs": self.attrs,
            },
        )


class TraceRecorder:
    """Collects spans for one trace; all layers share one instance.

    Spans record seconds relative to the recorder's construction time
    (monotonic clock), so exported timestamps are non-negative and
    directly comparable across layers.
    """

    def __init__(self, trace_id: str | None = None):
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.spans: list[SpanRecord] = []
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 0
        self._local = threading.local()

    # -- clock / ids --------------------------------------------------------

    def now(self) -> float:
        """Seconds since the recorder's epoch."""
        return time.perf_counter() - self._epoch

    def _allocate_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _parent_stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def current_span_id(self) -> int | None:
        stack = self._parent_stack()
        return stack[-1] if stack else None

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "phase",
        *,
        kind: str = MEASURED,
        **attrs: Any,
    ) -> Iterator[SpanRecord]:
        """Time a block as one span, nested under the active span.

        The yielded record is live: its ``span_id`` can parent manual
        child spans and its ``attrs`` may be updated inside the block;
        ``end`` is stamped when the block exits.
        """
        record = SpanRecord(
            trace_id=self.trace_id,
            span_id=self._allocate_id(),
            parent_id=self.current_span_id,
            name=name,
            category=category,
            start=self.now(),
            end=0.0,
            kind=kind,
            pid=os.getpid(),
            attrs=dict(attrs),
        )
        stack = self._parent_stack()
        stack.append(record.span_id)
        try:
            yield record
        finally:
            stack.pop()
            record.end = self.now()
            with self._lock:
                self.spans.append(record)

    def add_span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        *,
        parent_id: int | None = None,
        kind: str = MEASURED,
        pid: int | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> SpanRecord:
        """Record an externally timed interval (epoch-relative seconds)."""
        record = SpanRecord(
            trace_id=self.trace_id,
            span_id=self._allocate_id(),
            parent_id=(
                parent_id if parent_id is not None else self.current_span_id
            ),
            name=name,
            category=category,
            start=start,
            end=end,
            kind=kind,
            pid=os.getpid() if pid is None else pid,
            attrs=dict(attrs or {}),
        )
        with self._lock:
            self.spans.append(record)
        return record

    def record_shard_spans(
        self,
        shard_spans: Iterable,
        *,
        offset: float = 0.0,
        parent_id: int | None = None,
        category: str = "kernel",
        kind: str = MEASURED,
    ) -> list[SpanRecord]:
        """Merge measured :class:`~repro.exec.metrics.ShardSpan`\\ s.

        This is the process-safe collection point: worker processes ship
        their 0-based spans home inside results, and the parent rebases
        them by ``offset`` (the phase start in recorder time) here.  A
        worker's ``pid`` is preserved when the span carries one.
        """
        out = []
        for s in shard_spans:
            out.append(
                self.add_span(
                    f"{s.op} shard {s.shard}" if s.shard >= 0 else s.op,
                    category,
                    offset + s.start,
                    offset + s.end,
                    parent_id=parent_id,
                    kind=kind,
                    pid=getattr(s, "pid", 0) or None,
                    attrs={"shard": s.shard, "op": s.op},
                )
            )
        return out

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def makespan(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def by_category(self, category: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.category == category]

    def categories(self) -> set[str]:
        return {s.category for s in self.spans}

    def children(self, span_id: int | None) -> list[SpanRecord]:
        return sorted(
            (s for s in self.spans if s.parent_id == span_id),
            key=lambda s: (s.start, s.span_id),
        )

    def tree(self, *, modulo_pids: bool = True) -> list:
        """Canonical nested ``(name, category, kind, children)`` forest.

        Timing- and id-free, so two recorders of the same run shape
        compare equal regardless of backend; ``modulo_pids=False`` keeps
        each span's pid in the tuple (serial vs process then differ
        exactly in worker pids).
        """

        def build(parent: int | None) -> list:
            nodes = []
            for s in self.children(parent):
                entry = (s.name, s.category, s.kind, build(s.span_id))
                if not modulo_pids:
                    entry = entry + (s.pid,)
                nodes.append(entry)
            return sorted(nodes, key=lambda n: (n[0], n[1]))

        return build(None)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SpanRecord.schema_version,
            "trace_id": self.trace_id,
            "spans": [s.to_dict() for s in sorted(
                self.spans, key=lambda s: (s.start, s.span_id)
            )],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecorder(trace_id={self.trace_id!r}, "
            f"spans={len(self.spans)})"
        )
