"""Process-global observability switch and instrumentation facade.

The hooks wired through :mod:`repro.simt`, :mod:`repro.exec`,
:mod:`repro.multigpu`, and :mod:`repro.pipeline` all call through this
module.  Disabled (the default) every call is a single attribute check
returning a shared no-op — zero allocation, no recorder, no lock — so
the instrumented hot paths run at their uninstrumented speed
(``benchmarks/bench_wallclock.py`` regressions gate this).  Enabled via
:func:`configure` or the scoped :func:`session`, the same calls record
into one :class:`~repro.obs.trace.TraceRecorder` and
:class:`~repro.obs.metrics.MetricsRegistry` pair.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Any, Iterable, Iterator

from .metrics import MetricsRegistry
from .trace import SpanRecord, TraceRecorder

__all__ = [
    "configure",
    "enabled",
    "get_recorder",
    "get_metrics",
    "session",
    "span",
    "add_span",
    "record_shard_spans",
    "observe_cascade",
    "observe_kernel",
    "observe_transfers",
]


class _ObsState:
    __slots__ = ("enabled", "recorder", "metrics")

    def __init__(self):
        self.enabled = False
        self.recorder: TraceRecorder | None = None
        self.metrics: MetricsRegistry | None = None


_STATE = _ObsState()
#: shared reusable no-op context for disabled spans
_NULL = nullcontext()


def configure(
    *,
    enabled: bool | None = None,
    recorder: TraceRecorder | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[TraceRecorder | None, MetricsRegistry | None]:
    """Flip the global switch and/or swap the active sinks.

    ``configure(enabled=True)`` creates a fresh recorder/registry pair
    when none is active; ``configure(enabled=False)`` stops recording
    but leaves the sinks readable.  Returns ``(recorder, metrics)``.
    """
    if recorder is not None:
        _STATE.recorder = recorder
    if metrics is not None:
        _STATE.metrics = metrics
    if enabled is not None:
        _STATE.enabled = bool(enabled)
        if _STATE.enabled:
            if _STATE.recorder is None:
                _STATE.recorder = TraceRecorder()
            if _STATE.metrics is None:
                _STATE.metrics = MetricsRegistry()
    return _STATE.recorder, _STATE.metrics


def enabled() -> bool:
    return _STATE.enabled


def get_recorder() -> TraceRecorder | None:
    return _STATE.recorder


def get_metrics() -> MetricsRegistry | None:
    return _STATE.metrics


@contextmanager
def session(
    trace_id: str | None = None,
) -> Iterator[tuple[TraceRecorder, MetricsRegistry]]:
    """Scoped observability: fresh sinks on entry, prior state restored.

    The ``repro trace`` CLI and the tests run inside one of these so a
    traced workload never leaks global state into the rest of the
    process.
    """
    prior = (_STATE.enabled, _STATE.recorder, _STATE.metrics)
    recorder = TraceRecorder(trace_id)
    metrics = MetricsRegistry()
    _STATE.enabled, _STATE.recorder, _STATE.metrics = True, recorder, metrics
    try:
        yield recorder, metrics
    finally:
        _STATE.enabled, _STATE.recorder, _STATE.metrics = prior


# -- instrumentation facade (no-ops when disabled) ---------------------------


def span(name: str, category: str = "phase", **attrs: Any):
    """Context manager timing a block (shared no-op when disabled)."""
    if not _STATE.enabled:
        return _NULL
    return _STATE.recorder.span(name, category, **attrs)


def add_span(
    name: str,
    category: str,
    start: float,
    end: float,
    **kwargs: Any,
) -> SpanRecord | None:
    if not _STATE.enabled:
        return None
    return _STATE.recorder.add_span(name, category, start, end, **kwargs)


def record_shard_spans(
    shard_spans: Iterable, **kwargs: Any
) -> list[SpanRecord]:
    if not _STATE.enabled:
        return []
    return _STATE.recorder.record_shard_spans(shard_spans, **kwargs)


def observe_cascade(report) -> None:
    if _STATE.enabled:
        _STATE.metrics.observe_cascade(report)


def observe_kernel(report) -> None:
    if _STATE.enabled:
        _STATE.metrics.observe_kernel(report)


def observe_transfers(records: Iterable) -> None:
    if _STATE.enabled:
        _STATE.metrics.observe_transfers(records)
