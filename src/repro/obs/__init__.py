"""Unified observability: one trace/metrics spine behind one API.

Every timeline claim in the paper — kernel/transfer overlap (Fig. 5,
Fig. 11), all-to-all traffic (Fig. 6), probing distributions (Fig. 7) —
is reported through this subsystem:

* :class:`TraceRecorder` — hierarchical measured/modelled spans with
  ``trace_id``/``span_id``/``parent_id`` lineage, merged process-safely
  from :mod:`repro.exec` workers;
* :class:`MetricsRegistry` — named counters/gauges fed by the
  :class:`~repro.core.report.KernelReport` /
  :class:`~repro.multigpu.distributed_table.CascadeReport` /
  :class:`~repro.memory.transfer.TransferRecord` streams;
* exporters — Perfetto ``trace_event`` JSON (:func:`write_trace`),
  flat ``BENCH_*.json``-shaped metrics (:func:`write_metrics`), and the
  shared ASCII Gantt renderer (:func:`render_rows`);
* the :class:`Reportable` protocol every report type in the repo
  implements (``to_dict()`` + ``schema_version``).

Recording is off by default and free when off; enable it globally with
:func:`configure` or scoped with :func:`session` (what ``repro trace``
does).  See ``docs/observability.md``.
"""

from .export import (
    metrics_rows,
    render_rows,
    render_trace,
    to_perfetto,
    validate_trace,
    write_metrics,
    write_trace,
)
from .metrics import MetricsRegistry
from .protocol import SCHEMA_VERSION, Reportable, reportable_dict, to_jsonable
from .runtime import (
    add_span,
    configure,
    enabled,
    get_metrics,
    get_recorder,
    observe_cascade,
    observe_kernel,
    observe_transfers,
    record_shard_spans,
    session,
    span,
)
from .trace import SpanRecord, TraceRecorder

__all__ = [
    # protocol
    "SCHEMA_VERSION",
    "Reportable",
    "reportable_dict",
    "to_jsonable",
    # trace + metrics
    "TraceRecorder",
    "SpanRecord",
    "MetricsRegistry",
    # runtime switch + facade
    "configure",
    "enabled",
    "session",
    "get_recorder",
    "get_metrics",
    "span",
    "add_span",
    "record_shard_spans",
    "observe_cascade",
    "observe_kernel",
    "observe_transfers",
    # exporters
    "to_perfetto",
    "write_trace",
    "validate_trace",
    "metrics_rows",
    "write_metrics",
    "render_rows",
    "render_trace",
]
