"""Exception hierarchy for the WarpDrive reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the interesting cases (capacity exhaustion, probing
failure, configuration problems).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with invalid or inconsistent parameters."""


class CapacityError(ReproError):
    """An operation would exceed a fixed capacity (table, buffer, VRAM)."""


class InsertionError(CapacityError):
    """The probing scheme exhausted ``p_max`` windows without finding a slot.

    Mirrors the paper's §II behaviour: "In the unlikely case that the
    probing scheme cannot determine an empty slot for n < c the whole data
    structure is invalidated followed by a subsequent reconstruction with a
    distinct hash function."  :meth:`repro.core.table.WarpDriveHashTable
    .insert` raises this; the caller (or the table's ``rebuild_on_failure``
    mode) reacts by rebuilding with a translated hash function.
    """


class CuckooEvictionError(CapacityError):
    """A cuckoo-hashing eviction chain exceeded its iteration budget."""


class AllocationError(CapacityError):
    """A device memory allocation request exceeded available VRAM."""


class TopologyError(ReproError):
    """A communication plan references links absent from the node topology."""


class ScheduleError(ReproError):
    """The pipeline scheduler was given an inconsistent stage graph."""


class DeviceError(ReproError):
    """A kernel or memory operation targeted an invalid device state."""


class ExecutionError(ReproError):
    """The shard-execution engine failed (backend misuse, worker crash)."""


class KeyNotFoundError(ReproError, KeyError):
    """Strict-mode query for a key that is not present in the table."""
